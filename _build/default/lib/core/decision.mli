(** The CLEAR decision tree (paper Figure 2).

    After a failed discovery reaches the end of the atomic region, the
    hierarchical assessment below selects how the retry executes. *)

type mode =
  | Ns_cl  (** non-speculative cacheline-locked: success guaranteed *)
  | S_cl  (** speculative cacheline-locked: locks the critical footprint *)
  | Speculative_retry  (** plain HTM retry (baseline behaviour) *)

type assessment = {
  fits_window : bool;
      (** discovery saw the whole region without exhausting core resources
          (ROB/SQ) or overflowing the ALT *)
  lockable : bool;
      (** the learned footprint can be held locked simultaneously (cache
          associativity permits it) *)
  immutable : bool;
      (** no indirection bit reached a memory operation or branch *)
}

val decide : assessment -> mode

val mode_name : mode -> string

val pp_mode : Format.formatter -> mode -> unit
