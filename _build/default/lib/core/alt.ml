type entry = {
  line : Mem.Addr.line;
  dir_set : int;
  mutable written : bool;
  mutable needs_locking : bool;
  mutable locked : bool;
  mutable hit : bool;
  mutable conflict : bool;
}

type t = {
  capacity : int;
  dir_set_of : Mem.Addr.line -> int;
  mutable rows : entry list; (* sorted by (dir_set, line) *)
  mutable count : int;
}

let create ?(capacity = 32) ~dir_set_of () =
  if capacity <= 0 then invalid_arg "Alt.create: capacity must be positive";
  { capacity; dir_set_of; rows = []; count = 0 }

let capacity t = t.capacity

let size t = t.count

let reset t =
  t.rows <- [];
  t.count <- 0

let key e = (e.dir_set, e.line)

let record t line ~written =
  let rec find = function
    | [] -> None
    | e :: rest -> if e.line = line then Some e else find rest
  in
  match find t.rows with
  | Some e ->
      e.written <- e.written || written;
      `Ok
  | None ->
      if t.count >= t.capacity then `Overflow
      else begin
        let e =
          {
            line;
            dir_set = t.dir_set_of line;
            written;
            needs_locking = false;
            locked = false;
            hit = false;
            conflict = false;
          }
        in
        let rec insert = function
          | [] -> [ e ]
          | x :: rest -> if key e < key x then e :: x :: rest else x :: insert rest
        in
        t.rows <- insert t.rows;
        t.count <- t.count + 1;
        `Ok
      end

let mem t line = List.exists (fun e -> e.line = line) t.rows

let lines t = List.map (fun e -> e.line) t.rows

let written_lines t = List.filter_map (fun e -> if e.written then Some e.line else None) t.rows

(* Mark [conflict] on every locking entry that shares its directory set with
   the next locking entry. *)
let recompute_groups t =
  let locking = List.filter (fun e -> e.needs_locking) t.rows in
  let rec mark = function
    | [] -> ()
    | [ last ] -> last.conflict <- false
    | a :: (b :: _ as rest) ->
        a.conflict <- a.dir_set = b.dir_set;
        mark rest
  in
  List.iter (fun e -> e.conflict <- false) t.rows;
  mark locking

let prepare_locking t ~lock_all ~extra =
  List.iter
    (fun e ->
      e.needs_locking <- lock_all || e.written || extra e.line;
      e.locked <- false;
      e.hit <- false)
    t.rows;
  recompute_groups t

let to_lock t = List.filter (fun e -> e.needs_locking) t.rows

let entries t = t.rows

let mark_locked e = e.locked <- true

let all_locked t = List.for_all (fun e -> (not e.needs_locking) || e.locked) t.rows

let lock_groups t =
  let locking = to_lock t in
  let rec group acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | e :: rest -> (
        match current with
        | [] -> group acc [ e ] rest
        | c :: _ when c.dir_set = e.dir_set -> group acc (e :: current) rest
        | _ -> group (List.rev current :: acc) [ e ] rest)
  in
  group [] [] locking
