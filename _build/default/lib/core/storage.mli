(** Storage-overhead accounting for CLEAR's structures (paper §5).

    The paper reports, per core: 22.5 bytes of indirection bits (180 physical
    registers), a 146-byte ERT (16 entries), a 276-byte ALT (32 entries,
    CAM), a 544-byte CRT (64 entries, 8-way) — 988.5 bytes total, "less than
    1 KiB". These functions recompute those numbers from field widths ×
    entry counts. The named fields of Figure 7 account for 63 (ALT) and 62
    (CRT) bits per entry; matching the paper's byte counts requires 6 more
    bits per entry in each, which we attribute to the CAM priority-search /
    set bookkeeping the paper does not itemise ([alt_extra_bits] /
    [crt_extra_bits], overridable). *)

type breakdown = {
  indirection_bytes : float;
  ert_bytes : float;
  alt_bytes : float;
  crt_bytes : float;
  total_bytes : float;
}

val ert_entry_bits : int
(** Valid (1) + program counter (64) + is-convertible (1) + is-immutable (1)
    + SQ-full counter (2) + LRU (4) = 73 bits. *)

val alt_entry_bits : int
(** Valid (1) + address (58) + needs-locking (1) + locked (1) + hit (1) +
    conflict (1) = 63 bits (plus the extra CAM bits, see above). *)

val crt_entry_bits : int
(** Valid (1) + address (58) + LRU (3) = 62 bits (plus extra bits). *)

val compute :
  ?physical_registers:int ->
  ?ert_entries:int ->
  ?alt_entries:int ->
  ?crt_entries:int ->
  ?alt_extra_bits:int ->
  ?crt_extra_bits:int ->
  unit ->
  breakdown
(** Defaults reproduce the paper's configuration: 180 physical registers, 16
    ERT entries, 32 ALT entries, 64 CRT entries, 6 extra bits per CAM entry
    -> 988.5 bytes. *)

val paper : breakdown
(** [compute ()] with the defaults. *)

val pp : Format.formatter -> breakdown -> unit
