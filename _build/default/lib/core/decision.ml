type mode = Ns_cl | S_cl | Speculative_retry

type assessment = { fits_window : bool; lockable : bool; immutable : bool }

let decide a =
  if not a.fits_window then Speculative_retry
  else if not a.lockable then Speculative_retry
  else if a.immutable then Ns_cl
  else S_cl

let mode_name = function Ns_cl -> "NS-CL" | S_cl -> "S-CL" | Speculative_retry -> "speculative"

let pp_mode ppf m = Format.pp_print_string ppf (mode_name m)
