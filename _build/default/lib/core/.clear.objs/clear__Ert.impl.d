lib/core/ert.ml: Array
