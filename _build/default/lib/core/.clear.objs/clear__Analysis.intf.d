lib/core/analysis.mli: Isa
