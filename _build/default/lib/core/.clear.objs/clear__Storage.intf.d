lib/core/storage.mli: Format
