lib/core/crt.mli: Mem
