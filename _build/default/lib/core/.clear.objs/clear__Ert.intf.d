lib/core/ert.mli:
