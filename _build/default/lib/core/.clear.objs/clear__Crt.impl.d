lib/core/crt.ml: Array
