lib/core/alt.mli: Mem
