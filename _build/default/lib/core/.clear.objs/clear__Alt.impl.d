lib/core/alt.ml: List Mem
