lib/core/indirection.ml: Bytes List
