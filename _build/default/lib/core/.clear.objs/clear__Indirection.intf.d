lib/core/indirection.mli:
