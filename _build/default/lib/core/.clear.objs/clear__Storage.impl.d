lib/core/storage.ml: Format
