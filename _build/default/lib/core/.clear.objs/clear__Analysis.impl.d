lib/core/analysis.ml: Array Isa List Set String
