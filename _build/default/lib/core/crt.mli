(** Conflicting Reads Table (paper §5, Figure 7).

    Remembers cachelines that the atomic region only read, yet whose
    invalidation by another core caused an abort. On the next S-CL execution
    these lines are locked too, so the same conflict cannot recur. 64
    entries, 8-way set associative, LRU within each set. *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Defaults: 64 entries, 8 ways. [entries] must be a multiple of [ways]. *)

val insert : t -> Mem.Addr.line -> unit
(** Idempotent; refreshes LRU. *)

val mem : t -> Mem.Addr.line -> bool
(** Presence test; does not touch LRU (pure query used while preparing the
    ALT). *)

val remove : t -> Mem.Addr.line -> unit
(** Drop an entry (no-op when absent). Used to decay entries once an S-CL
    execution that locked the line committed: the conflict the entry guarded
    against has been resolved, and keeping hot shared lines in the CRT
    forever would convoy every later S-CL behind their locks. *)

val size : t -> int

val clear : t -> unit
