(** Per-register indirection bits (paper §5, Figure 7).

    One bit per physical register. The bit is set when the register is the
    destination of a load, propagates through register-to-register
    operations, and is cleared when the register is overwritten with a value
    that does not derive from any load. When a memory operation or branch
    retires with a set source bit, the atomic region is not immutable. *)

type t

val create : regs:int -> t

val regs : t -> int

val reset : t -> unit
(** Clear every bit (start of an AR attempt: initial registers come from
    outside the region). *)

val set : t -> int -> unit

val get : t -> int -> bool

val define : t -> dst:int -> srcs:int list -> unit
(** Destination written from the given source registers: the bit becomes the
    OR of the sources' bits (immediates contribute nothing — omit them). *)

val define_load : t -> dst:int -> unit
(** Destination of a load: bit set unconditionally. *)

val any_set : t -> int list -> bool
(** Do any of these source registers carry the indirection bit? Checked when
    memory operations and branches retire. *)

val count_set : t -> int
