(** Explored Region Table (paper §5, Figure 7).

    One entry per atomic region, keyed by the region's program counter (here:
    the AR id). Fully associative with LRU replacement, 16 entries by
    default. Each entry records whether the region is still a candidate for
    cacheline-locked re-execution ([is_convertible]), whether a retry may
    start non-speculatively ([is_immutable]) and a 2-bit saturating counter of
    discoveries that ran out of store-queue resources; when that counter
    saturates, discovery is disabled for the region. *)

type entry = private {
  pc : int;
  mutable is_convertible : bool;
  mutable is_immutable : bool;
  mutable sq_full : int;  (** saturating in [0, 3] *)
}

type t

val create : ?entries:int -> unit -> t
(** Default 16 entries. *)

val capacity : t -> int

val lookup : t -> pc:int -> entry option
(** Find without allocating; refreshes LRU on hit. *)

val lookup_or_insert : t -> pc:int -> entry
(** On miss, inserts a fresh entry (convertible, immutable, counter 0),
    evicting the LRU entry if full. *)

val mark_not_convertible : entry -> unit

val mark_not_immutable : entry -> unit

val note_sq_full : t -> pc:int -> unit
(** Saturating increment of the SQ-full counter. *)

val note_commit : t -> pc:int -> unit
(** Decrement of the SQ-full counter on commit (floor 0). *)

val discovery_enabled : entry -> bool
(** False when the SQ-full counter is saturated or the region is marked
    non-convertible. *)

val occupancy : t -> int
