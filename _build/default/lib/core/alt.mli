(** Addresses-to-Lock Table (paper §5, Figure 7).

    Fills during discovery with every cacheline the atomic region touches,
    then drives cacheline locking on the retry. Entries are kept sorted by
    the lexicographical locking key — the directory set index — so locks are
    acquired in a deadlock-free order. Entries whose key collides (same
    directory set) form a {e lock group}: all but the last entry of a group
    carry the [conflict] bit, and the group is acquired with the combined
    probe-then-lock-the-set mechanism of the paper.

    Capacity is 32 entries; recording a 33rd distinct line overflows, which
    marks the region non-convertible. *)

type entry = private {
  line : Mem.Addr.line;
  dir_set : int;
  mutable written : bool;  (** the region stored to this line in discovery *)
  mutable needs_locking : bool;
  mutable locked : bool;
  mutable hit : bool;
  mutable conflict : bool;  (** not the last entry of its lock group *)
}

type t

val create : ?capacity:int -> dir_set_of:(Mem.Addr.line -> int) -> unit -> t

val capacity : t -> int

val size : t -> int

val reset : t -> unit
(** Empty the table for a fresh discovery. *)

val record : t -> Mem.Addr.line -> written:bool -> [ `Ok | `Overflow ]
(** Note an access. Re-recording a line merges ([written] ORs in). Returns
    [`Overflow] when a new line does not fit; the table keeps its current
    contents so the footprint seen so far is still inspectable. *)

val mem : t -> Mem.Addr.line -> bool

val lines : t -> Mem.Addr.line list
(** All recorded lines, in lock order. *)

val written_lines : t -> Mem.Addr.line list

val prepare_locking : t -> lock_all:bool -> extra:(Mem.Addr.line -> bool) -> unit
(** Set [needs_locking]: every line when [lock_all] (NS-CL); otherwise
    written lines plus lines for which [extra] holds (S-CL: CRT hits). Also
    recomputes lock-group [conflict] bits and clears [locked]/[hit]. *)

val to_lock : t -> entry list
(** Entries with [needs_locking], in lock order. *)

val entries : t -> entry list
(** All entries in lock order (inspection and tests). *)

val mark_locked : entry -> unit

val all_locked : t -> bool
(** Every entry that needs locking has been locked. *)

val lock_groups : t -> entry list list
(** Entries that need locking, grouped by directory set, in lock order. *)
