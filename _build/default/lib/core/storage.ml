type breakdown = {
  indirection_bytes : float;
  ert_bytes : float;
  alt_bytes : float;
  crt_bytes : float;
  total_bytes : float;
}

let ert_entry_bits = 1 + 64 + 1 + 1 + 2 + 4

let alt_entry_bits = 1 + 58 + 1 + 1 + 1 + 1

let crt_entry_bits = 1 + 58 + 3

let compute ?(physical_registers = 180) ?(ert_entries = 16) ?(alt_entries = 32) ?(crt_entries = 64)
    ?(alt_extra_bits = 6) ?(crt_extra_bits = 6) () =
  let bytes bits = float_of_int bits /. 8.0 in
  let indirection_bytes = bytes physical_registers in
  let ert_bytes = bytes (ert_entries * ert_entry_bits) in
  let alt_bytes = bytes (alt_entries * (alt_entry_bits + alt_extra_bits)) in
  let crt_bytes = bytes (crt_entries * (crt_entry_bits + crt_extra_bits)) in
  {
    indirection_bytes;
    ert_bytes;
    alt_bytes;
    crt_bytes;
    total_bytes = indirection_bytes +. ert_bytes +. alt_bytes +. crt_bytes;
  }

let paper = compute ()

let pp ppf b =
  Format.fprintf ppf
    "@[<v>indirection bits: %6.1f B@,ERT: %6.1f B@,ALT: %6.1f B@,CRT: %6.1f B@,total: %6.1f B@]"
    b.indirection_bytes b.ert_bytes b.alt_bytes b.crt_bytes b.total_bytes
