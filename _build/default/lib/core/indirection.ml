type t = Bytes.t

let create ~regs =
  if regs <= 0 then invalid_arg "Indirection.create: regs must be positive";
  Bytes.make regs '\000'

let regs t = Bytes.length t

let reset t = Bytes.fill t 0 (Bytes.length t) '\000'

let set t r = Bytes.set t r '\001'

let get t r = Bytes.get t r <> '\000'

let define t ~dst ~srcs =
  let tainted = List.exists (get t) srcs in
  Bytes.set t dst (if tainted then '\001' else '\000')

let define_load t ~dst = set t dst

let any_set t srcs = List.exists (get t) srcs

let count_set t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t;
  !n
