type entry = {
  pc : int;
  mutable is_convertible : bool;
  mutable is_immutable : bool;
  mutable sq_full : int;
}

type slot = { mutable e : entry option; mutable age : int }

type t = { slots : slot array; mutable tick : int }

let sq_full_max = 3 (* 2-bit saturating counter *)

let create ?(entries = 16) () =
  if entries <= 0 then invalid_arg "Ert.create: entries must be positive";
  { slots = Array.init entries (fun _ -> { e = None; age = 0 }); tick = 0 }

let capacity t = Array.length t.slots

let bump t slot =
  t.tick <- t.tick + 1;
  slot.age <- t.tick

let find_slot t pc =
  let n = Array.length t.slots in
  let rec loop i =
    if i = n then None
    else
      match t.slots.(i).e with
      | Some e when e.pc = pc -> Some t.slots.(i)
      | Some _ | None -> loop (i + 1)
  in
  loop 0

let lookup t ~pc =
  match find_slot t pc with
  | Some slot ->
      bump t slot;
      slot.e
  | None -> None

let lookup_or_insert t ~pc =
  match find_slot t pc with
  | Some slot ->
      bump t slot;
      (match slot.e with Some e -> e | None -> assert false)
  | None ->
      (* Prefer an empty slot, otherwise evict LRU. *)
      let victim = ref t.slots.(0) in
      let found_empty = ref false in
      Array.iter
        (fun s ->
          if (not !found_empty) && s.e = None then begin
            victim := s;
            found_empty := true
          end
          else if (not !found_empty) && s.age < !victim.age then victim := s)
        t.slots;
      let e = { pc; is_convertible = true; is_immutable = true; sq_full = 0 } in
      !victim.e <- Some e;
      bump t !victim;
      e

let mark_not_convertible e = e.is_convertible <- false

let mark_not_immutable e = e.is_immutable <- false

let with_entry t pc f = match find_slot t pc with Some { e = Some e; _ } -> f e | _ -> ()

let note_sq_full t ~pc = with_entry t pc (fun e -> if e.sq_full < sq_full_max then e.sq_full <- e.sq_full + 1)

let note_commit t ~pc = with_entry t pc (fun e -> if e.sq_full > 0 then e.sq_full <- e.sq_full - 1)

let discovery_enabled e = e.is_convertible && e.sq_full < sq_full_max

let occupancy t = Array.fold_left (fun n s -> match s.e with Some _ -> n + 1 | None -> n) 0 t.slots
