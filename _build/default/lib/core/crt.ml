type t = {
  sets : int;
  ways : int;
  tags : int array; (* -1 = empty *)
  age : int array;
  mutable tick : int;
}

let create ?(entries = 64) ?(ways = 8) () =
  if entries <= 0 || ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Crt.create: entries must be a positive multiple of ways";
  let sets = entries / ways in
  { sets; ways; tags = Array.make entries (-1); age = Array.make entries 0; tick = 0 }

let set_of t line = line mod t.sets

let find t line =
  let base = set_of t line * t.ways in
  let rec loop w = if w = t.ways then None else if t.tags.(base + w) = line then Some (base + w) else loop (w + 1) in
  loop 0

let insert t line =
  t.tick <- t.tick + 1;
  match find t line with
  | Some i -> t.age.(i) <- t.tick
  | None ->
      let base = set_of t line * t.ways in
      let victim = ref base in
      let found_empty = ref false in
      for w = 0 to t.ways - 1 do
        let i = base + w in
        if (not !found_empty) && t.tags.(i) = -1 then begin
          victim := i;
          found_empty := true
        end
        else if (not !found_empty) && t.age.(i) < t.age.(!victim) then victim := i
      done;
      t.tags.(!victim) <- line;
      t.age.(!victim) <- t.tick

let mem t line = find t line <> None

let remove t line =
  match find t line with
  | Some i ->
      t.tags.(i) <- -1;
      t.age.(i) <- 0
  | None -> ()

let size t = Array.fold_left (fun n tag -> if tag <> -1 then n + 1 else n) 0 t.tags

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0;
  t.tick <- 0
