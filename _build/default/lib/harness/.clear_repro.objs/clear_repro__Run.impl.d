lib/harness/run.ml: Energy List Machine Simrt
