lib/harness/experiments.ml: Clear Format Hashtbl List Machine Printf Report Run Simrt String Workloads
