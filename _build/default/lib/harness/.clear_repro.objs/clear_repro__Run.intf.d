lib/harness/run.mli: Machine
