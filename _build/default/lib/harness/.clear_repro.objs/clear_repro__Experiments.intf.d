lib/harness/experiments.mli: Machine Report Run
