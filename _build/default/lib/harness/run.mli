(** Multi-seed measurement of one (configuration, workload) pair.

    Follows the paper's protocol: run with several seeds, report the trimmed
    mean after removing the farthest outliers. *)

type t = {
  workload : string;
  preset : string;  (** "B" | "P" | "C" | "W" *)
  retries : int;  (** the retry limit the measurement used *)
  cycles : float;
  energy : float;
  aborts_per_commit : float;
  discovery_fraction : float;
      (** share of total time spent executing aborted discoveries *)
  abort_categories : (Machine.Abort.category * float) list;
      (** mean aborts per committed transaction, by category *)
  commit_mode_fractions : (Machine.Stats.commit_mode * float) list;
  first_try_ratio : float;
  single_retry_ratio : float;
  fallback_ratio : float;
  retry_breakdown : float * float * float;
      (** among retried commits: one retry / several / fallback *)
  fig1_ratio : float;
}

val measure :
  Machine.Config.t -> Machine.Workload.t -> seeds:int list -> trim:int -> t
(** One measurement at the configuration's own retry limit. *)

val measure_best_retries :
  Machine.Config.t ->
  Machine.Workload.t ->
  seeds:int list ->
  trim:int ->
  retry_choices:int list ->
  t
(** The paper's methodology: sweep the retry limit and keep the
    best-performing setting for this (configuration, application) pair. *)
