type set = (string, int ref) Hashtbl.t

let create_set () = Hashtbl.create 64

let cell set name =
  match Hashtbl.find_opt set name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add set name r;
      r

let add set name n =
  assert (n >= 0);
  let r = cell set name in
  r := !r + n

let incr set name = add set name 1

let get set name = match Hashtbl.find_opt set name with Some r -> !r | None -> 0

let to_list set =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) set []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset set = Hashtbl.reset set

let merge_into ~dst src = Hashtbl.iter (fun k r -> add dst k !r) src
