type t = { mutable state : int64; seed : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = Int64.of_int seed in
  { state = s; seed = s }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t salt =
  (* Derive the child seed from the parent's original seed, not its current
     position, so stream identities do not depend on draw order. *)
  let s = mix64 (Int64.add t.seed (Int64.mul (Int64.of_int salt) golden_gamma)) in
  { state = s; seed = s }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    (* Inverse-power sampling: cheap approximation that concentrates mass on
       low indices, adequate for generating hot spots. *)
    let u = float t 1.0 in
    let x = Float.of_int n *. (u ** (1.0 +. theta)) in
    let i = int_of_float x in
    if i >= n then n - 1 else if i < 0 then 0 else i
  end
