(** Statistical summaries over repeated simulation runs.

    The paper runs every application 10 times with different seeds and reports
    the trimmed mean after removing 3 outliers; these helpers implement that
    protocol plus the geometric mean used for the cross-benchmark average. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val trimmed_mean : trim:int -> float list -> float
(** [trimmed_mean ~trim xs] removes the [trim] values farthest from the median
    and averages the rest. If fewer than [trim + 1] values remain, it degrades
    gracefully to the plain mean. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val median : float list -> float

val stddev : float list -> float

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)
