(** Deterministic pseudo-random number generation.

    The simulator must be reproducible across runs and platforms, so it never
    uses [Stdlib.Random]. This module implements splitmix64, a small, fast,
    high-quality generator with a 64-bit state that supports cheap stream
    splitting — each simulated thread gets its own independent stream derived
    from the run seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> int -> t
(** [split t salt] derives an independent stream from [t]'s seed and [salt]
    without disturbing [t]'s own sequence. Used to give each simulated thread
    its own generator. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples from a Zipf-like distribution over
    [\[0, n)] with skew [theta] (0 = uniform; larger = more skewed). Used to
    create hot-spot access patterns in high-contention workloads. *)
