lib/simrt/event_queue.mli:
