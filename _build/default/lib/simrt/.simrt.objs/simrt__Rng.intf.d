lib/simrt/rng.mli:
