lib/simrt/counter.mli:
