lib/simrt/rng.ml: Array Float Int64
