lib/simrt/event_queue.ml: Array
