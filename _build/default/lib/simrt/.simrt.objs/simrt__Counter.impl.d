lib/simrt/counter.ml: Hashtbl List String
