lib/simrt/summary.ml: Array List
