lib/simrt/summary.mli:
