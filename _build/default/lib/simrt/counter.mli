(** Named event counters.

    A [Counter.set] is a bag of monotonically increasing counters used for
    statistics and energy accounting. Counters are created on first use so
    call sites stay terse. *)

type set

val create_set : unit -> set

val incr : set -> string -> unit
(** Add 1 to the named counter. *)

val add : set -> string -> int -> unit
(** Add an arbitrary non-negative amount. *)

val get : set -> string -> int
(** Current value; 0 if never touched. *)

val to_list : set -> (string * int) list
(** All counters, sorted by name. *)

val reset : set -> unit

val merge_into : dst:set -> set -> unit
(** Accumulate every counter of the source into [dst]. *)
