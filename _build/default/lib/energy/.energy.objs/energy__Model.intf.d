lib/energy/model.mli: Simrt
