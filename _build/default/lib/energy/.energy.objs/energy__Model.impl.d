lib/energy/model.ml: Simrt
