module Counter = Simrt.Counter

type costs = {
  static_per_core_cycle : float;
  instr : float;
  l1_access : float;
  l2_access : float;
  l3_access : float;
  mem_access : float;
  coherence_msg : float;
  abort : float;
}

let default =
  {
    static_per_core_cycle = 2.0;
    instr = 8.0;
    l1_access = 10.0;
    l2_access = 40.0;
    l3_access = 150.0;
    mem_access = 2000.0;
    coherence_msg = 25.0;
    abort = 400.0;
  }

let dynamic costs set =
  let c name = float_of_int (Counter.get set name) in
  (costs.instr *. c "instrs")
  +. (costs.l1_access *. c "l1_hit")
  +. (costs.l2_access *. c "l2_hit")
  +. (costs.l3_access *. c "l3_hit")
  +. (costs.mem_access *. c "mem_access")
  +. (costs.coherence_msg *. c "coh_msgs")
  +. (costs.abort *. c "aborts")

let static costs ~cores ~cycles = costs.static_per_core_cycle *. float_of_int cores *. float_of_int cycles

let total costs ~cores ~cycles set = static costs ~cores ~cycles +. dynamic costs set
