(** Event-based energy model (McPAT substitution).

    McPAT derives per-event energies from circuit models; here the per-event
    costs are fixed constants in picojoules, chosen to match the relative
    magnitudes McPAT reports for a 22 nm out-of-order core (an ALU operation
    is a few pJ, cache accesses grow with level, a DRAM access is two orders
    of magnitude more, and static power burns per cycle per core). The
    paper's energy result rests on two effects this model captures exactly:
    shorter runtime cuts static energy, and fewer aborted instructions cut
    dynamic energy. *)

type costs = {
  static_per_core_cycle : float;  (** pJ per cycle per core *)
  instr : float;  (** dynamic pJ per retired or wasted instruction *)
  l1_access : float;
  l2_access : float;
  l3_access : float;
  mem_access : float;
  coherence_msg : float;
  abort : float;  (** checkpoint restore + pipeline flush *)
}

val default : costs

val dynamic : costs -> Simrt.Counter.set -> float
(** Dynamic energy in pJ from the run's event counters (uses the
    [instrs], [wasted_instrs], [l1_hit], [l2_hit], [l3_hit], [mem_access],
    [coh_msgs] and [aborts] counters). *)

val static : costs -> cores:int -> cycles:int -> float

val total : costs -> cores:int -> cycles:int -> Simrt.Counter.set -> float
