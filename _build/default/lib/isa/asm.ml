type label = int

(* Emitted instructions hold label ids in branch targets; [assemble] patches
   them to instruction indices. *)
type t = {
  mutable instrs : Instr.t list; (* reversed *)
  mutable count : int;
  mutable next_label : int;
  positions : (label, int) Hashtbl.t;
}

let create () = { instrs = []; count = 0; next_label = 0; positions = Hashtbl.create 8 }

let new_label t =
  let l = t.next_label in
  t.next_label <- t.next_label + 1;
  l

let place t l =
  if Hashtbl.mem t.positions l then invalid_arg "Asm.place: label already placed";
  Hashtbl.add t.positions l t.count

let emit t i =
  t.instrs <- i :: t.instrs;
  t.count <- t.count + 1

let ld t ~dst ~base ?(off = 0) ?(region = "") () = emit t (Instr.Ld { dst; base; off; region })

let st t ~base ?(off = 0) ~src ?(region = "") () = emit t (Instr.St { base; off; src; region })

let mov t ~dst src = emit t (Instr.Mov { dst; src })

let binop t op ~dst a b = emit t (Instr.Binop { op; dst; a; b })

let add t ~dst a b = binop t Instr.Add ~dst a b

let sub t ~dst a b = binop t Instr.Sub ~dst a b

let mul t ~dst a b = binop t Instr.Mul ~dst a b

let brc t cond a b target = emit t (Instr.Br { cond; a; b; target })

let jmp t target = emit t (Instr.Jmp target)

let nop t = emit t Instr.Nop

let halt t = emit t Instr.Halt

let length t = t.count

let assemble t =
  let resolve l =
    match Hashtbl.find_opt t.positions l with
    | Some pos -> pos
    | None -> invalid_arg (Printf.sprintf "Asm.assemble: label %d never placed" l)
  in
  let body =
    List.rev_map
      (fun instr ->
        match instr with
        | Instr.Br b -> Instr.Br { b with target = resolve b.target }
        | Instr.Jmp l -> Instr.Jmp (resolve l)
        | Instr.Ld _ | Instr.St _ | Instr.Mov _ | Instr.Binop _ | Instr.Nop | Instr.Halt -> instr)
      t.instrs
    |> Array.of_list
  in
  match Instr.validate body with
  | Ok () -> body
  | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
