lib/isa/program.mli: Asm Format Instr
