lib/isa/program.ml: Array Asm Format Instr List Printf String
