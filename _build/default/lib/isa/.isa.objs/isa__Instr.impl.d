lib/isa/instr.ml: Array Format Printf
