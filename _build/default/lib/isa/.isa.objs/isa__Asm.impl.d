lib/isa/asm.ml: Array Hashtbl Instr List Printf
