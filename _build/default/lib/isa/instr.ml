type reg = int

let num_regs = 32

type operand = Reg of reg | Imm of int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max

type cond = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Ld of { dst : reg; base : operand; off : int; region : string }
  | St of { base : operand; off : int; src : operand; region : string }
  | Mov of { dst : reg; src : operand }
  | Binop of { op : binop; dst : reg; a : operand; b : operand }
  | Br of { cond : cond; a : operand; b : operand; target : int }
  | Jmp of int
  | Nop
  | Halt

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Min -> min a b
  | Max -> max a b

let eval_cond cond a b =
  match cond with Eq -> a = b | Ne -> a <> b | Lt -> a < b | Le -> a <= b | Gt -> a > b | Ge -> a >= b

let base_cost = function
  | Ld _ | St _ -> 1 (* memory latency charged separately *)
  | Mov _ | Nop -> 1
  | Binop { op = Mul; _ } -> 3
  | Binop { op = Div | Rem; _ } -> 20
  | Binop _ -> 1
  | Br _ | Jmp _ -> 1
  | Halt -> 0

let is_mem = function Ld _ | St _ -> true | Mov _ | Binop _ | Br _ | Jmp _ | Nop | Halt -> false

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "#%d" i

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Min -> "min"
  | Max -> "max"

let cond_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp ppf = function
  | Ld { dst; base; off; region } ->
      Format.fprintf ppf "ld r%d, [%a + %d]%s" dst pp_operand base off
        (if region = "" then "" else " ; " ^ region)
  | St { base; off; src; region } ->
      Format.fprintf ppf "st [%a + %d], %a%s" pp_operand base off pp_operand src
        (if region = "" then "" else " ; " ^ region)
  | Mov { dst; src } -> Format.fprintf ppf "mov r%d, %a" dst pp_operand src
  | Binop { op; dst; a; b } ->
      Format.fprintf ppf "%s r%d, %a, %a" (binop_name op) dst pp_operand a pp_operand b
  | Br { cond; a; b; target } ->
      Format.fprintf ppf "b%s %a, %a -> %d" (cond_name cond) pp_operand a pp_operand b target
  | Jmp target -> Format.fprintf ppf "jmp %d" target
  | Nop -> Format.fprintf ppf "nop"
  | Halt -> Format.fprintf ppf "halt"

let validate body =
  let n = Array.length body in
  let check_reg r = r >= 0 && r < num_regs in
  let check_operand = function Reg r -> check_reg r | Imm _ -> true in
  let check_target t = t >= 0 && t < n in
  let has_halt = ref false in
  let err = ref None in
  Array.iteri
    (fun i instr ->
      if !err = None then begin
        let bad msg = err := Some (Printf.sprintf "instruction %d: %s" i msg) in
        match instr with
        | Ld { dst; base; _ } ->
            if not (check_reg dst) then bad "bad destination register"
            else if not (check_operand base) then bad "bad base operand"
        | St { base; src; _ } ->
            if not (check_operand base) then bad "bad base operand"
            else if not (check_operand src) then bad "bad source operand"
        | Mov { dst; src } ->
            if not (check_reg dst) then bad "bad destination register"
            else if not (check_operand src) then bad "bad source operand"
        | Binop { dst; a; b; _ } ->
            if not (check_reg dst) then bad "bad destination register"
            else if not (check_operand a && check_operand b) then bad "bad operand"
        | Br { a; b; target; _ } ->
            if not (check_operand a && check_operand b) then bad "bad operand"
            else if not (check_target target) then bad "branch target out of range"
        | Jmp target -> if not (check_target target) then bad "jump target out of range"
        | Nop -> ()
        | Halt -> has_halt := true
      end)
    body;
  match !err with
  | Some e -> Error e
  | None -> if !has_halt then Ok () else Error "body contains no halt"
