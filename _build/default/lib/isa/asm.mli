(** Assembler eDSL for writing atomic-region bodies.

    Workloads build AR bodies through this mutable buffer: emit instructions,
    create and place labels, then {!assemble} resolves label references into
    instruction indices and validates the result.

    {[
      let b = Asm.create () in
      let loop = Asm.new_label b in
      Asm.mov b ~dst:1 (Imm 0);
      Asm.place b loop;
      Asm.ld b ~dst:2 ~base:(Reg 0) ~region:"node.next" ();
      Asm.brc b Ne (Reg 2) (Imm 0) loop;
      Asm.halt b;
      let body = Asm.assemble b
    ]} *)

type t

type label

val create : unit -> t

val new_label : t -> label

val place : t -> label -> unit
(** Bind the label to the next emitted instruction. A label must be placed
    exactly once before {!assemble}. *)

val ld : t -> dst:Instr.reg -> base:Instr.operand -> ?off:int -> ?region:string -> unit -> unit

val st : t -> base:Instr.operand -> ?off:int -> src:Instr.operand -> ?region:string -> unit -> unit

val mov : t -> dst:Instr.reg -> Instr.operand -> unit

val binop : t -> Instr.binop -> dst:Instr.reg -> Instr.operand -> Instr.operand -> unit

val add : t -> dst:Instr.reg -> Instr.operand -> Instr.operand -> unit

val sub : t -> dst:Instr.reg -> Instr.operand -> Instr.operand -> unit

val mul : t -> dst:Instr.reg -> Instr.operand -> Instr.operand -> unit

val brc : t -> Instr.cond -> Instr.operand -> Instr.operand -> label -> unit
(** Conditional branch to a label. *)

val jmp : t -> label -> unit

val nop : t -> unit

val halt : t -> unit

val length : t -> int
(** Instructions emitted so far. *)

val assemble : t -> Instr.t array
(** Resolve labels and validate. Raises [Invalid_argument] on unplaced labels
    or validation failure. The buffer must not be reused afterwards. *)
