(** Atomic-region containers.

    An {!ar} is one atomic region: a named, validated mini-ISA body. Its
    [id] plays the role of the region's program counter — it is the key the
    ERT uses to recognise re-invocations of the same region. *)

type ar = private { id : int; name : string; body : Instr.t array }

val make_ar : id:int -> name:string -> Instr.t array -> ar
(** Validates the body; raises [Invalid_argument] if ill-formed. *)

val build_ar : id:int -> name:string -> (Asm.t -> unit) -> ar
(** Convenience: run the builder function on a fresh assembler buffer. *)

val instruction_count : ar -> int

val store_count : ar -> int
(** Static number of store instructions in the body (not dynamic). *)

val regions_written : ar -> string list
(** Region tags of all stores, deduplicated, sorted. *)

val regions_read : ar -> string list

val pp : Format.formatter -> ar -> unit
