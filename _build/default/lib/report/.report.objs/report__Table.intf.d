lib/report/table.mli:
