lib/report/csv.mli: Table
