lib/report/csv.ml: Buffer Fun List String Table
