(** CSV export of harness tables, for plotting the figures externally. *)

val escape : string -> string
(** RFC-4180-style quoting: fields containing commas, quotes or newlines are
    wrapped in double quotes with inner quotes doubled. *)

val of_rows : string list list -> string
(** Render rows (first row = header) as CSV text. *)

val of_table : Table.t -> string
(** Header + data rows of a harness table (separators dropped). *)

val save : path:string -> Table.t -> unit
(** Write [of_table] to a file. *)
