let escape field =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') field in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let of_rows rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map escape row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let of_table t = of_rows (Table.header t :: Table.rows t)

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_table t))
