type row = Cells of string list | Separator

type t = { title : string; columns : string list; mutable rows : row list (* reversed *) }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let acc = Array.of_list (List.map String.length t.columns) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells -> List.iteri (fun i c -> acc.(i) <- max acc.(i) (String.length c)) cells)
    t.rows;
  acc

let pad s w = s ^ String.make (w - String.length s) ' '

let to_string t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf (pad c w.(i)))
      cells;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Array.iteri
      (fun i width ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (width + 2) '-'))
      w;
    Buffer.add_string buf "+\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  line t.columns;
  rule ();
  List.iter (function Separator -> rule () | Cells cells -> line cells) (List.rev t.rows);
  rule ();
  Buffer.contents buf

let print t = print_string (to_string t)

let title t = t.title

let header t = t.columns

let rows t =
  List.rev t.rows
  |> List.filter_map (function Separator -> None | Cells cells -> Some cells)

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
