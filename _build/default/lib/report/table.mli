(** ASCII tables for the benchmark harness output.

    Every figure/table of the paper is regenerated as rows printed by this
    module, so the harness output is diffable and easy to eyeball against
    the paper's plots. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must match the column count; raises [Invalid_argument] otherwise. *)

val add_separator : t -> unit

val print : t -> unit
(** To stdout, with aligned columns. *)

val to_string : t -> string

val title : t -> string

val header : t -> string list
(** The column names. *)

val rows : t -> string list list
(** Data rows in insertion order, separators dropped (CSV export). *)

val f2 : float -> string
(** Two-decimal rendering. *)

val f3 : float -> string

val pct : float -> string
(** [0.354] -> ["35.4%"]. *)
