(** mwobject: four additions to four different words of the same cacheline
    (paper's multi-word-object benchmark, after Feldman et al.'s wait-free
    MCAS use case).

    A single immutable AR that every thread hits on the same line — the
    worst case for speculative retries and the best case for NS-CL. *)

val make : ?objects:int -> unit -> Machine.Workload.t
(** [objects] independent multi-word objects (default 2; fewer = hotter). *)

val workload : Machine.Workload.t
