(** genome: segment-deduplication and assembly kernel (STAMP genome).

    Phase 1 deduplicates segments through a chained hash set; phase 2 links
    unique segments into chains. Every AR chases pointers that other ARs
    rewrite — five mutable ARs, matching paper Table 1 (0/0/5). *)

val make : ?buckets:int -> ?segment_range:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
