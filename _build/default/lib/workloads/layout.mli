(** Bump allocator for laying out a workload's shared data structures.

    Layout happens when the workload value is constructed (it is a pure
    function of the workload parameters), so AR bodies can embed the
    resulting addresses as immediates; [setup] later fills the same addresses
    with initial data. Line-aligned allocation is the default — a node per
    cacheline — because conflict detection, cacheline locking and the ALT all
    work at line granularity and false sharing would blur every experiment
    (the mwobject benchmark, which targets intra-line sharing, asks for
    packed allocation explicitly). *)

type t

val create : ?base:Mem.Addr.t -> unit -> t
(** Allocation starts at [base] (default: word 64, keeping line 0 clear for
    the conceptual fallback-lock line). *)

val alloc_line : t -> Mem.Addr.t
(** One fresh cacheline; returns its first word address. *)

val alloc_lines : t -> int -> Mem.Addr.t
(** [n] consecutive cachelines. *)

val alloc_words : t -> int -> Mem.Addr.t
(** Packed words, no alignment. *)

val used_words : t -> int
(** High-water mark, for sizing the backing store. *)
