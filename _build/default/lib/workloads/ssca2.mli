(** ssca2: graph-construction kernel (STAMP SSCA2 kernel 1).

    Tiny atomic regions appending edges to per-node adjacency arrays: the
    degree increment and the edge write have pre-computed addresses
    (immutable), and the global statistics update goes through the read-only
    graph descriptor (likely immutable) — paper Table 1's 2/1/0 split. *)

val make : ?nodes:int -> ?slots_per_node:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
