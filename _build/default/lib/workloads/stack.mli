(** stack: Treiber-style linked stack.

    [push] is statically immutable — it loads the top pointer only as
    {e data} for the new node's next field, so its two-line footprint never
    moves across retries. [pop] dereferences the loaded top pointer, which
    other ARs rewrite: mutable. *)

val make : ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
