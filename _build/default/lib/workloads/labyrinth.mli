(** labyrinth: grid-routing kernel (STAMP labyrinth).

    The driver plans a random walk through the grid and writes it to a
    thread-private path buffer; the AR then atomically claims every cell of
    the path (check-then-write over dozens of grid lines). The large,
    branch-on-grid footprints are all mutable and frequently overflow the
    ALT, so labyrinth runs mostly speculatively or in fallback — the paper's
    observed behaviour. Three ARs: claim, erase, validate. *)

val make : ?grid:int -> ?path_len:int -> unit -> Machine.Workload.t
(** [grid] side length (default 24); [path_len] cells per route
    (default 18). *)

val workload : Machine.Workload.t
