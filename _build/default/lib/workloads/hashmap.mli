(** hashmap: chained hash map. The bucket is hashed outside the AR (the
    driver passes the bucket-head address), but insert/lookup/remove all
    chase chain pointers that other ARs rewrite — three mutable ARs, as in
    paper Table 1. Node layout: [\[key; value; next\]], one line per node;
    one bucket head per line. *)

val make : ?buckets:int -> ?key_range:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
