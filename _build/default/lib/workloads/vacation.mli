(** vacation: travel-reservation kernel (STAMP vacation).

    Resource tables are per-resource chains of reservation records;
    [reserve] and [cancel] traverse them (mutable), while customer-profile
    updates go through the read-only customer directory (likely immutable) —
    paper Table 1's 0/1/2 split. [high] uses fewer resources and a hotter
    mix than [low]. *)

val make : ?resources:int -> ?chain:int -> name:string -> unit -> Machine.Workload.t

val high : Machine.Workload.t

val low : Machine.Workload.t
