(** bayes: Bayesian-network structure learning kernel (STAMP bayes).

    The richest AR population of the suite: fourteen static regions over a
    task ring, per-variable parent lists and per-variable score records.
    Score/count/progress updates resolve records through read-only
    directories (five likely-immutable ARs); everything touching the parent
    lists or the ring is mutable (nine ARs) — paper Table 1's 0/5/9 split. *)

val make : ?vars:int -> ?ring_capacity:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
