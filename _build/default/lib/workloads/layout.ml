type t = { mutable next : Mem.Addr.t }

let words_per_line = Mem.Addr.words_per_line

let create ?(base = 64) () = { next = base }

let align_line t =
  let rem = t.next mod words_per_line in
  if rem <> 0 then t.next <- t.next + (words_per_line - rem)

let alloc_lines t n =
  align_line t;
  let a = t.next in
  t.next <- t.next + (n * words_per_line);
  a

let alloc_line t = alloc_lines t 1

let alloc_words t n =
  let a = t.next in
  t.next <- t.next + n;
  a

let used_words t = t.next
