(** deque: bounded circular double-ended queue.

    Head and tail indices live on separate cachelines so opposite-end
    operations only conflict through the slot array. Both ARs compute slot
    addresses from a loaded index that other ARs increment, so both
    footprints are mutable. *)

val make : ?capacity:int -> unit -> Machine.Workload.t
(** [capacity] slots (default 64, one per line). *)

val workload : Machine.Workload.t
