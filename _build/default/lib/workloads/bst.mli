(** bst: unbalanced binary search tree with insert / contains / lazy delete.

    All three ARs traverse node links that other ARs rewrite, so their
    footprints are mutable (paper Table 1 classifies all bst ARs mutable);
    while the tree is small they still fit the ALT and can retry under S-CL,
    the behaviour the paper points out for bst in Figure 12. Deletion is
    lazy (an [alive] flag), the standard concurrent-BST idiom — structural
    unlinks would turn the left spine into a global hotspot. Node layout:
    one line per node, [\[key; left; right; alive\]]. *)

val make : ?initial:int -> ?key_range:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t
(** [initial] keys preloaded (default 96), [key_range] key universe
    (default 1024), [pool_per_thread] pre-allocated nodes per thread
    (default 512; inserts beyond that degrade to lookups). *)

val workload : Machine.Workload.t
