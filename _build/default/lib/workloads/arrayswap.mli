(** arrayswap: swap two random array elements inside an atomic region.

    The canonical immutable-footprint benchmark (paper Listing 1): both
    element addresses are computed outside the region, so retries always
    touch the same cachelines and NS-CL applies. Two ARs: [swap] and
    [add_pair]. Elements live one per cacheline; contention is controlled by
    the slot count. *)

val make : ?slots:int -> ?theta:float -> unit -> Machine.Workload.t
(** [slots] array size (default 48 — small enough that 32 threads collide
    often); [theta] Zipf skew for slot selection (default 0.4). *)

val workload : Machine.Workload.t
(** [make ()] with defaults. *)
