lib/workloads/queue.mli: Machine
