lib/workloads/hashmap.ml: Array Common Isa Layout Machine Mem Simrt
