lib/workloads/intruder.mli: Machine
