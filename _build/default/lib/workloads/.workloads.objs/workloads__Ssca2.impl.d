lib/workloads/ssca2.ml: Array Common Isa Layout Machine Mem Simrt
