lib/workloads/queue.ml: Array Common Isa Layout Machine Mem Simrt
