lib/workloads/common.mli: Isa Layout Mem
