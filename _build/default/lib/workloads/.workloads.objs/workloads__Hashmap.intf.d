lib/workloads/hashmap.mli: Machine
