lib/workloads/labyrinth.ml: Array Common Hashtbl Isa Layout Machine Mem Simrt
