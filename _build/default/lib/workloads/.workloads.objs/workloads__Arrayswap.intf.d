lib/workloads/arrayswap.mli: Machine
