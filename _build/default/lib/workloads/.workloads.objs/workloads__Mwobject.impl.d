lib/workloads/mwobject.ml: Array Common Isa Layout List Machine Mem Simrt
