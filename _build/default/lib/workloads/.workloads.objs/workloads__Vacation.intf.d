lib/workloads/vacation.mli: Machine
