lib/workloads/layout.ml: Mem
