lib/workloads/kmeans.ml: Array Common Layout Machine Mem Simrt
