lib/workloads/common.ml: Array Isa Layout List
