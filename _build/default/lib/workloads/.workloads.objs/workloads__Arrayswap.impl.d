lib/workloads/arrayswap.ml: Common Isa Layout Machine Mem Simrt
