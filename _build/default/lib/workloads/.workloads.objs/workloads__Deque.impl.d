lib/workloads/deque.ml: Array Common Isa Layout Machine Mem Simrt
