lib/workloads/kmeans.mli: Machine
