lib/workloads/ssca2.mli: Machine
