lib/workloads/labyrinth.mli: Machine
