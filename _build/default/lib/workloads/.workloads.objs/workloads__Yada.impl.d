lib/workloads/yada.ml: Array Common Isa Layout List Machine Mem Simrt
