lib/workloads/yada.mli: Machine
