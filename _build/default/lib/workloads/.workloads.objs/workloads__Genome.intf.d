lib/workloads/genome.mli: Machine
