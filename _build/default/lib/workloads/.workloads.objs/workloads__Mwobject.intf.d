lib/workloads/mwobject.mli: Machine
