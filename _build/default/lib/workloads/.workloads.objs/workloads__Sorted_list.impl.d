lib/workloads/sorted_list.ml: Array Common Isa Layout List Machine Mem Simrt
