lib/workloads/bitcoin.ml: Array Common Isa Layout Machine Mem Simrt
