lib/workloads/bst.ml: Array Common Isa Layout Machine Mem Simrt
