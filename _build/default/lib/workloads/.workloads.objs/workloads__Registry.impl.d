lib/workloads/registry.ml: Arrayswap Bayes Bitcoin Bst Deque Genome Hashmap Intruder Kmeans Labyrinth List Machine Mwobject Queue Sorted_list Ssca2 Stack Vacation Yada
