lib/workloads/bst.mli: Machine
