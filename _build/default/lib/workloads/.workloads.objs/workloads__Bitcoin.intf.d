lib/workloads/bitcoin.mli: Machine
