lib/workloads/vacation.ml: Array Common Isa Layout Machine Mem Simrt
