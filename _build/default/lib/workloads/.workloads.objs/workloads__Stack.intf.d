lib/workloads/stack.mli: Machine
