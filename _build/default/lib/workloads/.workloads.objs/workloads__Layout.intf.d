lib/workloads/layout.mli: Mem
