lib/workloads/sorted_list.mli: Machine
