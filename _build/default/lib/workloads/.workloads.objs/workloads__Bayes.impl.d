lib/workloads/bayes.ml: Array Common Isa Layout Machine Mem Simrt
