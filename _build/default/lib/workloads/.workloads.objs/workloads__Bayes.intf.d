lib/workloads/bayes.mli: Machine
