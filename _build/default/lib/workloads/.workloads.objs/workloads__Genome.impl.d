lib/workloads/genome.ml: Array Common Isa Layout Machine Mem Simrt
