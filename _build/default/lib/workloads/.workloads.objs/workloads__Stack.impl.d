lib/workloads/stack.ml: Array Common Isa Layout Machine Mem Simrt
