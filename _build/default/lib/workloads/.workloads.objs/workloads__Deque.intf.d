lib/workloads/deque.mli: Machine
