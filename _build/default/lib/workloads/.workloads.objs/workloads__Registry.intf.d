lib/workloads/registry.mli: Machine
