lib/workloads/intruder.ml: Array Common Isa Layout Machine Mem Simrt
