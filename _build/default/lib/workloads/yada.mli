(** yada: Delaunay-refinement kernel (STAMP yada).

    Triangles carry a quality score and three neighbour links; a shared work
    ring distributes candidate triangles. Five mutable ARs (ring ops and
    neighbour-chasing updates) plus one immutable global counter — paper
    Table 1's 1/0/5 split over six ARs. *)

val make : ?triangles:int -> ?ring_capacity:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
