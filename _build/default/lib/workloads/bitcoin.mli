(** bitcoin: transfers between wallets through a read-only user table
    (paper Listing 2).

    The single AR resolves both wallet pointers through the [users]
    directory — an indirection, but through data no AR ever writes, so the
    footprint is {e likely immutable}: retries with the same inputs touch
    the same lines, and S-CL commits them on the first retry. *)

val make : ?wallets:int -> ?theta:float -> unit -> Machine.Workload.t
(** [wallets] (default 64); [theta] Zipf skew of wallet popularity
    (default 0.6, modelling hot exchange wallets). *)

val workload : Machine.Workload.t
