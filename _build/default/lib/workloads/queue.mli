(** queue: Michael–Scott-style linked queue with a permanent sentinel.

    Enqueue chases the tail pointer, dequeue advances the head pointer; both
    ARs dereference pointers that other ARs rewrite — mutable footprints. *)

val make : ?pool_per_thread:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
