(** All benchmarks, in the paper's presentation order (data structures first,
    then STAMP). *)

val all : Machine.Workload.t list

val data_structures : Machine.Workload.t list

val stamp : Machine.Workload.t list

val find : string -> Machine.Workload.t
(** By name; raises [Not_found]. *)

val names : string list
