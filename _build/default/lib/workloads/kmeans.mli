(** kmeans: concurrent centroid accumulation (STAMP kmeans kernel).

    Threads fold points into per-cluster accumulators. The cluster is chosen
    outside the AR (the assignment step), so the only indirection is through
    the read-only centre directory: two likely-immutable ARs plus one
    immutable global-delta counter, matching paper Table 1 (1/2/0).

    [high_contention] (kmeans-h) uses few clusters; kmeans-l uses many. *)

val make : ?clusters:int -> name:string -> unit -> Machine.Workload.t

val high : Machine.Workload.t
(** kmeans-h: 6 clusters. *)

val low : Machine.Workload.t
(** kmeans-l: 48 clusters. *)
