(** sorted-list: singly linked sorted list (paper Listing 3).

    [count_matching] walks the whole list, [insert] walks to the insertion
    point — both mutable footprints through [list.next]. [update_stats] is
    the immutable third AR: a plain counter update at a pre-computed
    address. *)

val make : ?initial:int -> ?key_range:int -> ?pool_per_thread:int -> unit -> Machine.Workload.t
(** [initial] preloaded keys (default 10), [key_range] key universe and thus
    maximum list length (default 24 — traversal footprints hover around the
    ALT capacity, so conversion eligibility is exercised both ways). *)

val workload : Machine.Workload.t
