(** intruder: network-intrusion-detection kernel (STAMP intruder).

    A shared fragment ring feeds per-flow reassembly state. [pop_fragment]
    dequeues and scans a whole fragment payload — a comparatively large,
    mutable AR (the paper singles intruder out for its large-but-convertible
    regions); the flow and detector updates go through read-only directories
    (likely immutable). Table 1 split: 0/2/1. *)

val make : ?ring_capacity:int -> ?flows:int -> unit -> Machine.Workload.t

val workload : Machine.Workload.t
