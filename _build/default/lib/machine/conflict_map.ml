type entry = { mutable readers : int; mutable writers : int }

type t = { cores : int; map : (Mem.Addr.line, entry) Hashtbl.t }

let create ~cores = { cores; map = Hashtbl.create 1024 }

let entry t line =
  match Hashtbl.find_opt t.map line with
  | Some e -> e
  | None ->
      let e = { readers = 0; writers = 0 } in
      Hashtbl.add t.map line e;
      e

let bit core = 1 lsl core

let add_reader t ~core line =
  let e = entry t line in
  e.readers <- e.readers lor bit core

let add_writer t ~core line =
  let e = entry t line in
  e.writers <- e.writers lor bit core

let remove_core t ~core ~lines =
  let mask = lnot (bit core) in
  List.iter
    (fun line ->
      match Hashtbl.find_opt t.map line with
      | None -> ()
      | Some e ->
          e.readers <- e.readers land mask;
          e.writers <- e.writers land mask;
          if e.readers = 0 && e.writers = 0 then Hashtbl.remove t.map line)
    lines

let readers t line = match Hashtbl.find_opt t.map line with Some e -> e.readers | None -> 0

let writers t line = match Hashtbl.find_opt t.map line with Some e -> e.writers | None -> 0

let cores_of t mask ~excluding =
  let rec loop c acc = if c < 0 then acc else loop (c - 1) (if mask land (1 lsl c) <> 0 && c <> excluding then c :: acc else acc) in
  loop (t.cores - 1) []

let conflicting_readers t ~core line = cores_of t (readers t line) ~excluding:core

let conflicting_writers t ~core line = cores_of t (writers t line) ~excluding:core

let clear t = Hashtbl.reset t.map
