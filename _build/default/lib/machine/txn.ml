type t = {
  read_set : (Mem.Addr.line, unit) Hashtbl.t;
  write_set : (Mem.Addr.line, unit) Hashtbl.t;
  buffer : (Mem.Addr.t, int) Hashtbl.t;
  mutable log : (Mem.Addr.t * int) list; (* program order, reversed *)
  mutable stores : int;
  mutable active : bool;
  mutable power : bool;
}

let create () =
  {
    read_set = Hashtbl.create 64;
    write_set = Hashtbl.create 64;
    buffer = Hashtbl.create 64;
    log = [];
    stores = 0;
    active = false;
    power = false;
  }

let reset t =
  Hashtbl.reset t.read_set;
  Hashtbl.reset t.write_set;
  Hashtbl.reset t.buffer;
  t.log <- [];
  t.stores <- 0;
  t.active <- false;
  t.power <- false

let active t = t.active

let start t =
  reset t;
  t.active <- true

let read_line t line = Hashtbl.replace t.read_set line ()

let write_line t line = Hashtbl.replace t.write_set line ()

let in_read_set t line = Hashtbl.mem t.read_set line

let in_write_set t line = Hashtbl.mem t.write_set line

let in_either_set t line = in_read_set t line || in_write_set t line

let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let read_set t = keys t.read_set

let write_set t = keys t.write_set

let footprint t =
  let all = Hashtbl.copy t.read_set in
  Hashtbl.iter (fun k () -> Hashtbl.replace all k ()) t.write_set;
  keys all

let footprint_size t =
  let extra = Hashtbl.fold (fun k () n -> if Hashtbl.mem t.read_set k then n else n + 1) t.write_set 0 in
  Hashtbl.length t.read_set + extra

let buffer_store t addr v =
  Hashtbl.replace t.buffer addr v;
  t.log <- (addr, v) :: t.log;
  t.stores <- t.stores + 1

let forwarded t addr = Hashtbl.find_opt t.buffer addr

let store_count t = t.stores

let drain t store =
  let ordered = List.rev t.log in
  List.iter (fun (addr, v) -> Mem.Store.write store addr v) ordered;
  List.length ordered

let power t = t.power

let set_power t p = t.power <- p
