(** Run statistics backing every figure of the evaluation. *)

type commit_mode = Speculative | Scl | Nscl | Fallback_mode

val commit_mode_name : commit_mode -> string

val all_commit_modes : commit_mode list

type t

val create : unit -> t

val counters : t -> Simrt.Counter.set
(** Low-level event counters (cache hits, coherence messages, ...) shared
    with the memory hierarchy and the energy model. *)

val note_commit : ?ar:string -> t -> mode:commit_mode -> retries:int -> unit
(** [retries] is the number of aborted attempts that preceded the commit;
    [ar] attributes the commit to a static atomic region. *)

val commits_for_ar : t -> string -> int
(** Commits attributed to the named atomic region. *)

val note_abort : t -> Abort.cause -> unit

val note_instr : t -> unit

val note_wasted_instr : t -> unit
(** Instruction executed in an attempt that later aborted. *)

val note_failed_discovery_cycles : t -> int -> unit

val note_first_abort : t -> footprint_stable:bool -> unit
(** A dynamic AR invocation aborted its first attempt; [footprint_stable]
    records whether the retry touched exactly the same (≤ ALT capacity)
    lines — the Figure 1 numerator. *)

val set_total_cycles : t -> int -> unit

val add_busy_cycles : t -> int -> unit

(** {1 Derived metrics} *)

val commits : t -> int

val commits_in_mode : t -> commit_mode -> int

val aborts : t -> int

val aborts_with_cause : t -> Abort.cause -> int

val aborts_in_category : t -> Abort.category -> int

val aborts_per_commit : t -> float

val total_cycles : t -> int

val failed_discovery_cycles : t -> int

val instrs : t -> int

val wasted_instrs : t -> int

val commits_with_retries : t -> int -> int
(** Non-fallback commits that needed exactly [n] counted retries. *)

val retry_breakdown : t -> float * float * float
(** Among commits that needed at least one retry: fraction committing after
    exactly one retry, after two or more, and in fallback (Figure 13). *)

val first_try_ratio : t -> float
(** Fraction of all commits that succeeded with no retry. *)

val single_retry_ratio : t -> float
(** Fraction of all commits that needed exactly one retry. *)

val fallback_ratio : t -> float

val fig1_ratio : t -> float
(** Of the AR invocations that aborted their first attempt, the fraction
    whose footprint stayed within the ALT and did not change on the retry. *)

val merge : t list -> t
(** Combine per-run statistics (summing counters and histogram buckets;
    total cycles are summed — callers normally merge per-core stats of one
    run, where total cycles are set once at the end). *)
