type kind =
  | Begin_attempt of { attempt : int; mode : string }
  | Enter_failed_mode
  | Converted of string
  | Locked of Mem.Addr.line
  | Commit of { mode : string; retries : int }
  | Aborted of Abort.cause
  | Stalled of Mem.Addr.line

type event = { time : int; core : int; ar : string; kind : kind }

type t = { ring : event option array; mutable next : int; mutable total : int }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time ~core ~ar kind =
  t.ring.(t.next) <- Some { time; core; ar; kind };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let events t =
  let n = Array.length t.ring in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let idx = (t.next + i) mod n in
      collect (i + 1) (match t.ring.(idx) with Some e -> e :: acc | None -> acc)
  in
  collect 0 []

let recorded t = t.total

let kind_to_string = function
  | Begin_attempt { attempt; mode } -> Printf.sprintf "begin attempt %d (%s)" attempt mode
  | Enter_failed_mode -> "enter failed-mode discovery"
  | Converted mode -> "converted: retry as " ^ mode
  | Locked line -> Printf.sprintf "locked line %d" line
  | Commit { mode; retries } -> Printf.sprintf "commit (%s, %d retries)" mode retries
  | Aborted cause -> "abort: " ^ Abort.cause_name cause
  | Stalled line -> Printf.sprintf "stalled on locked line %d" line

let pp_event ppf e =
  Format.fprintf ppf "@[%8d core%-3d %-18s %s@]" e.time e.core e.ar (kind_to_string e.kind)

let dump ?limit t ppf =
  let all = events t in
  let all =
    match limit with
    | None -> all
    | Some n ->
        let len = List.length all in
        if len <= n then all else List.filteri (fun i _ -> i >= len - n) all
  in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) all
