module Counter = Simrt.Counter

type commit_mode = Speculative | Scl | Nscl | Fallback_mode

let commit_mode_name = function
  | Speculative -> "speculative"
  | Scl -> "S-CL"
  | Nscl -> "NS-CL"
  | Fallback_mode -> "fallback"

let all_commit_modes = [ Speculative; Scl; Nscl; Fallback_mode ]

let mode_index = function Speculative -> 0 | Scl -> 1 | Nscl -> 2 | Fallback_mode -> 3

type t = {
  counters : Counter.set;
  mutable commits : int;
  commits_by_mode : int array;
  retry_hist : (int, int) Hashtbl.t; (* non-fallback commits by retry count *)
  mutable fallback_commits : int;
  aborts_by_cause : (Abort.cause, int) Hashtbl.t;
  mutable aborts : int;
  mutable total_cycles : int;
  mutable busy_cycles : int;
  mutable failed_discovery_cycles : int;
  mutable instrs : int;
  mutable wasted_instrs : int;
  mutable first_aborted : int;
  mutable footprint_stable : int;
  ar_commits : (string, int) Hashtbl.t;
}

let create () =
  {
    counters = Counter.create_set ();
    commits = 0;
    commits_by_mode = Array.make 4 0;
    retry_hist = Hashtbl.create 16;
    fallback_commits = 0;
    aborts_by_cause = Hashtbl.create 8;
    aborts = 0;
    total_cycles = 0;
    busy_cycles = 0;
    failed_discovery_cycles = 0;
    instrs = 0;
    wasted_instrs = 0;
    first_aborted = 0;
    footprint_stable = 0;
    ar_commits = Hashtbl.create 16;
  }

let counters t = t.counters

let bump tbl key n =
  let v = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0 in
  Hashtbl.replace tbl key (v + n)

let note_commit ?ar t ~mode ~retries =
  t.commits <- t.commits + 1;
  t.commits_by_mode.(mode_index mode) <- t.commits_by_mode.(mode_index mode) + 1;
  (match ar with Some name -> bump t.ar_commits name 1 | None -> ());
  match mode with
  | Fallback_mode -> t.fallback_commits <- t.fallback_commits + 1
  | Speculative | Scl | Nscl -> bump t.retry_hist retries 1

let commits_for_ar t name = match Hashtbl.find_opt t.ar_commits name with Some n -> n | None -> 0

let note_abort t cause =
  t.aborts <- t.aborts + 1;
  Counter.incr t.counters "aborts";
  bump t.aborts_by_cause cause 1

let note_instr t =
  t.instrs <- t.instrs + 1;
  Counter.incr t.counters "instrs"

let note_wasted_instr t =
  t.wasted_instrs <- t.wasted_instrs + 1;
  Counter.incr t.counters "wasted_instrs"

let note_failed_discovery_cycles t n = t.failed_discovery_cycles <- t.failed_discovery_cycles + n

let note_first_abort t ~footprint_stable =
  t.first_aborted <- t.first_aborted + 1;
  if footprint_stable then t.footprint_stable <- t.footprint_stable + 1

let set_total_cycles t n = t.total_cycles <- n

let add_busy_cycles t n = t.busy_cycles <- t.busy_cycles + n

let commits t = t.commits

let commits_in_mode t mode = t.commits_by_mode.(mode_index mode)

let aborts t = t.aborts

let aborts_with_cause t cause = match Hashtbl.find_opt t.aborts_by_cause cause with Some n -> n | None -> 0

let aborts_in_category t cat =
  Hashtbl.fold (fun cause n acc -> if Abort.category cause = cat then acc + n else acc) t.aborts_by_cause 0

let aborts_per_commit t = if t.commits = 0 then 0.0 else float_of_int t.aborts /. float_of_int t.commits

let total_cycles t = t.total_cycles

let failed_discovery_cycles t = t.failed_discovery_cycles

let instrs t = t.instrs

let wasted_instrs t = t.wasted_instrs

let commits_with_retries t n = match Hashtbl.find_opt t.retry_hist n with Some c -> c | None -> 0

let retried_commits t =
  Hashtbl.fold (fun r c acc -> if r >= 1 then acc + c else acc) t.retry_hist 0 + t.fallback_commits

let retry_breakdown t =
  let denom = retried_commits t in
  if denom = 0 then (0.0, 0.0, 0.0)
  else begin
    let one = commits_with_retries t 1 in
    let multi = Hashtbl.fold (fun r c acc -> if r >= 2 then acc + c else acc) t.retry_hist 0 in
    let f n = float_of_int n /. float_of_int denom in
    (f one, f multi, f t.fallback_commits)
  end

let ratio n d = if d = 0 then 0.0 else float_of_int n /. float_of_int d

let first_try_ratio t = ratio (commits_with_retries t 0) t.commits

let single_retry_ratio t = ratio (commits_with_retries t 1) t.commits

let fallback_ratio t = ratio t.fallback_commits t.commits

let fig1_ratio t = ratio t.footprint_stable t.first_aborted

let merge stats =
  let out = create () in
  List.iter
    (fun s ->
      Counter.merge_into ~dst:out.counters s.counters;
      out.commits <- out.commits + s.commits;
      Array.iteri (fun i v -> out.commits_by_mode.(i) <- out.commits_by_mode.(i) + v) s.commits_by_mode;
      Hashtbl.iter (fun r c -> bump out.retry_hist r c) s.retry_hist;
      out.fallback_commits <- out.fallback_commits + s.fallback_commits;
      Hashtbl.iter (fun cause n -> bump out.aborts_by_cause cause n) s.aborts_by_cause;
      out.aborts <- out.aborts + s.aborts;
      out.total_cycles <- out.total_cycles + s.total_cycles;
      out.busy_cycles <- out.busy_cycles + s.busy_cycles;
      out.failed_discovery_cycles <- out.failed_discovery_cycles + s.failed_discovery_cycles;
      out.instrs <- out.instrs + s.instrs;
      out.wasted_instrs <- out.wasted_instrs + s.wasted_instrs;
      out.first_aborted <- out.first_aborted + s.first_aborted;
      out.footprint_stable <- out.footprint_stable + s.footprint_stable;
      Hashtbl.iter (fun ar n -> bump out.ar_commits ar n) s.ar_commits)
    stats;
  out
