type t = { mutable writer : int; mutable readers : int; mutable waiting_writers : int }

let create () = { writer = -1; readers = 0; waiting_writers = 0 }

let bit core = 1 lsl core

let try_write_lock t ~core =
  if t.writer = -1 && t.readers = 0 then begin
    t.writer <- core;
    t.waiting_writers <- t.waiting_writers land lnot (bit core);
    true
  end
  else false

let try_read_lock t ~core =
  if t.writer = -1 && t.waiting_writers = 0 then begin
    t.readers <- t.readers lor bit core;
    true
  end
  else false

let announce_writer t ~core = t.waiting_writers <- t.waiting_writers lor bit core

let withdraw_writer t ~core = t.waiting_writers <- t.waiting_writers land lnot (bit core)

let release t ~core =
  if t.writer = core then t.writer <- -1;
  t.readers <- t.readers land lnot (bit core)

let writer t = if t.writer = -1 then None else Some t.writer

let writer_held t = t.writer <> -1

let readers t =
  let rec loop c acc = if c < 0 then acc else loop (c - 1) (if t.readers land bit c <> 0 then c :: acc else acc) in
  loop 62 []

let read_held t = t.readers <> 0

let free t = t.writer = -1 && t.readers = 0 && t.waiting_writers = 0
