type cause =
  | Memory_conflict
  | Nacked
  | Explicit_fallback
  | Other_fallback
  | Capacity
  | Scl_deviation
  | Other

type category = Cat_memory_conflict | Cat_explicit_fallback | Cat_other_fallback | Cat_others

let category = function
  | Memory_conflict | Nacked | Scl_deviation -> Cat_memory_conflict
  | Explicit_fallback -> Cat_explicit_fallback
  | Other_fallback -> Cat_other_fallback
  | Capacity | Other -> Cat_others

let counts_toward_retry_limit = function
  | Memory_conflict | Nacked | Capacity | Scl_deviation | Other -> true
  | Explicit_fallback | Other_fallback -> false

let cause_name = function
  | Memory_conflict -> "memory-conflict"
  | Nacked -> "nacked"
  | Explicit_fallback -> "explicit-fallback"
  | Other_fallback -> "other-fallback"
  | Capacity -> "capacity"
  | Scl_deviation -> "scl-deviation"
  | Other -> "other"

let category_name = function
  | Cat_memory_conflict -> "Memory Conflict"
  | Cat_explicit_fallback -> "Explicit Fallback"
  | Cat_other_fallback -> "Other Fallback"
  | Cat_others -> "Others"

let all_categories = [ Cat_memory_conflict; Cat_explicit_fallback; Cat_other_fallback; Cat_others ]
