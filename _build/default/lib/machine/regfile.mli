(** Architectural register file with CLEAR indirection bits. *)

type t

val create : unit -> t
(** [Isa.Instr.num_regs] registers, zeroed, no indirection bits. *)

val reset : t -> unit

val load_initial : t -> (Isa.Instr.reg * int) list -> unit
(** Reset then install the operation's initial register values. Initial
    values come from outside the atomic region, so they carry no indirection
    bit. *)

val get : t -> Isa.Instr.reg -> int

val set : t -> Isa.Instr.reg -> int -> unit
(** Raw write; does not touch indirection bits (use the [define_*]
    helpers). *)

val operand : t -> Isa.Instr.operand -> int

val indirection : t -> Clear.Indirection.t
(** The underlying bit vector, for discovery checks. *)

val define_alu : t -> dst:Isa.Instr.reg -> Isa.Instr.operand list -> int -> unit
(** Write an ALU/move result: indirection = OR of source-register bits. *)

val define_load : t -> dst:Isa.Instr.reg -> int -> unit
(** Write a load result: indirection bit set. *)

val operand_tainted : t -> Isa.Instr.operand -> bool
