(** Global view of speculative sharers, the conflict-detection substrate.

    Maps each line to the bitmask of cores currently holding it in their
    speculative read or write set. Conceptually this is the information the
    directory derives from coherence requests; centralising it keeps the
    eager conflict checks O(1). Cores whose discovery entered failed mode
    withdraw their entries — their accesses are flagged non-aborting and must
    not generate new conflicts (paper §4.1). *)

type t

val create : cores:int -> t

val add_reader : t -> core:int -> Mem.Addr.line -> unit

val add_writer : t -> core:int -> Mem.Addr.line -> unit

val remove_core : t -> core:int -> lines:Mem.Addr.line list -> unit
(** Withdraw [core] from the given lines (commit, abort or failed-mode
    entry). *)

val readers : t -> Mem.Addr.line -> int
(** Bitmask of speculative readers. *)

val writers : t -> Mem.Addr.line -> int

val conflicting_readers : t -> core:int -> Mem.Addr.line -> int list
(** Cores other than [core] with the line in their read set. *)

val conflicting_writers : t -> core:int -> Mem.Addr.line -> int list

val clear : t -> unit
