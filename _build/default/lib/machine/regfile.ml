type t = { values : int array; indirection : Clear.Indirection.t }

let create () =
  {
    values = Array.make Isa.Instr.num_regs 0;
    indirection = Clear.Indirection.create ~regs:Isa.Instr.num_regs;
  }

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  Clear.Indirection.reset t.indirection

let load_initial t inits =
  reset t;
  List.iter (fun (r, v) -> t.values.(r) <- v) inits

let get t r = t.values.(r)

let set t r v = t.values.(r) <- v

let operand t = function Isa.Instr.Reg r -> t.values.(r) | Isa.Instr.Imm i -> i

let indirection t = t.indirection

let srcs_of_operands ops =
  List.filter_map (function Isa.Instr.Reg r -> Some r | Isa.Instr.Imm _ -> None) ops

let define_alu t ~dst ops v =
  Clear.Indirection.define t.indirection ~dst ~srcs:(srcs_of_operands ops);
  t.values.(dst) <- v

let define_load t ~dst v =
  Clear.Indirection.define_load t.indirection ~dst;
  t.values.(dst) <- v

let operand_tainted t = function
  | Isa.Instr.Reg r -> Clear.Indirection.get t.indirection r
  | Isa.Instr.Imm _ -> false
