(** The global fallback lock, as a reader–writer lock (paper §4.3/§5.1).

    The fallback path acquires it exclusively (coarse-grain mutual
    exclusion). NS-CL and S-CL executions acquire it shared ("read-locked")
    so they can run concurrently with each other but never overlap a fallback
    execution. Speculative transactions do not acquire it — they subscribe:
    the engine aborts every speculating core the moment a writer gets in. *)

type t

val create : unit -> t

val try_write_lock : t -> core:int -> bool
(** Succeeds only when no reader and no writer holds the lock. *)

val try_read_lock : t -> core:int -> bool
(** Succeeds when no writer holds or awaits the lock. Writers are given
    priority to avoid starving the fallback path. *)

val announce_writer : t -> core:int -> unit
(** Register intent to write-lock; blocks new readers until served or
    {!withdraw_writer}. *)

val withdraw_writer : t -> core:int -> unit

val release : t -> core:int -> unit
(** Drop whichever hold [core] has; no-op when it has none. *)

val writer : t -> int option

val writer_held : t -> bool

val readers : t -> int list

val read_held : t -> bool

val free : t -> bool
