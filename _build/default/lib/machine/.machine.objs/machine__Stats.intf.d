lib/machine/stats.mli: Abort Simrt
