lib/machine/conflict_map.mli: Mem
