lib/machine/stats.ml: Abort Array Hashtbl List Simrt
