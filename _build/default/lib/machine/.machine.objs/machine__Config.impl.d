lib/machine/config.ml: Format Mem
