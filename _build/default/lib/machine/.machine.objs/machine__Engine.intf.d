lib/machine/engine.mli: Config Mem Stats Trace Workload
