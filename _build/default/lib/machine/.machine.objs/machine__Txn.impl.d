lib/machine/txn.ml: Hashtbl List Mem
