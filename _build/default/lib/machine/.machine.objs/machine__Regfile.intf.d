lib/machine/regfile.mli: Clear Isa
