lib/machine/trace.mli: Abort Format Mem
