lib/machine/config.mli: Format Mem
