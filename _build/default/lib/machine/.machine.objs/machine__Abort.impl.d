lib/machine/abort.ml:
