lib/machine/engine.ml: Abort Array Clear Config Conflict_map Fallback_lock Hashtbl Isa List Mem Printf Regfile Simrt Stats String Trace Txn Workload
