lib/machine/abort.mli:
