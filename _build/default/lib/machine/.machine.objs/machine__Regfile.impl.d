lib/machine/regfile.ml: Array Clear Isa List
