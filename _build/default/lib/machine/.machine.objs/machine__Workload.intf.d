lib/machine/workload.mli: Isa Mem Simrt
