lib/machine/conflict_map.ml: Hashtbl List Mem
