lib/machine/txn.mli: Mem
