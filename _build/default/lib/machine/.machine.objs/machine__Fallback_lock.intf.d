lib/machine/fallback_lock.mli:
