lib/machine/fallback_lock.ml:
