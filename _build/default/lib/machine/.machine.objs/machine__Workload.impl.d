lib/machine/workload.ml: Isa List Mem Simrt
