lib/machine/trace.ml: Abort Array Format List Mem Printf
