(** Abort causes and their Figure 11 categories. *)

type cause =
  | Memory_conflict  (** another core's request invalidated our set *)
  | Nacked  (** our request hit a locked line or a protected transaction *)
  | Explicit_fallback  (** fallback lock found taken when starting *)
  | Other_fallback  (** another thread took the fallback lock mid-flight *)
  | Capacity  (** speculative footprint exceeded the L1 *)
  | Scl_deviation
      (** S-CL access left the learned footprint and conflicted *)
  | Other  (** exceptions, interrupts, ... *)

type category = Cat_memory_conflict | Cat_explicit_fallback | Cat_other_fallback | Cat_others

val category : cause -> category
(** Figure 11 buckets: nacks and S-CL deviations are memory conflicts;
    capacity and miscellaneous aborts are "Others". *)

val counts_toward_retry_limit : cause -> bool
(** The paper's retry counter ignores fallback-lock aborts — which is why
    some applications exceed the nominal maximum retries. *)

val cause_name : cause -> string

val category_name : category -> string

val all_categories : category list
