type t = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  dir_sets : int;
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  memory : int;
  remote_transfer : int;
  coherence_msg : int;
}

(* 48KiB / 64B / 12 ways = 64 sets; 512KiB / 64B / 8 = 1024 sets;
   4MiB / 64B / 16 = 4096 sets. Directory coverage is 800% of L3 lines at
   16 ways: 65536 * 8 / 16 = 32768 sets. *)
let icelake_like =
  {
    l1_sets = 64;
    l1_ways = 12;
    l2_sets = 1024;
    l2_ways = 8;
    l3_sets = 4096;
    l3_ways = 16;
    dir_sets = 32768;
    l1_hit = 1;
    l2_hit = 10;
    l3_hit = 45;
    memory = 80;
    remote_transfer = 40;
    coherence_msg = 12;
  }

let tiny =
  {
    l1_sets = 4;
    l1_ways = 2;
    l2_sets = 16;
    l2_ways = 2;
    l3_sets = 64;
    l3_ways = 4;
    dir_sets = 128;
    l1_hit = 1;
    l2_hit = 10;
    l3_hit = 45;
    memory = 80;
    remote_transfer = 40;
    coherence_msg = 12;
  }

let l1_set_of t line = line land (t.l1_sets - 1)

let dir_set_of t line = line land (t.dir_sets - 1)

let load_latency t ~level =
  match level with
  | `L1 -> t.l1_hit
  | `L2 -> t.l1_hit + t.l2_hit
  | `L3 -> t.l1_hit + t.l2_hit + t.l3_hit
  | `Mem -> t.l1_hit + t.l2_hit + t.l3_hit + t.memory
