lib/mem/hierarchy.mli: Addr Cache Directory Params Simrt Store
