lib/mem/store.mli: Addr
