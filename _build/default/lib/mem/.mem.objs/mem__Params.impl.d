lib/mem/params.ml:
