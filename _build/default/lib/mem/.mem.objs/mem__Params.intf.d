lib/mem/params.mli: Addr
