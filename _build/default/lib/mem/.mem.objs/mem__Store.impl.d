lib/mem/store.ml: Array Printf
