lib/mem/hierarchy.ml: Addr Array Cache Directory List Params Simrt Store
