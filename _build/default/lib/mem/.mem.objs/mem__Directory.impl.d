lib/mem/directory.ml: Addr Hashtbl List
