lib/mem/cache.ml: Array Hashtbl List
