lib/mem/cache.mli: Addr
