lib/mem/directory.mli: Addr
