type t = {
  sets : int;
  ways : int;
  tags : int array; (* sets * ways; -1 = empty *)
  age : int array; (* parallel to tags: larger = more recently used *)
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  { sets; ways; tags = Array.make (sets * ways) (-1); age = Array.make (sets * ways) 0; tick = 0 }

let sets t = t.sets

let ways t = t.ways

let set_of t line = line land (t.sets - 1)

let find_way t line =
  let base = set_of t line * t.ways in
  let rec loop w = if w = t.ways then None else if t.tags.(base + w) = line then Some (base + w) else loop (w + 1) in
  loop 0

let mem t line = find_way t line <> None

let bump t i =
  t.tick <- t.tick + 1;
  t.age.(i) <- t.tick

let touch t line =
  match find_way t line with
  | Some i ->
      bump t i;
      true
  | None -> false

let insert t line =
  match find_way t line with
  | Some i ->
      bump t i;
      None
  | None ->
      let base = set_of t line * t.ways in
      (* Prefer an empty way; otherwise evict the LRU way. *)
      let victim = ref base in
      let found_empty = ref false in
      for w = 0 to t.ways - 1 do
        let i = base + w in
        if (not !found_empty) && t.tags.(i) = -1 then begin
          victim := i;
          found_empty := true
        end
        else if (not !found_empty) && t.age.(i) < t.age.(!victim) then victim := i
      done;
      let evicted = t.tags.(!victim) in
      t.tags.(!victim) <- line;
      bump t !victim;
      if evicted = -1 then None else Some evicted

let invalidate t line =
  match find_way t line with
  | Some i ->
      t.tags.(i) <- -1;
      t.age.(i) <- 0;
      true
  | None -> false

let lines_in_set_of t line =
  let base = set_of t line * t.ways in
  let n = ref 0 in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) <> -1 then incr n
  done;
  !n

let would_fit t lines =
  let per_set = Hashtbl.create 16 in
  List.for_all
    (fun line ->
      let s = set_of t line in
      let n = match Hashtbl.find_opt per_set s with Some r -> r | None -> 0 in
      Hashtbl.replace per_set s (n + 1);
      n + 1 <= t.ways)
    lines

let iter t f =
  Array.iter (fun tag -> if tag <> -1 then f tag) t.tags

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0;
  t.tick <- 0
