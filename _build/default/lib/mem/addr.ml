type t = int

type line = int

let words_per_line = 8

let line_shift = 3

let line_of a = a asr line_shift

let line_base l = l lsl line_shift

let line_offset a = a land (words_per_line - 1)

let same_line a b = line_of a = line_of b

let pp ppf a = Format.fprintf ppf "@w%d" a

let pp_line ppf l = Format.fprintf ppf "@l%d" l
