type t = int array

let create ~words = Array.make words 0

let size t = Array.length t

let read t a =
  if a < 0 || a >= Array.length t then
    invalid_arg (Printf.sprintf "Store.read: address %d out of bounds" a);
  t.(a)

let write t a v =
  if a < 0 || a >= Array.length t then
    invalid_arg (Printf.sprintf "Store.write: address %d out of bounds" a);
  t.(a) <- v

let fill t a ~len v =
  for i = a to a + len - 1 do
    write t i v
  done
