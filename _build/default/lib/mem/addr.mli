(** Address arithmetic.

    The simulated machine is word-addressed: an address names one 64-bit word
    of the shared memory. Cachelines are 64 bytes, i.e. 8 consecutive words.
    Lines are identified by [addr lsr 3]. *)

type t = int
(** A word address. Non-negative. *)

type line = int
(** A cacheline number. *)

val words_per_line : int
(** 8: a 64-byte line holds 8 words. *)

val line_of : t -> line
(** Cacheline containing a word address. *)

val line_base : line -> t
(** First word address of a line. *)

val line_offset : t -> int
(** Offset of the word within its line, in [\[0, words_per_line)]. *)

val same_line : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_line : Format.formatter -> line -> unit
