(** Set-associative cache tag store with LRU replacement.

    Only tags are modelled — data always lives in the backing {!Store} — but
    presence/absence drives access latency, capacity-based HTM aborts and the
    ALT lockability test (can the L1 simultaneously hold all lines of an
    atomic region?). *)

type t

val create : sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val sets : t -> int

val ways : t -> int

val mem : t -> Addr.line -> bool
(** Is the line present? Does not update LRU. *)

val touch : t -> Addr.line -> bool
(** Look up the line and refresh its LRU position. Returns whether it hit. *)

val insert : t -> Addr.line -> Addr.line option
(** Bring the line in (MRU position). Returns the evicted victim, if the set
    was full and the line was not already present. *)

val invalidate : t -> Addr.line -> bool
(** Drop the line; returns whether it was present. *)

val lines_in_set_of : t -> Addr.line -> int
(** Occupancy of the set that [line] maps to. *)

val would_fit : t -> Addr.line list -> bool
(** Could all these (distinct) lines reside in the cache simultaneously, i.e.
    does no set receive more lines than it has ways? This is the discovery
    "can we lock the whole footprint" test. *)

val iter : t -> (Addr.line -> unit) -> unit

val clear : t -> unit
