(** Full-map MESI directory with cacheline locking.

    One entry per line that has ever been touched. Tracks the exclusive owner
    (M/E), the sharer set (bitmask over cores) and the CLEAR lock holder. The
    directory is the ordering point: lock acquisition, invalidation and
    downgrade all happen atomically at simulation-event granularity, which is
    the retry-based protocol the paper adopts to avoid the transient-state
    deadlock of its Figure 6. *)

type t

val create : cores:int -> t

val cores : t -> int

(** Outcome of a coherence request, used for latency/energy accounting. *)
type coherence = {
  msgs : int;  (** directory message hops incurred *)
  from_remote : bool;  (** data was sourced from a remote private cache *)
}

val read : t -> core:int -> Addr.line -> coherence
(** Obtain a shared copy. Downgrades a remote modified owner if needed. *)

val write : t -> core:int -> Addr.line -> coherence * int list
(** Obtain an exclusive copy. Returns the cores whose copies were invalidated
    (used to propagate invalidations into their private tag stores). *)

val drop_core : t -> core:int -> Addr.line -> unit
(** Remove [core] from the entry (on private-cache eviction). *)

val owner : t -> Addr.line -> int option

val is_sharer : t -> core:int -> Addr.line -> bool

(** {1 Cacheline locking} *)

val lock : t -> core:int -> Addr.line -> [ `Acquired of int list | `Held_by of int ]
(** Try to lock the line for [core]. Locking implies exclusive ownership:
    acquisition invalidates other copies, and the cores whose copies were
    invalidated are returned so callers can update private tag stores.
    Re-locking one's own line is [`Acquired \[\]]. *)

val unlock : t -> core:int -> Addr.line -> unit
(** Release; no-op if [core] does not hold the lock. *)

val unlock_all : t -> core:int -> unit
(** Bulk release of every line locked by [core] (end of a CL-mode AR). *)

val locked_by : t -> Addr.line -> int option

val locked_lines : t -> core:int -> Addr.line list
