(** Memory-system geometry and latencies (paper Table 2).

    The simulated hierarchy mirrors the paper's Icelake-like configuration:
    48 KiB 12-way L1D, 512 KiB 8-way L2, 4 MiB 16-way shared L3, MESI
    directory with generous coverage, 80-cycle memory. Latencies are additive:
    an L2 hit costs [l1_hit + l2_hit] and so on, which matches how gem5
    reports access latency for lookups that traverse the hierarchy. *)

type t = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  dir_sets : int;  (** sets of the directory cache; defines the
                       lexicographical locking order of the ALT *)
  l1_hit : int;  (** cycles *)
  l2_hit : int;
  l3_hit : int;
  memory : int;
  remote_transfer : int;
      (** extra cycles to fetch a line owned modified by a remote L1 *)
  coherence_msg : int;  (** cycles for one directory message hop *)
}

val icelake_like : t
(** The paper's Table 2 configuration. *)

val tiny : t
(** A miniature hierarchy for fast unit tests (few sets/ways, same
    latencies). *)

val l1_set_of : t -> Addr.line -> int
(** L1 set index of a line. *)

val dir_set_of : t -> Addr.line -> int
(** Directory set index of a line — the lexicographical locking key. *)

val load_latency : t -> level:[ `L1 | `L2 | `L3 | `Mem ] -> int
(** Total access latency when the first hit is at [level]. *)
