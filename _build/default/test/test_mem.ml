(* Tests for the memory substrate: addresses, backing store, caches,
   directory and hierarchy. *)

module Addr = Mem.Addr
module Store = Mem.Store
module Cache = Mem.Cache
module Params = Mem.Params
module Directory = Mem.Directory
module Hierarchy = Mem.Hierarchy
module Counter = Simrt.Counter

(* ------------------------------------------------------------------ *)
(* Addr *)

let test_addr_arithmetic () =
  Alcotest.(check int) "line of 0" 0 (Addr.line_of 0);
  Alcotest.(check int) "line of 7" 0 (Addr.line_of 7);
  Alcotest.(check int) "line of 8" 1 (Addr.line_of 8);
  Alcotest.(check int) "line base" 16 (Addr.line_base 2);
  Alcotest.(check int) "offset" 5 (Addr.line_offset 13);
  Alcotest.(check bool) "same line" true (Addr.same_line 8 15);
  Alcotest.(check bool) "different line" false (Addr.same_line 7 8)

let prop_line_roundtrip =
  QCheck.Test.make ~name:"line_base/line_of roundtrip" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun a -> Addr.line_base (Addr.line_of a) + Addr.line_offset a = a)

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_rw () =
  let s = Store.create ~words:64 in
  Store.write s 10 99;
  Alcotest.(check int) "read back" 99 (Store.read s 10);
  Alcotest.(check int) "zero init" 0 (Store.read s 11);
  Store.fill s 20 ~len:4 7;
  Alcotest.(check int) "fill start" 7 (Store.read s 20);
  Alcotest.(check int) "fill end" 7 (Store.read s 23);
  Alcotest.(check int) "fill stops" 0 (Store.read s 24)

let test_store_bounds () =
  let s = Store.create ~words:8 in
  Alcotest.check_raises "read oob"
    (Invalid_argument "Store.read: address 8 out of bounds") (fun () -> ignore (Store.read s 8));
  Alcotest.check_raises "write negative"
    (Invalid_argument "Store.write: address -1 out of bounds") (fun () -> Store.write s (-1) 0)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_miss () =
  let c = Cache.create ~sets:4 ~ways:2 in
  Alcotest.(check bool) "miss" false (Cache.touch c 12);
  Alcotest.(check (option int)) "insert into empty" None (Cache.insert c 12);
  Alcotest.(check bool) "hit" true (Cache.touch c 12);
  Alcotest.(check bool) "mem" true (Cache.mem c 12)

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~ways:2 in
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  (* touch 1 so 2 becomes LRU *)
  ignore (Cache.touch c 1);
  Alcotest.(check (option int)) "evicts LRU" (Some 2) (Cache.insert c 3);
  Alcotest.(check bool) "1 survives" true (Cache.mem c 1)

let test_cache_invalidate () =
  let c = Cache.create ~sets:2 ~ways:2 in
  ignore (Cache.insert c 4);
  Alcotest.(check bool) "present" true (Cache.invalidate c 4);
  Alcotest.(check bool) "absent now" false (Cache.mem c 4);
  Alcotest.(check bool) "absent invalidate" false (Cache.invalidate c 4)

let test_cache_would_fit () =
  let c = Cache.create ~sets:2 ~ways:2 in
  (* lines 0,2,4 all map to set 0 — three in a 2-way set do not fit *)
  Alcotest.(check bool) "fits" true (Cache.would_fit c [ 0; 2; 1 ]);
  Alcotest.(check bool) "does not fit" false (Cache.would_fit c [ 0; 2; 4 ])

let test_cache_reinsert_no_evict () =
  let c = Cache.create ~sets:1 ~ways:2 in
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  Alcotest.(check (option int)) "reinsert hits" None (Cache.insert c 1)

let prop_cache_within_ways_no_eviction =
  QCheck.Test.make ~name:"inserting <= ways distinct lines of one set never evicts" ~count:200
    QCheck.(int_range 1 8)
    (fun ways ->
      let sets = 4 in
      let c = Cache.create ~sets ~ways in
      (* lines i*sets all map to set 0 *)
      List.for_all
        (fun i -> Cache.insert c (i * sets) = None)
        (List.init ways (fun i -> i)))

let test_cache_geometry_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.create: sets must be a positive power of two") (fun () ->
      ignore (Cache.create ~sets:3 ~ways:1))

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_latency_monotonic () =
  let p = Params.icelake_like in
  let l1 = Params.load_latency p ~level:`L1 in
  let l2 = Params.load_latency p ~level:`L2 in
  let l3 = Params.load_latency p ~level:`L3 in
  let mem = Params.load_latency p ~level:`Mem in
  Alcotest.(check bool) "monotonic" true (l1 < l2 && l2 < l3 && l3 < mem);
  Alcotest.(check int) "l1 is 1 cycle" 1 l1

let test_params_dir_set () =
  let p = Params.tiny in
  Alcotest.(check int) "wraps" (Params.dir_set_of p 0) (Params.dir_set_of p p.Params.dir_sets)

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory_read_then_write () =
  let d = Directory.create ~cores:4 in
  let c = Directory.read d ~core:0 100 in
  Alcotest.(check bool) "first read not remote" false c.Directory.from_remote;
  let _ = Directory.read d ~core:1 100 in
  Alcotest.(check bool) "both sharers" true (Directory.is_sharer d ~core:0 100 && Directory.is_sharer d ~core:1 100);
  let _, invalidated = Directory.write d ~core:2 100 in
  Alcotest.(check (list int)) "invalidates sharers" [ 0; 1 ] (List.sort compare invalidated);
  Alcotest.(check (option int)) "owner" (Some 2) (Directory.owner d 100)

let test_directory_write_then_read_remote () =
  let d = Directory.create ~cores:2 in
  let _ = Directory.write d ~core:0 5 in
  let c = Directory.read d ~core:1 5 in
  Alcotest.(check bool) "remote transfer" true c.Directory.from_remote;
  Alcotest.(check (option int)) "owner downgraded" None (Directory.owner d 5)

let test_directory_repeat_write_free () =
  let d = Directory.create ~cores:2 in
  let _ = Directory.write d ~core:0 5 in
  let c, inv = Directory.write d ~core:0 5 in
  Alcotest.(check int) "no messages" 0 c.Directory.msgs;
  Alcotest.(check (list int)) "no invalidation" [] inv

let test_directory_locking () =
  let d = Directory.create ~cores:3 in
  let _ = Directory.read d ~core:1 7 in
  (match Directory.lock d ~core:0 7 with
  | `Acquired invalidated -> Alcotest.(check (list int)) "lock invalidates" [ 1 ] invalidated
  | `Held_by _ -> Alcotest.fail "expected acquisition");
  (match Directory.lock d ~core:2 7 with
  | `Held_by h -> Alcotest.(check int) "held by 0" 0 h
  | `Acquired _ -> Alcotest.fail "expected busy");
  (match Directory.lock d ~core:0 7 with
  | `Acquired [] -> ()
  | `Acquired _ | `Held_by _ -> Alcotest.fail "relock by owner should be free");
  Directory.unlock d ~core:0 7;
  Alcotest.(check (option int)) "unlocked" None (Directory.locked_by d 7)

let test_directory_unlock_all () =
  let d = Directory.create ~cores:2 in
  List.iter (fun l -> ignore (Directory.lock d ~core:0 l)) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "locked list sorted" [ 1; 2; 3 ] (Directory.locked_lines d ~core:0);
  Directory.unlock_all d ~core:0;
  Alcotest.(check (list int)) "all released" [] (Directory.locked_lines d ~core:0);
  Alcotest.(check (option int)) "entry unlocked" None (Directory.locked_by d 1)

let test_directory_unlock_wrong_core () =
  let d = Directory.create ~cores:2 in
  ignore (Directory.lock d ~core:0 9);
  Directory.unlock d ~core:1 9;
  Alcotest.(check (option int)) "still held" (Some 0) (Directory.locked_by d 9)

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let make_hierarchy () =
  let store = Store.create ~words:(1 lsl 16) in
  let counters = Counter.create_set () in
  (Hierarchy.create Params.icelake_like ~cores:2 ~store ~counters, counters)

let test_hierarchy_latency_progression () =
  let h, _ = make_hierarchy () in
  let p = Hierarchy.params h in
  let first = Hierarchy.read_line h ~core:0 42 in
  (* A cold read pays the full miss path plus the directory messages. *)
  Alcotest.(check bool) "cold read costs at least a memory access" true
    (first.Hierarchy.latency >= Params.load_latency p ~level:`Mem);
  let second = Hierarchy.read_line h ~core:0 42 in
  Alcotest.(check int) "warm read from L1" (Params.load_latency p ~level:`L1)
    second.Hierarchy.latency

let test_hierarchy_remote_transfer () =
  let h, _ = make_hierarchy () in
  let _ = Hierarchy.write_line h ~core:0 42 in
  let remote = Hierarchy.read_line h ~core:1 42 in
  Alcotest.(check bool) "remote read dearer than L1" true
    (remote.Hierarchy.latency > Params.load_latency (Hierarchy.params h) ~level:`L1)

let test_hierarchy_write_invalidates_reader () =
  let h, _ = make_hierarchy () in
  let _ = Hierarchy.read_line h ~core:1 42 in
  let _ = Hierarchy.write_line h ~core:0 42 in
  Alcotest.(check bool) "reader's copy dropped" false (Cache.mem (Hierarchy.l1 h ~core:1) 42)

let test_hierarchy_lock_fast_path () =
  let h, _ = make_hierarchy () in
  (match Hierarchy.lock_line h ~core:0 42 with
  | `Acquired _ -> ()
  | `Held_by _ -> Alcotest.fail "lock should succeed");
  let read = Hierarchy.read_line h ~core:0 42 in
  Alcotest.(check int) "locked line hits at L1 cost"
    (Params.load_latency (Hierarchy.params h) ~level:`L1)
    read.Hierarchy.latency;
  (match Hierarchy.lock_line h ~core:1 42 with
  | `Held_by holder -> Alcotest.(check int) "holder" 0 holder
  | `Acquired _ -> Alcotest.fail "should be held");
  Alcotest.(check int) "unlock_all count" 1 (Hierarchy.unlock_all h ~core:0)

let test_hierarchy_remote_locked_access_rejected () =
  let h, _ = make_hierarchy () in
  ignore (Hierarchy.lock_line h ~core:0 42);
  Alcotest.check_raises "read through remote lock"
    (Invalid_argument "Hierarchy.read_line: line locked by another core") (fun () ->
      ignore (Hierarchy.read_line h ~core:1 42))

let test_hierarchy_eviction_reported () =
  (* Fill one L1 set beyond capacity and observe the victim. *)
  let store = Store.create ~words:(1 lsl 20) in
  let counters = Counter.create_set () in
  let h = Hierarchy.create Params.tiny ~cores:1 ~store ~counters in
  let p = Params.tiny in
  (* lines k * l1_sets all map to L1 set 0; tiny has 2 ways *)
  let line k = k * p.Params.l1_sets in
  let o1 = Hierarchy.read_line h ~core:0 (line 1) in
  let o2 = Hierarchy.read_line h ~core:0 (line 2) in
  Alcotest.(check (list int)) "no evictions yet" [] (o1.Hierarchy.l1_evicted @ o2.Hierarchy.l1_evicted);
  let o3 = Hierarchy.read_line h ~core:0 (line 3) in
  Alcotest.(check (list int)) "LRU victim evicted" [ line 1 ] o3.Hierarchy.l1_evicted

let test_hierarchy_counters () =
  let h, counters = make_hierarchy () in
  let _ = Hierarchy.read_line h ~core:0 1 in
  let _ = Hierarchy.read_line h ~core:0 1 in
  Alcotest.(check int) "one memory access" 1 (Counter.get counters "mem_access");
  Alcotest.(check int) "one l1 hit" 1 (Counter.get counters "l1_hit")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mem"
    [
      ( "addr",
        [ Alcotest.test_case "arithmetic" `Quick test_addr_arithmetic ]
        @ qsuite [ prop_line_roundtrip ] );
      ( "store",
        [
          Alcotest.test_case "read/write/fill" `Quick test_store_rw;
          Alcotest.test_case "bounds" `Quick test_store_bounds;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "would_fit" `Quick test_cache_would_fit;
          Alcotest.test_case "reinsert" `Quick test_cache_reinsert_no_evict;
          Alcotest.test_case "geometry validation" `Quick test_cache_geometry_validation;
        ]
        @ qsuite [ prop_cache_within_ways_no_eviction ] );
      ( "params",
        [
          Alcotest.test_case "latency progression" `Quick test_params_latency_monotonic;
          Alcotest.test_case "dir set wraps" `Quick test_params_dir_set;
        ] );
      ( "directory",
        [
          Alcotest.test_case "read then write" `Quick test_directory_read_then_write;
          Alcotest.test_case "remote ownership read" `Quick test_directory_write_then_read_remote;
          Alcotest.test_case "repeat write free" `Quick test_directory_repeat_write_free;
          Alcotest.test_case "locking" `Quick test_directory_locking;
          Alcotest.test_case "unlock_all" `Quick test_directory_unlock_all;
          Alcotest.test_case "unlock wrong core" `Quick test_directory_unlock_wrong_core;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latency progression" `Quick test_hierarchy_latency_progression;
          Alcotest.test_case "remote transfer" `Quick test_hierarchy_remote_transfer;
          Alcotest.test_case "write invalidates" `Quick test_hierarchy_write_invalidates_reader;
          Alcotest.test_case "lock fast path" `Quick test_hierarchy_lock_fast_path;
          Alcotest.test_case "remote locked access" `Quick test_hierarchy_remote_locked_access_rejected;
          Alcotest.test_case "eviction reported" `Quick test_hierarchy_eviction_reported;
          Alcotest.test_case "counters" `Quick test_hierarchy_counters;
        ] );
    ]
