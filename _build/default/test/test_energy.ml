(* Tests for the event-based energy model. *)

module Model = Energy.Model
module Counter = Simrt.Counter

let test_static_scales () =
  let c = Model.default in
  let e1 = Model.static c ~cores:1 ~cycles:100 in
  let e2 = Model.static c ~cores:2 ~cycles:100 in
  let e3 = Model.static c ~cores:1 ~cycles:200 in
  Alcotest.(check (float 1e-9)) "linear in cores" (2.0 *. e1) e2;
  Alcotest.(check (float 1e-9)) "linear in cycles" (2.0 *. e1) e3

let test_dynamic_counts () =
  let set = Counter.create_set () in
  Counter.add set "instrs" 10;
  Counter.add set "l1_hit" 5;
  let c = Model.default in
  Alcotest.(check (float 1e-9)) "weighted sum"
    ((10.0 *. c.Model.instr) +. (5.0 *. c.Model.l1_access))
    (Model.dynamic c set)

let test_dynamic_empty () =
  Alcotest.(check (float 1e-9)) "no events, no dynamic energy" 0.0
    (Model.dynamic Model.default (Counter.create_set ()))

let test_total_is_sum () =
  let set = Counter.create_set () in
  Counter.add set "mem_access" 3;
  let c = Model.default in
  Alcotest.(check (float 1e-6)) "total = static + dynamic"
    (Model.static c ~cores:4 ~cycles:50 +. Model.dynamic c set)
    (Model.total c ~cores:4 ~cycles:50 set)

let test_cost_ordering () =
  let c = Model.default in
  Alcotest.(check bool) "memory dearer than caches" true
    (c.Model.mem_access > c.Model.l3_access
    && c.Model.l3_access > c.Model.l2_access
    && c.Model.l2_access > c.Model.l1_access)

let test_aborts_cost_energy () =
  let set = Counter.create_set () in
  let base = Model.dynamic Model.default set in
  Counter.add set "aborts" 7;
  Alcotest.(check bool) "aborts add energy" true (Model.dynamic Model.default set > base)

let () =
  Alcotest.run "energy"
    [
      ( "model",
        [
          Alcotest.test_case "static scaling" `Quick test_static_scales;
          Alcotest.test_case "dynamic counting" `Quick test_dynamic_counts;
          Alcotest.test_case "empty dynamic" `Quick test_dynamic_empty;
          Alcotest.test_case "total = sum" `Quick test_total_is_sum;
          Alcotest.test_case "cost ordering" `Quick test_cost_ordering;
          Alcotest.test_case "aborts cost" `Quick test_aborts_cost_energy;
        ] );
    ]
