(* Tests for the report/table formatting library. *)

module Table = Report.Table

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_basic_rendering () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bee" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333"; "4" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "title" true (contains s "== demo ==");
  Alcotest.(check bool) "header" true (contains s "| a   | bee |");
  Alcotest.(check bool) "row" true (contains s "| 333 | 4   |")

let test_row_arity_checked () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: 1 cells for 2 columns")
    (fun () -> Table.add_row t [ "only" ])

let test_column_width_adapts () =
  let t = Table.create ~title:"w" ~columns:[ "c" ] in
  Table.add_row t [ "wide-cell-value" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "pads header to cell" true (contains s "| c               |")

let test_formatters () =
  Alcotest.(check string) "f2" "3.14" (Table.f2 3.14159);
  Alcotest.(check string) "f3" "3.142" (Table.f3 3.14159);
  Alcotest.(check string) "pct" "35.4%" (Table.pct 0.354)

let test_rows_preserve_order () =
  let t = Table.create ~title:"o" ~columns:[ "v" ] in
  List.iter (fun v -> Table.add_row t [ v ]) [ "first"; "second"; "third" ];
  let s = Table.to_string t in
  let idx needle =
    let rec go i = if i + String.length needle > String.length s then -1
      else if String.sub s i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "order kept" true (idx "first" < idx "second" && idx "second" < idx "third")

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b")

let test_csv_of_table () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2,3" ];
  Table.add_separator t;
  Table.add_row t [ "4"; "5" ];
  Alcotest.(check string) "render" "a,b\n1,\"2,3\"\n4,5\n" (Report.Csv.of_table t)

let test_table_accessors () =
  let t = Table.create ~title:"acc" ~columns:[ "c1" ] in
  Table.add_row t [ "v" ];
  Alcotest.(check string) "title" "acc" (Table.title t);
  Alcotest.(check (list string)) "header" [ "c1" ] (Table.header t);
  Alcotest.(check (list (list string))) "rows" [ [ "v" ] ] (Table.rows t)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_basic_rendering;
          Alcotest.test_case "arity" `Quick test_row_arity_checked;
          Alcotest.test_case "widths" `Quick test_column_width_adapts;
          Alcotest.test_case "formatters" `Quick test_formatters;
          Alcotest.test_case "row order" `Quick test_rows_preserve_order;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "of_table" `Quick test_csv_of_table;
          Alcotest.test_case "accessors" `Quick test_table_accessors;
        ] );
    ]
