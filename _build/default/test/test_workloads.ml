(* Tests for the workload definitions themselves: layout, drivers, setup
   postconditions, AR shape. *)

module Workload = Machine.Workload
module Store = Mem.Store
module Rng = Simrt.Rng
module P = Isa.Program

let test_layout_alignment () =
  let l = Workloads.Layout.create () in
  let a = Workloads.Layout.alloc_line l in
  Alcotest.(check int) "line aligned" 0 (a mod 8);
  let _ = Workloads.Layout.alloc_words l 3 in
  let b = Workloads.Layout.alloc_line l in
  Alcotest.(check int) "realigned after packed alloc" 0 (b mod 8);
  Alcotest.(check bool) "monotonic" true (b > a);
  let c = Workloads.Layout.alloc_lines l 4 in
  Alcotest.(check int) "multi-line block" 0 (c mod 8);
  Alcotest.(check bool) "high-water mark" true (Workloads.Layout.used_words l >= c + 32)

let test_registry_complete () =
  Alcotest.(check int) "19 benchmarks" 19 (List.length Workloads.Registry.all);
  Alcotest.(check int) "9 data structures" 9 (List.length Workloads.Registry.data_structures);
  Alcotest.(check int) "10 STAMP kernels" 10 (List.length Workloads.Registry.stamp);
  Alcotest.(check bool) "find works" true ((Workloads.Registry.find "bst").Workload.name = "bst");
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Workloads.Registry.find "nope"))

let test_registry_names_unique () =
  let names = Workloads.Registry.names in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_ar_ids_unique_per_workload () =
  List.iter
    (fun (w : Workload.t) ->
      let ids = List.map (fun (ar : P.ar) -> ar.P.id) w.ars in
      Alcotest.(check int) (w.name ^ " AR ids unique") (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    Workloads.Registry.all

let test_table1_ar_counts () =
  let expected =
    [
      ("arrayswap", 2); ("bitcoin", 1); ("bst", 3); ("deque", 2); ("hashmap", 3); ("mwobject", 1);
      ("queue", 2); ("stack", 2); ("sorted-list", 3); ("bayes", 14); ("genome", 5); ("intruder", 3);
      ("kmeans-h", 3); ("kmeans-l", 3); ("labyrinth", 3); ("ssca2", 3); ("vacation-h", 3);
      ("vacation-l", 3); ("yada", 6);
    ]
  in
  List.iter
    (fun (name, count) ->
      let w = Workloads.Registry.find name in
      Alcotest.(check int) (name ^ " AR count") count (List.length w.Workload.ars))
    expected

(* Drivers must produce ops whose registers point inside the workload's
   declared memory, and whose AR belongs to the workload. *)
let test_driver_ops_well_formed () =
  List.iter
    (fun (w : Workload.t) ->
      let store = Store.create ~words:(max w.memory_words (1 lsl 18)) in
      w.setup store (Rng.create 1);
      let driver = w.make_driver ~tid:0 ~threads:4 store (Rng.create 2) in
      for _ = 1 to 200 do
        let op = driver () in
        Alcotest.(check bool)
          (w.name ^ " op uses a static AR")
          true
          (List.exists (fun (ar : P.ar) -> ar == op.Workload.ar) w.ars);
        List.iter
          (fun (r, v) ->
            Alcotest.(check bool) (w.name ^ " register index valid") true (r >= 0 && r < 32);
            ignore v)
          op.Workload.init_regs
      done)
    Workloads.Registry.all

let test_setup_idempotent_under_seed () =
  (* Same seed -> byte-identical initial memory. *)
  List.iter
    (fun (w : Workload.t) ->
      let words = max w.memory_words (1 lsl 18) in
      let s1 = Store.create ~words and s2 = Store.create ~words in
      w.setup s1 (Rng.create 7);
      w.setup s2 (Rng.create 7);
      let same = ref true in
      for i = 0 to words - 1 do
        if Store.read s1 i <> Store.read s2 i then same := false
      done;
      Alcotest.(check bool) (w.name ^ " setup deterministic") true !same)
    Workloads.Registry.all

let test_bst_setup_valid_tree () =
  let w = Workloads.Bst.workload in
  let store = Store.create ~words:w.Workload.memory_words in
  w.Workload.setup store (Rng.create 3);
  let root = Store.read store 64 in
  let rec check node lo hi =
    if node <> 0 then begin
      let key = Store.read store node in
      Alcotest.(check bool) "bst order" true (key > lo && key < hi);
      check (Store.read store (node + 1)) lo key;
      check (Store.read store (node + 2)) key hi
    end
  in
  check root min_int max_int

let test_sorted_list_setup_sorted () =
  let w = Workloads.Sorted_list.workload in
  let store = Store.create ~words:w.Workload.memory_words in
  w.Workload.setup store (Rng.create 3);
  let rec walk node last =
    if node <> 0 then begin
      let key = Store.read store node in
      Alcotest.(check bool) "ascending" true (key > last);
      walk (Store.read store (node + 1)) key
    end
  in
  walk (Store.read store 64) min_int

let test_bitcoin_setup_balances () =
  let w = Workloads.Bitcoin.make ~wallets:8 () in
  let store = Store.create ~words:w.Workload.memory_words in
  w.Workload.setup store (Rng.create 3);
  for i = 0 to 7 do
    let wallet = Store.read store (64 + i) in
    Alcotest.(check int) "initial balance" 10_000 (Store.read store wallet)
  done

let test_vacation_chains_intact () =
  let w = Workloads.Vacation.make ~resources:3 ~chain:4 ~name:"vac-test" () in
  let store = Store.create ~words:w.Workload.memory_words in
  w.Workload.setup store (Rng.create 3);
  (* every chain has exactly [chain] records *)
  for r = 0 to 2 do
    let head = 64 + (r * 8) in
    let rec count node n = if node = 0 then n else count (Store.read store (node + 3)) (n + 1) in
    Alcotest.(check int) "chain length" 4 (count (Store.read store head) 0)
  done

let test_mailboxes_distinct_lines () =
  let l = Workloads.Layout.create () in
  let boxes = Workloads.Common.mailboxes l ~threads:8 in
  let lines = Array.map (fun a -> a / 8) boxes in
  let unique = Array.to_list lines |> List.sort_uniq compare in
  Alcotest.(check int) "one line each" 8 (List.length unique)

let test_ar_bodies_have_stores_or_mailbox () =
  (* Every AR either writes memory or deposits into a mailbox — no pure
     no-op regions slipped in. *)
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun (ar : P.ar) ->
          Alcotest.(check bool) (w.name ^ "/" ^ ar.P.name ^ " stores something") true
            (P.store_count ar > 0))
        w.ars)
    Workloads.Registry.all

let () =
  Alcotest.run "workloads"
    [
      ("layout", [ Alcotest.test_case "alignment" `Quick test_layout_alignment ]);
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "unique AR ids" `Quick test_ar_ids_unique_per_workload;
          Alcotest.test_case "Table 1 AR counts" `Quick test_table1_ar_counts;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "ops well-formed" `Quick test_driver_ops_well_formed;
          Alcotest.test_case "setup deterministic" `Quick test_setup_idempotent_under_seed;
        ] );
      ( "setup postconditions",
        [
          Alcotest.test_case "bst tree valid" `Quick test_bst_setup_valid_tree;
          Alcotest.test_case "sorted list sorted" `Quick test_sorted_list_setup_sorted;
          Alcotest.test_case "bitcoin balances" `Quick test_bitcoin_setup_balances;
          Alcotest.test_case "vacation chains" `Quick test_vacation_chains_intact;
          Alcotest.test_case "mailboxes distinct" `Quick test_mailboxes_distinct_lines;
        ] );
      ("shape", [ Alcotest.test_case "ARs store something" `Quick test_ar_bodies_have_stores_or_mailbox ]);
    ]
