test/test_isa.ml: Alcotest Array Format Isa List QCheck QCheck_alcotest String
