test/test_engine.ml: Alcotest Hashtbl Isa List Machine Mem Printf Simrt Workloads
