test/test_fuzz.ml: Alcotest Array Isa List Machine Mem Printf QCheck Random Simrt
