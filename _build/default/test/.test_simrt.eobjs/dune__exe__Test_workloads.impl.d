test/test_workloads.ml: Alcotest Array Isa List Machine Mem Simrt Workloads
