test/test_energy.ml: Alcotest Energy Simrt
