test/test_clear.mli:
