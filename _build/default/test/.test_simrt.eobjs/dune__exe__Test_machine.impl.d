test/test_machine.ml: Alcotest Buffer Format Isa List Machine Mem String Workloads
