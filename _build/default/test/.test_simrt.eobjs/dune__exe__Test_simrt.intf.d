test/test_simrt.mli:
