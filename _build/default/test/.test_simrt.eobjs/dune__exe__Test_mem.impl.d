test/test_mem.ml: Alcotest List Mem QCheck QCheck_alcotest Simrt
