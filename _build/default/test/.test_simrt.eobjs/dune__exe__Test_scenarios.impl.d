test/test_scenarios.ml: Alcotest Array Isa List Machine Mem Printf Simrt
