test/test_simrt.ml: Alcotest Array Gen List QCheck QCheck_alcotest Simrt
