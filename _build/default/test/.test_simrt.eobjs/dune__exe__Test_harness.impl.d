test/test_harness.ml: Alcotest Clear_repro Lazy List Machine Report String Workloads
