test/test_clear.ml: Alcotest Clear Gen Isa List Machine QCheck QCheck_alcotest Workloads
