test/test_energy.mli:
