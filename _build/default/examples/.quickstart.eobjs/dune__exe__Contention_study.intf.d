examples/contention_study.mli:
