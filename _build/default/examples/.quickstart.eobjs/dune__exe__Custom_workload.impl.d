examples/custom_workload.ml: Clear Isa List Machine Mem Printf Simrt
