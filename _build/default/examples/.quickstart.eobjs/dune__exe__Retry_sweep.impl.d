examples/retry_sweep.ml: List Machine Printf Workloads
