examples/sle_locks.ml: Machine Printf Workloads
