examples/sle_locks.mli:
