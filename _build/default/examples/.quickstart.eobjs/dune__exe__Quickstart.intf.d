examples/quickstart.mli:
