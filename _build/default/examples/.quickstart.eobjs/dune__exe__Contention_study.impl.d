examples/contention_study.ml: List Machine Printf Workloads
