examples/retry_sweep.mli:
