examples/quickstart.ml: List Machine Printf Workloads
