(* Contention study: where does CLEAR start to pay off?

     dune exec examples/contention_study.exe

   Sweeps the core count on mwobject (every thread updates the same
   cacheline) and on kmeans-l (many clusters, low contention). CLEAR's
   cacheline locking wins under contention and stays out of the way without
   it — the trade-off the paper's introduction motivates. *)

module Config = Machine.Config
module Engine = Machine.Engine
module Stats = Machine.Stats

let run preset ~cores workload =
  let cfg = { preset with Config.cores; ops_per_thread = 150 } in
  Engine.run_workload cfg workload

let sweep workload =
  Printf.printf "%s:\n" workload.Machine.Workload.name;
  Printf.printf "  %6s %14s %14s %9s %16s\n" "cores" "baseline (cyc)" "CLEAR (cyc)" "speedup"
    "CLEAR aborts/cmt";
  List.iter
    (fun cores ->
      let b = run Config.baseline ~cores workload in
      let c = run Config.clear_rw ~cores workload in
      Printf.printf "  %6d %14d %14d %8.2fx %16.2f\n" cores (Stats.total_cycles b)
        (Stats.total_cycles c)
        (float_of_int (Stats.total_cycles b) /. float_of_int (max 1 (Stats.total_cycles c)))
        (Stats.aborts_per_commit c))
    [ 2; 4; 8; 16; 32 ];
  print_newline ()

let () =
  sweep (Workloads.Registry.find "mwobject");
  sweep (Workloads.Registry.find "kmeans-l");
  print_endline
    "Under contention (mwobject) CLEAR's bounded retry wins and the gap widens with the\n\
     core count; under low contention (kmeans-l) the discovery overhead is negligible and\n\
     the two configurations track each other."
