(* Quickstart: simulate one benchmark under the four HTM configurations of
   the paper and compare them.

     dune exec examples/quickstart.exe

   B = requester-wins, P = PowerTM, C = CLEAR over requester-wins,
   W = CLEAR over PowerTM. *)

module Config = Machine.Config
module Engine = Machine.Engine
module Stats = Machine.Stats

let () =
  let workload = Workloads.Registry.find "bitcoin" in
  let configs =
    [
      ("B", Config.baseline);
      ("P", Config.power_tm);
      ("C", Config.clear_rw);
      ("W", Config.clear_power);
    ]
  in
  Printf.printf "benchmark: %s — %s\n\n" workload.Machine.Workload.name
    workload.Machine.Workload.description;
  Printf.printf "%-4s %12s %10s %14s %10s %10s %10s\n" "cfg" "cycles" "commits" "aborts/commit"
    "1-retry" "S-CL" "fallback";
  List.iter
    (fun (letter, preset) ->
      let cfg = { preset with Config.cores = 16; ops_per_thread = 300 } in
      let stats = Engine.run_workload cfg workload in
      let one, _, _ = Stats.retry_breakdown stats in
      let share mode =
        100.0 *. float_of_int (Stats.commits_in_mode stats mode) /. float_of_int (Stats.commits stats)
      in
      Printf.printf "%-4s %12d %10d %14.2f %9.1f%% %9.1f%% %9.1f%%\n" letter
        (Stats.total_cycles stats) (Stats.commits stats) (Stats.aborts_per_commit stats)
        (100.0 *. one) (share Stats.Scl) (share Stats.Fallback_mode))
    configs;
  print_newline ();
  print_endline
    "CLEAR (C/W) converts bitcoin's likely-immutable transfer region to S-CL on the first\n\
     abort, so most retried transactions commit after exactly one retry."
