(* Retry-limit design-space exploration (the paper's methodology sweeps 1-10
   retries per application and keeps the best).

     dune exec examples/retry_sweep.exe

   Shows why the sweep matters: the best retry limit differs per
   configuration — the baseline prefers more retries under heavy contention
   (fallback is expensive), while CLEAR prefers few (the first retry already
   runs under cacheline locking). *)

module Config = Machine.Config
module Engine = Machine.Engine
module Stats = Machine.Stats

let () =
  let workload = Workloads.Registry.find "stack" in
  let retry_choices = [ 1; 2; 3; 4; 6; 8; 10 ] in
  Printf.printf "benchmark: %s (16 cores)\n\n" workload.Machine.Workload.name;
  Printf.printf "%8s" "retries";
  List.iter (fun (l, _) -> Printf.printf "%14s" (l ^ " (cycles)")) [ ("B", ()); ("W", ()) ];
  print_newline ();
  let results =
    List.map
      (fun retries ->
        let cycles preset =
          let cfg =
            { preset with Config.cores = 16; ops_per_thread = 200; max_retries = retries }
          in
          Stats.total_cycles (Engine.run_workload cfg workload)
        in
        (retries, cycles Config.baseline, cycles Config.clear_power))
      retry_choices
  in
  List.iter (fun (r, b, w) -> Printf.printf "%8d%14d%14d\n" r b w) results;
  let best f = List.fold_left (fun acc x -> if f x < f acc then x else acc) (List.hd results) results in
  let rb, _, _ = best (fun (_, b, _) -> b) in
  let rw, _, _ = best (fun (_, _, w) -> w) in
  Printf.printf "\nbest retry limit: baseline=%d, CLEAR+PowerTM=%d\n" rb rw
