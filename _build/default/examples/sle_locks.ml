(* Speculation front-ends: HTM vs SLE (paper §4.1/§4.3).

     dune exec examples/sle_locks.exe

   The same hashmap runs under both front-ends. Under HTM, every exhausted
   retry grabs ONE global fallback lock, so a single hot bucket can stall the
   whole machine. Under SLE the fallback path acquires the bucket's own
   elided mutex, so unrelated buckets keep committing. CLEAR composes with
   both. *)

module Config = Machine.Config
module Engine = Machine.Engine
module Stats = Machine.Stats

let describe label cfg workload =
  let stats = Engine.run_workload cfg workload in
  Printf.printf "%-24s cycles=%-9d aborts/commit=%-6.2f explicit-fb=%-5d other-fb=%-5d fallback-commits=%d\n"
    label (Stats.total_cycles stats) (Stats.aborts_per_commit stats)
    (Stats.aborts_with_cause stats Machine.Abort.Explicit_fallback)
    (Stats.aborts_with_cause stats Machine.Abort.Other_fallback)
    (Stats.commits_in_mode stats Stats.Fallback_mode)

let () =
  let workload = Workloads.Registry.find "hashmap" in
  Printf.printf "benchmark: %s (16 cores, retry limit 1 to force fallback traffic)\n\n"
    workload.Machine.Workload.name;
  let shape preset frontend =
    {
      preset with
      Config.cores = 16;
      ops_per_thread = 250;
      max_retries = 1;
      frontend;
    }
  in
  describe "B / HTM (global lock)" (shape Config.baseline Config.Htm) workload;
  describe "B / SLE (bucket locks)" (shape Config.baseline Config.Sle) workload;
  describe "W / HTM" (shape Config.clear_power Config.Htm) workload;
  describe "W / SLE" (shape Config.clear_power Config.Sle) workload;
  print_newline ();
  print_endline
    "SLE's per-mutex fallback removes most explicit/other-fallback aborts: threads only\n\
     queue behind the bucket they actually need. CLEAR then removes most of the fallback\n\
     executions themselves."
