module A = Isa.Asm
module P = Isa.Program

let reg r = Isa.Instr.Reg r

let imm i = Isa.Instr.Imm i

let max_threads = 62

(* Zipf popularity skews shared by the workload drivers. Values are the
   historical per-workload defaults, hoisted so every driver (and the
   open-system traffic generator) names the same skew tiers. *)
let zipf_theta_heavy = 0.6

let zipf_theta_default = 0.4

let zipf_theta_light = 0.3

let mailboxes layout ~threads =
  Array.init threads (fun _ -> Layout.alloc_line ~region:"mailbox" layout)

let fetch_add_ar ?regions ~id ~name ~region () =
  P.build_ar ?regions ~id ~name (fun b ->
      A.ld b ~dst:8 ~base:(reg 0) ~region ();
      A.add b ~dst:8 (reg 8) (reg 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region ();
      A.halt b)

let dir_update_ar ?regions ~id ~name ~dir_region ~record_region ~fields () =
  P.build_ar ?regions ~id ~name (fun b ->
      A.ld b ~dst:8 ~base:(reg 0) ~region:dir_region ();
      List.iter
        (fun (off, action) ->
          match action with
          | `Add_reg r ->
              A.ld b ~dst:9 ~base:(reg 8) ~off ~region:record_region ();
              A.add b ~dst:9 (reg 9) (reg r);
              A.st b ~base:(reg 8) ~off ~src:(reg 9) ~region:record_region ()
          | `Set_reg r -> A.st b ~base:(reg 8) ~off ~src:(reg r) ~region:record_region ())
        fields;
      A.halt b)

let dir_read_ar ?regions ~id ~name ~dir_region ~record_region ~offsets ~mailbox_reg () =
  P.build_ar ?regions ~id ~name (fun b ->
      A.ld b ~dst:8 ~base:(reg 0) ~region:dir_region ();
      A.mov b ~dst:9 (imm 0);
      List.iter
        (fun off ->
          A.ld b ~dst:10 ~base:(reg 8) ~off ~region:record_region ();
          A.add b ~dst:9 (reg 9) (reg 10))
        offsets;
      A.st b ~base:(reg mailbox_reg) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)
