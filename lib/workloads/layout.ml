type t = { mutable next : Mem.Addr.t; extents : (string, int * int) Hashtbl.t }

let words_per_line = Mem.Addr.words_per_line

let create ?(base = 64) () = { next = base; extents = Hashtbl.create 8 }

let note_span t ~region ~lo ~hi =
  if region <> "" && hi >= lo then
    match Hashtbl.find_opt t.extents region with
    | None -> Hashtbl.replace t.extents region (lo, hi)
    | Some (plo, phi) -> Hashtbl.replace t.extents region (min plo lo, max phi hi)

let align_line t =
  let rem = t.next mod words_per_line in
  if rem <> 0 then t.next <- t.next + (words_per_line - rem)

let alloc_lines ?(region = "") t n =
  align_line t;
  let a = t.next in
  t.next <- t.next + (n * words_per_line);
  note_span t ~region ~lo:a ~hi:(t.next - 1);
  a

let alloc_line ?region t = alloc_lines ?region t 1

let alloc_words ?(region = "") t n =
  let a = t.next in
  t.next <- t.next + n;
  note_span t ~region ~lo:a ~hi:(t.next - 1);
  a

let used_words t = t.next

let extents t =
  Hashtbl.fold (fun region span acc -> (region, span) :: acc) t.extents []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let extent t region = Hashtbl.find_opt t.extents region
