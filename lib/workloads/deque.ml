module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let build_push_back ~id ~regions =
  P.build_ar ~id ~name:"push_back" ~regions (fun b ->
      (* r0 = &tail, r1 = slots base, r2 = value, r3 = capacity *)
      A.ld b ~dst:8 ~base:(reg 0) ~region:"dq.idx" ();
      A.binop b Isa.Instr.Rem ~dst:9 (reg 8) (reg 3);
      A.mul b ~dst:10 (reg 9) (imm Mem.Addr.words_per_line);
      A.add b ~dst:10 (reg 10) (reg 1);
      A.st b ~base:(reg 10) ~src:(reg 2) ~region:"dq.slot" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"dq.idx" ();
      A.halt b)

let build_pop_front ~id ~regions =
  P.build_ar ~id ~name:"pop_front" ~regions (fun b ->
      (* r0 = &head, r4 = &tail, r1 = slots base, r3 = capacity, r5 = mailbox *)
      let empty = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"dq.idx" ();
      A.ld b ~dst:9 ~base:(reg 4) ~region:"dq.idx" ();
      A.brc b Isa.Instr.Eq (reg 8) (reg 9) empty;
      A.binop b Isa.Instr.Rem ~dst:10 (reg 8) (reg 3);
      A.mul b ~dst:11 (reg 10) (imm Mem.Addr.words_per_line);
      A.add b ~dst:11 (reg 11) (reg 1);
      A.ld b ~dst:12 ~base:(reg 11) ~region:"dq.slot" ();
      A.st b ~base:(reg 5) ~src:(reg 12) ~region:"mailbox" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"dq.idx" ();
      A.jmp b done_;
      A.place b empty;
      A.st b ~base:(reg 5) ~src:(imm (-1)) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let make ?(capacity = 64) () =
  let layout = Layout.create () in
  let head = Layout.alloc_line ~region:"dq.idx" layout in
  let tail = Layout.alloc_line ~region:"dq.idx" layout in
  let slots = Layout.alloc_lines ~region:"dq.slot" layout capacity in
  let mail = mailboxes layout ~threads:max_threads in
  let regions = Layout.extents layout in
  let push_back = build_push_back ~id:0 ~regions in
  let pop_front = build_pop_front ~id:1 ~regions in
  let setup store rng =
    (* Pre-fill half the deque so pops succeed from the start. *)
    let prefill = capacity / 2 in
    Mem.Store.write store head 0;
    Mem.Store.write store tail prefill;
    for i = 0 to prefill - 1 do
      Mem.Store.write store (slots + (i * Mem.Addr.words_per_line)) (Simrt.Rng.int rng 1000)
    done
  in
  let make_driver ~tid ~threads:_ _store rng () =
    if Simrt.Rng.bool rng then
      W.op push_back [ (0, tail); (1, slots); (2, Simrt.Rng.int rng 1000); (3, capacity) ]
    else W.op pop_front [ (0, head); (4, tail); (1, slots); (3, capacity); (5, mail.(tid)) ]
  in
  {
    W.name = "deque";
    description = "bounded circular deque: push-back / pop-front";
    ars = [ push_back; pop_front ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
