(** Bump allocator for laying out a workload's shared data structures.

    Layout happens when the workload value is constructed (it is a pure
    function of the workload parameters), so AR bodies can embed the
    resulting addresses as immediates; [setup] later fills the same addresses
    with initial data. Line-aligned allocation is the default — a node per
    cacheline — because conflict detection, cacheline locking and the ALT all
    work at line granularity and false sharing would blur every experiment
    (the mwobject benchmark, which targets intra-line sharing, asks for
    packed allocation explicitly).

    Allocations may carry a [?region] tag matching the region strings on the
    AR bodies' loads and stores. The allocator records, per region name, the
    inclusive word extent spanning every allocation so tagged; workloads pass
    the resulting table to {!Isa.Program.build_ar} so the static verifier can
    bound indirection-lost sites by their region's extent (DESIGN.md §15).
    The extent is the convex hull of the tagged allocations — a sound
    over-approximation even when other data is interleaved between them. *)

type t

val create : ?base:Mem.Addr.t -> unit -> t
(** Allocation starts at [base] (default: word 64, keeping line 0 clear for
    the conceptual fallback-lock line). *)

val alloc_line : ?region:string -> t -> Mem.Addr.t
(** One fresh cacheline; returns its first word address. *)

val alloc_lines : ?region:string -> t -> int -> Mem.Addr.t
(** [n] consecutive cachelines. *)

val alloc_words : ?region:string -> t -> int -> Mem.Addr.t
(** Packed words, no alignment. *)

val note_span : t -> region:string -> lo:int -> hi:int -> unit
(** Widen [region]'s extent to include the inclusive word span [lo, hi].
    Used when a region's pointer-chasing sites may also touch lines
    allocated under another tag (e.g. a chain-walk load whose first
    iteration dereferences the bucket-head line). *)

val used_words : t -> int
(** High-water mark, for sizing the backing store. *)

val extents : t -> (string * (int * int)) list
(** All recorded region extents as [(region, (lo_word, hi_word))], sorted by
    region name — the shape {!Isa.Program.make_ar} expects. *)

val extent : t -> string -> (int * int) option
