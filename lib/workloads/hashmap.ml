module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let o_key = 0

let o_val = 1

let o_next = 2

let build_insert ~id ~regions =
  P.build_ar ~id ~regions ~name:"insert" (fun b ->
      (* r0 = &bucket head, r1 = key, r2 = value, r3 = fresh node.
         Updates in place when the key exists, else prepends. *)
      let loop = A.new_label b in
      let prepend = A.new_label b in
      let update = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"hm.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) prepend;
      A.ld b ~dst:10 ~base:(reg 9) ~off:o_key ~region:"hm.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) update;
      A.add b ~dst:8 (reg 9) (imm o_next);
      A.jmp b loop;
      A.place b update;
      A.st b ~base:(reg 9) ~off:o_val ~src:(reg 2) ~region:"hm.node" ();
      A.jmp b done_;
      A.place b prepend;
      A.st b ~base:(reg 3) ~off:o_key ~src:(reg 1) ~region:"hm.node" ();
      A.st b ~base:(reg 3) ~off:o_val ~src:(reg 2) ~region:"hm.node" ();
      A.ld b ~dst:11 ~base:(reg 0) ~region:"hm.head" ();
      A.st b ~base:(reg 3) ~off:o_next ~src:(reg 11) ~region:"hm.node" ();
      A.st b ~base:(reg 0) ~src:(reg 3) ~region:"hm.head" ();
      A.place b done_;
      A.halt b)

let build_lookup ~id ~regions =
  P.build_ar ~id ~regions ~name:"lookup" (fun b ->
      (* r0 = &bucket head, r1 = key, r5 = mailbox *)
      let loop = A.new_label b in
      let found = A.new_label b in
      let missing = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"hm.head" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) missing;
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_key ~region:"hm.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (reg 1) found;
      A.ld b ~dst:8 ~base:(reg 8) ~off:o_next ~region:"hm.node" ();
      A.jmp b loop;
      A.place b found;
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_val ~region:"hm.node" ();
      A.st b ~base:(reg 5) ~src:(reg 10) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b missing;
      A.st b ~base:(reg 5) ~src:(imm (-1)) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let build_remove ~id ~regions =
  P.build_ar ~id ~regions ~name:"remove" (fun b ->
      (* r0 = &bucket head, r1 = key, r5 = mailbox.
         r8 = address of the link under inspection, r9 = node. *)
      let loop = A.new_label b in
      let unlink = A.new_label b in
      let missing = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"hm.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) missing;
      A.ld b ~dst:10 ~base:(reg 9) ~off:o_key ~region:"hm.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) unlink;
      A.add b ~dst:8 (reg 9) (imm o_next);
      A.jmp b loop;
      A.place b unlink;
      A.ld b ~dst:11 ~base:(reg 9) ~off:o_next ~region:"hm.node" ();
      A.st b ~base:(reg 8) ~src:(reg 11) ~region:"hm.node" ();
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b missing;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let make ?(buckets = 8) ?(key_range = 160) ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let heads = Array.init buckets (fun _ -> Layout.alloc_line ~region:"hm.head" layout) in
  let mail = mailboxes layout ~threads:max_threads in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"hm.node" layout))
  in
  (* The chain-walk sites are tagged "hm.node" but their first iteration
     dereferences (and remove's unlink may write) the bucket-head link
     itself, so the node region's extent must also cover the head lines. *)
  Layout.note_span layout ~region:"hm.node" ~lo:heads.(0)
    ~hi:(heads.(buckets - 1) + Mem.Addr.words_per_line - 1);
  let regions = Layout.extents layout in
  let insert = build_insert ~id:0 ~regions in
  let lookup = build_lookup ~id:1 ~regions in
  let remove = build_remove ~id:2 ~regions in
  let bucket_of key = heads.(key mod buckets) in
  let setup store _rng = Array.iter (fun h -> Mem.Store.write store h 0) heads in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      let key = Simrt.Rng.int rng key_range in
      let dice = Simrt.Rng.float rng 1.0 in
      if dice < 0.4 && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op ~lock_id:(key mod buckets) insert
          [ (0, bucket_of key); (1, key); (2, Simrt.Rng.int rng 1000); (3, node) ]
      end
      else if dice < 0.75 then
        W.op ~lock_id:(key mod buckets) lookup [ (0, bucket_of key); (1, key); (5, mail.(tid)) ]
      else W.op ~lock_id:(key mod buckets) remove [ (0, bucket_of key); (1, key); (5, mail.(tid)) ]
  in
  {
    W.name = "hashmap";
    description = "chained hash map: insert / lookup / remove";
    ars = [ insert; lookup; remove ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
