module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let o_val = 0

let o_next = 1

let build_push ~id ~regions =
  P.build_ar ~id ~name:"push" ~regions (fun b ->
      (* r0 = &top, r1 = value, r2 = fresh node *)
      A.st b ~base:(reg 2) ~off:o_val ~src:(reg 1) ~region:"st.node" ();
      A.ld b ~dst:8 ~base:(reg 0) ~region:"st.top" ();
      A.st b ~base:(reg 2) ~off:o_next ~src:(reg 8) ~region:"st.node" ();
      A.st b ~base:(reg 0) ~src:(reg 2) ~region:"st.top" ();
      A.halt b)

let build_pop ~id ~regions =
  P.build_ar ~id ~name:"pop" ~regions (fun b ->
      (* r0 = &top, r5 = mailbox *)
      let empty = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"st.top" ();
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) empty;
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_next ~region:"st.node" ();
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_val ~region:"st.node" ();
      A.st b ~base:(reg 0) ~src:(reg 9) ~region:"st.top" ();
      A.st b ~base:(reg 5) ~src:(reg 10) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b empty;
      A.st b ~base:(reg 5) ~src:(imm (-1)) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let make ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let top = Layout.alloc_line ~region:"st.top" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"st.node" layout))
  in
  let regions = Layout.extents layout in
  let push = build_push ~id:0 ~regions in
  let pop = build_pop ~id:1 ~regions in
  let setup store _rng = Mem.Store.write store top 0 in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      if Simrt.Rng.bool rng && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op push [ (0, top); (1, Simrt.Rng.int rng 1000); (2, node) ]
      end
      else W.op pop [ (0, top); (5, mail.(tid)) ]
  in
  {
    W.name = "stack";
    description = "Treiber stack: push / pop";
    ars = [ push; pop ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
