module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Variable record (one line): [score; parent_count; list head].
   Parent-list node (one line): [var_id; var_ptr; next]. *)
let v_score = 0

let v_head = 2

let n_id = 0

let n_ptr = 1

let n_next = 2

(* Ring push/pop over task descriptors (one word per slot). *)
let build_ring_op ~id ~name ~push ~regions =
  P.build_ar ~id ~name ~regions (fun b ->
      (* r0 = &index, r1 = ring base, r3 = capacity, r2 = payload (push),
         r5 = mailbox (pop) *)
      A.ld b ~dst:8 ~base:(reg 0) ~region:"bay.idx" ();
      A.binop b Isa.Instr.Rem ~dst:9 (reg 8) (reg 3);
      A.add b ~dst:9 (reg 9) (reg 1);
      if push then A.st b ~base:(reg 9) ~src:(reg 2) ~region:"bay.ring" ()
      else begin
        A.ld b ~dst:10 ~base:(reg 9) ~region:"bay.ring" ();
        A.st b ~base:(reg 5) ~src:(reg 10) ~region:"mailbox" ()
      end;
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"bay.idx" ();
      A.halt b)

(* Duplicate-checking insert into a parent list. *)
let build_add_parent ~id ~regions =
  P.build_ar ~id ~name:"add_parent" ~regions (fun b ->
      (* r0 = variable record, r1 = parent id, r2 = fresh node,
         r4 = parent record pointer *)
      let loop = A.new_label b in
      let link = A.new_label b in
      let done_ = A.new_label b in
      A.add b ~dst:8 (reg 0) (imm v_head) (* link address *);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) link;
      A.ld b ~dst:10 ~base:(reg 9) ~off:n_id ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) done_ (* already a parent *);
      A.add b ~dst:8 (reg 9) (imm n_next);
      A.jmp b loop;
      A.place b link;
      A.st b ~base:(reg 2) ~off:n_id ~src:(reg 1) ~region:"bay.node" ();
      A.st b ~base:(reg 2) ~off:n_ptr ~src:(reg 4) ~region:"bay.node" ();
      A.st b ~base:(reg 2) ~off:n_next ~src:(imm 0) ~region:"bay.node" ();
      A.st b ~base:(reg 8) ~src:(reg 2) ~region:"bay.node" ();
      A.place b done_;
      A.halt b)

let build_remove_parent ~id ~regions =
  P.build_ar ~id ~name:"remove_parent" ~regions (fun b ->
      (* r0 = variable record, r1 = parent id, r5 = mailbox *)
      let loop = A.new_label b in
      let unlink = A.new_label b in
      let missing = A.new_label b in
      let done_ = A.new_label b in
      A.add b ~dst:8 (reg 0) (imm v_head);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) missing;
      A.ld b ~dst:10 ~base:(reg 9) ~off:n_id ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) unlink;
      A.add b ~dst:8 (reg 9) (imm n_next);
      A.jmp b loop;
      A.place b unlink;
      A.ld b ~dst:11 ~base:(reg 9) ~off:n_next ~region:"bay.node" ();
      A.st b ~base:(reg 8) ~src:(reg 11) ~region:"bay.node" ();
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b missing;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let build_has_parent ~id ~regions =
  P.build_ar ~id ~name:"has_parent" ~regions (fun b ->
      (* r0 = variable record, r1 = parent id, r5 = mailbox *)
      let loop = A.new_label b in
      let hit = A.new_label b in
      let miss = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~off:v_head ~region:"bay.node" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) miss;
      A.ld b ~dst:9 ~base:(reg 8) ~off:n_id ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (reg 1) hit;
      A.ld b ~dst:8 ~base:(reg 8) ~off:n_next ~region:"bay.node" ();
      A.jmp b loop;
      A.place b hit;
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b miss;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let build_count_parents ~id ~regions =
  P.build_ar ~id ~name:"count_parents" ~regions (fun b ->
      (* r0 = variable record, r5 = mailbox *)
      let loop = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:9 (imm 0);
      A.ld b ~dst:8 ~base:(reg 0) ~off:v_head ~region:"bay.node" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) done_;
      A.add b ~dst:9 (reg 9) (imm 1);
      A.ld b ~dst:8 ~base:(reg 8) ~off:n_next ~region:"bay.node" ();
      A.jmp b loop;
      A.place b done_;
      A.st b ~base:(reg 5) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)

(* Move a parenthood edge: unlink [r1] from variable [r0], prepend the node
   to variable [r6]'s list. *)
let build_reverse_edge ~id ~regions =
  P.build_ar ~id ~name:"reverse_edge" ~regions (fun b ->
      let loop = A.new_label b in
      let unlink = A.new_label b in
      let done_ = A.new_label b in
      A.add b ~dst:8 (reg 0) (imm v_head);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 9) ~off:n_id ~region:"bay.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) unlink;
      A.add b ~dst:8 (reg 9) (imm n_next);
      A.jmp b loop;
      A.place b unlink;
      A.ld b ~dst:11 ~base:(reg 9) ~off:n_next ~region:"bay.node" ();
      A.st b ~base:(reg 8) ~src:(reg 11) ~region:"bay.node" ();
      A.ld b ~dst:12 ~base:(reg 6) ~off:v_head ~region:"bay.node" ();
      A.st b ~base:(reg 9) ~off:n_next ~src:(reg 12) ~region:"bay.node" ();
      A.st b ~base:(reg 6) ~off:v_head ~src:(reg 9) ~region:"bay.node" ();
      A.place b done_;
      A.halt b)

(* Sum the scores of every parent (dereferences each node's record
   pointer). *)
let build_sum_family ~id ~regions =
  P.build_ar ~id ~name:"sum_family_scores" ~regions (fun b ->
      (* r0 = variable record, r5 = mailbox *)
      let loop = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:9 ~base:(reg 0) ~off:v_score ~region:"bay.var" ();
      A.ld b ~dst:8 ~base:(reg 0) ~off:v_head ~region:"bay.node" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 8) ~off:n_ptr ~region:"bay.node" ();
      A.ld b ~dst:11 ~base:(reg 10) ~off:v_score ~region:"bay.var" ();
      A.add b ~dst:9 (reg 9) (reg 11);
      A.ld b ~dst:8 ~base:(reg 8) ~off:n_next ~region:"bay.node" ();
      A.jmp b loop;
      A.place b done_;
      A.st b ~base:(reg 5) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)

(* Bump every parent's score (write version of sum_family). *)
let build_touch_family ~id ~regions =
  P.build_ar ~id ~name:"touch_family" ~regions (fun b ->
      (* r0 = variable record, r1 = delta *)
      let loop = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~off:v_head ~region:"bay.node" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 8) ~off:n_ptr ~region:"bay.node" ();
      A.ld b ~dst:11 ~base:(reg 10) ~off:v_score ~region:"bay.var" ();
      A.add b ~dst:11 (reg 11) (reg 1);
      A.st b ~base:(reg 10) ~off:v_score ~src:(reg 11) ~region:"bay.var" ();
      A.ld b ~dst:8 ~base:(reg 8) ~off:n_next ~region:"bay.node" ();
      A.jmp b loop;
      A.place b done_;
      A.halt b)

let make ?(vars = 24) ?(ring_capacity = 48) ?(pool_per_thread = 256) () =
  let layout = Layout.create () in
  let ring_head = Layout.alloc_line ~region:"bay.idx" layout in
  let ring_tail = Layout.alloc_line ~region:"bay.idx" layout in
  let ring = Layout.alloc_lines ~region:"bay.ring" layout (ring_capacity / Mem.Addr.words_per_line) in
  let var_recs = Array.init vars (fun _ -> Layout.alloc_line ~region:"bay.var" layout) in
  let var_dir = Layout.alloc_words ~region:"bay.dir" layout vars in
  let progress_dir = Layout.alloc_words ~region:"bay.pdir" layout 1 in
  let progress_rec = Layout.alloc_line ~region:"bay.prog" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"bay.node" layout))
  in
  (* Parent-list walks are tagged "bay.node" but traverse through the
     variable records' embedded list heads, so the node extent must take
     the record range in. *)
  Layout.note_span layout ~region:"bay.node" ~lo:var_recs.(0)
    ~hi:(var_recs.(vars - 1) + Mem.Addr.words_per_line - 1);
  let regions = Layout.extents layout in
  (* Likely-immutable ARs: record updates through read-only directories. *)
  let update_score =
    dir_update_ar ~id:0 ~name:"update_score" ~dir_region:"bay.dir" ~record_region:"bay.var"
      ~fields:[ (v_score, `Add_reg 1) ] ~regions ()
  in
  let inc_parent_count =
    dir_update_ar ~id:1 ~name:"inc_parent_count" ~dir_region:"bay.dir" ~record_region:"bay.var"
      ~fields:[ (1, `Add_reg 1) ] ~regions ()
  in
  let dec_parent_count =
    dir_update_ar ~id:2 ~name:"dec_parent_count" ~dir_region:"bay.dir" ~record_region:"bay.var"
      ~fields:[ (1, `Add_reg 1) ] ~regions ()
  in
  let log_progress =
    dir_update_ar ~id:3 ~name:"log_progress" ~dir_region:"bay.pdir" ~record_region:"bay.prog"
      ~fields:[ (0, `Add_reg 1); (1, `Set_reg 2) ] ~regions ()
  in
  let read_scores =
    dir_read_ar ~id:4 ~name:"read_scores" ~dir_region:"bay.dir" ~record_region:"bay.var"
      ~offsets:[ 0; 1 ] ~mailbox_reg:5 ~regions ()
  in
  (* Mutable ARs. *)
  let push_task = build_ring_op ~id:5 ~name:"push_task" ~push:true ~regions in
  let pop_task = build_ring_op ~id:6 ~name:"pop_task" ~push:false ~regions in
  let add_parent = build_add_parent ~id:7 ~regions in
  let remove_parent = build_remove_parent ~id:8 ~regions in
  let has_parent = build_has_parent ~id:9 ~regions in
  let count_parents = build_count_parents ~id:10 ~regions in
  let reverse_edge = build_reverse_edge ~id:11 ~regions in
  let sum_family = build_sum_family ~id:12 ~regions in
  let touch_family = build_touch_family ~id:13 ~regions in
  let setup store rng =
    Mem.Store.write store ring_head 0;
    Mem.Store.write store ring_tail 0;
    for i = 0 to ring_capacity - 1 do
      Mem.Store.write store (ring + i) (Simrt.Rng.int rng vars)
    done;
    Array.iteri
      (fun i r ->
        Mem.Store.write store (var_dir + i) r;
        Mem.Store.write store (r + v_score) (Simrt.Rng.int rng 50);
        Mem.Store.write store (r + 1) 0;
        Mem.Store.write store (r + v_head) 0)
      var_recs;
    Mem.Store.write store progress_dir progress_rec;
    Mem.Store.fill store progress_rec ~len:2 0
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      let v = Simrt.Rng.int rng vars in
      let p = Simrt.Rng.int rng vars in
      let dice = Simrt.Rng.float rng 1.0 in
      if dice < 0.10 then W.op update_score [ (0, var_dir + v); (1, Simrt.Rng.int_in rng (-5) 5) ]
      else if dice < 0.17 then W.op inc_parent_count [ (0, var_dir + v); (1, 1) ]
      else if dice < 0.24 then W.op dec_parent_count [ (0, var_dir + v); (1, -1) ]
      else if dice < 0.30 then
        W.op log_progress [ (0, progress_dir); (1, 1); (2, Simrt.Rng.int rng 100) ]
      else if dice < 0.37 then W.op read_scores [ (0, var_dir + v); (5, mail.(tid)) ]
      else if dice < 0.45 then
        W.op push_task [ (0, ring_tail); (1, ring); (3, ring_capacity); (2, v) ]
      else if dice < 0.53 then
        W.op pop_task [ (0, ring_head); (1, ring); (3, ring_capacity); (5, mail.(tid)) ]
      else if dice < 0.63 && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op add_parent [ (0, var_recs.(v)); (1, p); (2, node); (4, var_recs.(p)) ]
      end
      else if dice < 0.70 then W.op remove_parent [ (0, var_recs.(v)); (1, p); (5, mail.(tid)) ]
      else if dice < 0.78 then W.op has_parent [ (0, var_recs.(v)); (1, p); (5, mail.(tid)) ]
      else if dice < 0.85 then W.op count_parents [ (0, var_recs.(v)); (5, mail.(tid)) ]
      else if dice < 0.90 then
        W.op reverse_edge [ (0, var_recs.(v)); (1, p); (6, var_recs.((v + 1) mod vars)) ]
      else if dice < 0.96 then W.op sum_family [ (0, var_recs.(v)); (5, mail.(tid)) ]
      else W.op touch_family [ (0, var_recs.(v)); (1, 1) ]
  in
  {
    W.name = "bayes";
    description = "structure learning: task ring, parent lists, score records";
    ars =
      [
        update_score;
        inc_parent_count;
        dec_parent_count;
        log_progress;
        read_scores;
        push_task;
        pop_task;
        add_parent;
        remove_parent;
        has_parent;
        count_parents;
        reverse_edge;
        sum_family;
        touch_family;
      ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
