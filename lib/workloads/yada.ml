module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Triangle record: [quality; n1; n2; n3] — one line each. *)
let t_quality = 0

let neighbor_offsets = [ 1; 2; 3 ]

let build_pop_work ~id ~regions =
  P.build_ar ~id ~name:"pop_work" ~regions (fun b ->
      (* r0 = &head, r1 = ring base, r3 = capacity, r5 = mailbox *)
      A.ld b ~dst:8 ~base:(reg 0) ~region:"yada.idx" ();
      A.binop b Isa.Instr.Rem ~dst:9 (reg 8) (reg 3);
      A.add b ~dst:9 (reg 9) (reg 1);
      A.ld b ~dst:10 ~base:(reg 9) ~region:"yada.ring" ();
      A.st b ~base:(reg 5) ~src:(reg 10) ~region:"mailbox" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"yada.idx" ();
      A.halt b)

let build_push_work ~id ~regions =
  P.build_ar ~id ~name:"push_work" ~regions (fun b ->
      (* r0 = &tail, r1 = ring base, r3 = capacity, r2 = triangle addr *)
      A.ld b ~dst:8 ~base:(reg 0) ~region:"yada.idx" ();
      A.binop b Isa.Instr.Rem ~dst:9 (reg 8) (reg 3);
      A.add b ~dst:9 (reg 9) (reg 1);
      A.st b ~base:(reg 9) ~src:(reg 2) ~region:"yada.ring" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"yada.idx" ();
      A.halt b)

(* Improve a triangle: bump its quality and its live neighbours'. *)
let build_refine ~id ~regions =
  P.build_ar ~id ~name:"refine" ~regions (fun b ->
      (* r0 = triangle, r1 = delta *)
      A.ld b ~dst:8 ~base:(reg 0) ~off:t_quality ~region:"yada.tri" ();
      A.add b ~dst:8 (reg 8) (reg 1);
      A.st b ~base:(reg 0) ~off:t_quality ~src:(reg 8) ~region:"yada.tri" ();
      let skips =
        List.map
          (fun off ->
            let skip = A.new_label b in
            A.ld b ~dst:9 ~base:(reg 0) ~off ~region:"yada.tri" ();
            A.brc b Isa.Instr.Eq (reg 9) (imm 0) skip;
            A.ld b ~dst:10 ~base:(reg 9) ~off:t_quality ~region:"yada.tri" ();
            A.add b ~dst:10 (reg 10) (imm 1);
            A.st b ~base:(reg 9) ~off:t_quality ~src:(reg 10) ~region:"yada.tri" ();
            skip)
          neighbor_offsets
      in
      List.iter (fun skip -> A.place b skip) skips;
      A.halt b)

(* Split: insert a fresh triangle between [r0] and its first neighbour,
   fixing up the displaced neighbour's back link. *)
let build_split ~id ~regions =
  P.build_ar ~id ~name:"split" ~regions (fun b ->
      (* r0 = triangle, r2 = fresh triangle *)
      let no_neighbor = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~off:1 ~region:"yada.tri" ();
      A.st b ~base:(reg 2) ~off:t_quality ~src:(imm 0) ~region:"yada.tri" ();
      A.st b ~base:(reg 2) ~off:1 ~src:(reg 8) ~region:"yada.tri" ();
      A.st b ~base:(reg 2) ~off:2 ~src:(reg 0) ~region:"yada.tri" ();
      A.st b ~base:(reg 2) ~off:3 ~src:(imm 0) ~region:"yada.tri" ();
      A.st b ~base:(reg 0) ~off:1 ~src:(reg 2) ~region:"yada.tri" ();
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) no_neighbor;
      A.st b ~base:(reg 8) ~off:2 ~src:(reg 2) ~region:"yada.tri" ();
      A.place b no_neighbor;
      A.halt b)

(* Count bad-quality triangles in a neighbourhood. *)
let build_check ~id ~regions =
  P.build_ar ~id ~name:"check_quality" ~regions (fun b ->
      (* r0 = triangle, r1 = threshold, r5 = mailbox *)
      A.mov b ~dst:12 (imm 0);
      let bump = A.new_label b in
      let after_self = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~off:t_quality ~region:"yada.tri" ();
      A.brc b Isa.Instr.Lt (reg 8) (reg 1) bump;
      A.jmp b after_self;
      A.place b bump;
      A.add b ~dst:12 (reg 12) (imm 1);
      A.place b after_self;
      let skips =
        List.map
          (fun off ->
            let skip = A.new_label b in
            let bump_n = A.new_label b in
            A.ld b ~dst:9 ~base:(reg 0) ~off ~region:"yada.tri" ();
            A.brc b Isa.Instr.Eq (reg 9) (imm 0) skip;
            A.ld b ~dst:10 ~base:(reg 9) ~off:t_quality ~region:"yada.tri" ();
            A.brc b Isa.Instr.Lt (reg 10) (reg 1) bump_n;
            A.jmp b skip;
            A.place b bump_n;
            A.add b ~dst:12 (reg 12) (imm 1);
            A.place b skip;
            skip)
          neighbor_offsets
      in
      ignore (skips : Isa.Asm.label list);
      A.st b ~base:(reg 5) ~src:(reg 12) ~region:"mailbox" ();
      A.halt b)

let make ?(triangles = 48) ?(ring_capacity = 64) ?(pool_per_thread = 256) () =
  let layout = Layout.create () in
  let head = Layout.alloc_line ~region:"yada.idx" layout in
  let tail = Layout.alloc_line ~region:"yada.idx" layout in
  let ring = Layout.alloc_lines ~region:"yada.ring" layout (ring_capacity / Mem.Addr.words_per_line) in
  let counter = Layout.alloc_line ~region:"yada.count" layout in
  let tris = Array.init triangles (fun _ -> Layout.alloc_line ~region:"yada.tri" layout) in
  let mail = mailboxes layout ~threads:max_threads in
  (* Pool lines are handed to [split] as fresh triangles and written under
     the "yada.tri" tag, so they must fall inside that region's extent. *)
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"yada.tri" layout))
  in
  let regions = Layout.extents layout in
  let pop_work = build_pop_work ~id:0 ~regions in
  let push_work = build_push_work ~id:1 ~regions in
  let refine = build_refine ~id:2 ~regions in
  let split = build_split ~id:3 ~regions in
  let check = build_check ~id:4 ~regions in
  let global_counter = fetch_add_ar ~id:5 ~name:"global_counter" ~region:"yada.count" ~regions () in
  let setup store rng =
    Mem.Store.write store head 0;
    Mem.Store.write store tail (ring_capacity / 2);
    for i = 0 to ring_capacity - 1 do
      Mem.Store.write store (ring + i) tris.(Simrt.Rng.int rng triangles)
    done;
    Mem.Store.write store counter 0;
    (* Ring topology: triangle i neighbours i-1 and i+1 (0 = none). *)
    Array.iteri
      (fun i tri ->
        Mem.Store.write store (tri + t_quality) (Simrt.Rng.int rng 10);
        Mem.Store.write store (tri + 1) (if i + 1 < triangles then tris.(i + 1) else 0);
        Mem.Store.write store (tri + 2) (if i > 0 then tris.(i - 1) else 0);
        Mem.Store.write store (tri + 3) 0)
      tris
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      let dice = Simrt.Rng.float rng 1.0 in
      let tri = tris.(Simrt.Rng.zipf rng ~n:triangles ~theta:zipf_theta_light) in
      if dice < 0.2 then W.op pop_work [ (0, head); (1, ring); (3, ring_capacity); (5, mail.(tid)) ]
      else if dice < 0.35 then W.op push_work [ (0, tail); (1, ring); (3, ring_capacity); (2, tri) ]
      else if dice < 0.6 then W.op refine [ (0, tri); (1, 1) ]
      else if dice < 0.7 && !cursor < Array.length pool then begin
        let fresh = pool.(!cursor) in
        incr cursor;
        W.op split [ (0, tri); (2, fresh) ]
      end
      else if dice < 0.9 then W.op check [ (0, tri); (1, 5); (5, mail.(tid)) ]
      else W.op global_counter [ (0, counter); (1, 1) ]
  in
  {
    W.name = "yada";
    description = "mesh refinement: work ring + neighbour-linked triangles";
    ars = [ pop_work; push_work; refine; split; check; global_counter ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
