(** All benchmarks, in the paper's presentation order (data structures first,
    then STAMP). *)

val all : Machine.Workload.t list

val data_structures : Machine.Workload.t list

val stamp : Machine.Workload.t list

val find : string -> Machine.Workload.t
(** By name; raises [Not_found]. *)

val names : string list

val open_scaled : string -> keys:int -> theta:float -> Machine.Workload.t
(** The workload with its keyed structure grown to [keys] entries and Zipf
    skew [theta] — the open-system harness uses this to put the popularity
    distribution, not cache residency, in charge of contention. Falls back
    to {!find} (raising [Not_found] on unknown names) for workloads without
    a scalable keyed structure. *)
