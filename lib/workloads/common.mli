(** Shared building blocks for the benchmark workloads.

    Register conventions: [r0]–[r7] are AR inputs set by the driver, [r8] and
    above are temporaries. Per-thread mailboxes give read-style ARs somewhere
    private to deposit results (one line per thread, so mailbox stores never
    conflict). *)

val reg : int -> Isa.Instr.operand

val imm : int -> Isa.Instr.operand

val mailboxes : Layout.t -> threads:int -> Mem.Addr.t array
(** One line-aligned result slot per thread, tagged region "mailbox". *)

val fetch_add_ar :
  ?regions:(string * (int * int)) list -> id:int -> name:string -> region:string -> unit -> Isa.Program.ar
(** [r0] = counter address, [r1] = delta: load, add, store. No indirection —
    statically immutable. *)

val dir_update_ar :
  ?regions:(string * (int * int)) list ->
  id:int ->
  name:string ->
  dir_region:string ->
  record_region:string ->
  fields:(int * [ `Add_reg of int | `Set_reg of int ]) list ->
  unit ->
  Isa.Program.ar
(** [r0] = address of a directory slot holding a record pointer. The AR loads
    the pointer (the directory is never written inside ARs, so the
    indirection is through read-only data — "likely immutable") and
    updates the given record fields: [(offset, `Add_reg r)] does
    [rec\[offset\] += regs\[r\]]; [`Set_reg] overwrites. *)

val dir_read_ar :
  ?regions:(string * (int * int)) list ->
  id:int ->
  name:string ->
  dir_region:string ->
  record_region:string ->
  offsets:int list ->
  mailbox_reg:int ->
  unit ->
  Isa.Program.ar
(** Like {!dir_update_ar} but read-only on the record: sums the words at
    [offsets] and stores the result to the mailbox address in
    [mailbox_reg]. *)

val max_threads : int
(** Upper bound used when sizing per-thread structures (62, the simulator's
    core-count ceiling). *)

(** Zipf popularity skew tiers. One shared vocabulary instead of magic
    floats duplicated per driver; the numeric values are unchanged from the
    historical defaults, so golden fingerprints are unaffected. *)

val zipf_theta_heavy : float
(** 0.6 — strongly skewed key popularity (bitcoin's hot wallets). *)

val zipf_theta_default : float
(** 0.4 — the common moderate skew (arrayswap, vacation, intruder). *)

val zipf_theta_light : float
(** 0.3 — mild skew (yada, kmeans). *)
