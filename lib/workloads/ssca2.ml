module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let make ?(nodes = 96) ?(slots_per_node = 16) () =
  let layout = Layout.create () in
  let degrees = Array.init nodes (fun _ -> Layout.alloc_line ~region:"g.degree" layout) in
  let edges =
    Array.init nodes (fun _ ->
        Layout.alloc_lines ~region:"g.edges" layout (slots_per_node / Mem.Addr.words_per_line))
  in
  let stats_dir = Layout.alloc_words ~region:"g.dir" layout 1 in
  let stats_rec = Layout.alloc_line ~region:"g.stats" layout in
  let regions = Layout.extents layout in
  let inc_degree = fetch_add_ar ~id:0 ~name:"inc_degree" ~region:"g.degree" ~regions () in
  let write_edge =
    P.build_ar ~id:1 ~name:"write_edge" ~regions (fun b ->
        (* r0 = edge slot address, r1 = target node id *)
        A.st b ~base:(reg 0) ~src:(reg 1) ~region:"g.edges" ();
        A.halt b)
  in
  let update_stats =
    dir_update_ar ~id:2 ~name:"update_stats" ~dir_region:"g.dir" ~record_region:"g.stats"
      ~fields:[ (0, `Add_reg 1); (1, `Add_reg 2) ] ~regions ()
  in
  let setup store _rng =
    Array.iter (fun d -> Mem.Store.write store d 0) degrees;
    Mem.Store.write store stats_dir stats_rec;
    Mem.Store.fill store stats_rec ~len:2 0
  in
  let make_driver ~tid ~threads:_ _store rng =
    let cursors = Array.make nodes (tid mod slots_per_node) in
    fun () ->
      let n = Simrt.Rng.int rng nodes in
      let dice = Simrt.Rng.float rng 1.0 in
      if dice < 0.45 then W.op ~lock_id:(n + 1) inc_degree [ (0, degrees.(n)); (1, 1) ]
      else if dice < 0.9 then begin
        let slot = cursors.(n) in
        cursors.(n) <- (slot + 1) mod slots_per_node;
        W.op ~lock_id:(n + 1) write_edge [ (0, edges.(n) + slot); (1, Simrt.Rng.int rng nodes) ]
      end
      else W.op update_stats [ (0, stats_dir); (1, 1); (2, Simrt.Rng.int rng 4) ]
  in
  {
    W.name = "ssca2";
    description = "graph construction: degree counters and edge writes";
    ars = [ inc_degree; write_edge; update_stats ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
