module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let make ?(slots = 48) ?(theta = zipf_theta_default) () =
  let layout = Layout.create () in
  let base = Layout.alloc_lines ~region:"arr" layout slots in
  let stride = Mem.Addr.words_per_line in
  let regions = Layout.extents layout in
  let swap =
    P.build_ar ~id:0 ~name:"swap" ~regions (fun b ->
        (* r0 = &a, r1 = &b *)
        A.ld b ~dst:8 ~base:(reg 0) ~region:"arr" ();
        A.ld b ~dst:9 ~base:(reg 1) ~region:"arr" ();
        A.st b ~base:(reg 0) ~src:(reg 9) ~region:"arr" ();
        A.st b ~base:(reg 1) ~src:(reg 8) ~region:"arr" ();
        A.halt b)
  in
  let add_pair =
    P.build_ar ~id:1 ~name:"add_pair" ~regions (fun b ->
        (* r0 = &a, r1 = &b, r2 = delta: a <- a + b + delta *)
        A.ld b ~dst:8 ~base:(reg 0) ~region:"arr" ();
        A.ld b ~dst:9 ~base:(reg 1) ~region:"arr" ();
        A.add b ~dst:8 (reg 8) (reg 9);
        A.add b ~dst:8 (reg 8) (reg 2);
        A.st b ~base:(reg 0) ~src:(reg 8) ~region:"arr" ();
        A.halt b)
  in
  let setup store rng =
    for i = 0 to slots - 1 do
      Mem.Store.write store (base + (i * stride)) (Simrt.Rng.int rng 1000)
    done
  in
  let make_driver ~tid:_ ~threads:_ _store rng () =
    let i = Simrt.Rng.zipf rng ~n:slots ~theta in
    let j = (i + 1 + Simrt.Rng.int rng (slots - 1)) mod slots in
    let a = base + (i * stride) and b = base + (j * stride) in
    if Simrt.Rng.chance rng 0.7 then W.op swap [ (0, a); (1, b) ]
    else W.op add_pair [ (0, a); (1, b); (2, Simrt.Rng.int rng 100) ]
  in
  {
    W.name = "arrayswap";
    description = "swap/accumulate pairs of array slots (immutable footprints)";
    ars = [ swap; add_pair ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
