let data_structures =
  [
    Arrayswap.workload;
    Bitcoin.workload;
    Bst.workload;
    Deque.workload;
    Hashmap.workload;
    Mwobject.workload;
    Queue.workload;
    Stack.workload;
    Sorted_list.workload;
  ]

let stamp =
  [
    Bayes.workload;
    Genome.workload;
    Intruder.workload;
    Kmeans.high;
    Kmeans.low;
    Labyrinth.workload;
    Ssca2.workload;
    Vacation.high;
    Vacation.low;
    Yada.workload;
  ]

let all = data_structures @ stamp

let find name =
  match List.find_opt (fun (w : Machine.Workload.t) -> w.name = name) all with
  | Some w -> w
  | None -> raise Not_found

let names = List.map (fun (w : Machine.Workload.t) -> w.name) all

(* Open-system variants: the same ARs over a keyed structure scaled to
   [keys] entries — far past the private caches, so Zipf skew (not cache
   residency) decides which lines stay hot. Workloads whose keyed structure
   is not parameterizable fall back to their registry build. *)
let open_scaled name ~keys ~theta =
  match name with
  | "arrayswap" -> Arrayswap.make ~slots:keys ~theta ()
  | "bitcoin" -> Bitcoin.make ~wallets:keys ~theta ()
  | _ -> find name
