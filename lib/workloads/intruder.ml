module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let fragment_words = 16 (* two cachelines of payload *)

(* Claim the fragment at the head of the (always-full) capture ring and
   checksum its payload: loads the head index, then walks the fragment's
   words accumulating into the mailbox. *)
let build_pop_fragment ~id ~regions =
  P.build_ar ~id ~name:"pop_fragment" ~regions (fun b ->
      (* r0 = &head, r1 = slots base, r3 = capacity, r5 = mailbox *)
      let loop = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"intr.idx" ();
      A.binop b Isa.Instr.Rem ~dst:10 (reg 8) (reg 3);
      A.mul b ~dst:10 (reg 10) (imm fragment_words);
      A.add b ~dst:10 (reg 10) (reg 1) (* fragment base *);
      A.mov b ~dst:11 (imm 0) (* word index *);
      A.mov b ~dst:12 (imm 0) (* checksum *);
      A.place b loop;
      A.add b ~dst:13 (reg 10) (reg 11);
      A.ld b ~dst:14 ~base:(reg 13) ~region:"intr.frag" ();
      A.add b ~dst:12 (reg 12) (reg 14);
      A.add b ~dst:11 (reg 11) (imm 1);
      A.brc b Isa.Instr.Lt (reg 11) (imm fragment_words) loop;
      A.st b ~base:(reg 5) ~src:(reg 12) ~region:"mailbox" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"intr.idx" ();
      A.halt b)

let make ?(ring_capacity = 32) ?(flows = 24) () =
  let layout = Layout.create () in
  let head = Layout.alloc_line ~region:"intr.idx" layout in
  let tail = Layout.alloc_line ~region:"intr.idx" layout in
  let slots =
    Layout.alloc_lines ~region:"intr.frag" layout
      (ring_capacity * fragment_words / Mem.Addr.words_per_line)
  in
  let flow_dir = Layout.alloc_words ~region:"intr.fdir" layout flows in
  let flow_recs = Array.init flows (fun _ -> Layout.alloc_line ~region:"intr.flow" layout) in
  let det_dir = Layout.alloc_words ~region:"intr.ddir" layout 1 in
  let det_rec = Layout.alloc_line ~region:"intr.det" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let regions = Layout.extents layout in
  let pop_fragment = build_pop_fragment ~id:0 ~regions in
  let update_flow =
    dir_update_ar ~id:1 ~name:"update_flow" ~dir_region:"intr.fdir" ~record_region:"intr.flow"
      ~fields:[ (0, `Add_reg 1); (1, `Add_reg 2); (2, `Set_reg 3) ] ~regions ()
  in
  let update_detector =
    dir_update_ar ~id:2 ~name:"update_detector" ~dir_region:"intr.ddir" ~record_region:"intr.det"
      ~fields:[ (0, `Add_reg 1) ] ~regions ()
  in
  let setup store rng =
    Mem.Store.write store head 0;
    Mem.Store.write store tail 0;
    for i = 0 to (ring_capacity * fragment_words) - 1 do
      Mem.Store.write store (slots + i) (Simrt.Rng.int rng 256)
    done;
    Array.iteri
      (fun i r ->
        Mem.Store.write store (flow_dir + i) r;
        Mem.Store.fill store r ~len:3 0)
      flow_recs;
    Mem.Store.write store det_dir det_rec;
    Mem.Store.write store det_rec 0
  in
  let make_driver ~tid ~threads:_ _store rng () =
    let dice = Simrt.Rng.float rng 1.0 in
    if dice < 0.45 then
      W.op pop_fragment [ (0, head); (1, slots); (3, ring_capacity); (5, mail.(tid)) ]
    else if dice < 0.85 then begin
      let f = Simrt.Rng.zipf rng ~n:flows ~theta:zipf_theta_default in
      W.op update_flow
        [ (0, flow_dir + f); (1, 1); (2, Simrt.Rng.int rng 64); (3, Simrt.Rng.int rng 2) ]
    end
    else W.op update_detector [ (0, det_dir); (1, 1) ]
  in
  {
    W.name = "intruder";
    description = "fragment ring + flow reassembly directories";
    ars = [ pop_fragment; update_flow; update_detector ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
