module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Hash-set node: [key; next]. Segment node: [id; link; weight]. *)
let o_key = 0

let o_next = 1

let s_id = 0

let s_link = 1

let s_weight = 2

let build_hs_insert ~id ~regions =
  P.build_ar ~id ~name:"hashset_insert" ~regions (fun b ->
      (* r0 = &bucket, r1 = key, r2 = fresh node, r5 = mailbox (1 if new) *)
      let loop = A.new_label b in
      let dup = A.new_label b in
      let link = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"gen.hs" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) link;
      A.ld b ~dst:10 ~base:(reg 9) ~off:o_key ~region:"gen.hs" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) dup;
      A.add b ~dst:8 (reg 9) (imm o_next);
      A.jmp b loop;
      A.place b link;
      A.st b ~base:(reg 2) ~off:o_key ~src:(reg 1) ~region:"gen.hs" ();
      A.st b ~base:(reg 2) ~off:o_next ~src:(imm 0) ~region:"gen.hs" ();
      A.st b ~base:(reg 8) ~src:(reg 2) ~region:"gen.hs" ();
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b dup;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let build_hs_contains ~id ~regions =
  P.build_ar ~id ~name:"hashset_contains" ~regions (fun b ->
      (* r0 = &bucket, r1 = key, r5 = mailbox *)
      let loop = A.new_label b in
      let hit = A.new_label b in
      let miss = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"gen.hs" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) miss;
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_key ~region:"gen.hs" ();
      A.brc b Isa.Instr.Eq (reg 9) (reg 1) hit;
      A.ld b ~dst:8 ~base:(reg 8) ~off:o_next ~region:"gen.hs" ();
      A.jmp b loop;
      A.place b hit;
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b miss;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

(* Append a segment to the chain starting at the given segment: walk the
   [link] pointers to the end and attach. *)
let build_chain_append ~id ~regions =
  P.build_ar ~id ~name:"chain_append" ~regions (fun b ->
      (* r0 = chain head segment, r2 = segment to attach *)
      let loop = A.new_label b in
      let attach = A.new_label b in
      let self = A.new_label b in
      A.brc b Isa.Instr.Eq (reg 0) (reg 2) self;
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~off:s_link ~region:"gen.seg" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) attach;
      A.brc b Isa.Instr.Eq (reg 9) (reg 2) self (* already linked *);
      A.mov b ~dst:8 (reg 9);
      A.jmp b loop;
      A.place b attach;
      A.st b ~base:(reg 8) ~off:s_link ~src:(reg 2) ~region:"gen.seg" ();
      A.place b self;
      A.halt b)

(* Sum the weights along a segment chain. *)
let build_chain_weight ~id ~regions =
  P.build_ar ~id ~name:"chain_weight" ~regions (fun b ->
      (* r0 = chain head segment, r5 = mailbox *)
      let loop = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:8 (reg 0);
      A.mov b ~dst:9 (imm 0);
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 8) ~off:s_weight ~region:"gen.seg" ();
      A.add b ~dst:9 (reg 9) (reg 10);
      A.ld b ~dst:8 ~base:(reg 8) ~off:s_link ~region:"gen.seg" ();
      A.jmp b loop;
      A.place b done_;
      A.st b ~base:(reg 5) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)

(* Bump the weight of the segment at the end of a chain. *)
let build_bump_tail ~id ~regions =
  P.build_ar ~id ~name:"bump_tail_weight" ~regions (fun b ->
      (* r0 = chain head segment, r1 = delta *)
      let loop = A.new_label b in
      let found = A.new_label b in
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~off:s_link ~region:"gen.seg" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) found;
      A.mov b ~dst:8 (reg 9);
      A.jmp b loop;
      A.place b found;
      A.ld b ~dst:10 ~base:(reg 8) ~off:s_weight ~region:"gen.seg" ();
      A.add b ~dst:10 (reg 10) (reg 1);
      A.st b ~base:(reg 8) ~off:s_weight ~src:(reg 10) ~region:"gen.seg" ();
      A.halt b)

let make ?(buckets = 16) ?(segment_range = 192) ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let hs_heads = Array.init buckets (fun _ -> Layout.alloc_line ~region:"gen.hs" layout) in
  let chains = 24 in
  let chain_heads = Array.init chains (fun _ -> Layout.alloc_line ~region:"gen.seg" layout) in
  let mail = mailboxes layout ~threads:max_threads in
  let pools =
    Array.init max_threads (fun _ -> Array.init pool_per_thread (fun _ -> Layout.alloc_line layout))
  in
  (* Pool nodes serve as both hash-set nodes and chain segments (the driver
     draws both from the same per-thread pool), so both walk regions must
     span the whole pool range. *)
  let pool_lo = pools.(0).(0) in
  let pool_hi = pools.(max_threads - 1).(pool_per_thread - 1) + Mem.Addr.words_per_line - 1 in
  Layout.note_span layout ~region:"gen.hs" ~lo:pool_lo ~hi:pool_hi;
  Layout.note_span layout ~region:"gen.seg" ~lo:pool_lo ~hi:pool_hi;
  let regions = Layout.extents layout in
  let hs_insert = build_hs_insert ~id:0 ~regions in
  let hs_contains = build_hs_contains ~id:1 ~regions in
  let chain_append = build_chain_append ~id:2 ~regions in
  let chain_weight = build_chain_weight ~id:3 ~regions in
  let bump_tail = build_bump_tail ~id:4 ~regions in
  let setup store rng =
    Array.iter (fun h -> Mem.Store.write store h 0) hs_heads;
    Array.iter
      (fun h ->
        Mem.Store.write store (h + s_id) (Simrt.Rng.int rng segment_range);
        Mem.Store.write store (h + s_link) 0;
        Mem.Store.write store (h + s_weight) 1)
      chain_heads
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    let fresh_segment () =
      let node = pool.(!cursor) in
      incr cursor;
      node
    in
    fun () ->
      let dice = Simrt.Rng.float rng 1.0 in
      let key = Simrt.Rng.int rng segment_range in
      let bucket = hs_heads.(key mod buckets) in
      let chain = chain_heads.(Simrt.Rng.int rng chains) in
      if dice < 0.3 && !cursor < Array.length pool then
        W.op hs_insert [ (0, bucket); (1, key); (2, fresh_segment ()); (5, mail.(tid)) ]
      else if dice < 0.55 then W.op hs_contains [ (0, bucket); (1, key); (5, mail.(tid)) ]
      else if dice < 0.63 && !cursor < Array.length pool then
        W.op chain_append [ (0, chain); (2, fresh_segment ()) ]
      else if dice < 0.82 then W.op chain_weight [ (0, chain); (5, mail.(tid)) ]
      else W.op bump_tail [ (0, chain); (1, 1) ]
  in
  {
    W.name = "genome";
    description = "segment dedup hash set + assembly chains";
    ars = [ hs_insert; hs_contains; chain_append; chain_weight; bump_tail ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
