module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Reservation record: [id; free; used; next] — one line per record. *)
let o_id = 0

let o_free = 1

let o_used = 2

let o_next = 3

(* Walk the resource chain for record [r1]; when found, move one unit
   between [free] and [used]. [delta] +1 reserves, -1 cancels. *)
let build_book ~id ~name ~delta ~regions =
  P.build_ar ~id ~name ~regions (fun b ->
      (* r0 = &chain head, r1 = record id, r5 = mailbox *)
      let loop = A.new_label b in
      let found = A.new_label b in
      let missing = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"vac.head" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) missing;
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_id ~region:"vac.rec" ();
      A.brc b Isa.Instr.Eq (reg 9) (reg 1) found;
      A.ld b ~dst:8 ~base:(reg 8) ~off:o_next ~region:"vac.rec" ();
      A.jmp b loop;
      A.place b found;
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_free ~region:"vac.rec" ();
      A.ld b ~dst:11 ~base:(reg 8) ~off:o_used ~region:"vac.rec" ();
      A.sub b ~dst:10 (reg 10) (imm delta);
      A.add b ~dst:11 (reg 11) (imm delta);
      A.st b ~base:(reg 8) ~off:o_free ~src:(reg 10) ~region:"vac.rec" ();
      A.st b ~base:(reg 8) ~off:o_used ~src:(reg 11) ~region:"vac.rec" ();
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b missing;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let make ?(resources = 8) ?(chain = 6) ~name () =
  let layout = Layout.create () in
  let heads = Array.init resources (fun _ -> Layout.alloc_line ~region:"vac.head" layout) in
  let records =
    Array.init (resources * chain) (fun _ -> Layout.alloc_line ~region:"vac.rec" layout)
  in
  let customers = 32 in
  let cust_dir = Layout.alloc_words ~region:"vac.cdir" layout customers in
  let cust_recs = Array.init customers (fun _ -> Layout.alloc_line ~region:"vac.cust" layout) in
  let mail = mailboxes layout ~threads:max_threads in
  let regions = Layout.extents layout in
  let reserve = build_book ~id:0 ~name:"reserve" ~delta:1 ~regions in
  let cancel = build_book ~id:1 ~name:"cancel" ~delta:(-1) ~regions in
  let update_customer =
    dir_update_ar ~id:2 ~name:"update_customer" ~dir_region:"vac.cdir" ~record_region:"vac.cust"
      ~fields:[ (0, `Add_reg 1); (1, `Add_reg 2) ] ~regions ()
  in
  let setup store _rng =
    Array.iteri
      (fun r head ->
        (* Chain the records of resource [r]. *)
        let first = r * chain in
        Mem.Store.write store head records.(first);
        for j = 0 to chain - 1 do
          let node = records.(first + j) in
          Mem.Store.write store (node + o_id) j;
          Mem.Store.write store (node + o_free) 100;
          Mem.Store.write store (node + o_used) 0;
          Mem.Store.write store (node + o_next)
            (if j = chain - 1 then 0 else records.(first + j + 1))
        done)
      heads;
    Array.iteri
      (fun i r ->
        Mem.Store.write store (cust_dir + i) r;
        Mem.Store.fill store r ~len:2 0)
      cust_recs
  in
  let make_driver ~tid ~threads:_ _store rng () =
    let dice = Simrt.Rng.float rng 1.0 in
    let r = Simrt.Rng.zipf rng ~n:resources ~theta:zipf_theta_default in
    let record_id = Simrt.Rng.int rng chain in
    if dice < 0.5 then
      W.op ~lock_id:(r + 1) reserve [ (0, heads.(r)); (1, record_id); (5, mail.(tid)) ]
    else if dice < 0.8 then
      W.op ~lock_id:(r + 1) cancel [ (0, heads.(r)); (1, record_id); (5, mail.(tid)) ]
    else begin
      let cust = Simrt.Rng.int rng customers in
      W.op update_customer [ (0, cust_dir + cust); (1, 1); (2, Simrt.Rng.int rng 100) ]
    end
  in
  {
    W.name = name;
    description = "reservation chains + read-only customer directory";
    ars = [ reserve; cancel; update_customer ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let high = make ~resources:6 ~chain:8 ~name:"vacation-h" ()

let low = make ~resources:24 ~chain:6 ~name:"vacation-l" ()
