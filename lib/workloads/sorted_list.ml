module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let o_key = 0

let o_next = 1

let build_count ~id ~regions =
  P.build_ar ~id ~name:"count_matching" ~regions (fun b ->
      (* r0 = &head, r1 = key, r5 = mailbox *)
      let loop = A.new_label b in
      let skip = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:9 (imm 0);
      A.ld b ~dst:8 ~base:(reg 0) ~region:"list.head" ();
      A.place b loop;
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_key ~region:"list.node" ();
      A.brc b Isa.Instr.Ne (reg 10) (reg 1) skip;
      A.add b ~dst:9 (reg 9) (imm 1);
      A.place b skip;
      A.ld b ~dst:8 ~base:(reg 8) ~off:o_next ~region:"list.node" ();
      A.jmp b loop;
      A.place b done_;
      A.st b ~base:(reg 5) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)

let build_insert ~id ~regions =
  P.build_ar ~id ~name:"insert" ~regions (fun b ->
      (* Set-style sorted insert (duplicates skipped, so the list stays
         bounded by the key range). r0 = &head, r1 = key, r2 = fresh node.
         r8 = address of the link being examined, r9 = node it points to. *)
      let loop = A.new_label b in
      let link_here = A.new_label b in
      let done_ = A.new_label b in
      A.st b ~base:(reg 2) ~off:o_key ~src:(reg 1) ~region:"list.node" ();
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~region:"list.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) link_here;
      A.ld b ~dst:10 ~base:(reg 9) ~off:o_key ~region:"list.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (reg 1) done_;
      A.brc b Isa.Instr.Gt (reg 10) (reg 1) link_here;
      A.add b ~dst:8 (reg 9) (imm o_next);
      A.jmp b loop;
      A.place b link_here;
      A.st b ~base:(reg 2) ~off:o_next ~src:(reg 9) ~region:"list.node" ();
      A.st b ~base:(reg 8) ~src:(reg 2) ~region:"list.node" ();
      A.place b done_;
      A.halt b)

let make ?(initial = 10) ?(key_range = 24) ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let head = Layout.alloc_line ~region:"list.head" layout in
  let stats = Layout.alloc_line ~region:"list.stats" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let setup_pool = Array.init initial (fun _ -> Layout.alloc_line ~region:"list.node" layout) in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"list.node" layout))
  in
  (* The walk sites are tagged "list.node" but their first iteration
     dereferences the head line (r8 starts at &head), so the node extent
     must take the head line in. *)
  Layout.note_span layout ~region:"list.node" ~lo:head ~hi:(head + Mem.Addr.words_per_line - 1);
  let regions = Layout.extents layout in
  let count_matching = build_count ~id:0 ~regions in
  let insert = build_insert ~id:1 ~regions in
  let update_stats = fetch_add_ar ~id:2 ~name:"update_stats" ~region:"list.stats" ~regions () in
  let setup store rng =
    Mem.Store.write store head 0;
    Mem.Store.write store stats 0;
    let keys =
      List.init initial (fun _ -> Simrt.Rng.int rng key_range)
      |> List.sort_uniq compare |> Array.of_list
    in
    (* Build the list back-to-front so it is sorted ascending. *)
    let next = ref 0 in
    for i = Array.length keys - 1 downto 0 do
      let node = setup_pool.(i) in
      Mem.Store.write store (node + o_key) keys.(i);
      Mem.Store.write store (node + o_next) !next;
      next := node
    done;
    Mem.Store.write store head !next
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      let dice = Simrt.Rng.float rng 1.0 in
      let key = Simrt.Rng.int rng key_range in
      if dice < 0.35 && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op insert [ (0, head); (1, key); (2, node) ]
      end
      else if dice < 0.8 then W.op count_matching [ (0, head); (1, key); (5, mail.(tid)) ]
      else W.op update_stats [ (0, stats); (1, 1) ]
  in
  {
    W.name = "sorted-list";
    description = "sorted linked list: count-matching / insert / stats counter";
    ars = [ count_matching; insert; update_stats ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
