module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let make ?(objects = 2) () =
  let layout = Layout.create () in
  let bases = Array.init objects (fun _ -> Layout.alloc_line ~region:"mwobj" layout) in
  let regions = Layout.extents layout in
  let update =
    P.build_ar ~id:0 ~name:"mw_update" ~regions (fun b ->
        (* r0 = object base; r1..r4 = deltas for the four fields *)
        List.iter
          (fun k ->
            A.ld b ~dst:8 ~base:(reg 0) ~off:k ~region:"mwobj" ();
            A.add b ~dst:8 (reg 8) (reg (1 + k));
            A.st b ~base:(reg 0) ~off:k ~src:(reg 8) ~region:"mwobj" ())
          [ 0; 1; 2; 3 ];
        A.halt b)
  in
  let setup store _rng = Array.iter (fun base -> Mem.Store.fill store base ~len:4 0) bases in
  let make_driver ~tid:_ ~threads:_ _store rng () =
    let base = bases.(Simrt.Rng.int rng objects) in
    W.op update
      [ (0, base); (1, 1); (2, Simrt.Rng.int rng 3); (3, 1); (4, Simrt.Rng.int rng 2) ]
  in
  {
    W.name = "mwobject";
    description = "four additions to four words of one cacheline (MCAS-style)";
    ars = [ update ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
