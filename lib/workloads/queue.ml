module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Node offsets *)
let o_val = 0

let o_next = 1

let build_enqueue ~id ~regions =
  P.build_ar ~id ~name:"enqueue" ~regions (fun b ->
      (* r0 = &tail ptr, r1 = value, r2 = fresh node *)
      A.st b ~base:(reg 2) ~off:o_val ~src:(reg 1) ~region:"q.node" ();
      A.st b ~base:(reg 2) ~off:o_next ~src:(imm 0) ~region:"q.node" ();
      A.ld b ~dst:8 ~base:(reg 0) ~region:"q.tail" ();
      A.st b ~base:(reg 8) ~off:o_next ~src:(reg 2) ~region:"q.node" ();
      A.st b ~base:(reg 0) ~src:(reg 2) ~region:"q.tail" ();
      A.halt b)

let build_dequeue ~id ~regions =
  P.build_ar ~id ~name:"dequeue" ~regions (fun b ->
      (* r0 = &head ptr, r5 = mailbox. Head points at the consumed sentinel. *)
      let empty = A.new_label b in
      let done_ = A.new_label b in
      A.ld b ~dst:8 ~base:(reg 0) ~region:"q.head" ();
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_next ~region:"q.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (imm 0) empty;
      A.ld b ~dst:10 ~base:(reg 9) ~off:o_val ~region:"q.node" ();
      A.st b ~base:(reg 5) ~src:(reg 10) ~region:"mailbox" ();
      A.st b ~base:(reg 0) ~src:(reg 9) ~region:"q.head" ();
      A.jmp b done_;
      A.place b empty;
      A.st b ~base:(reg 5) ~src:(imm (-1)) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let make ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let head = Layout.alloc_line ~region:"q.head" layout in
  let tail = Layout.alloc_line ~region:"q.tail" layout in
  let sentinel = Layout.alloc_line ~region:"q.node" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"q.node" layout))
  in
  let regions = Layout.extents layout in
  let enqueue = build_enqueue ~id:0 ~regions in
  let dequeue = build_dequeue ~id:1 ~regions in
  let setup store _rng =
    Mem.Store.write store (sentinel + o_val) 0;
    Mem.Store.write store (sentinel + o_next) 0;
    Mem.Store.write store head sentinel;
    Mem.Store.write store tail sentinel
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      if Simrt.Rng.bool rng && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op enqueue [ (0, tail); (1, Simrt.Rng.int rng 1000); (2, node) ]
      end
      else W.op dequeue [ (0, head); (5, mail.(tid)) ]
  in
  {
    W.name = "queue";
    description = "linked FIFO queue: enqueue / dequeue";
    ars = [ enqueue; dequeue ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
