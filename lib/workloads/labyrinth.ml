module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* All three ARs iterate the path buffer: r0 = path buffer base, r1 = path
   length, r2 = grid base, r3 = owner id, r5 = mailbox. r8 = index,
   r9 = &path[i], r10 = cell, r11 = &grid[cell], r12 = grid value. *)

let path_prologue b =
  A.mov b ~dst:8 (imm 0)

let load_cell b =
  A.add b ~dst:9 (reg 0) (reg 8);
  A.ld b ~dst:10 ~base:(reg 9) ~region:"lab.path" ();
  A.add b ~dst:11 (reg 2) (reg 10)

let build_claim ~id ~regions =
  P.build_ar ~id ~name:"claim_path" ~regions (fun b ->
      let check = A.new_label b in
      let write = A.new_label b in
      let write_loop = A.new_label b in
      let fail = A.new_label b in
      let done_ = A.new_label b in
      (* Pass 1: all cells must be free. *)
      path_prologue b;
      A.place b check;
      load_cell b;
      A.ld b ~dst:12 ~base:(reg 11) ~region:"lab.grid" ();
      A.brc b Isa.Instr.Ne (reg 12) (imm 0) fail;
      A.add b ~dst:8 (reg 8) (imm 1);
      A.brc b Isa.Instr.Lt (reg 8) (reg 1) check;
      (* Pass 2: claim them. *)
      A.place b write;
      A.mov b ~dst:8 (imm 0);
      A.place b write_loop;
      load_cell b;
      A.st b ~base:(reg 11) ~src:(reg 3) ~region:"lab.grid" ();
      A.add b ~dst:8 (reg 8) (imm 1);
      A.brc b Isa.Instr.Lt (reg 8) (reg 1) write_loop;
      A.st b ~base:(reg 5) ~src:(imm 1) ~region:"mailbox" ();
      A.jmp b done_;
      A.place b fail;
      A.st b ~base:(reg 5) ~src:(imm 0) ~region:"mailbox" ();
      A.place b done_;
      A.halt b)

let build_erase ~id ~regions =
  P.build_ar ~id ~name:"erase_path" ~regions (fun b ->
      let loop = A.new_label b in
      let skip = A.new_label b in
      path_prologue b;
      A.place b loop;
      load_cell b;
      A.ld b ~dst:12 ~base:(reg 11) ~region:"lab.grid" ();
      A.brc b Isa.Instr.Ne (reg 12) (reg 3) skip (* only erase our own claims *);
      A.st b ~base:(reg 11) ~src:(imm 0) ~region:"lab.grid" ();
      A.place b skip;
      A.add b ~dst:8 (reg 8) (imm 1);
      A.brc b Isa.Instr.Lt (reg 8) (reg 1) loop;
      A.halt b)

let build_validate ~id ~regions =
  P.build_ar ~id ~name:"validate_path" ~regions (fun b ->
      let loop = A.new_label b in
      let skip = A.new_label b in
      path_prologue b;
      A.mov b ~dst:13 (imm 0) (* owned-cell count *);
      A.place b loop;
      load_cell b;
      A.ld b ~dst:12 ~base:(reg 11) ~region:"lab.grid" ();
      A.brc b Isa.Instr.Ne (reg 12) (reg 3) skip;
      A.add b ~dst:13 (reg 13) (imm 1);
      A.place b skip;
      A.add b ~dst:8 (reg 8) (imm 1);
      A.brc b Isa.Instr.Lt (reg 8) (reg 1) loop;
      A.st b ~base:(reg 5) ~src:(reg 13) ~region:"mailbox" ();
      A.halt b)

let make ?(grid = 24) ?(path_len = 18) () =
  let layout = Layout.create () in
  let cells = grid * grid in
  let grid_base =
    Layout.alloc_lines ~region:"lab.grid" layout
      ((cells + Mem.Addr.words_per_line - 1) / Mem.Addr.words_per_line)
  in
  let path_bufs =
    Array.init max_threads (fun _ ->
        Layout.alloc_lines ~region:"lab.path" layout
          ((path_len + Mem.Addr.words_per_line - 1) / Mem.Addr.words_per_line))
  in
  let mail = mailboxes layout ~threads:max_threads in
  let regions = Layout.extents layout in
  let claim = build_claim ~id:0 ~regions in
  let erase = build_erase ~id:1 ~regions in
  let validate = build_validate ~id:2 ~regions in
  let setup store _rng = Mem.Store.fill store grid_base ~len:cells 0 in
  let make_driver ~tid ~threads:_ store rng =
    let buf = path_bufs.(tid) in
    let owner = tid + 1 in
    let plan_path () =
      (* Random walk with wraparound; cells may repeat lines, not cells. *)
      let x = ref (Simrt.Rng.int rng grid) and y = ref (Simrt.Rng.int rng grid) in
      let seen = Hashtbl.create 32 in
      let count = ref 0 in
      while !count < path_len do
        let cell = (!y * grid) + !x in
        if not (Hashtbl.mem seen cell) then begin
          Hashtbl.add seen cell ();
          Mem.Store.write store (buf + !count) cell;
          incr count
        end;
        if Simrt.Rng.bool rng then x := (!x + 1) mod grid else y := (!y + 1) mod grid
      done
    in
    fun () ->
      let dice = Simrt.Rng.float rng 1.0 in
      if dice < 0.5 then begin
        plan_path ();
        W.op ~extra_think:(path_len * 20) claim
          [ (0, buf); (1, path_len); (2, grid_base); (3, owner); (5, mail.(tid)) ]
      end
      else if dice < 0.8 then
        W.op erase [ (0, buf); (1, path_len); (2, grid_base); (3, owner) ]
      else W.op validate [ (0, buf); (1, path_len); (2, grid_base); (3, owner); (5, mail.(tid)) ]
  in
  {
    W.name = "labyrinth";
    description = "atomic path claiming over a shared grid";
    ars = [ claim; erase; validate ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = false;
  }

let workload = make ()
