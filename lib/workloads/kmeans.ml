module W = Machine.Workload
open Common

let dims = 4

let make ?(clusters = 8) ~name () =
  let layout = Layout.create () in
  let dir = Layout.alloc_words ~region:"km.dir" layout clusters in
  let centers = Array.init clusters (fun _ -> Layout.alloc_line ~region:"km.center" layout) in
  let members = Array.init clusters (fun _ -> Layout.alloc_line ~region:"km.members" layout) in
  let member_dir = Layout.alloc_words ~region:"km.mdir" layout clusters in
  let delta = Layout.alloc_line ~region:"km.delta" layout in
  let regions = Layout.extents layout in
  let add_point =
    dir_update_ar ~id:0 ~name:"add_point" ~dir_region:"km.dir" ~record_region:"km.center"
      ~fields:
        [ (0, `Add_reg 1); (1, `Add_reg 2); (2, `Add_reg 3); (3, `Add_reg 4); (dims, `Add_reg 5) ]
      ~regions ()
  in
  let update_membership =
    dir_update_ar ~id:1 ~name:"update_membership" ~dir_region:"km.mdir" ~record_region:"km.members"
      ~fields:[ (0, `Add_reg 1); (1, `Add_reg 2) ] ~regions ()
  in
  let update_delta = fetch_add_ar ~id:2 ~name:"update_delta" ~region:"km.delta" ~regions () in
  let setup store _rng =
    Array.iteri
      (fun k base ->
        Mem.Store.write store (dir + k) base;
        Mem.Store.write store (member_dir + k) members.(k);
        Mem.Store.fill store base ~len:(dims + 1) 0;
        Mem.Store.fill store members.(k) ~len:2 0)
      centers;
    Mem.Store.write store delta 0
  in
  let make_driver ~tid:_ ~threads:_ _store rng () =
    let k = Simrt.Rng.zipf rng ~n:clusters ~theta:zipf_theta_light in
    let dice = Simrt.Rng.float rng 1.0 in
    if dice < 0.7 then
      W.op ~lock_id:(k + 1) add_point
        [
          (0, dir + k);
          (1, Simrt.Rng.int rng 100);
          (2, Simrt.Rng.int rng 100);
          (3, Simrt.Rng.int rng 100);
          (4, Simrt.Rng.int rng 100);
          (5, 1);
        ]
    else if dice < 0.9 then
      W.op ~lock_id:(k + 1) update_membership [ (0, member_dir + k); (1, 1); (2, 1) ]
    else W.op update_delta [ (0, delta); (1, 1) ]
  in
  {
    W.name = name;
    description = "centroid accumulation via a read-only centre directory";
    ars = [ add_point; update_membership; update_delta ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let high = make ~clusters:6 ~name:"kmeans-h" ()

let low = make ~clusters:48 ~name:"kmeans-l" ()
