module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

let make ?(wallets = 64) ?(theta = zipf_theta_heavy) () =
  let layout = Layout.create () in
  (* users directory: one pointer per word, packed (read-only, so sharing a
     line across entries is harmless). *)
  let users = Layout.alloc_words ~region:"users" layout wallets in
  let wallet_lines = Array.init wallets (fun _ -> Layout.alloc_line ~region:"wallet" layout) in
  let transfer =
    P.build_ar ~id:0 ~name:"transfer" ~regions:(Layout.extents layout) (fun b ->
        (* r0 = &users[from], r1 = &users[to], r2 = amount *)
        A.ld b ~dst:8 ~base:(reg 0) ~region:"users" ();
        A.ld b ~dst:9 ~base:(reg 1) ~region:"users" ();
        A.ld b ~dst:10 ~base:(reg 8) ~region:"wallet" ();
        A.sub b ~dst:10 (reg 10) (reg 2);
        A.st b ~base:(reg 8) ~src:(reg 10) ~region:"wallet" ();
        A.ld b ~dst:11 ~base:(reg 9) ~region:"wallet" ();
        A.add b ~dst:11 (reg 11) (reg 2);
        A.st b ~base:(reg 9) ~src:(reg 11) ~region:"wallet" ();
        A.halt b)
  in
  let setup store _rng =
    Array.iteri
      (fun i line ->
        Mem.Store.write store (users + i) line;
        Mem.Store.write store line 10_000)
      wallet_lines
  in
  let make_driver ~tid:_ ~threads:_ _store rng () =
    let from = Simrt.Rng.zipf rng ~n:wallets ~theta in
    let into = (from + 1 + Simrt.Rng.int rng (wallets - 1)) mod wallets in
    W.op transfer [ (0, users + from); (1, users + into); (2, 1 + Simrt.Rng.int rng 50) ]
  in
  {
    W.name = "bitcoin";
    description = "wallet transfers through a read-only user table";
    ars = [ transfer ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
