module A = Isa.Asm
module P = Isa.Program
module W = Machine.Workload
open Common

(* Node offsets. Deletion is lazy (the [alive] flag), the standard idiom for
   concurrent BSTs: removals touch one random interior line instead of
   hammering a spine. *)
let o_key = 0

let o_left = 1

let o_right = 2

let o_alive = 3

let build_insert ~id ~regions =
  P.build_ar ~id ~regions ~name:"insert" (fun b ->
      (* r0 = &root pointer, r1 = key, r2 = fresh node. Revives the key if a
         dead node for it exists. *)
      let loop = A.new_label b in
      let go_left = A.new_label b in
      let link_left = A.new_label b in
      let link_right = A.new_label b in
      let set_root = A.new_label b in
      let revive = A.new_label b in
      let done_ = A.new_label b in
      A.st b ~base:(reg 2) ~off:o_key ~src:(reg 1) ~region:"bst.node" ();
      A.st b ~base:(reg 2) ~off:o_left ~src:(imm 0) ~region:"bst.node" ();
      A.st b ~base:(reg 2) ~off:o_right ~src:(imm 0) ~region:"bst.node" ();
      A.st b ~base:(reg 2) ~off:o_alive ~src:(imm 1) ~region:"bst.node" ();
      A.ld b ~dst:8 ~base:(reg 0) ~region:"bst.root" ();
      A.brc b Isa.Instr.Eq (reg 8) (imm 0) set_root;
      A.place b loop;
      A.ld b ~dst:9 ~base:(reg 8) ~off:o_key ~region:"bst.node" ();
      A.brc b Isa.Instr.Eq (reg 9) (reg 1) revive;
      A.brc b Isa.Instr.Lt (reg 1) (reg 9) go_left;
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_right ~region:"bst.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (imm 0) link_right;
      A.mov b ~dst:8 (reg 10);
      A.jmp b loop;
      A.place b go_left;
      A.ld b ~dst:10 ~base:(reg 8) ~off:o_left ~region:"bst.node" ();
      A.brc b Isa.Instr.Eq (reg 10) (imm 0) link_left;
      A.mov b ~dst:8 (reg 10);
      A.jmp b loop;
      A.place b link_left;
      A.st b ~base:(reg 8) ~off:o_left ~src:(reg 2) ~region:"bst.node" ();
      A.jmp b done_;
      A.place b link_right;
      A.st b ~base:(reg 8) ~off:o_right ~src:(reg 2) ~region:"bst.node" ();
      A.jmp b done_;
      A.place b revive;
      A.st b ~base:(reg 8) ~off:o_alive ~src:(imm 1) ~region:"bst.node" ();
      A.jmp b done_;
      A.place b set_root;
      A.st b ~base:(reg 0) ~src:(reg 2) ~region:"bst.root" ();
      A.place b done_;
      A.halt b)

(* Shared traversal for contains/delete: walk to the key, then run [found]
   with r8 = node, or fall through to [missing]. *)
let search_body b ~found_action =
  let loop = A.new_label b in
  let go_left = A.new_label b in
  let found = A.new_label b in
  let missing = A.new_label b in
  let done_ = A.new_label b in
  A.ld b ~dst:8 ~base:(reg 0) ~region:"bst.root" ();
  A.place b loop;
  A.brc b Isa.Instr.Eq (reg 8) (imm 0) missing;
  A.ld b ~dst:9 ~base:(reg 8) ~off:o_key ~region:"bst.node" ();
  A.brc b Isa.Instr.Eq (reg 9) (reg 1) found;
  A.brc b Isa.Instr.Lt (reg 1) (reg 9) go_left;
  A.ld b ~dst:8 ~base:(reg 8) ~off:o_right ~region:"bst.node" ();
  A.jmp b loop;
  A.place b go_left;
  A.ld b ~dst:8 ~base:(reg 8) ~off:o_left ~region:"bst.node" ();
  A.jmp b loop;
  A.place b found;
  found_action ();
  A.jmp b done_;
  A.place b missing;
  A.st b ~base:(reg 3) ~src:(imm 0) ~region:"mailbox" ();
  A.place b done_;
  A.halt b

let build_contains ~id ~regions =
  P.build_ar ~id ~regions ~name:"contains" (fun b ->
      (* r0 = &root, r1 = key, r3 = mailbox: 1 when present and alive *)
      search_body b ~found_action:(fun () ->
          A.ld b ~dst:10 ~base:(reg 8) ~off:o_alive ~region:"bst.node" ();
          A.st b ~base:(reg 3) ~src:(reg 10) ~region:"mailbox" ()))

let build_delete ~id ~regions =
  P.build_ar ~id ~regions ~name:"delete" (fun b ->
      (* r0 = &root, r1 = key, r3 = mailbox: lazy delete (mark dead) *)
      search_body b ~found_action:(fun () ->
          A.st b ~base:(reg 8) ~off:o_alive ~src:(imm 0) ~region:"bst.node" ();
          A.st b ~base:(reg 3) ~src:(imm 1) ~region:"mailbox" ()))

let make ?(initial = 96) ?(key_range = 1024) ?(pool_per_thread = 512) () =
  let layout = Layout.create () in
  let root = Layout.alloc_line ~region:"bst.root" layout in
  let mail = mailboxes layout ~threads:max_threads in
  let setup_pool =
    Array.init initial (fun _ -> Layout.alloc_lines ~region:"bst.node" layout 1)
  in
  let pools =
    Array.init max_threads (fun _ ->
        Array.init pool_per_thread (fun _ -> Layout.alloc_line ~region:"bst.node" layout))
  in
  let regions = Layout.extents layout in
  let insert = build_insert ~id:0 ~regions in
  let contains = build_contains ~id:1 ~regions in
  let delete = build_delete ~id:2 ~regions in
  let setup store rng =
    Mem.Store.write store root 0;
    (* Host-side insert of the initial keys using the setup pool. *)
    let used = ref 0 in
    let insert_key key =
      if !used < Array.length setup_pool then begin
        let node = setup_pool.(!used) in
        let rec place link =
          let cur = Mem.Store.read store link in
          if cur = 0 then begin
            Mem.Store.write store link node;
            Mem.Store.write store (node + o_key) key;
            Mem.Store.write store (node + o_left) 0;
            Mem.Store.write store (node + o_right) 0;
            Mem.Store.write store (node + o_alive) 1;
            incr used
          end
          else begin
            let k = Mem.Store.read store (cur + o_key) in
            if key = k then ()
            else if key < k then place (cur + o_left)
            else place (cur + o_right)
          end
        in
        place root
      end
    in
    for _ = 1 to initial do
      insert_key (Simrt.Rng.int rng key_range)
    done
  in
  let make_driver ~tid ~threads:_ _store rng =
    let pool = pools.(tid) in
    let cursor = ref 0 in
    fun () ->
      let key = Simrt.Rng.int rng key_range in
      let dice = Simrt.Rng.float rng 1.0 in
      if dice < 0.3 && !cursor < Array.length pool then begin
        let node = pool.(!cursor) in
        incr cursor;
        W.op insert [ (0, root); (1, key); (2, node) ]
      end
      else if dice < 0.75 then W.op contains [ (0, root); (1, key); (3, mail.(tid)) ]
      else W.op delete [ (0, root); (1, key); (3, mail.(tid)) ]
  in
  {
    W.name = "bst";
    description = "binary search tree: insert / contains / lazy delete";
    ars = [ insert; contains; delete ];
    memory_words = Layout.used_words layout;
    setup;
    make_driver;
    pure_driver = true;
  }

let workload = make ()
