module Table = Report.Table
module Summary = Simrt.Summary

type options = {
  cores : int;
  ops_per_thread : int;
  seeds : int list;
  trim : int;
  retry_choices : int list;
  sched : Sched.Profile.t;
}

let default_options =
  {
    cores = 32;
    ops_per_thread = 300;
    seeds = [ 11; 23; 37; 41; 53; 67; 79; 83; 97; 101 ];
    trim = 3;
    retry_choices = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
    sched = Sched.Profile.symmetric;
  }

let quick_options =
  {
    cores = 16;
    ops_per_thread = 120;
    seeds = [ 11; 23; 37 ];
    trim = 0;
    retry_choices = [ 2; 5; 8 ];
    sched = Sched.Profile.symmetric;
  }

type suite = { options : options; rows : (string * (string * Run.t) list) list }

let apply_options (opts : options) (cfg : Machine.Config.t) =
  Machine.Config.with_sched
    { cfg with Machine.Config.cores = opts.cores; ops_per_thread = opts.ops_per_thread }
    opts.sched

let presets opts =
  [
    ("B", apply_options opts Machine.Config.baseline);
    ("P", apply_options opts Machine.Config.power_tm);
    ("C", apply_options opts Machine.Config.clear_rw);
    ("W", apply_options opts Machine.Config.clear_power);
  ]

let config_of_letter opts letter =
  match List.assoc_opt letter (presets opts) with
  | Some cfg -> cfg
  | None -> invalid_arg ("config_of_letter: unknown preset " ^ letter)

(* The whole suite is flattened into one task list whose unit of work is a
   single (config, workload, seed) simulation, submitted to a domain pool.
   [Simrt.Pool.parallel_map] preserves input order and every simulation is
   self-contained (own store/hierarchy/stats, explicit seeding), so the
   aggregation below walks the same nested cross-product in the same order
   regardless of [jobs] — results are bit-identical to the sequential run.

   With [~cache:true] each simulation is memoised on disk as one
   [Suite_cache] shard; hits are spliced back in task order, so a partially
   cached sweep still aggregates identically to an uncached one. *)
let run_suite ?(jobs = 1) ?(check = false) ?stream ?(cache = false) ?pdes
    ?(workloads = Workloads.Registry.all) ?(progress = fun _ -> ()) opts =
  (* Cache shards are keyed by (config, workload, seed) only; a PDES run is
     bit-identical by construction but must still exercise the PDES driver,
     so it never reads or writes shards. *)
  let cache = cache && Option.is_none pdes in
  let tasks =
    List.concat_map
      (fun (w : Machine.Workload.t) ->
        List.concat_map
          (fun (_letter, cfg) ->
            List.concat_map
              (fun n -> Run.sims (Machine.Config.with_retries cfg n) w ~seeds:opts.seeds)
              opts.retry_choices)
          (presets opts))
      workloads
  in
  let run_all tasks = Simrt.Pool.parallel_map ~jobs (Run.runner ?pdes ?stream ~check) tasks in
  let results =
    if not cache then Array.of_list (run_all tasks)
    else begin
      Suite_cache.prune_stale ();
      let load (s : Run.sim) =
        Suite_cache.load_shard s.Run.cfg ~workload:s.Run.workload.Machine.Workload.name
          ~seed:s.Run.seed
      in
      let tagged = List.map (fun t -> (t, load t)) tasks in
      let misses = List.filter_map (fun (t, c) -> if Option.is_none c then Some t else None) tagged in
      let hits = List.length tasks - List.length misses in
      if hits > 0 then
        progress (Printf.sprintf "cache: %d/%d shard(s) hit" hits (List.length tasks));
      let fresh = run_all misses in
      List.iter2
        (fun (s : Run.sim) stats ->
          Suite_cache.save_shard s.Run.cfg ~workload:s.Run.workload.Machine.Workload.name
            ~seed:s.Run.seed stats)
        misses fresh;
      let remaining = ref fresh in
      Array.of_list
        (List.map
           (fun (_, c) ->
             match (c, !remaining) with
             | Some s, _ -> s
             | None, s :: tl ->
                 remaining := tl;
                 s
             | None, [] -> assert false)
           tagged)
    end
  in
  let per_seed = List.length opts.seeds in
  let next = ref 0 in
  let take () =
    let runs = List.init per_seed (fun j -> results.(!next + j)) in
    next := !next + per_seed;
    runs
  in
  let rows =
    List.map
      (fun (w : Machine.Workload.t) ->
        let per_preset =
          List.map
            (fun (letter, cfg) ->
              progress (Printf.sprintf "%s/%s" w.name letter);
              let candidates =
                List.map
                  (fun n ->
                    Run.of_stats (Machine.Config.with_retries cfg n) w ~trim:opts.trim (take ()))
                  opts.retry_choices
              in
              (letter, Run.best candidates))
            (presets opts)
        in
        (w.name, per_preset))
      workloads
  in
  { options = opts; rows }

let get suite workload letter =
  match List.assoc_opt workload suite.rows with
  | None -> invalid_arg ("suite: unknown workload " ^ workload)
  | Some per -> (
      match List.assoc_opt letter per with
      | Some r -> r
      | None -> invalid_arg ("suite: unknown preset " ^ letter))

let letters = [ "B"; "P"; "C"; "W" ]

let workload_names suite = List.map fst suite.rows

(* Append a geomean row computed from per-workload values. *)
let geo values = Summary.geomean values

(* Accumulate per-key value lists while walking the suite. *)
let add_to_bucket tbl key v =
  Hashtbl.replace tbl key (v :: Option.value (Hashtbl.find_opt tbl key) ~default:[])

let bucket tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:[]

(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: Characterization of ARs (static analysis)"
      ~columns:[ "Benchmark"; "# of ARs"; "Immutable"; "Likely immutable"; "Mutable" ]
  in
  List.iter
    (fun (w : Machine.Workload.t) ->
      let classified = Clear.Analysis.classify_workload w.ars in
      let im, li, mu = Clear.Analysis.count classified in
      Table.add_row t
        [ w.name; string_of_int (List.length w.ars); string_of_int im; string_of_int li; string_of_int mu ])
    Workloads.Registry.all;
  t

let table2 opts =
  let t = Table.create ~title:"Table 2: Baseline system configuration" ~columns:[ "Setting" ] in
  let cfg = config_of_letter opts "B" in
  String.split_on_char '\n' (Format.asprintf "%a" Machine.Config.pp cfg)
  |> List.iter (fun line -> Table.add_row t [ line ]);
  t

let fig1 suite =
  let t =
    Table.create ~title:"Figure 1: ARs that keep their footprint on the first retry (baseline)"
      ~columns:[ "Benchmark"; "stable-footprint ratio" ]
  in
  let values =
    List.map
      (fun name ->
        let r = get suite name "B" in
        Table.add_row t [ name; Table.f2 r.Run.fig1_ratio ];
        r.Run.fig1_ratio)
      (workload_names suite)
  in
  Table.add_separator t;
  Table.add_row t [ "average"; Table.f2 (Summary.mean values) ];
  t

let normalised_table suite ~title ~value =
  let t = Table.create ~title ~columns:("Benchmark" :: letters) in
  let per_letter = Hashtbl.create 4 in
  List.iter
    (fun name ->
      let base = value (get suite name "B") in
      let cells =
        List.map
          (fun letter ->
            let v = value (get suite name letter) in
            let norm = if base > 0.0 then v /. base else 0.0 in
            add_to_bucket per_letter letter norm;
            Table.f3 norm)
          letters
      in
      Table.add_row t (name :: cells))
    (workload_names suite);
  Table.add_separator t;
  Table.add_row t
    ("geomean" :: List.map (fun letter -> Table.f3 (geo (bucket per_letter letter))) letters);
  t

let fig8 suite =
  normalised_table suite ~title:"Figure 8: Normalized execution time (lower is better)"
    ~value:(fun r -> r.Run.cycles)

let fig8_discovery suite =
  let d =
    Table.create ~title:"Figure 8 (companion): time running aborted in discovery"
      ~columns:("Benchmark" :: letters)
  in
  List.iter
    (fun name ->
      Table.add_row d
        (name :: List.map (fun letter -> Table.pct (get suite name letter).Run.discovery_fraction) letters))
    (workload_names suite);
  d

let fig9 suite =
  let t =
    Table.create ~title:"Figure 9: Aborts per committed transaction" ~columns:("Benchmark" :: letters)
  in
  let per_letter = Hashtbl.create 4 in
  List.iter
    (fun name ->
      Table.add_row t
        (name
        :: List.map
             (fun letter ->
               let v = (get suite name letter).Run.aborts_per_commit in
               add_to_bucket per_letter letter v;
               Table.f2 v)
             letters))
    (workload_names suite);
  Table.add_separator t;
  Table.add_row t
    ("average"
    :: List.map (fun letter -> Table.f2 (Summary.mean (bucket per_letter letter))) letters);
  t

let fig10 suite =
  normalised_table suite ~title:"Figure 10: Normalized energy consumption (lower is better)"
    ~value:(fun r -> r.Run.energy)

let fig11 suite =
  let t =
    Table.create ~title:"Figure 11: Abort breakdown per type (aborts per commit)"
      ~columns:[ "Benchmark"; "Cfg"; "MemConflict"; "ExplicitFB"; "OtherFB"; "Others" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun letter ->
          let r = get suite name letter in
          let cat c = List.assoc c r.Run.abort_categories in
          Table.add_row t
            [
              name;
              letter;
              Table.f2 (cat Machine.Abort.Cat_memory_conflict);
              Table.f2 (cat Machine.Abort.Cat_explicit_fallback);
              Table.f2 (cat Machine.Abort.Cat_other_fallback);
              Table.f2 (cat Machine.Abort.Cat_others);
            ])
        letters;
      Table.add_separator t)
    (workload_names suite);
  t

let fig12 suite =
  let t =
    Table.create ~title:"Figure 12: Commit breakdown per mode"
      ~columns:[ "Benchmark"; "Cfg"; "Speculative"; "S-CL"; "NS-CL"; "Fallback" ]
  in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun name ->
      List.iter
        (fun letter ->
          let r = get suite name letter in
          let m mode = List.assoc mode r.Run.commit_mode_fractions in
          List.iter
            (fun mode -> add_to_bucket totals (letter, mode) (m mode))
            Machine.Stats.all_commit_modes;
          Table.add_row t
            [
              name;
              letter;
              Table.pct (m Machine.Stats.Speculative);
              Table.pct (m Machine.Stats.Scl);
              Table.pct (m Machine.Stats.Nscl);
              Table.pct (m Machine.Stats.Fallback_mode);
            ])
        letters;
      Table.add_separator t)
    (workload_names suite);
  List.iter
    (fun letter ->
      let avg mode = Summary.mean (bucket totals (letter, mode)) in
      Table.add_row t
        [
          "average";
          letter;
          Table.pct (avg Machine.Stats.Speculative);
          Table.pct (avg Machine.Stats.Scl);
          Table.pct (avg Machine.Stats.Nscl);
          Table.pct (avg Machine.Stats.Fallback_mode);
        ])
    letters;
  t

let fig13 suite =
  let t =
    Table.create ~title:"Figure 13: Commit breakdown per retries (excluding 0-retry commits)"
      ~columns:[ "Benchmark"; "Cfg"; "1-retry"; "n-retry"; "Fallback" ]
  in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun name ->
      List.iter
        (fun letter ->
          let r = get suite name letter in
          let one, many, fb = r.Run.retry_breakdown in
          add_to_bucket totals letter (one, many, fb);
          Table.add_row t [ name; letter; Table.pct one; Table.pct many; Table.pct fb ])
        letters;
      Table.add_separator t)
    (workload_names suite);
  List.iter
    (fun letter ->
      let rows = bucket totals letter in
      let avg f = Summary.mean (List.map f rows) in
      Table.add_row t
        [
          "average";
          letter;
          Table.pct (avg (fun (a, _, _) -> a));
          Table.pct (avg (fun (_, b, _) -> b));
          Table.pct (avg (fun (_, _, c) -> c));
        ])
    letters;
  t

let headline suite =
  let names = workload_names suite in
  let mean_over letter f = Summary.mean (List.map (fun n -> f (get suite n letter)) names) in
  let norm_geo letter f =
    geo
      (List.map
         (fun n ->
           let b = f (get suite n "B") in
           let v = f (get suite n letter) in
           if b > 0.0 then v /. b else 1.0)
         names)
  in
  let t =
    Table.create ~title:"Headline numbers: paper vs. measured"
      ~columns:[ "Metric"; "Paper"; "Measured" ]
  in
  Table.add_row t
    [
      "single-retry commits, baseline";
      "35.4%";
      Table.pct (mean_over "B" (fun r -> let a, _, _ = r.Run.retry_breakdown in a));
    ];
  Table.add_row t
    [
      "single-retry commits, CLEAR+PowerTM";
      "64.4%";
      Table.pct (mean_over "W" (fun r -> let a, _, _ = r.Run.retry_breakdown in a));
    ];
  Table.add_row t
    [
      "fallback share, baseline";
      "37.2%";
      Table.pct (mean_over "B" (fun r -> let _, _, c = r.Run.retry_breakdown in c));
    ];
  Table.add_row t
    [
      "fallback share, CLEAR+PowerTM";
      "15.4%";
      Table.pct (mean_over "W" (fun r -> let _, _, c = r.Run.retry_breakdown in c));
    ];
  Table.add_row t
    [ "aborts/commit, baseline"; "7.9"; Table.f2 (mean_over "B" (fun r -> r.Run.aborts_per_commit)) ];
  Table.add_row t
    [
      "aborts/commit, CLEAR(rw)"; "1.6"; Table.f2 (mean_over "C" (fun r -> r.Run.aborts_per_commit));
    ];
  Table.add_row t
    [
      "exec time vs baseline, CLEAR+PowerTM";
      "-35.0%";
      Printf.sprintf "%+.1f%%" (100.0 *. (norm_geo "W" (fun r -> r.Run.cycles) -. 1.0));
    ];
  Table.add_row t
    [
      "exec time vs baseline, PowerTM";
      "-12.7%";
      Printf.sprintf "%+.1f%%" (100.0 *. (norm_geo "P" (fun r -> r.Run.cycles) -. 1.0));
    ];
  Table.add_row t
    [
      "energy vs baseline, CLEAR(rw)";
      "-26.4%";
      Printf.sprintf "%+.1f%%" (100.0 *. (norm_geo "C" (fun r -> r.Run.energy) -. 1.0));
    ];
  Table.add_row t
    [
      "energy vs baseline, CLEAR+PowerTM";
      "-30.6%";
      Printf.sprintf "%+.1f%%" (100.0 *. (norm_geo "W" (fun r -> r.Run.energy) -. 1.0));
    ];
  t
