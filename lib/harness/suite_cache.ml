let dir = "_cache"

let build_id_lazy = lazy (Digest.to_hex (Digest.file Sys.executable_name))

let build_id () = Lazy.force build_id_lazy

(* One shard per (configuration, workload, seed) simulation. The digest
   covers the fully seeded configuration (so any parameter change misses),
   the workload name, the seed, and the executable's own digest. *)
let shard_path (cfg : Machine.Config.t) ~workload ~seed =
  let cfg = Machine.Config.with_seed cfg seed in
  let key =
    Digest.to_hex (Digest.string (Marshal.to_string (cfg, workload, seed, build_id ()) []))
  in
  Filename.concat dir ("shard-" ^ key ^ ".bin")

(* The first Marshal item is a plain string, so it deserialises safely even
   when the rest of the file was written by a different build of the
   executable (whose in-memory representation of [Stats.t] may differ). *)
let read_build_id path =
  match In_channel.with_open_bin path (fun ic -> (Marshal.from_channel ic : string)) with
  | id -> Some id
  | exception _ -> None

(* Open-system runs never touch the cache: a shard holds only Stats.t, so a
   hit would silently drop the request-lifecycle data (latency percentiles)
   the run exists to produce — the same reasoning that makes PDES runs
   bypass the cache in Experiments.run_suite. *)
let cacheable (cfg : Machine.Config.t) = cfg.Machine.Config.openloop = None

let load_shard cfg ~workload ~seed : Machine.Stats.t option =
  if not (cacheable cfg) then None
  else
  let path = shard_path cfg ~workload ~seed in
  if not (Sys.file_exists path) then None
  else
    match
      In_channel.with_open_bin path (fun ic ->
          let id : string = Marshal.from_channel ic in
          if id <> build_id () then None else Some (Marshal.from_channel ic : Machine.Stats.t))
    with
    | s -> s
    | exception _ -> None

let is_cache_entry name =
  (let is_prefix p = String.length name > String.length p && String.sub name 0 (String.length p) = p in
   (* legacy whole-suite entries are cleaned up alongside shards *)
   is_prefix "shard-" || is_prefix "suite-")
  && Filename.check_suffix name ".bin"

let prune_stale () =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if is_cache_entry name then begin
            let p = Filename.concat dir name in
            match read_build_id p with
            | Some id when id = build_id () -> ()
            | Some _ | None -> ( try Sys.remove p with Sys_error _ -> ())
          end)
        names

let save_shard cfg ~workload ~seed (s : Machine.Stats.t) =
  if not (cacheable cfg) then ()
  else begin
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = shard_path cfg ~workload ~seed in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Marshal.to_channel oc (build_id ()) [];
      Marshal.to_channel oc s []);
  Sys.rename tmp path
  end

let clear () =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          if is_cache_entry name then (
            match Sys.remove (Filename.concat dir name) with
            | () -> n + 1
            | exception Sys_error _ -> n)
          else n)
        0 names
