(** Regeneration of every table and figure of the paper's evaluation.

    [run_suite] executes all four configurations (B = requester-wins,
    P = PowerTM, C = CLEAR/requester-wins, W = CLEAR/PowerTM) over the
    benchmark set once; the [figN] functions derive the corresponding
    paper artefact from that single suite, so a full reproduction costs one
    sweep. *)

type options = {
  cores : int;
  ops_per_thread : int;
  seeds : int list;
  trim : int;
  retry_choices : int list;
      (** the paper sweeps 1..10 and keeps the best per application *)
  sched : Sched.Profile.t;
      (** schedule shape applied to every configuration of the sweep;
          {!Sched.Profile.symmetric} (the default in both option presets)
          reproduces the paper's machine. The profile is part of each
          simulation's {!Suite_cache} shard key, so sweeps under different
          profiles never share cached results. *)
}

val default_options : options
(** Paper-faithful-ish: 32 cores, 10 seeds trimmed by 3, retries 1..10.
    Expensive. *)

val quick_options : options
(** CI-sized: fewer cores/ops/seeds, a short retry sweep. *)

type suite = {
  options : options;
  rows : (string * (string * Run.t) list) list;
      (** per workload, the four presets' measurements keyed by letter *)
}

val run_suite :
  ?jobs:int ->
  ?check:bool ->
  ?stream:bool ->
  ?cache:bool ->
  ?pdes:Machine.Pdes.t ->
  ?workloads:Machine.Workload.t list ->
  ?progress:(string -> unit) ->
  options ->
  suite
(** Run the whole sweep, flattened into one (config, workload, seed) task
    list executed on [jobs] worker domains (default 1 = sequential). Any job
    count yields bit-identical results: every simulation is self-contained
    and explicitly seeded, and aggregation order does not depend on [jobs].
    With [~check:true] every simulation in the sweep is validated by the
    execution oracle inside the worker; the first violation raises
    {!Run.Check_failed}. Adding [~stream:true] runs those oracles online
    ({!Check.Stream}) with bounded checker memory and an identical verdict. With [~cache:true] each simulation is memoised on
    disk as one {!Suite_cache} shard keyed by (config, workload, seed) and
    the executable digest; only missing shards are simulated, and hits are
    spliced back in task order so partially cached sweeps aggregate
    bit-identically. Callers that validate with the oracle should not also
    pass [~cache:true] — a shard hit would skip validation. With [?pdes]
    every simulation runs under the windowed conservative PDES engine driver
    (bit-identical results); PDES runs bypass the shard cache entirely so
    the driver is actually exercised. *)

val config_of_letter : options -> string -> Machine.Config.t

val letters : string list
(** The four preset letters in presentation order: B, P, C, W. *)

(** {1 Static artefacts} *)

val table1 : unit -> Report.Table.t
(** AR characterisation via the static mutability analysis. *)

val table2 : options -> Report.Table.t
(** System configuration. *)

(** {1 Figures derived from a suite} *)

val fig1 : suite -> Report.Table.t
(** Ratio of first-retry ARs with a stable ≤ ALT footprint (measured on the
    baseline configuration). *)

val fig8 : suite -> Report.Table.t
(** Normalised execution time. *)

val fig8_discovery : suite -> Report.Table.t
(** Companion to Figure 8: share of time spent running aborted
    discoveries. *)

val fig9 : suite -> Report.Table.t
(** Aborts per committed transaction. *)

val fig10 : suite -> Report.Table.t
(** Normalised energy. *)

val fig11 : suite -> Report.Table.t
(** Abort breakdown per type (per committed transaction). *)

val fig12 : suite -> Report.Table.t
(** Commit breakdown per execution mode. *)

val fig13 : suite -> Report.Table.t
(** Commit breakdown per retry count (excluding 0-retry commits). *)

val headline : suite -> Report.Table.t
(** The abstract's headline numbers, paper vs. measured. *)
