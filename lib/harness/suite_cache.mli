(** On-disk memoisation of suite sweeps, sharded per simulation.

    One shard lives at [_cache/shard-<digest>.bin] per (configuration,
    workload, seed) simulation; the digest covers the fully seeded
    configuration, the workload name, the seed and the executable's own
    digest — any rebuild or parameter change misses, and editing one
    workload only invalidates that workload's shards (the digest of every
    other (config, workload, seed) triple is unchanged once the rebuilt
    executable writes them afresh; ROADMAP "sharded suite cache").

    Entries are written as two Marshal items: the build id (a plain string,
    safe to read back from any build) followed by the {!Machine.Stats.t}.
    {!prune_stale} deletes entries left behind by previous builds, so the
    directory never accumulates unloadable files; legacy whole-suite
    [suite-*.bin] entries are cleaned up by the same sweep. *)

val dir : string
(** ["_cache"], relative to the working directory. *)

val build_id : unit -> string
(** Hex digest of the running executable; memoised. *)

val shard_path : Machine.Config.t -> workload:string -> seed:int -> string
(** Shard path for one simulation ([seed] is applied to the configuration
    before digesting, so callers may pass the unseeded sweep config). *)

val cacheable : Machine.Config.t -> bool
(** [false] for open-system configurations ([openloop] set): a shard holds
    only a {!Machine.Stats.t}, so a hit would silently drop the
    request-lifecycle data the run exists to produce. Such configurations
    bypass the cache in both directions — {!load_shard} misses and
    {!save_shard} is a no-op — mirroring how PDES runs bypass it in
    [Experiments.run_suite]. *)

val load_shard : Machine.Config.t -> workload:string -> seed:int -> Machine.Stats.t option
(** [None] when the shard is missing, unreadable, written by a different
    build, or the configuration is not {!cacheable}. *)

val save_shard : Machine.Config.t -> workload:string -> seed:int -> Machine.Stats.t -> unit
(** Atomic write (temp file + rename); no-op when not {!cacheable}. *)

val prune_stale : unit -> unit
(** Delete every cache entry whose embedded build id differs from the
    current executable's. *)

val clear : unit -> int
(** Delete every cache entry in {!dir}; returns how many were removed. *)
