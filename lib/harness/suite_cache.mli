(** On-disk memoisation of suite sweeps.

    A cached suite lives at [_cache/suite-<digest>.bin] where the digest
    covers the sweep options, the workload list and the executable's own
    digest — any rebuild or parameter change misses. Entries are written as
    two Marshal items: the build id (a plain string, safe to read back from
    any build) followed by the suite. The embedded id lets {!save} prune
    entries left behind by previous builds, so the directory never
    accumulates unloadable files. *)

val dir : string
(** ["_cache"], relative to the working directory. *)

val build_id : unit -> string
(** Hex digest of the running executable; memoised. *)

val path : Experiments.options -> workload_names:string list -> string
(** Cache-file path for one sweep. *)

val load : string -> Experiments.suite option
(** [None] when the file is missing, unreadable, or written by a different
    build. *)

val save : string -> Experiments.suite -> unit
(** Atomic write (temp file + rename), then prune every [suite-*.bin] in
    {!dir} whose embedded build id differs from the current executable's. *)

val clear : unit -> int
(** Delete every [suite-*.bin] in {!dir}; returns how many were removed. *)
