(** Multi-seed measurement of one (configuration, workload) pair.

    Follows the paper's protocol: run with several seeds, report the trimmed
    mean after removing the farthest outliers.

    The unit of work throughout the harness is a single {!sim} — one
    (configuration, workload, seed) simulation. Each simulation builds its own
    store/hierarchy/stats and draws from its own seeded RNG, so any set of
    sims can run concurrently (e.g. via {!Simrt.Pool}) and aggregate to
    bit-identical results as long as the per-seed order handed to
    {!of_stats} is preserved. *)

type t = {
  workload : string;
  preset : string;  (** "B" | "P" | "C" | "W" *)
  retries : int;  (** the retry limit the measurement used *)
  cycles : float;
  energy : float;
  aborts_per_commit : float;
  discovery_fraction : float;
      (** share of total time spent executing aborted discoveries *)
  abort_categories : (Machine.Abort.category * float) list;
      (** mean aborts per committed transaction, by category *)
  commit_mode_fractions : (Machine.Stats.commit_mode * float) list;
  first_try_ratio : float;
  single_retry_ratio : float;
  fallback_ratio : float;
  retry_breakdown : float * float * float;
      (** among retried commits: one retry / several / fallback *)
  fig1_ratio : float;
}

(** {1 Single-simulation unit of work} *)

type sim = { cfg : Machine.Config.t; workload : Machine.Workload.t; seed : int }
(** One independent simulation. *)

val sims : Machine.Config.t -> Machine.Workload.t -> seeds:int list -> sim list
(** The per-seed task list of one (configuration, workload) pair, in seed
    order. *)

val run_sim : ?pdes:Machine.Pdes.t -> sim -> Machine.Stats.t
(** Run one simulation to completion. Pure with respect to global state:
    safe to call from several domains at once. [?pdes] selects the windowed
    conservative PDES engine driver; output is bit-identical either way. *)

exception Check_failed of string
(** Raised by checked runs when an oracle fails; the payload identifies the
    (workload, preset, seed) triple and contains the full verdict report. *)

val static_gate_of_config : Machine.Config.t -> Staticcheck.Gate.t
(** A static soundness gate matching the configuration's table geometry
    (ALT/SQ/ROB/CRT sizes and cache parameters). *)

val run_sim_checked :
  ?pdes:Machine.Pdes.t -> ?stream:bool -> sim -> Machine.Stats.t * Check.Verdict.t
(** Run one simulation with witness capture and evaluate all four oracles
    (serializability, sequential replay, lock safety, static soundness
    gate) on the result. The stats are bit-identical to {!run_sim}'s.
    With [~stream:true] the oracles run online against {!Check.Stream} —
    state retires behind the committed frontier, so peak checker memory is
    O(live lines) instead of O(history); the verdict is identical either
    way (DESIGN.md §14). *)

val run_sim_enforce : ?pdes:Machine.Pdes.t -> ?stream:bool -> sim -> Machine.Stats.t
(** Like {!run_sim} but raises {!Check_failed} unless the verdict is clean.
    Drop-in replacement for {!run_sim} in pool task lists. *)

val runner : ?pdes:Machine.Pdes.t -> ?stream:bool -> check:bool -> sim -> Machine.Stats.t
(** {!run_sim_enforce} when [check], {!run_sim} otherwise. *)

val of_stats : Machine.Config.t -> Machine.Workload.t -> trim:int -> Machine.Stats.t list -> t
(** Aggregate per-seed runs (in seed order) into a measurement. *)

val best : t list -> t
(** The candidate with the fewest cycles; earliest wins ties. Raises
    [Invalid_argument] on an empty list. *)

(** {1 Measurements} *)

val measure :
  ?jobs:int ->
  ?check:bool ->
  ?pdes:Machine.Pdes.t ->
  Machine.Config.t ->
  Machine.Workload.t ->
  seeds:int list ->
  trim:int ->
  t
(** One measurement at the configuration's own retry limit, running the
    per-seed simulations on [jobs] domains (default 1 = inline). With
    [~check:true] every simulation is validated by the execution oracle;
    a violation raises {!Check_failed} out of the pool. *)

val measure_best_retries :
  ?jobs:int ->
  ?check:bool ->
  ?pdes:Machine.Pdes.t ->
  Machine.Config.t ->
  Machine.Workload.t ->
  seeds:int list ->
  trim:int ->
  retry_choices:int list ->
  t
(** The paper's methodology: sweep the retry limit and keep the
    best-performing setting for this (configuration, application) pair.
    The whole retry-choice x seed cross-product is one flat task list. *)
