module Stats = Machine.Stats
module Summary = Simrt.Summary

type t = {
  workload : string;
  preset : string;
  retries : int;
  cycles : float;
  energy : float;
  aborts_per_commit : float;
  discovery_fraction : float;
  abort_categories : (Machine.Abort.category * float) list;
  commit_mode_fractions : (Machine.Stats.commit_mode * float) list;
  first_try_ratio : float;
  single_retry_ratio : float;
  fallback_ratio : float;
  retry_breakdown : float * float * float;
  fig1_ratio : float;
}

type sim = { cfg : Machine.Config.t; workload : Machine.Workload.t; seed : int }

let sims cfg workload ~seeds = List.map (fun seed -> { cfg; workload; seed }) seeds

let run_sim ?pdes { cfg; workload; seed } =
  Machine.Engine.run_workload ?pdes (Machine.Config.with_seed cfg seed) workload

exception Check_failed of string

(* The static verifier's view of the run's table geometry; every checked
   simulation also asserts dynamic-footprint ⊆ static-may-set and
   dynamic-decision ∈ static-envelope (DESIGN.md §10). *)
let static_gate_of_config (cfg : Machine.Config.t) =
  Staticcheck.Gate.create
    (Staticcheck.Predict.params_of ~alt_capacity:cfg.Machine.Config.alt_capacity
       ~sq_entries:cfg.sq_entries ~rob_entries:cfg.rob_entries ~crt_entries:cfg.crt_entries
       ~crt_ways:cfg.crt_ways cfg.mem_params)

let run_sim_checked ?pdes ?(stream = false) { cfg; workload; seed } =
  let cfg = Machine.Config.with_seed cfg seed in
  let cores = cfg.Machine.Config.cores in
  if stream then begin
    (* Online path: the collector forwards every emission into the
       incremental oracles and retains nothing; the verdict is identical
       to the post hoc branch below (DESIGN.md §14). *)
    let str = Check.Stream.create ~static_gate:(static_gate_of_config cfg) ~cores () in
    let collector = Check.Collector.create_streaming ~cores (Check.Stream.sink str) in
    let engine = Machine.Engine.create ~check:collector cfg workload in
    let stats = Machine.Engine.run ?pdes engine in
    let final = Mem.Store.snapshot (Machine.Engine.store engine) in
    (stats, Check.Verdict.of_stream str ~final)
  end
  else begin
    let collector = Check.Collector.create ~cores in
    let engine = Machine.Engine.create ~check:collector cfg workload in
    let stats = Machine.Engine.run ?pdes engine in
    let final = Mem.Store.snapshot (Machine.Engine.store engine) in
    (stats, Check.Verdict.evaluate ~static_gate:(static_gate_of_config cfg) collector ~final)
  end

(* Pool-friendly variant: same signature as [run_sim], turns a failed verdict
   into an exception (which [Simrt.Pool.parallel_map] propagates to the
   submitting domain). *)
let run_sim_enforce ?pdes ?stream sim =
  let stats, verdict = run_sim_checked ?pdes ?stream sim in
  if Check.Verdict.ok verdict then stats
  else
    raise
      (Check_failed
         (Printf.sprintf "%s preset %s seed %d:\n%s" sim.workload.Machine.Workload.name
            (Machine.Config.preset_letter sim.cfg) sim.seed
            (Check.Verdict.to_string verdict)))

let runner ?pdes ?stream ~check = if check then run_sim_enforce ?pdes ?stream else run_sim ?pdes

let tmean ~trim xs = Summary.trimmed_mean ~trim xs

(* Aggregate the per-seed runs of one (config, workload) pair. The seed order
   of [runs] is part of the result: trimmed means are computed over the list
   as given, so the caller must keep runs in the seed-list order for results
   to be reproducible across job counts. *)
let of_stats (cfg : Machine.Config.t) (workload : Machine.Workload.t) ~trim runs =
  let over f = tmean ~trim (List.map f runs) in
  let cycles = over (fun s -> float_of_int (Stats.total_cycles s)) in
  let energy =
    tmean ~trim
      (List.map
         (fun s ->
           Energy.Model.total Energy.Model.default ~cores:cfg.cores ~cycles:(Stats.total_cycles s)
             (Stats.counters s))
         runs)
  in
  let abort_categories =
    List.map
      (fun cat ->
        ( cat,
          over (fun s ->
              let commits = max 1 (Stats.commits s) in
              float_of_int (Stats.aborts_in_category s cat) /. float_of_int commits) ))
      Machine.Abort.all_categories
  in
  let commit_mode_fractions =
    List.map
      (fun mode ->
        ( mode,
          over (fun s ->
              let commits = max 1 (Stats.commits s) in
              float_of_int (Stats.commits_in_mode s mode) /. float_of_int commits) ))
      Machine.Stats.all_commit_modes
  in
  let breakdown =
    let b1 = over (fun s -> let a, _, _ = Stats.retry_breakdown s in a) in
    let bn = over (fun s -> let _, b, _ = Stats.retry_breakdown s in b) in
    let bf = over (fun s -> let _, _, c = Stats.retry_breakdown s in c) in
    (b1, bn, bf)
  in
  {
    workload = workload.Machine.Workload.name;
    preset = Machine.Config.preset_letter cfg;
    retries = cfg.max_retries;
    cycles;
    energy;
    aborts_per_commit = over Stats.aborts_per_commit;
    discovery_fraction =
      over (fun s ->
          let total = max 1 (Stats.total_cycles s) * cfg.cores in
          float_of_int (Stats.failed_discovery_cycles s) /. float_of_int total);
    abort_categories;
    commit_mode_fractions;
    first_try_ratio = over Stats.first_try_ratio;
    single_retry_ratio = over Stats.single_retry_ratio;
    fallback_ratio = over Stats.fallback_ratio;
    retry_breakdown = breakdown;
    fig1_ratio = over Stats.fig1_ratio;
  }

let best = function
  | [] -> invalid_arg "Run.best: empty candidate list"
  | hd :: tl -> List.fold_left (fun best m -> if m.cycles < best.cycles then m else best) hd tl

let measure ?(jobs = 1) ?(check = false) ?pdes (cfg : Machine.Config.t)
    (workload : Machine.Workload.t) ~seeds ~trim =
  let runs = Simrt.Pool.parallel_map ~jobs (runner ?pdes ~check) (sims cfg workload ~seeds) in
  of_stats cfg workload ~trim runs

let measure_best_retries ?(jobs = 1) ?(check = false) ?pdes cfg workload ~seeds ~trim ~retry_choices =
  match retry_choices with
  | [] -> invalid_arg "measure_best_retries: empty retry_choices"
  | choices ->
      let tasks =
        List.concat_map
          (fun n -> sims (Machine.Config.with_retries cfg n) workload ~seeds)
          choices
      in
      let results = Array.of_list (Simrt.Pool.parallel_map ~jobs (runner ?pdes ~check) tasks) in
      let per_seed = List.length seeds in
      let candidates =
        List.mapi
          (fun i n ->
            let runs = List.init per_seed (fun j -> results.((i * per_seed) + j)) in
            of_stats (Machine.Config.with_retries cfg n) workload ~trim runs)
          choices
      in
      best candidates
