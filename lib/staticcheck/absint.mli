(** Abstract interpreter over mini-ISA bodies (DESIGN.md §10).

    [analyze] runs a widening/narrowing interval+taint fixpoint over an AR
    body and produces a {!summary}: sound over-approximations of the lines
    any single attempt may read or write, execution-count bounds, the
    taint-derived indirection regions (bit-for-bit identical to
    {!Clear.Analysis.indirections} — same reachability, same transfer, same
    collection points), and a must-indirection flag that under-approximates
    the engine's dynamic taint tracking from below. *)

type bound = Finite of int | Unbounded

val bound_le : bound -> int -> bool

val pp_bound : Format.formatter -> bound -> unit

val bound_to_string : bound -> string

type component =
  | Cwords of { lo : int; hi : int }  (** absolute word addresses in [lo, hi] *)
  | Crel of { reg : Isa.Instr.reg; lo : int; hi : int }
      (** word addresses in [init(reg) + lo, init(reg) + hi] *)
  | Cregion of { lo : int; hi : int; region : string }
      (** indirection-lost site bounded by its region tag's declared word
          extent [lo, hi] (from {!Isa.Program.ar} [regions]); sound as long
          as tagged accesses stay inside their region, which the dynamic
          gate verifies on every checked run *)
  | Cany  (** statically unbounded *)

type site = {
  index : int;  (** instruction index of the load/store *)
  written : bool;
  region : string;  (** normalised region tag ({!Clear.Analysis.anon_region} when empty) *)
  component : component;
  in_cycle : bool;  (** the site sits on a CFG cycle and may re-execute *)
}

type summary = {
  name : string;
  body : Isa.Instr.t array;
  regions : (string * (int * int)) list;  (** region extent table the sites were built against *)
  reachable : bool array;
  in_cycle : bool array;
  in_states : Value.t array array;  (** narrowed per-register state before each instruction *)
  sites : site list;  (** reachable memory sites, by index *)
  read_lines : bound;  (** distinct lines one attempt may read *)
  write_lines : bound;
  footprint_lines : bound;  (** distinct lines one attempt may touch *)
  store_execs : bound;  (** store instructions one attempt may execute *)
  min_store_execs : int;  (** fewest stores on any entry-to-Halt path; [max_int] if no Halt *)
  max_instr_execs : bound;
  indirections : string list;  (** = [Clear.Analysis.indirections] on validated ARs *)
  must_indirect : bool;
      (** every entry-to-Halt path performs an indirection the engine's
          dynamic taint bits are guaranteed to flag *)
  falls_off_end : bool;  (** some reachable path runs past the last instruction *)
}

val analyze : ?name:string -> ?regions:(string * (int * int)) list -> Isa.Instr.t array -> summary
(** Accepts raw (possibly invalid) bodies: out-of-range branch targets
    simply contribute no CFG edge; the lint pass reports them. [regions]
    supplies per-region word extents used to refine indirection-lost sites
    into {!Cregion} components. *)

val analyze_ar : Isa.Program.ar -> summary

val line_bound : site list -> bound
(** Distinct-line bound for an arbitrary site subset (e.g. one region's
    write sites), with the same counting rules the summary bounds use. *)

val line_in_sites : init:(Isa.Instr.reg -> int) -> site list -> Mem.Addr.line -> bool
(** Concrete containment check used by the soundness gate: is [line] within
    some site's component once initial registers are bound by [init]? *)
