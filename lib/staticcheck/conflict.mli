(** Static pairwise AR may-conflict matrix.

    For every ordered pair of a workload's atomic regions, a sound
    line-interval cover of the cache lines on which simultaneous attempts
    can conflict (doom each other, or NACK against a cacheline lock). A
    conflict needs one side to hold the line exclusively — a speculative or
    fallback write, or {e any} footprint line while running under cacheline
    locking — while the other side touches it at all, so with [X] the
    exclusive set and [RW] the full footprint cover:

    {[ may_conflict a b = (X_a ∩ RW_b) ∪ (RW_a ∩ X_b) ]}

    [X = RW] when the region is CL-capable (its decision envelope admits
    NS-CL or S-CL), else [X = W]. Sites the interval domain lost are bounded
    by their region tag's declared extent where one exists; otherwise the
    cover degrades to [Top] (conflict anywhere — trivially sound). The
    dynamic gate ({!Gate.check_conflict}) validates the matrix on every
    checked run: each observed conflict event's line must lie in the static
    cover for the aggressor/victim AR pair. *)

type cover =
  | Top  (** any line — the analysis could not bound the pair *)
  | Spans of (int * int) array  (** sorted, disjoint, inclusive line intervals *)

val inter : cover -> cover -> cover
val union : cover -> cover -> cover
val is_empty : cover -> bool

val mem : cover -> int -> bool
(** Is [line] inside the cover? *)

val cover_lines : cover -> int option
(** Total lines covered; [None] for [Top]. *)

type ar_info = {
  id : int;
  name : string;
  rw : cover;  (** lines any attempt may read or write *)
  w : cover;  (** lines any attempt may write *)
  x : cover;  (** exclusive set: [rw] when CL-capable, else [w] *)
  cl_capable : bool;  (** envelope admits NS-CL or S-CL *)
}

type t

val of_ars : ?params:Predict.params -> Isa.Program.ar list -> t
(** Analyze each region and build the full matrix. [params] feeds the
    decision-envelope prediction that decides CL-capability. *)

val ars : t -> ar_info array
(** In input order. *)

val find_index : t -> ar_id:int -> int option
val may_conflict : t -> int -> int -> cover

val may_conflict_ids : t -> ida:int -> idb:int -> cover option
(** Matrix lookup by AR ids; [None] when either id is unknown. *)

val pp_cover : Format.formatter -> cover -> unit
val cover_to_string : cover -> string
