module S = Set.Make (String)

(* Interval bounds are clamped to [neg_inf, inf]; the sentinels mean
   "unbounded on that side", so every arithmetic helper below must map a
   sentinel operand back to a sentinel result for the monotone direction —
   a finite bound derived from a sentinel would claim boundedness the
   concrete program does not have. Any *stored* finite bound is therefore
   strictly smaller than [inf] in magnitude, which is what makes the
   overflow reasoning in [smul]/[Shl] sound on 63-bit native ints. *)
let inf = 1 lsl 50

let neg_inf = -inf

type shape =
  | Bot  (** no value: this program point never executes with this register *)
  | Const  (** a concrete value within [lo, hi] *)
  | Init of Isa.Instr.reg  (** initial value of register [r] plus an offset in [lo, hi] *)
  | Top  (** anything (e.g. a loaded value) *)

type t = { shape : shape; lo : int; hi : int; taint : S.t }

let bot = { shape = Bot; lo = 0; hi = 0; taint = S.empty }

let top taint = { shape = Top; lo = 0; hi = 0; taint }

(* Collapse degenerate intervals: a Const or Init value unbounded on both
   sides carries no information beyond its taint. *)
let make shape lo hi taint =
  match shape with
  | Bot -> bot
  | Top -> top taint
  | Const | Init _ ->
      if lo <= neg_inf && hi >= inf then top taint else { shape; lo; hi; taint }

let const_ n taint = make Const n n taint

let init_ r taint = make (Init r) 0 0 taint

let is_bot v = v.shape = Bot

let is_finite v =
  match v.shape with Const | Init _ -> v.lo > neg_inf && v.hi < inf | Bot | Top -> false

let singleton v = match v.shape with Const when v.lo = v.hi && is_finite v -> Some v.lo | _ -> None

(* ---------------- sentinel-aware saturating arithmetic ---------------- *)

let clamp x = if x >= inf then inf else if x <= neg_inf then neg_inf else x

let sadd a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = inf || b = inf then inf
  else clamp (a + b)

let sneg a = if a = neg_inf then inf else if a = inf then neg_inf else -a

let ssub a b = sadd a (sneg b)

(* Saturate well before the clamp range so finite*finite never overflows a
   63-bit int: |a|,|b| <= 2^25 keeps the product under 2^50 = inf. *)
let mul_cap = 1 lsl 25

let smul a b =
  if a = 0 || b = 0 then 0
  else if abs a > mul_cap || abs b > mul_cap then if (a > 0) = (b > 0) then inf else neg_inf
  else clamp (a * b)

let spred x = if x = inf || x = neg_inf then x else x - 1

let ssucc x = if x = inf || x = neg_inf then x else x + 1

(* ---------------- lattice ---------------- *)

let equal a b =
  a.shape = b.shape && S.equal a.taint b.taint
  && match a.shape with Const | Init _ -> a.lo = b.lo && a.hi = b.hi | Bot | Top -> true

let join a b =
  if is_bot a then b
  else if is_bot b then a
  else
    let taint = S.union a.taint b.taint in
    match (a.shape, b.shape) with
    | Const, Const -> make Const (min a.lo b.lo) (max a.hi b.hi) taint
    | Init ra, Init rb when ra = rb -> make (Init ra) (min a.lo b.lo) (max a.hi b.hi) taint
    | _ -> top taint

(* [prev] is the old state at a merge point, [next] the freshly joined one
   (so next >= prev pointwise); any bound still growing jumps to the
   sentinel, bounding the ascending chain. *)
let widen ~prev ~next =
  if is_bot prev then next
  else
    match (next.shape, prev.shape) with
    | (Const | Init _), _ when next.shape = prev.shape ->
        make next.shape
          (if next.lo < prev.lo then neg_inf else next.lo)
          (if next.hi > prev.hi then inf else next.hi)
          next.taint
    | _ -> next

(* ---------------- transfer functions ---------------- *)

let with_taint v taint = { v with taint }

let binop op a b =
  if is_bot a || is_bot b then bot
  else
    let taint = S.union a.taint b.taint in
    let top = top taint in
    let exact () =
      match (singleton a, singleton b) with
      | Some x, Some y -> Some (const_ (Isa.Instr.eval_binop op x y) taint)
      | _ -> None
    in
    match (op : Isa.Instr.binop) with
    | Add -> (
        match (a.shape, b.shape) with
        | Const, Const -> make Const (sadd a.lo b.lo) (sadd a.hi b.hi) taint
        | Init r, Const | Const, Init r -> make (Init r) (sadd a.lo b.lo) (sadd a.hi b.hi) taint
        | _ -> top)
    | Sub -> (
        match (a.shape, b.shape) with
        | Const, Const -> make Const (ssub a.lo b.hi) (ssub a.hi b.lo) taint
        | Init r, Const -> make (Init r) (ssub a.lo b.hi) (ssub a.hi b.lo) taint
        | Init ra, Init rb when ra = rb ->
            (* same symbolic base cancels *)
            make Const (ssub a.lo b.hi) (ssub a.hi b.lo) taint
        | _ -> top)
    | Mul -> (
        match (a.shape, b.shape) with
        | Const, Const ->
            let c = [ smul a.lo b.lo; smul a.lo b.hi; smul a.hi b.lo; smul a.hi b.hi ] in
            make Const (List.fold_left min inf c) (List.fold_left max neg_inf c) taint
        | _ -> top)
    | Min -> (
        match (a.shape, b.shape) with
        | Const, Const -> make Const (min a.lo b.lo) (min a.hi b.hi) taint
        | _ -> top)
    | Max -> (
        match (a.shape, b.shape) with
        | Const, Const -> make Const (max a.lo b.lo) (max a.hi b.hi) taint
        | _ -> top)
    | Div -> (
        match (a.shape, b.shape) with
        | Const, Const when b.lo >= 1 ->
            (* b is positive, so a/b is monotone in a and the extremes over b
               lie at b.lo / b.hi; the inf sentinel behaves numerically as a
               huge divisor (quotient ~0), which only shrinks magnitudes. *)
            let lo =
              if a.lo = neg_inf then neg_inf else min (a.lo / b.lo) (a.lo / b.hi)
            and hi = if a.hi = inf then inf else max (a.hi / b.lo) (a.hi / b.hi) in
            make Const lo hi taint
        | _ -> ( match exact () with Some v -> v | None -> top))
    | Rem -> (
        match (a.shape, b.shape) with
        | Const, Const when b.lo >= 1 ->
            (* |a mod b| <= min (|a|, b-1); sign follows a (OCaml mod). *)
            let lo = max (min a.lo 0) (sneg (spred b.hi))
            and hi = min (max a.hi 0) (spred b.hi) in
            make Const lo hi taint
        | _ -> ( match exact () with Some v -> v | None -> top))
    | And -> (
        match (a.shape, b.shape) with
        | Const, Const when a.lo >= 0 && b.lo >= 0 -> make Const 0 (min a.hi b.hi) taint
        | _ -> ( match exact () with Some v -> v | None -> top))
    | Or -> (
        match (a.shape, b.shape) with
        | Const, Const when a.lo >= 0 && b.lo >= 0 ->
            (* no carries: a lor b <= a + b for non-negatives *)
            make Const (max a.lo b.lo) (sadd a.hi b.hi) taint
        | _ -> ( match exact () with Some v -> v | None -> top))
    | Xor -> (
        match (a.shape, b.shape) with
        | Const, Const when a.lo >= 0 && b.lo >= 0 -> make Const 0 (sadd a.hi b.hi) taint
        | _ -> ( match exact () with Some v -> v | None -> top))
    | Shl -> (
        match (a.shape, b.shape, singleton b) with
        | Const, Const, Some k ->
            let k = k land 63 in
            if k <= 30 then
              let m = 1 lsl k in
              make Const (smul a.lo m) (smul a.hi m) taint
            else ( match exact () with Some v -> v | None -> top)
        | _ -> ( match exact () with Some v -> v | None -> top))
    | Shr -> (
        match (a.shape, b.shape, singleton b) with
        | Const, Const, Some k ->
            let k = k land 63 in
            let shr x = if x = inf || x = neg_inf then x else x asr k in
            make Const (shr a.lo) (shr a.hi) taint
        | _ -> ( match exact () with Some v -> v | None -> top))

(* Refine [a] and [b] under the assumption that [cond a b] holds. Narrowing
   applies only when both values share a comparable context: two Consts, or
   two offsets from the same initial register. A refinement that empties an
   interval signals an infeasible edge; we deliberately return the operands
   unrefined in that case so CFG reachability stays identical to
   [Clear.Analysis] (which never prunes edges) — see DESIGN.md §10. *)
let refine cond a b =
  let comparable =
    match (a.shape, b.shape) with
    | Const, Const -> true
    | Init ra, Init rb -> ra = rb
    | _ -> false
  in
  if not comparable then (a, b)
  else
    let mk v lo hi = make v.shape lo hi v.taint in
    let a', b' =
      match (cond : Isa.Instr.cond) with
      | Eq ->
          let lo = max a.lo b.lo and hi = min a.hi b.hi in
          (mk a lo hi, mk b lo hi)
      | Ne -> (a, b)
      | Lt -> (mk a a.lo (min a.hi (spred b.hi)), mk b (max b.lo (ssucc a.lo)) b.hi)
      | Le -> (mk a a.lo (min a.hi b.hi), mk b (max b.lo a.lo) b.hi)
      | Gt -> (mk a (max a.lo (ssucc b.lo)) a.hi, mk b b.lo (min b.hi (spred a.hi)))
      | Ge -> (mk a (max a.lo b.lo) a.hi, mk b b.lo (min b.hi a.hi))
    in
    let empty v = match v.shape with Const | Init _ -> v.lo > v.hi | Bot | Top -> false in
    if empty a' || empty b' then (a, b) else (a', b')

let negate_cond = function
  | Isa.Instr.Eq -> Isa.Instr.Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Membership of a concrete value under a concrete initial-register
   environment: the soundness contract the dynamic gate checks. *)
let mem ~init v x =
  match v.shape with
  | Bot -> false
  | Top -> true
  | Const -> (v.lo = neg_inf || v.lo <= x) && (v.hi = inf || x <= v.hi)
  | Init r ->
      let base = init r in
      (v.lo = neg_inf || base + v.lo <= x) && (v.hi = inf || x <= base + v.hi)

let pp ppf v =
  let pp_bound ppf x =
    if x = inf then Format.fprintf ppf "+oo"
    else if x = neg_inf then Format.fprintf ppf "-oo"
    else Format.fprintf ppf "%d" x
  in
  (match v.shape with
  | Bot -> Format.fprintf ppf "bot"
  | Top -> Format.fprintf ppf "top"
  | Const ->
      if v.lo = v.hi then Format.fprintf ppf "%d" v.lo
      else Format.fprintf ppf "[%a,%a]" pp_bound v.lo pp_bound v.hi
  | Init r ->
      if v.lo = 0 && v.hi = 0 then Format.fprintf ppf "init(r%d)" r
      else Format.fprintf ppf "init(r%d)+[%a,%a]" r pp_bound v.lo pp_bound v.hi);
  if not (S.is_empty v.taint) then
    Format.fprintf ppf "{%s}" (String.concat "," (S.elements v.taint))
