(** Concrete lookahead bounds for the PDES engine, derived from {!Absint}.

    The conservative PDES driver (DESIGN.md §12) lets one core run ahead of
    its peers only while it can prove no shared-line interaction is possible.
    Two static artefacts make that proof cheap at run time:

    - {!lines_for}: the exact set of cache lines one execution of the region
      may touch, obtained by binding the summary's per-site address
      components with the operation's initial registers. This is sound by
      the PR-4 gate invariant (every dynamically touched line lies in some
      site component under the same binding — {!Absint.line_in_sites});
      regions with an unbounded site ([Cany], i.e. an indirection the
      interval domain lost) resolve to [None] and simply get no lookahead
      beyond the dynamic next-event bound.
    - {!min_cycles_to_halt}: a per-pc lower bound on the simulated cycles
      between executing the instruction at [pc] and executing [Halt] (the
      commit step), i.e. the earliest a peer mid-region could possibly
      commit and move on to non-insulated work. *)

type t

val of_ar : Isa.Program.ar -> t
(** Analyze the region once; the result is immutable and shareable. *)

val of_summary : Absint.summary -> t
(** Same, from an existing summary (avoids re-running the fixpoint). *)

val resolvable : t -> bool
(** All memory sites have bounded components — [lines_for] can succeed. *)

val has_reg_relative : t -> bool
(** Some site's component is register-relative ([Crel]) — the resolved
    footprint then depends on the operation's initial registers. When false,
    {!lines_for_r} and {!lines_cover} return the same result for every
    [init], so callers may memoize the resolution per region. *)

val always_capped : t -> bool
(** {!lines_for_r} returns [`Capped] under every binding: the region is
    resolvable but some single site's line span already reaches the
    enumeration cap no matter what the initial registers are. Lets callers
    skip the doomed enumeration entirely. *)

val cover_lines_lb : t -> int
(** Init-independent lower bound on the total number of lines in any
    {!lines_cover} result (the widest single site, since merging only
    grows spans). Callers that expand covers under a size cap can refuse
    statically when this already exceeds it. *)

val lines_for : t -> init:(Isa.Instr.reg * int) list -> int array option
(** Sorted, distinct lines one execution may touch once initial registers
    are bound by [init] (unbound registers read as 0, matching
    [Regfile.load_initial] on a reset file). [None] when any site is
    unbounded, resolves to a negative line, or the expansion exceeds a small
    cap — callers must then fall back to {!lines_cover} or dynamic bounds.
    Use {!lines_for_r} to distinguish the cap from true unresolvability. *)

val lines_for_r :
  t -> init:(Isa.Instr.reg * int) list -> [ `Lines of int array | `Capped | `Unresolvable ]
(** Like {!lines_for} but distinguishes the expansion cap ([`Capped]: every
    site is bounded, the explicit set is just too large to enumerate — a
    cover still exists) from genuine unboundedness ([`Unresolvable]: some
    site is [Cany] or binds to a negative line). *)

val lines_cover : t -> init:(Isa.Instr.reg * int) list -> (int * int) array option
(** Sorted, disjoint, non-adjacent inclusive line intervals covering every
    line one execution may touch under [init]. No size cap — a cover is one
    interval per site before merging, so pool-sized [Cregion] extents stay
    cheap. [None] only when a site is unbounded or binds negative. When both
    resolve, the cover is a superset of [lines_for] (qcheck-enforced). *)

val cover_of_sites :
  Absint.site list -> init:(Isa.Instr.reg * int) list -> (int * int) array option
(** {!lines_cover} over an arbitrary site subset (e.g. only written sites) —
    the building block for the static may-conflict matrix. *)

val min_cycles_to_halt : t -> pc:int -> int
(** Lower bound on cycles from (and including) the execution of the
    instruction at [pc] until the [Halt] step executes; 0 at [Halt] itself
    and for out-of-range [pc] (no claim). When no path from [pc] reaches
    [Halt] the bound is a large sentinel (the region cannot commit). *)

val min_cycles_from_entry : t -> int
(** [min_cycles_to_halt ~pc:0]. *)
