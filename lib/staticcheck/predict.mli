(** Static prediction of CLEAR table pressure and the decision envelope.

    From an {!Absint.summary} and the machine's table geometry, [predict]
    derives ALT / SQ / L1-associativity / CRT / window fits and the sound
    {e decision envelope}: the set of {!Clear.Decision.mode} outcomes any
    end-of-discovery assessment may produce on any run of the region. The
    soundness gate ({!Gate}) asserts every dynamic decision lies inside it. *)

type params = {
  alt_capacity : int;
  sq_entries : int;
  rob_entries : int;
  l1_sets : int;
  l1_ways : int;
  crt_entries : int;
  crt_ways : int;
  dir_sets : int;
}

val params_of :
  alt_capacity:int ->
  sq_entries:int ->
  rob_entries:int ->
  crt_entries:int ->
  crt_ways:int ->
  Mem.Params.t ->
  params

val default_params : params
(** The paper's geometry: 32-entry ALT, 72-entry SQ, 352-entry ROB,
    64-entry 8-way CRT over icelake-like caches. *)

type fit = Fits | May_overflow

val fit_name : fit -> string

type envelope = {
  ns_cl : bool;
  s_cl : bool;
  spec_retry : bool;
  fallback_only : bool;
      (** every completed discovery overflows the SQ: the region can only
          commit speculatively or via the fallback lock *)
}

type t = {
  summary : Absint.summary;
  classification : Clear.Analysis.classification;  (** Table-1 class, from the abstract taint *)
  alt_fit : fit;
  sq_fit : fit;
  lock_fit : fit;  (** L1 associativity admits locking the whole footprint *)
  crt_fit : fit;
  window_fit : fit;
  lock_groups : int option;  (** distinct directory sets, when fully concrete *)
  concrete_lines : Mem.Addr.line list option;
      (** exact footprint when every site is a bounded absolute window *)
  region_rw_bounds : (string * (Absint.bound * Absint.bound)) list;
      (** per region tag, (read-line, write-line) distinct-set-size bounds —
          the static read/write-set reservations a limited-read-write HTM
          backend (LRW, PAPERS.md) would need for this region *)
  envelope : envelope;
}

val predict : ?params:params -> written_regions:string list -> Absint.summary -> t
(** [written_regions] is the union over the workload's ARs
    ({!Isa.Program.regions_written}), as in Table 1. *)

val decision_in_envelope : envelope -> Clear.Decision.mode -> bool

val envelope_name : envelope -> string
