module A = Absint

type params = {
  alt_capacity : int;
  sq_entries : int;
  rob_entries : int;
  l1_sets : int;
  l1_ways : int;
  crt_entries : int;
  crt_ways : int;
  dir_sets : int;
}

let params_of ~alt_capacity ~sq_entries ~rob_entries ~crt_entries ~crt_ways
    (mp : Mem.Params.t) =
  {
    alt_capacity;
    sq_entries;
    rob_entries;
    l1_sets = mp.Mem.Params.l1_sets;
    l1_ways = mp.Mem.Params.l1_ways;
    crt_entries;
    crt_ways;
    dir_sets = mp.Mem.Params.dir_sets;
  }

let default_params =
  params_of ~alt_capacity:32 ~sq_entries:72 ~rob_entries:352 ~crt_entries:64 ~crt_ways:8
    Mem.Params.icelake_like

type fit = Fits | May_overflow

let fit_name = function Fits -> "fits" | May_overflow -> "may overflow"

type envelope = { ns_cl : bool; s_cl : bool; spec_retry : bool; fallback_only : bool }

type t = {
  summary : A.summary;
  classification : Clear.Analysis.classification;
  alt_fit : fit;
  sq_fit : fit;
  lock_fit : fit;
  crt_fit : fit;
  window_fit : fit;
  lock_groups : int option;
  concrete_lines : Mem.Addr.line list option;
  region_rw_bounds : (string * (A.bound * A.bound)) list;
      (** per region tag, (read-line, write-line) set-size bounds — the
          static read/write-set sizes an LRW-HTM backend would reserve *)
  envelope : envelope;
}

(* Enumerate the exact footprint when every site is a bounded absolute
   window; gives set-precise ALT/CRT/L1 checks and the dir-set lock-group
   count. Capped so absurd static windows cannot blow up the analyzer. *)
let concrete_lines ?(cap = 4096) sites =
  let tbl = Hashtbl.create 64 in
  try
    List.iter
      (fun (s : A.site) ->
        match s.component with
        | A.Cwords { lo; hi } ->
            let llo = lo asr 3 and lhi = hi asr 3 in
            if lhi - llo + 1 > cap then raise Exit;
            for l = llo to lhi do
              Hashtbl.replace tbl l ()
            done;
            if Hashtbl.length tbl > cap then raise Exit
        | A.Crel _ | A.Cregion _ | A.Cany -> raise Exit)
      sites;
    Some (List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) tbl []))
  with Exit -> None

let max_per_set ~set_of lines =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let s = set_of l in
      Hashtbl.replace counts s (1 + Option.value (Hashtbl.find_opt counts s) ~default:0))
    lines;
  Hashtbl.fold (fun _ c m -> max c m) counts 0

let predict ?(params = default_params) ~written_regions (summary : A.summary) =
  let p = params in
  let writes = List.filter (fun (s : A.site) -> s.written) summary.A.sites in
  let lines = concrete_lines summary.A.sites in
  let write_lines = concrete_lines writes in
  (* ALT: distinct footprint lines vs capacity. *)
  let alt_fit =
    let cap = p.alt_capacity in
    match lines with
    | Some ls when List.length ls <= cap -> Fits
    | Some _ -> May_overflow
    | None -> if A.bound_le summary.A.footprint_lines cap then Fits else May_overflow
  in
  (* SQ: executed stores vs entries; the engine admits exactly sq_entries
     buffered stores before flagging overflow. *)
  let sq_fit = if A.bound_le summary.A.store_execs p.sq_entries then Fits else May_overflow in
  (* L1 associativity: every footprint subset must be simultaneously
     cacheable, which holds when the whole may-set respects per-set ways. *)
  let lock_fit =
    if alt_fit = Fits then
      match lines with
      | Some ls when max_per_set ~set_of:(fun l -> l land (p.l1_sets - 1)) ls <= p.l1_ways ->
          Fits
      | Some _ -> May_overflow
      | None -> if A.bound_le summary.A.footprint_lines p.l1_ways then Fits else May_overflow
    else May_overflow
  in
  let crt_sets = max 1 (p.crt_entries / max 1 p.crt_ways) in
  let crt_fit =
    match write_lines with
    | Some ls when max_per_set ~set_of:(fun l -> l mod crt_sets) ls <= p.crt_ways -> Fits
    | Some _ -> May_overflow
    | None -> if A.bound_le summary.A.write_lines p.crt_ways then Fits else May_overflow
  in
  let window_fit =
    if A.bound_le summary.A.max_instr_execs p.rob_entries && sq_fit = Fits then Fits
    else May_overflow
  in
  let lock_groups =
    Option.map
      (fun ls ->
        List.length
          (List.sort_uniq compare (List.map (fun l -> l land (p.dir_sets - 1)) ls)))
      lines
  in
  (* Decision envelope. [never_fit]: every completed attempt is guaranteed
     to overflow the SQ, so discovery can never finish and the region only
     ever commits speculatively or through the fallback lock.
     [must_lock]: every completed discovery is guaranteed fits+lockable, so
     the decision can never be a plain speculative retry. *)
  let region_rw_bounds =
    let tags =
      List.sort_uniq compare
        (List.filter_map
           (fun (s : A.site) -> if s.A.region = "" then None else Some s.A.region)
           summary.A.sites)
    in
    List.map
      (fun r ->
        let tagged w =
          List.filter (fun (s : A.site) -> s.A.region = r && s.A.written = w) summary.A.sites
        in
        (r, (A.line_bound (tagged false), A.line_bound (tagged true))))
      tags
  in
  let never_fit = summary.A.min_store_execs > p.sq_entries in
  let must_lock = alt_fit = Fits && sq_fit = Fits && lock_fit = Fits in
  let may_indirect = summary.A.indirections <> [] in
  let envelope =
    {
      ns_cl = (not never_fit) && not summary.A.must_indirect;
      s_cl = (not never_fit) && may_indirect;
      spec_retry = not must_lock;
      fallback_only = never_fit;
    }
  in
  {
    summary;
    classification =
      Clear.Analysis.classify_regions ~indirections:summary.A.indirections ~written_regions;
    alt_fit;
    sq_fit;
    lock_fit;
    crt_fit;
    window_fit;
    lock_groups;
    concrete_lines = lines;
    region_rw_bounds;
    envelope;
  }

let decision_in_envelope env (m : Clear.Decision.mode) =
  match m with
  | Clear.Decision.Ns_cl -> env.ns_cl
  | Clear.Decision.S_cl -> env.s_cl
  | Clear.Decision.Speculative_retry -> env.spec_retry

let envelope_name env =
  if env.fallback_only then "fallback-only"
  else
    let parts =
      (if env.ns_cl then [ "NS-CL" ] else [])
      @ (if env.s_cl then [ "S-CL" ] else [])
      @ if env.spec_retry then [ "spec" ] else []
    in
    if parts = [] then "none" else String.concat "|" parts
