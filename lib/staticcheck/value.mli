(** Abstract value domain for the static AR verifier (DESIGN.md §10).

    A value is a shape — bottom, constant, initial-register-plus-offset, or
    top — with an interval of offsets and a taint set of region tags. The
    taint component mirrors {!Clear.Analysis} exactly: loads produce [Top]
    tainted with the load's region, taint unions through ALU ops, and [Mov]
    from an immediate clears it. Interval bounds saturate at the [inf]
    sentinels, which mean "unbounded on that side" (not a numeric bound). *)

module S : Set.S with type elt = string

val inf : int
(** Positive-unbounded sentinel (2{^50}); [neg_inf] is its negation. Every
    stored finite bound is strictly smaller in magnitude. *)

val neg_inf : int

type shape = Bot | Const | Init of Isa.Instr.reg | Top

type t = private { shape : shape; lo : int; hi : int; taint : S.t }

val bot : t

val top : S.t -> t

val make : shape -> int -> int -> S.t -> t
(** Normalising constructor: [Const]/[Init] unbounded on both sides
    collapses to [Top]. *)

val const_ : int -> S.t -> t

val init_ : Isa.Instr.reg -> S.t -> t
(** The value register [r] holds on entry. *)

val is_bot : t -> bool

val is_finite : t -> bool
(** True when the shape carries an interval and both bounds are finite. *)

val singleton : t -> int option

val equal : t -> t -> bool

val join : t -> t -> t

val widen : prev:t -> next:t -> t
(** [next] must be [join prev x] for some [x]; still-growing bounds jump to
    the sentinels so fixpoint chains are finite. *)

val with_taint : t -> S.t -> t

val binop : Isa.Instr.binop -> t -> t -> t
(** Sound transfer of {!Isa.Instr.eval_binop}; falls back to exact
    evaluation on finite singletons, [Top] otherwise. *)

val refine : Isa.Instr.cond -> t -> t -> t * t
(** Narrow both operands under the assumption the condition holds. Never
    empties an interval (an infeasible refinement returns the operands
    unchanged), so reachability stays identical to {!Clear.Analysis}. *)

val negate_cond : Isa.Instr.cond -> Isa.Instr.cond

val mem : init:(Isa.Instr.reg -> int) -> t -> int -> bool
(** Concretisation membership: does concrete value [x] lie in [v] when the
    initial registers are given by [init]? *)

val pp : Format.formatter -> t -> unit
