module S = Value.S
module I = Isa.Instr

type bound = Finite of int | Unbounded

let bound_le b k = match b with Finite n -> n <= k | Unbounded -> false

let pp_bound ppf = function
  | Finite n -> Format.fprintf ppf "%d" n
  | Unbounded -> Format.fprintf ppf "oo"

let bound_to_string b = Format.asprintf "%a" pp_bound b

(* One memory-access site's set of word addresses, in a form the gate can
   re-concretise under a witness's initial registers. *)
type component =
  | Cwords of { lo : int; hi : int }  (** absolute word addresses in [lo, hi] *)
  | Crel of { reg : I.reg; lo : int; hi : int }
      (** word addresses in [init(reg) + lo, init(reg) + hi] *)
  | Cregion of { lo : int; hi : int; region : string }
      (** the interval domain lost the address (an indirection), but the
          site's region tag has a declared extent: word addresses in
          [lo, hi], the region's whole extent *)
  | Cany  (** statically unbounded: any address *)

type site = {
  index : int;
  written : bool;
  region : string;
  component : component;
  in_cycle : bool;
}

type summary = {
  name : string;
  body : I.t array;
  regions : (string * (int * int)) list;
  reachable : bool array;
  in_cycle : bool array;
  in_states : Value.t array array;
  sites : site list;
  read_lines : bound;
  write_lines : bound;
  footprint_lines : bound;
  store_execs : bound;
  min_store_execs : int;
  max_instr_execs : bound;
  indirections : string list;
  must_indirect : bool;
  falls_off_end : bool;
}

let nregs = I.num_regs

let value_of st = function
  | I.Reg r -> st.(r)
  | I.Imm k -> Value.const_ k S.empty

(* Successor edges with their outgoing states. [collect] receives the taint
   of every operand used as an address or branch input — exactly the
   collection points of [Clear.Analysis.indirections]. Out-of-range branch
   targets (possible on raw, unvalidated bodies) contribute no edge; the
   lint pass reports them separately. *)
let step ?(collect = fun (_ : S.t) -> ()) (n : int) (st : Value.t array) i instr =
  let out = Array.copy st in
  let succ j st = if j >= 0 && j <= n then [ (j, st) ] else [] in
  match (instr : I.t) with
  | Ld { dst; base; off = _; region } ->
      collect (value_of st base).Value.taint;
      out.(dst) <- Value.top (S.singleton (Clear.Analysis.region_name region));
      succ (i + 1) out
  | St { base; _ } ->
      collect (value_of st base).Value.taint;
      succ (i + 1) out
  | Mov { dst; src } ->
      out.(dst) <- value_of st src;
      succ (i + 1) out
  | Binop { op; dst; a; b } ->
      out.(dst) <- Value.binop op (value_of st a) (value_of st b);
      succ (i + 1) out
  | Br { cond; a; b; target } ->
      let va = value_of st a and vb = value_of st b in
      collect va.Value.taint;
      collect vb.Value.taint;
      let apply st (cond : I.cond) =
        let va', vb' = Value.refine cond va vb in
        let st = Array.copy st in
        (match a with I.Reg r -> st.(r) <- va' | I.Imm _ -> ());
        (match b with I.Reg r -> st.(r) <- vb' | I.Imm _ -> ());
        st
      in
      (if target >= 0 && target <= n then succ target (apply out cond) else [])
      @ succ (i + 1) (apply out (Value.negate_cond cond))
  | Jmp target -> succ target out
  | Nop -> succ (i + 1) out
  | Halt -> []

(* Merge word-interval lists and bound the number of distinct cachelines an
   access window can touch. Relative windows pay one extra straddle line
   because their alignment is unknown. *)
let wpl = Mem.Addr.words_per_line

let merge_intervals ivs =
  let sorted = List.sort compare ivs in
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | (plo, phi) :: rest when lo <= phi + 1 -> (plo, max phi hi) :: rest
      | _ -> (lo, hi) :: acc)
    [] sorted

let lines_of_components comps =
  let abs, rel, any =
    List.fold_left
      (fun (abs, rel, any) (c, in_cycle) ->
        match c with
        | Cwords { lo; hi } -> ((lo, hi) :: abs, rel, any)
        | Crel { reg; lo; hi } -> (abs, (reg, (lo, hi)) :: rel, any)
        | Cregion { lo; hi; _ } ->
            (* Acyclic: one execution, one line. In a cycle: a fresh line per
               iteration, but never outside the region's extent. *)
            if in_cycle then ((lo, hi) :: abs, rel, any) else (abs, rel, any + 1)
        | Cany -> (abs, rel, any + 1))
      ([], [], 0) comps
  in
  let abs_lines =
    List.fold_left
      (fun n (lo, hi) -> n + ((hi asr 3) - (lo asr 3)) + 1)
      0 (merge_intervals abs)
  in
  let rel_lines =
    let regs = List.sort_uniq compare (List.map fst rel) in
    List.fold_left
      (fun n reg ->
        let ivs = List.filter_map (fun (r, iv) -> if r = reg then Some iv else None) rel in
        List.fold_left
          (fun n (lo, hi) ->
            let span = hi - lo + 1 in
            n + ((span + wpl - 2) / wpl) + 1)
          n (merge_intervals ivs))
      0 regs
  in
  (abs_lines + rel_lines + any : int)

(* Distinct-line upper bound for a set of sites; [Unbounded] as soon as an
   unbounded-address site sits in a CFG cycle (it may touch a fresh line on
   every iteration). A Cany site outside any cycle executes at most once per
   attempt and so contributes at most one line. *)
let line_bound sites =
  if List.exists (fun (s : site) -> s.component = Cany && s.in_cycle) sites then Unbounded
  else
    Finite (lines_of_components (List.map (fun (s : site) -> (s.component, s.in_cycle)) sites))

let empty_summary ?(regions = []) name body =
  let n = Array.length body in
  {
    name;
    body;
    regions;
    reachable = Array.make n false;
    in_cycle = Array.make n false;
    in_states = Array.init n (fun _ -> Array.make nregs Value.bot);
    sites = [];
    read_lines = Finite 0;
    write_lines = Finite 0;
    footprint_lines = Finite 0;
    store_execs = Finite 0;
    min_store_execs = max_int;
    max_instr_execs = Finite 0;
    indirections = [];
    must_indirect = false;
    falls_off_end = true;
  }

let analyze ?(name = "<raw>") ?(regions = []) (body : I.t array) : summary =
  let n = Array.length body in
  if n = 0 then empty_summary ~regions name body
  else begin
    let initial = Array.init nregs (fun r -> Value.init_ r S.empty) in
    let in_states = Array.init n (fun _ -> Array.make nregs Value.bot) in
    Array.blit initial 0 in_states.(0) 0 nregs;
    let reached = Array.make n false in
    reached.(0) <- true;
    let collected = ref S.empty in
    let falls_off = ref false in
    let collect ts = collected := S.union !collected ts in

    (* Phase 1: may-state fixpoint, widening after a few plain passes. *)
    let changed = ref true in
    let pass = ref 0 in
    while !changed do
      changed := false;
      let widening = !pass >= 3 in
      for i = 0 to n - 1 do
        if reached.(i) then
          List.iter
            (fun (j, out) ->
              if j = n then falls_off := true
              else begin
                let dst = in_states.(j) in
                if not reached.(j) then begin
                  reached.(j) <- true;
                  changed := true
                end;
                for r = 0 to nregs - 1 do
                  let next = Value.join dst.(r) out.(r) in
                  let next = if widening then Value.widen ~prev:dst.(r) ~next else next in
                  if not (Value.equal next dst.(r)) then begin
                    dst.(r) <- next;
                    changed := true
                  end
                done
              end)
            (step ~collect n in_states.(i) i body.(i))
      done;
      incr pass
    done;
    (* A second collection sweep over the stable states, mirroring the last
       pass of Clear.Analysis (collection there also runs to fixpoint). *)
    for i = 0 to n - 1 do
      if reached.(i) then ignore (step ~collect n in_states.(i) i body.(i))
    done;

    (* Phase 2: a few narrowing passes. Each recomputes every in-state as the
       plain join of its predecessors' out-edges — one application of the
       (monotone) transfer to a sound state yields a sound state, so this
       recovers the precision widening gave away without risking
       non-termination. Reachability and taint collection keep the phase-1
       results (identical to Clear.Analysis by construction). *)
    for _ = 1 to 3 do
      let fresh = Array.init n (fun _ -> Array.make nregs Value.bot) in
      let seen = Array.make n false in
      seen.(0) <- true;
      Array.blit initial 0 fresh.(0) 0 nregs;
      for i = 0 to n - 1 do
        if reached.(i) then
          List.iter
            (fun (j, out) ->
              if j < n then begin
                let dst = fresh.(j) in
                if not seen.(j) then begin
                  seen.(j) <- true;
                  Array.blit out 0 dst 0 nregs
                end
                else
                  for r = 0 to nregs - 1 do
                    dst.(r) <- Value.join dst.(r) out.(r)
                  done
              end)
            (step n in_states.(i) i body.(i))
      done;
      for i = 0 to n - 1 do
        if reached.(i) && seen.(i) then Array.blit fresh.(i) 0 in_states.(i) 0 nregs
      done
    done;

    (* CFG successors (index [n] = fall-through exit) for the graph passes. *)
    let succs i =
      List.map fst (step n in_states.(i) i body.(i))
      |> List.filter (fun j -> j < n)
    in
    let in_cycle = Array.make n false in
    for i = 0 to n - 1 do
      if reached.(i) then begin
        (* i is in a cycle iff i is reachable from one of its successors *)
        let visited = Array.make n false in
        let rec dfs j =
          if j = i then true
          else if visited.(j) then false
          else begin
            visited.(j) <- true;
            List.exists dfs (succs j)
          end
        in
        in_cycle.(i) <- List.exists dfs (succs i)
      end
    done;

    (* Memory-site components from the narrowed states. When the interval
       domain lost the address (an indirection collapsed it to Top) but the
       site carries a region tag with a declared extent, the extent bounds
       the site: the workload's layout guarantees — and the dynamic gate
       verifies — that tagged accesses stay inside their region. *)
    let component_of st base off region =
      let v = Value.binop I.Add (value_of st base) (Value.const_ off S.empty) in
      match v.Value.shape with
      | Value.Const when Value.is_finite v -> Cwords { lo = v.Value.lo; hi = v.Value.hi }
      | Value.Init r when Value.is_finite v -> Crel { reg = r; lo = v.Value.lo; hi = v.Value.hi }
      | _ -> (
          match List.assoc_opt region regions with
          | Some (lo, hi) -> Cregion { lo; hi; region }
          | None -> Cany)
    in
    let sites = ref [] in
    for i = n - 1 downto 0 do
      if reached.(i) then
        match body.(i) with
        | I.Ld { base; off; region; _ } ->
            sites :=
              {
                index = i;
                written = false;
                region = Clear.Analysis.region_name region;
                component = component_of in_states.(i) base off (Clear.Analysis.region_name region);
                in_cycle = in_cycle.(i);
              }
              :: !sites
        | I.St { base; off; region; _ } ->
            sites :=
              {
                index = i;
                written = true;
                region = Clear.Analysis.region_name region;
                component = component_of in_states.(i) base off (Clear.Analysis.region_name region);
                in_cycle = in_cycle.(i);
              }
              :: !sites
        | _ -> ()
    done;
    let sites = !sites in
    let stores = List.filter (fun (s : site) -> s.written) sites in

    (* Store-execution bounds: an acyclic site runs at most once per attempt. *)
    let store_execs =
      if List.exists (fun (s : site) -> s.in_cycle) stores then Unbounded
      else Finite (List.length stores)
    in
    let min_store_execs =
      (* Shortest path (in stores executed) from entry to any Halt. *)
      let dist = Array.make (n + 1) max_int in
      dist.(0) <- 0;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to n - 1 do
          if reached.(i) && dist.(i) < max_int then begin
            let w = match body.(i) with I.St _ -> 1 | _ -> 0 in
            List.iter
              (fun j ->
                if dist.(i) + w < dist.(j) then begin
                  dist.(j) <- dist.(i) + w;
                  changed := true
                end)
              (succs i)
          end
        done
      done;
      let best = ref max_int in
      for i = 0 to n - 1 do
        if reached.(i) && body.(i) = I.Halt then best := min !best dist.(i)
      done;
      !best
    in
    let max_instr_execs =
      if Array.exists Fun.id in_cycle then Unbounded
      else begin
        (* DAG: longest instruction count from entry. *)
        let memo = Array.make n (-1) in
        let rec longest i =
          if memo.(i) >= 0 then memo.(i)
          else begin
            memo.(i) <- 0;
            (* placeholder against raw self-loops *)
            let v = 1 + List.fold_left (fun acc j -> max acc (longest j)) 0 (succs i) in
            memo.(i) <- v;
            v
          end
        in
        Finite (longest 0)
      end
    in

    (* Must-taint: a register is must-tainted when it is tainted on every
       path; mirrors the engine's dynamic taint bits (Regfile) from below. *)
    let must = Array.init n (fun _ -> Array.make nregs false) in
    let seen = Array.make n false in
    seen.(0) <- true;
    let op_must st = function I.Reg r -> st.(r) | I.Imm _ -> false in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        if reached.(i) && seen.(i) then begin
          let out = Array.copy must.(i) in
          (match body.(i) with
          | I.Ld { dst; _ } -> out.(dst) <- true
          | I.Mov { dst; src } -> out.(dst) <- op_must must.(i) src
          | I.Binop { dst; a; b; _ } -> out.(dst) <- op_must must.(i) a || op_must must.(i) b
          | I.St _ | I.Br _ | I.Jmp _ | I.Nop | I.Halt -> ());
          List.iter
            (fun j ->
              if not seen.(j) then begin
                seen.(j) <- true;
                Array.blit out 0 must.(j) 0 nregs;
                changed := true
              end
              else
                for r = 0 to nregs - 1 do
                  if must.(j).(r) && not out.(r) then begin
                    must.(j).(r) <- false;
                    changed := true
                  end
                done)
            (succs i)
        end
      done
    done;
    let definite_indirection i =
      match body.(i) with
      | I.Ld { base; _ } | I.St { base; _ } -> op_must must.(i) base
      | I.Br { a; b; _ } -> op_must must.(i) a || op_must must.(i) b
      | _ -> false
    in
    let must_indirect =
      (* Every path from entry to a Halt crosses a definite indirection. *)
      let ok = Array.make n false in
      let rec bfs i =
        if i < n && reached.(i) && (not ok.(i)) && not (definite_indirection i) then begin
          ok.(i) <- true;
          List.iter bfs (succs i)
        end
      in
      bfs 0;
      let halt_clean = ref false in
      for i = 0 to n - 1 do
        if ok.(i) && body.(i) = I.Halt then halt_clean := true
      done;
      (* No clean path to Halt — but only claim must-indirection when a Halt
         is reachable at all; a program that never halts never reaches the
         decision point, so either answer is sound and [false] is neutral. *)
      let any_halt = Array.exists2 (fun r ins -> r && ins = I.Halt) reached body in
      any_halt && not !halt_clean
    in

    let read_sites = List.filter (fun s -> not s.written) sites in
    {
      name;
      body;
      regions;
      reachable = reached;
      in_cycle;
      in_states;
      sites;
      read_lines = line_bound read_sites;
      write_lines = line_bound stores;
      footprint_lines = line_bound sites;
      store_execs;
      min_store_execs;
      max_instr_execs;
      indirections = S.elements !collected;
      must_indirect;
      falls_off_end = !falls_off;
    }
  end

let analyze_ar (ar : Isa.Program.ar) = analyze ~name:ar.name ~regions:ar.regions ar.body

(* Concrete membership of a witness line in a site set, under the witness's
   initial registers. *)
let line_in_sites ~init sites line =
  List.exists
    (fun s ->
      match s.component with
      | Cany -> true
      | Cwords { lo; hi } | Cregion { lo; hi; _ } -> lo asr 3 <= line && line <= hi asr 3
      | Crel { reg; lo; hi } ->
          let base = init reg in
          (base + lo) asr 3 <= line && line <= (base + hi) asr 3)
    sites
