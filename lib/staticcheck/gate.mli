(** Static-vs-dynamic soundness gate.

    Created once per checked run from the run's configuration, then fed
    every commit witness and every end-of-discovery decision the engine
    emitted ({!Check.Verdict} drives this). A violation means the abstract
    interpreter under-approximated a real execution — a bug in either the
    analyzer or the engine — and is reported as its own verdict class. *)

type violation =
  | Footprint_escape of {
      ar : string;
      access : [ `Read | `Write ];
      line : Mem.Addr.line;
      bound : string;  (** human-readable description of the violated bound *)
    }
  | Decision_escape of { ar : string; decision : Clear.Decision.mode; envelope : string }
  | Conflict_escape of {
      aggressor : string;
      victim : string;
      line : Mem.Addr.line;
      cover : string;  (** printed static may-conflict cover for the pair *)
    }

type t

val create : ?fault_drop_store:bool -> Predict.params -> t
(** [fault_drop_store] injects an analyzer bug (the first store site of
    every AR is dropped from the may-write set) so tests can prove the gate
    actually fires. *)

val summary : t -> Isa.Program.ar -> Absint.summary
(** Memoised per (ar id, name). *)

val prediction : t -> Isa.Program.ar -> Predict.t

val check_commit :
  t ->
  ar:Isa.Program.ar ->
  init_regs:(Isa.Instr.reg * int) list ->
  reads:Mem.Addr.line list ->
  writes:Mem.Addr.line list ->
  (unit, violation) result
(** Dynamic footprint ⊆ static may-sets, concretised under the witness's
    initial registers (absent registers default to 0, as in the engine). *)

val check_decision :
  t -> ar:Isa.Program.ar -> decision:Clear.Decision.mode -> (unit, violation) result

val check_conflict :
  t ->
  ars:Isa.Program.ar list ->
  aggressor:Isa.Program.ar ->
  victim:Isa.Program.ar ->
  line:Mem.Addr.line ->
  (unit, violation) result
(** Every engine-observed conflict event (a doom or a cacheline-lock NACK
    with a known line) must land inside the static may-conflict cover for
    the aggressor/victim AR pair. The {!Conflict.t} matrix is built lazily
    from [ars] (the workload's full region list) on first use and cached. *)

val pp_violation : Format.formatter -> violation -> unit
