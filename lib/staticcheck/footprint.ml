module I = Isa.Instr

(* No path to Halt: the region cannot commit. Large but addition-safe. *)
let never = max_int / 4

(* Expanding a site interval to an explicit line set is only worthwhile for
   small footprints (the workloads' regions touch a handful of lines); a
   window-sized expansion would cost more than the lookahead it buys. *)
let line_cap = 64

type t = {
  sites : Absint.site list;
  resolvable : bool;
  mth : int array;  (* per-pc min cycles to the Halt step *)
}

(* Lower bound on the event-queue delta charged for executing [instr]: the
   engine schedules the next event at [time + max 1 latency] and every
   latency is at least the instruction's base cost (memory latency and stall
   re-issues only add cycles). *)
let cost_lb instr = max 1 (I.base_cost instr)

let succs body i =
  match body.(i) with
  | I.Halt -> []
  | I.Jmp target -> [ target ]
  | I.Br { target; _ } -> [ target; i + 1 ]
  | I.Ld _ | I.St _ | I.Mov _ | I.Binop _ | I.Nop -> [ i + 1 ]

(* Shortest entry-to-Halt suffix distance, by fixpoint over the (possibly
   cyclic) CFG. Bodies are tens of instructions, so the quadratic worst case
   is irrelevant. *)
let min_to_halt body =
  let n = Array.length body in
  let dist = Array.make n never in
  Array.iteri (fun i instr -> if instr = I.Halt then dist.(i) <- 0) body;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      if body.(i) <> I.Halt then begin
        let best =
          List.fold_left
            (fun acc j -> if j >= 0 && j < n then min acc dist.(j) else acc)
            never (succs body i)
        in
        let d = if best >= never then never else cost_lb body.(i) + best in
        if d < dist.(i) then begin
          dist.(i) <- d;
          changed := true
        end
      end
    done
  done;
  dist

let of_summary (s : Absint.summary) =
  {
    sites = s.Absint.sites;
    resolvable =
      List.for_all
        (fun (site : Absint.site) -> site.Absint.component <> Absint.Cany)
        s.Absint.sites;
    mth = min_to_halt s.Absint.body;
  }

let of_ar ar = of_summary (Absint.analyze_ar ar)

let resolvable t = t.resolvable

(* Mirror of [Absint.line_in_sites]'s arithmetic (lines are [addr asr 3],
   unbound registers are 0), but producing the explicit line set instead of
   a membership test. *)
let lines_for t ~init =
  if not t.resolvable then None
  else begin
    let lookup r = match List.assoc_opt r init with Some v -> v | None -> 0 in
    let tbl = Hashtbl.create 32 in
    let ok = ref true in
    List.iter
      (fun (site : Absint.site) ->
        if !ok then
          let range =
            match site.Absint.component with
            | Absint.Cany -> None
            | Absint.Cwords { lo; hi } -> Some (lo asr 3, hi asr 3)
            | Absint.Crel { reg; lo; hi } ->
                let base = lookup reg in
                Some ((base + lo) asr 3, (base + hi) asr 3)
          in
          match range with
          | None -> ok := false
          | Some (llo, lhi) ->
              if llo < 0 || lhi < llo || lhi - llo >= line_cap then ok := false
              else
                for l = llo to lhi do
                  if !ok then begin
                    if not (Hashtbl.mem tbl l) then Hashtbl.replace tbl l ();
                    if Hashtbl.length tbl > line_cap then ok := false
                  end
                done)
      t.sites;
    if not !ok then None
    else begin
      let lines = Hashtbl.fold (fun l () acc -> l :: acc) tbl [] in
      let arr = Array.of_list lines in
      Array.sort Int.compare arr;
      Some arr
    end
  end

let min_cycles_to_halt t ~pc = if pc < 0 || pc >= Array.length t.mth then 0 else t.mth.(pc)

let min_cycles_from_entry t = min_cycles_to_halt t ~pc:0
