module I = Isa.Instr

(* No path to Halt: the region cannot commit. Large but addition-safe. *)
let never = max_int / 4

(* Expanding a site interval to an explicit line set is only worthwhile for
   small footprints (the workloads' regions touch a handful of lines); a
   window-sized expansion would cost more than the lookahead it buys. *)
let line_cap = 64

type t = {
  sites : Absint.site list;
  resolvable : bool;
  mth : int array;  (* per-pc min cycles to the Halt step *)
}

(* Lower bound on the event-queue delta charged for executing [instr]: the
   engine schedules the next event at [time + max 1 latency] and every
   latency is at least the instruction's base cost (memory latency and stall
   re-issues only add cycles). *)
let cost_lb instr = max 1 (I.base_cost instr)

let succs body i =
  match body.(i) with
  | I.Halt -> []
  | I.Jmp target -> [ target ]
  | I.Br { target; _ } -> [ target; i + 1 ]
  | I.Ld _ | I.St _ | I.Mov _ | I.Binop _ | I.Nop -> [ i + 1 ]

(* Shortest entry-to-Halt suffix distance, by fixpoint over the (possibly
   cyclic) CFG. Bodies are tens of instructions, so the quadratic worst case
   is irrelevant. *)
let min_to_halt body =
  let n = Array.length body in
  let dist = Array.make n never in
  Array.iteri (fun i instr -> if instr = I.Halt then dist.(i) <- 0) body;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      if body.(i) <> I.Halt then begin
        let best =
          List.fold_left
            (fun acc j -> if j >= 0 && j < n then min acc dist.(j) else acc)
            never (succs body i)
        in
        let d = if best >= never then never else cost_lb body.(i) + best in
        if d < dist.(i) then begin
          dist.(i) <- d;
          changed := true
        end
      end
    done
  done;
  dist

let of_summary (s : Absint.summary) =
  {
    sites = s.Absint.sites;
    resolvable =
      List.for_all
        (fun (site : Absint.site) -> site.Absint.component <> Absint.Cany)
        s.Absint.sites;
    mth = min_to_halt s.Absint.body;
  }

let of_ar ar = of_summary (Absint.analyze_ar ar)

let resolvable t = t.resolvable

let has_reg_relative t =
  List.exists
    (fun (site : Absint.site) ->
      match site.Absint.component with Absint.Crel _ -> true | _ -> false)
    t.sites

(* Init-independent lower bound on [hi_line - lo_line] for one site. Exact
   for absolute components; for [Crel] the base only shifts the window, so
   (base+hi)>>3 - (base+lo)>>3 >= (hi-lo)>>3 for every base. *)
let span_lb (site : Absint.site) =
  match site.Absint.component with
  | Absint.Cany -> 0
  | Absint.Cwords { lo; hi } | Absint.Cregion { lo; hi; _ } -> (hi asr 3) - (lo asr 3)
  | Absint.Crel { lo; hi; _ } -> (hi - lo) asr 3

let always_capped t =
  t.resolvable && List.exists (fun s -> span_lb s >= line_cap) t.sites

let cover_lines_lb t =
  List.fold_left (fun acc s -> max acc (span_lb s + 1)) 0 t.sites

(* Mirror of [Absint.line_in_sites]'s arithmetic (lines are [addr asr 3],
   unbound registers are 0), but producing line ranges instead of a
   membership test. [None] iff the site is statically unbounded or binds to
   a negative (nonsense) line — never because of size. *)
let site_range ~lookup (site : Absint.site) =
  let range =
    match site.Absint.component with
    | Absint.Cany -> None
    | Absint.Cwords { lo; hi } | Absint.Cregion { lo; hi; _ } -> Some (lo asr 3, hi asr 3)
    | Absint.Crel { reg; lo; hi } ->
        let base = lookup reg in
        Some ((base + lo) asr 3, (base + hi) asr 3)
  in
  match range with
  | Some (llo, lhi) when llo >= 0 && lhi >= llo -> Some (llo, lhi)
  | _ -> None

let lookup_of init r = match List.assoc_opt r init with Some v -> v | None -> 0

let lines_for_r t ~init =
  if not t.resolvable then `Unresolvable
  else begin
    let lookup = lookup_of init in
    let tbl = Hashtbl.create 32 in
    let status = ref `Lines in
    List.iter
      (fun (site : Absint.site) ->
        if !status = `Lines then
          match site_range ~lookup site with
          | None -> status := `Unresolvable
          | Some (llo, lhi) ->
              if lhi - llo >= line_cap then status := `Capped
              else
                for l = llo to lhi do
                  if !status = `Lines then begin
                    if not (Hashtbl.mem tbl l) then Hashtbl.replace tbl l ();
                    if Hashtbl.length tbl > line_cap then status := `Capped
                  end
                done)
      t.sites;
    match !status with
    | `Lines ->
        let lines = Hashtbl.fold (fun l () acc -> l :: acc) tbl [] in
        let arr = Array.of_list lines in
        Array.sort Int.compare arr;
        `Lines arr
    | (`Capped | `Unresolvable) as r -> r
  end

let lines_for t ~init =
  match lines_for_r t ~init with `Lines arr -> Some arr | `Capped | `Unresolvable -> None

(* Sorted, disjoint, non-adjacent line intervals covering every line any
   execution may touch. Unlike [lines_for] there is no size cap: a cover is
   a constant number of intervals per site, so even pool-sized regions stay
   cheap. [None] only when a site is statically unbounded. *)
let cover_of_sites sites ~init =
  let lookup = lookup_of init in
  let ranges = List.filter_map (fun s -> site_range ~lookup s) sites in
  if List.length ranges <> List.length sites then None
  else begin
    let arr = Array.of_list ranges in
    Array.sort compare arr;
    let out = ref [] in
    Array.iter
      (fun (lo, hi) ->
        match !out with
        | (plo, phi) :: rest when lo <= phi + 1 -> out := (plo, max phi hi) :: rest
        | _ -> out := (lo, hi) :: !out)
      arr;
    Some (Array.of_list (List.rev !out))
  end

let lines_cover t ~init = cover_of_sites t.sites ~init

let min_cycles_to_halt t ~pc = if pc < 0 || pc >= Array.length t.mth then 0 else t.mth.(pc)

let min_cycles_from_entry t = min_cycles_to_halt t ~pc:0
