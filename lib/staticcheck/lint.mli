(** Severity-tagged diagnostics over AR bodies.

    Error-severity findings ([target-range], [absurd-offset], [div-zero] on
    a constant zero, [missing-halt]) indicate bodies that are broken or
    could never validate; warnings flag suspicious-but-legal constructs
    (unreachable code, dead register writes, untagged regions, negative
    offsets, possibly-zero divisors); info marks what the analyzer simply
    cannot prove. [clear_sim lint] exits non-zero only on errors. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  severity : severity;
  ar : string;
  index : int option;  (** instruction index, when the finding is localised *)
  code : string;  (** stable machine-readable identifier, e.g. ["dead-write"] *)
  message : string;
}

val errors : diag list -> int

val check_body : ?name:string -> ?regions:(string * (int * int)) list -> Isa.Instr.t array -> diag list
(** Works on raw bodies, including ones {!Isa.Instr.validate} rejects.
    [regions] is the region→word-extent table ({!Isa.Program.ar} [regions]);
    with it, lint also flags windows escaping their declared extent
    ([region-escape]) and unresolvable sites in extent-free regions
    ([region-no-extent], which degrade the may-conflict cover to any-line). *)

val check_ar : Isa.Program.ar -> diag list

val pp_diag : Format.formatter -> diag -> unit

val to_json : diag list -> Report.Json.t

val broken_demo : Isa.Instr.t array
(** A deliberately broken body hitting every error-severity check; used by
    [clear_sim lint --broken-demo] and the tests. *)
