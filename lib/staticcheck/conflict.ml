module A = Absint

type cover = Top | Spans of (int * int) array

(* Sort, then merge overlapping or adjacent intervals. *)
let normalize ranges =
  let arr = Array.of_list ranges in
  Array.sort compare arr;
  let out = ref [] in
  Array.iter
    (fun (lo, hi) ->
      match !out with
      | (plo, phi) :: rest when lo <= phi + 1 -> out := (plo, max phi hi) :: rest
      | _ -> out := (lo, hi) :: !out)
    arr;
  Spans (Array.of_list (List.rev !out))

let inter a b =
  match (a, b) with
  | Top, c | c, Top -> c
  | Spans xs, Spans ys ->
      let out = ref [] in
      let i = ref 0 and j = ref 0 in
      while !i < Array.length xs && !j < Array.length ys do
        let xlo, xhi = xs.(!i) and ylo, yhi = ys.(!j) in
        let lo = max xlo ylo and hi = min xhi yhi in
        if lo <= hi then out := (lo, hi) :: !out;
        if xhi < yhi then incr i else incr j
      done;
      Spans (Array.of_list (List.rev !out))

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Spans xs, Spans ys -> normalize (Array.to_list xs @ Array.to_list ys)

let is_empty = function Top -> false | Spans s -> Array.length s = 0

let mem cover line =
  match cover with
  | Top -> true
  | Spans s ->
      (* Spans are sorted and disjoint; binary search. *)
      let lo = ref 0 and hi = ref (Array.length s - 1) and found = ref false in
      while (not !found) && !lo <= !hi do
        let m = (!lo + !hi) / 2 in
        let mlo, mhi = s.(m) in
        if line < mlo then hi := m - 1
        else if line > mhi then lo := m + 1
        else found := true
      done;
      !found

let cover_lines = function
  | Top -> None
  | Spans s -> Some (Array.fold_left (fun acc (lo, hi) -> acc + hi - lo + 1) 0 s)

(* The line-interval cover of a site subset, binding each site the way the
   may-conflict matrix must: with no per-op [init] in hand, an init-relative
   [Crel] site is bounded by its region tag's extent when one is declared
   (the same region-containment contract [Cregion] relies on, and the one
   the dynamic conflict gate verifies), and is Top otherwise. *)
let site_span ~regions (s : A.site) =
  let of_words (lo, hi) = if lo < 0 then None else Some (lo asr 3, hi asr 3) in
  match s.A.component with
  | A.Cwords { lo; hi } | A.Cregion { lo; hi; _ } -> of_words (lo, hi)
  | A.Crel _ | A.Cany -> (
      match List.assoc_opt s.A.region regions with
      | Some span -> of_words span
      | None -> None)

let cover_of ~regions sites =
  let spans = List.filter_map (site_span ~regions) sites in
  if List.length spans <> List.length sites then Top else normalize spans

type ar_info = {
  id : int;
  name : string;
  rw : cover;  (** lines any attempt may read or write *)
  w : cover;  (** lines any attempt may write *)
  x : cover;  (** exclusive set: [rw] when CL-capable, else [w] *)
  cl_capable : bool;
}

type t = { ars : ar_info array; pairs : cover array array }

let info_of ~params ~written_regions (ar : Isa.Program.ar) =
  let s = Absint.analyze_ar ar in
  let p = Predict.predict ~params ~written_regions s in
  let regions = s.A.regions in
  let rw = cover_of ~regions s.A.sites in
  let w = cover_of ~regions (List.filter (fun (site : A.site) -> site.A.written) s.A.sites) in
  (* A CL-capable region may run with its whole footprint cacheline-locked:
     a peer merely *reading* one of its read-set lines then conflicts (lock
     acquisition dooms / NACKs target reads too), so its exclusive set is
     the full footprint, not just the writes. *)
  let cl_capable = p.Predict.envelope.Predict.ns_cl || p.Predict.envelope.Predict.s_cl in
  {
    id = ar.Isa.Program.id;
    name = ar.Isa.Program.name;
    rw;
    w;
    x = (if cl_capable then rw else w);
    cl_capable;
  }

(* may_conflict(a, b): lines where simultaneous attempts of [a] and [b] can
   produce a doom / NACK. One side must hold the line exclusively (a
   speculative or fallback write, or any CL-locked footprint line) while the
   other side touches it at all. *)
let pair_cover a b = union (inter a.x b.rw) (inter a.rw b.x)

let of_ars ?(params = Predict.default_params) ars =
  let written_regions = List.concat_map Isa.Program.regions_written ars in
  let infos = Array.of_list (List.map (info_of ~params ~written_regions) ars) in
  let n = Array.length infos in
  let pairs = Array.init n (fun i -> Array.init n (fun j -> pair_cover infos.(i) infos.(j))) in
  { ars = infos; pairs }

let ars t = t.ars

let find_index t ~ar_id =
  let r = ref None in
  Array.iteri (fun i info -> if info.id = ar_id && !r = None then r := Some i) t.ars;
  !r

let may_conflict t i j = t.pairs.(i).(j)

let may_conflict_ids t ~ida ~idb =
  match (find_index t ~ar_id:ida, find_index t ~ar_id:idb) with
  | Some i, Some j -> Some t.pairs.(i).(j)
  | _ -> None

let pp_cover ppf = function
  | Top -> Format.fprintf ppf "T"
  | Spans s ->
      if Array.length s = 0 then Format.fprintf ppf "-"
      else
        Array.iteri
          (fun k (lo, hi) ->
            if k > 0 then Format.fprintf ppf ",";
            if lo = hi then Format.fprintf ppf "%d" lo else Format.fprintf ppf "%d-%d" lo hi)
          s

let cover_to_string c = Format.asprintf "%a" pp_cover c
