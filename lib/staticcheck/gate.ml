type violation =
  | Footprint_escape of {
      ar : string;
      access : [ `Read | `Write ];
      line : Mem.Addr.line;
      bound : string;
    }
  | Decision_escape of { ar : string; decision : Clear.Decision.mode; envelope : string }
  | Conflict_escape of {
      aggressor : string;
      victim : string;
      line : Mem.Addr.line;
      cover : string;
    }

type t = {
  params : Predict.params;
  fault_drop_store : bool;
  summaries : (int * string, Absint.summary) Hashtbl.t;
  predictions : (int * string, Predict.t) Hashtbl.t;
  mutable conflicts : Conflict.t option;  (* built lazily from the first workload seen *)
}

let create ?(fault_drop_store = false) params =
  {
    params;
    fault_drop_store;
    summaries = Hashtbl.create 8;
    predictions = Hashtbl.create 8;
    conflicts = None;
  }

let key (ar : Isa.Program.ar) = (ar.Isa.Program.id, ar.Isa.Program.name)

let summary t ar =
  match Hashtbl.find_opt t.summaries (key ar) with
  | Some s -> s
  | None ->
      let s = Absint.analyze_ar ar in
      let s =
        if not t.fault_drop_store then s
        else begin
          (* Fault injection for the gate's own tests: pretend the analyzer
             missed the first store site, so a real write escapes the
             may-write set and the gate must catch it. *)
          let dropped = ref false in
          let sites =
            List.filter
              (fun (site : Absint.site) ->
                if site.Absint.written && not !dropped then begin
                  dropped := true;
                  false
                end
                else true)
              s.Absint.sites
          in
          { s with Absint.sites }
        end
      in
      Hashtbl.add t.summaries (key ar) s;
      s

let prediction t ar =
  match Hashtbl.find_opt t.predictions (key ar) with
  | Some p -> p
  | None ->
      let p = Predict.predict ~params:t.params ~written_regions:[] (summary t ar) in
      Hashtbl.add t.predictions (key ar) p;
      p

let check_commit t ~(ar : Isa.Program.ar) ~init_regs ~reads ~writes =
  let s = summary t ar in
  let init r = Option.value (List.assoc_opt r init_regs) ~default:0 in
  let reads_set = List.filter (fun (site : Absint.site) -> not site.Absint.written) s.Absint.sites
  and writes_set = List.filter (fun (site : Absint.site) -> site.Absint.written) s.Absint.sites in
  let escape access sites line =
    Footprint_escape
      {
        ar = ar.Isa.Program.name;
        access;
        line;
        bound =
          Printf.sprintf "%d site(s), %s line bound" (List.length sites)
            (Absint.bound_to_string
               (if access = `Read then s.Absint.read_lines else s.Absint.write_lines));
      }
  in
  let rec first_escape access sites = function
    | [] -> Ok ()
    | line :: rest ->
        if Absint.line_in_sites ~init sites line then first_escape access sites rest
        else Error (escape access sites line)
  in
  match first_escape `Read reads_set reads with
  | Error _ as e -> e
  | Ok () -> first_escape `Write writes_set writes

let conflict_matrix t ~ars =
  match t.conflicts with
  | Some c -> c
  | None ->
      let c = Conflict.of_ars ~params:t.params ars in
      t.conflicts <- Some c;
      c

let check_conflict t ~ars ~(aggressor : Isa.Program.ar) ~(victim : Isa.Program.ar) ~line =
  let c = conflict_matrix t ~ars in
  let escape cover =
    Error
      (Conflict_escape
         {
           aggressor = aggressor.Isa.Program.name;
           victim = victim.Isa.Program.name;
           line;
           cover;
         })
  in
  match
    Conflict.may_conflict_ids c ~ida:aggressor.Isa.Program.id ~idb:victim.Isa.Program.id
  with
  | Some cover -> if Conflict.mem cover line then Ok () else escape (Conflict.cover_to_string cover)
  | None -> escape "<pair not in matrix>"

let check_decision t ~(ar : Isa.Program.ar) ~decision =
  let p = prediction t ar in
  if Predict.decision_in_envelope p.Predict.envelope decision then Ok ()
  else
    Error
      (Decision_escape
         {
           ar = ar.Isa.Program.name;
           decision;
           envelope = Predict.envelope_name p.Predict.envelope;
         })

let pp_violation ppf = function
  | Footprint_escape { ar; access; line; bound } ->
      Format.fprintf ppf "AR %s: dynamic %s of line %d escapes the static may-%s set (%s)" ar
        (match access with `Read -> "read" | `Write -> "write")
        line
        (match access with `Read -> "read" | `Write -> "write")
        bound
  | Decision_escape { ar; decision; envelope } ->
      Format.fprintf ppf "AR %s: dynamic decision %s outside the static envelope %s" ar
        (Clear.Decision.mode_name decision) envelope
  | Conflict_escape { aggressor; victim; line; cover } ->
      Format.fprintf ppf
        "ARs %s vs %s: dynamic conflict on line %d escapes the static may-conflict cover (%s)"
        aggressor victim line cover
