module I = Isa.Instr

type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type diag = {
  severity : severity;
  ar : string;
  index : int option;
  code : string;
  message : string;
}

let errors ds = List.length (List.filter (fun d -> d.severity = Error) ds)

let absurd_offset = 1 lsl 20

let check_body ?(name = "<raw>") ?(regions = []) (body : I.t array) =
  let n = Array.length body in
  let s = Absint.analyze ~name ~regions body in
  let diags = ref [] in
  let add severity index code message = diags := { severity; ar = name; index; code; message } :: !diags in
  (* Registers read anywhere in the body (as any source operand). *)
  let used = Array.make I.num_regs false in
  let use = function I.Reg r -> used.(r) <- true | I.Imm _ -> () in
  Array.iter
    (fun instr ->
      match (instr : I.t) with
      | I.Ld { base; _ } -> use base
      | I.St { base; src; _ } -> use base; use src
      | I.Mov { src; _ } -> use src
      | I.Binop { a; b; _ } -> use a; use b
      | I.Br { a; b; _ } -> use a; use b
      | I.Jmp _ | I.Nop | I.Halt -> ())
    body;
  if n = 0 then add Error None "missing-halt" "body is empty";
  Array.iteri
    (fun i instr ->
      let here = Some i in
      (match (instr : I.t) with
      | I.Br { target; _ } when target < 0 || target >= n ->
          add Error here "target-range" (Printf.sprintf "branch target %d out of range [0,%d)" target n)
      | I.Jmp target when target < 0 || target >= n ->
          add Error here "target-range" (Printf.sprintf "jump target %d out of range [0,%d)" target n)
      | _ -> ());
      (match (instr : I.t) with
      | I.Ld { off; region; _ } | I.St { off; region; _ } ->
          if abs off >= absurd_offset then
            add Error here "absurd-offset" (Printf.sprintf "offset %d exceeds any region size" off)
          else if off < 0 then
            add Warning here "negative-offset"
              (Printf.sprintf "negative offset %d (regions are addressed upward from their base)" off);
          if region = "" then
            add Warning here "untagged-region"
              "load/store has no region tag; the mutability analysis will report it as <anon>"
      | _ -> ());
      (match (instr : I.t) with
      | I.Binop { op = I.Div | I.Rem; b; _ } when s.Absint.reachable.(i) -> (
          match b with
          | I.Imm 0 -> add Error here "div-zero" "divisor is the constant 0 (evaluates to 0)"
          | I.Imm _ -> ()
          | I.Reg r -> (
              let v = s.Absint.in_states.(i).(r) in
              match v.Value.shape with
              | Value.Const when v.Value.lo > 0 || v.Value.hi < 0 -> ()
              | Value.Const when v.Value.lo = 0 && v.Value.hi = 0 ->
                  add Error here "div-zero" "divisor is always 0 (evaluates to 0)"
              | Value.Const ->
                  add Warning here "div-zero" "divisor interval contains 0 (division then yields 0)"
              | _ ->
                  add Info here "div-zero"
                    "divisor is not statically non-zero (driver-provided register?)"))
      | _ -> ());
      if not s.Absint.reachable.(i) then add Warning here "unreachable" "instruction can never execute"
      else
        match (instr : I.t) with
        | I.Mov { dst; _ } | I.Binop { dst; _ } ->
            if not used.(dst) then
              add Warning here "dead-write"
                (Printf.sprintf "r%d is written here but never read anywhere in the body" dst)
        | _ -> ())
    body;
  if n > 0 && s.Absint.falls_off_end then
    add Error None "missing-halt" "a reachable path runs past the last instruction without Halt";
  if
    n > 0
    && (not s.Absint.falls_off_end)
    && not (Array.exists2 (fun r instr -> r && instr = I.Halt) s.Absint.reachable body)
  then add Error None "missing-halt" "no Halt instruction is reachable";
  (* Region-extent diagnostics: the may-conflict matrix (Conflict) binds
     sites the interval domain lost by their region tag's declared extent,
     so a lost site in an extent-free region silently degrades every cover
     involving this AR to Top; and a concrete window escaping its declared
     extent means the tag lies about containment (the dynamic gate would
     catch the escape, but it is worth flagging statically). *)
  List.iter
    (fun (site : Absint.site) ->
      if site.Absint.region <> Clear.Analysis.anon_region then
        match List.assoc_opt site.Absint.region s.Absint.regions with
        | None -> (
            match site.Absint.component with
            | Absint.Cany ->
                add Info (Some site.Absint.index) "region-no-extent"
                  (Printf.sprintf
                     "address unresolvable and region %S declares no extent; the may-conflict \
                      cover for this AR degrades to any-line"
                     site.Absint.region)
            | _ -> ())
        | Some (rlo, rhi) -> (
            match site.Absint.component with
            | Absint.Cwords { lo; hi } when lo < rlo || hi > rhi ->
                add Warning (Some site.Absint.index) "region-escape"
                  (Printf.sprintf
                     "static window [%d,%d] escapes region %S's declared extent [%d,%d]" lo hi
                     site.Absint.region rlo rhi)
            | _ -> ()))
    s.Absint.sites;
  List.rev !diags

let check_ar (ar : Isa.Program.ar) =
  check_body ~name:ar.Isa.Program.name ~regions:ar.Isa.Program.regions ar.Isa.Program.body

let pp_diag ppf d =
  Format.fprintf ppf "%s: %s%s: %s: %s" (severity_name d.severity) d.ar
    (match d.index with Some i -> Printf.sprintf " @%d" i | None -> "")
    d.code d.message

let to_json ds =
  Report.Json.List
    (List.map
       (fun d ->
         Report.Json.Obj
           [
             ("severity", Report.Json.Str (severity_name d.severity));
             ("ar", Report.Json.Str d.ar);
             ("instr", match d.index with Some i -> Report.Json.Int i | None -> Report.Json.Null);
             ("code", Report.Json.Str d.code);
             ("message", Report.Json.Str d.message);
           ])
       ds)

(* A deliberately broken body exercising every error-severity diagnostic;
   [clear_sim lint --broken-demo] lints it to show the tool failing. *)
let broken_demo : I.t array =
  [|
    I.Mov { dst = 1; src = I.Imm 3 } (* dead write: r1 never read *);
    I.Ld { dst = 2; base = I.Imm 64; off = -4; region = "" };
    I.Binop { op = I.Div; dst = 3; a = I.Reg 2; b = I.Imm 0 };
    I.St { base = I.Reg 3; off = 1 lsl 21; src = I.Imm 7; region = "scratch" };
    I.Br { cond = I.Eq; a = I.Reg 3; b = I.Imm 0; target = 99 };
    I.Nop (* falls off the end: no Halt *);
  |]
