type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* Two-space indented pretty printer; objects and lists open one level. *)
let to_string_pretty j =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as atom -> emit buf atom
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) x)
          xs;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf
