(** Minimal JSON document builder and serialiser for machine-readable
    reports ([clear_sim analyze --json], [clear_sim lint --json]). Emission
    only — the repo never parses JSON, so no reader is provided. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with standard string escaping. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for human-facing [--json] output. *)
