(** Exact latency percentiles (nearest-rank, no interpolation).

    The open-system harness reports tail latency, where approximate
    digests would defeat the point: a p999 that elides the convoy spike
    is exactly the artifact the overload experiment exists to show. So
    this reporter sorts the full sample and indexes — O(n log n) on a few
    thousand requests is nothing, and the result is bit-reproducible.

    Nearest-rank definition: the q-th percentile of n samples is element
    [max 1 (ceil (q*n))] (1-based) of the sorted array — the smallest
    sample ≥ q of the distribution's mass. p50 of [|1;2;3;4|] is 2,
    p99 of 1000 samples is the 990th. *)

type t = {
  count : int;
  mean : float;
  max : int;
  p50 : int;
  p99 : int;
  p999 : int;
}

val of_samples : int array -> t option
(** [None] on an empty sample; a singleton reports itself everywhere.
    The input is copied, never mutated. *)

val rank : count:int -> float -> int
(** 1-based nearest rank of quantile [q] in a sample of [count]. Raises
    [Invalid_argument] on an empty sample or [q] outside [0,1]. *)

val percentile : int array -> float -> int
(** Exact quantile of an already-sorted (ascending) array. *)

val to_json : t -> Json.t
(** Stable field order: count, mean, max, p50, p99, p999. *)
