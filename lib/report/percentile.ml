type t = {
  count : int;
  mean : float;
  max : int;
  p50 : int;
  p99 : int;
  p999 : int;
}

let rank ~count q =
  if count <= 0 then invalid_arg "Percentile.rank: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Percentile.rank: quantile outside [0,1]";
  max 1 (int_of_float (ceil (q *. float_of_int count)))

let percentile sorted q =
  let count = Array.length sorted in
  sorted.(rank ~count q - 1)

let of_samples samples =
  let count = Array.length samples in
  if count = 0 then None
  else begin
    let sorted = Array.copy samples in
    (* Int.compare, not polymorphic compare: this sort runs once per
       (config, load) grid point over request-count-sized arrays. *)
    Array.sort Int.compare sorted;
    let sum = Array.fold_left (fun acc v -> acc +. float_of_int v) 0.0 sorted in
    Some
      {
        count;
        mean = sum /. float_of_int count;
        max = sorted.(count - 1);
        p50 = percentile sorted 0.50;
        p99 = percentile sorted 0.99;
        p999 = percentile sorted 0.999;
      }
  end

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("mean", Json.Float t.mean);
      ("max", Json.Int t.max);
      ("p50", Json.Int t.p50);
      ("p99", Json.Int t.p99);
      ("p999", Json.Int t.p999);
    ]
