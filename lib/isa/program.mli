(** Atomic-region containers.

    An {!ar} is one atomic region: a named, validated mini-ISA body. Its
    [id] plays the role of the region's program counter — it is the key the
    ERT uses to recognise re-invocations of the same region. *)

type ar = private {
  id : int;
  name : string;
  body : Instr.t array;
  regions : (string * (int * int)) list;
      (** region name -> inclusive word extent [(lo, hi)] of every address
          the workload's layout allocated under that tag; sorted, duplicate
          free. The static verifier bounds indirection-lost sites by their
          region's extent (DESIGN.md §15); empty when the workload declares
          no extents, in which case such sites stay unbounded. *)
}

val make_ar : ?regions:(string * (int * int)) list -> id:int -> name:string -> Instr.t array -> ar
(** Validates the body; raises [Invalid_argument] if ill-formed or if an
    extent is empty or negative. *)

val build_ar : ?regions:(string * (int * int)) list -> id:int -> name:string -> (Asm.t -> unit) -> ar
(** Convenience: run the builder function on a fresh assembler buffer. *)

val region_extent : ar -> string -> (int * int) option

val instruction_count : ar -> int

val store_count : ar -> int
(** Static number of store instructions in the body (not dynamic). *)

val regions_written : ar -> string list
(** Region tags of all stores, deduplicated, sorted. *)

val regions_read : ar -> string list

val pp : Format.formatter -> ar -> unit
