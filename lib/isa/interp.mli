(** Sequential reference interpreter for atomic-region bodies.

    Executes one AR single-threaded against caller-supplied [load]/[store]
    callbacks, with exactly the instruction semantics of the simulated
    machine (same [eval_binop]/[eval_cond], division by zero yields 0).
    This is the replay entry point of the execution oracle: re-running every
    committed AR in commit order on a fresh store must reproduce the
    concurrent simulation's final memory image bit for bit. *)

exception Error of string
(** Raised on a runaway body (fuel exhausted) or a PC out of range. *)

val default_fuel : int
(** Matches the engine's runaway-loop guard (200k dynamic instructions). *)

val run :
  ?fuel:int ->
  Program.ar ->
  init_regs:(Instr.reg * int) list ->
  load:(int -> int) ->
  store:(int -> int -> unit) ->
  unit
(** Execute the body from PC 0 until [Halt]. Registers start at zero with
    [init_regs] installed, mirroring [Regfile.load_initial]. *)
