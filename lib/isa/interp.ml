exception Error of string

let default_fuel = 200_000

let run ?(fuel = default_fuel) (ar : Program.ar) ~init_regs ~load ~store =
  let regs = Array.make Instr.num_regs 0 in
  List.iter (fun (r, v) -> regs.(r) <- v) init_regs;
  let operand = function Instr.Reg r -> regs.(r) | Instr.Imm i -> i in
  let body = ar.Program.body in
  let pc = ref 0 in
  let steps = ref 0 in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= Array.length body then
      raise (Error (Printf.sprintf "Interp: PC %d out of range in %s" !pc ar.Program.name));
    incr steps;
    if !steps > fuel then
      raise (Error (Printf.sprintf "Interp: %s exceeded %d instructions" ar.Program.name fuel));
    match body.(!pc) with
    | Instr.Halt -> running := false
    | Instr.Nop -> incr pc
    | Instr.Mov { dst; src } ->
        regs.(dst) <- operand src;
        incr pc
    | Instr.Binop { op; dst; a; b } ->
        regs.(dst) <- Instr.eval_binop op (operand a) (operand b);
        incr pc
    | Instr.Jmp target -> pc := target
    | Instr.Br { cond; a; b; target } ->
        pc := (if Instr.eval_cond cond (operand a) (operand b) then target else !pc + 1)
    | Instr.Ld { dst; base; off; region = _ } ->
        regs.(dst) <- load (operand base + off);
        incr pc
    | Instr.St { base; off; src; region = _ } ->
        store (operand base + off) (operand src);
        incr pc
  done
