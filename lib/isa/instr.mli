(** The mini-ISA in which atomic-region bodies are written.

    A small RISC-like register machine: 32 integer registers, word-addressed
    loads/stores, ALU operations, conditional branches. Values are OCaml
    [int]s (63 bits) — wide enough for every workload, and pointers stored in
    memory are plain word addresses.

    Loads and stores may carry a [region] tag: a free-form name for the
    logical object they touch (e.g. ["list.next"], ["wallets"]). Regions are
    pure metadata — execution ignores them — but the static mutability
    analysis (paper Table 1) uses them to decide whether the values feeding an
    indirection can be written by concurrent atomic regions. *)

type reg = int
(** Register index in [\[0, num_regs)]. *)

val num_regs : int
(** 32 architectural registers. *)

type operand = Reg of reg | Imm of int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max

type cond = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Ld of { dst : reg; base : operand; off : int; region : string }
      (** [dst <- M\[base + off\]] *)
  | St of { base : operand; off : int; src : operand; region : string }
      (** [M\[base + off\] <- src] *)
  | Mov of { dst : reg; src : operand }
  | Binop of { op : binop; dst : reg; a : operand; b : operand }
  | Br of { cond : cond; a : operand; b : operand; target : int }
      (** Jump to instruction index [target] when the comparison holds. *)
  | Jmp of int
  | Nop
  | Halt  (** End of the atomic region body. *)

val eval_binop : binop -> int -> int -> int
(** Two's-complement-ish semantics on OCaml ints; division by zero yields 0
    (the simulated machine does not fault). *)

val eval_cond : cond -> int -> int -> bool

val base_cost : t -> int
(** Execution cycles excluding memory latency (charged separately for
    loads/stores). *)

val is_mem : t -> bool

val pp : Format.formatter -> t -> unit

val validate : t array -> (unit, string) result
(** Check register indices and control-flow targets — both [Br] and [Jmp] —
    are in range and the body contains [Halt]. *)
