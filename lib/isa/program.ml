type ar = { id : int; name : string; body : Instr.t array; regions : (string * (int * int)) list }

let make_ar ?(regions = []) ~id ~name body =
  (match Instr.validate body with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Program.make_ar %s: %s" name msg));
  List.iter
    (fun (r, (lo, hi)) ->
      if r = "" || lo < 0 || hi < lo then
        invalid_arg (Printf.sprintf "Program.make_ar %s: bad extent for region %S" name r))
    regions;
  { id; name; body; regions = List.sort_uniq compare regions }

let build_ar ?regions ~id ~name f =
  let b = Asm.create () in
  f b;
  make_ar ?regions ~id ~name (Asm.assemble b)

let region_extent ar region = List.assoc_opt region ar.regions

let instruction_count ar = Array.length ar.body

let store_count ar =
  Array.fold_left
    (fun n i -> match i with Instr.St _ -> n + 1 | _ -> n)
    0 ar.body

let dedup_sorted xs = List.sort_uniq String.compare xs

let regions_written ar =
  Array.fold_left (fun acc i -> match i with Instr.St { region; _ } -> region :: acc | _ -> acc) [] ar.body
  |> dedup_sorted

let regions_read ar =
  Array.fold_left (fun acc i -> match i with Instr.Ld { region; _ } -> region :: acc | _ -> acc) [] ar.body
  |> dedup_sorted

let pp ppf ar =
  Format.fprintf ppf "@[<v>AR %d (%s):@," ar.id ar.name;
  Array.iteri (fun i instr -> Format.fprintf ppf "  %3d: %a@," i Instr.pp instr) ar.body;
  Format.fprintf ppf "@]"
