type entry =
  | Commit of Witness.t
  | Driver_writes of { time : int; core : int; stores : (Mem.Addr.t * int) list }

type decision = {
  time : int;
  core : int;
  ar : Isa.Program.ar;
  decision : Clear.Decision.mode;
}

type t = {
  n_cores : int;
  mutable initial : Mem.Store.image option;
  mutable rev_entries : entry list;
  mutable rev_lock_events : Lock_safety.event list;
  mutable rev_decisions : decision list;
  mutable next_seq : int;
}

let create ~cores =
  {
    n_cores = cores;
    initial = None;
    rev_entries = [];
    rev_lock_events = [];
    rev_decisions = [];
    next_seq = 0;
  }

let cores t = t.n_cores

let set_initial t snap = t.initial <- Some snap

let add_commit t ~time ~core ~ar ~init_regs ~mode ~retries ~reads ~writes ~stores =
  let w =
    {
      Witness.seq = t.next_seq;
      time;
      core;
      ar;
      init_regs;
      mode;
      retries;
      reads;
      writes;
      stores;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.rev_entries <- Commit w :: t.rev_entries

let add_driver_writes t ~time ~core ~stores =
  if stores <> [] then t.rev_entries <- Driver_writes { time; core; stores } :: t.rev_entries

let add_lock_event t ev = t.rev_lock_events <- ev :: t.rev_lock_events

let add_decision t ~time ~core ~ar ~decision =
  t.rev_decisions <- { time; core; ar; decision } :: t.rev_decisions

let initial t = t.initial

let entries t = List.rev t.rev_entries

let witnesses t =
  List.filter_map (function Commit w -> Some w | Driver_writes _ -> None) (entries t)

let lock_events t = List.rev t.rev_lock_events

let decisions t = List.rev t.rev_decisions

let commit_count t = t.next_seq
