type entry =
  | Commit of Witness.t
  | Driver_writes of { time : int; core : int; stores : (Mem.Addr.t * int) list }

type decision = {
  time : int;
  core : int;
  ar : Isa.Program.ar;
  decision : Clear.Decision.mode;
}

type conflict = {
  time : int;
  aggressor_core : int;
  victim_core : int;
  aggressor_ar : Isa.Program.ar;
  victim_ar : Isa.Program.ar;
  line : Mem.Addr.line;
}

type sink = {
  sink_initial : Mem.Store.image -> unit;
  sink_commit : Witness.t -> unit;
  sink_driver_writes : time:int -> core:int -> stores:(Mem.Addr.t * int) list -> unit;
  sink_lock_event : Lock_safety.event -> unit;
  sink_decision : decision -> unit;
  sink_conflict : conflict -> unit;
  sink_ars : Isa.Program.ar list -> unit;
  sink_stats : unit -> int * int;
}

type t = {
  n_cores : int;
  sink : sink option;
  mutable initial : Mem.Store.image option;
  mutable rev_entries : entry list;
  mutable rev_lock_events : Lock_safety.event list;
  mutable rev_decisions : decision list;
  mutable rev_conflicts : conflict list;
  mutable ars : Isa.Program.ar list;
  mutable next_seq : int;
}

let make ~cores sink =
  {
    n_cores = cores;
    sink;
    initial = None;
    rev_entries = [];
    rev_lock_events = [];
    rev_decisions = [];
    rev_conflicts = [];
    ars = [];
    next_seq = 0;
  }

let create ~cores = make ~cores None

let create_streaming ~cores sink = make ~cores (Some sink)

let cores t = t.n_cores

let is_streaming t = t.sink <> None

let stream_stats t = Option.map (fun s -> s.sink_stats ()) t.sink

let set_initial t snap =
  t.initial <- Some snap;
  match t.sink with None -> () | Some s -> s.sink_initial snap

let set_ars t ars =
  t.ars <- ars;
  match t.sink with None -> () | Some s -> s.sink_ars ars

let add_commit t ~time ~core ~ar ~init_regs ~mode ~retries ~reads ~writes ~stores =
  let w =
    {
      Witness.seq = t.next_seq;
      time;
      core;
      ar;
      init_regs;
      mode;
      retries;
      reads;
      writes;
      stores;
    }
  in
  t.next_seq <- t.next_seq + 1;
  match t.sink with
  | None -> t.rev_entries <- Commit w :: t.rev_entries
  | Some s -> s.sink_commit w

let add_driver_writes t ~time ~core ~stores =
  if stores <> [] then
    match t.sink with
    | None -> t.rev_entries <- Driver_writes { time; core; stores } :: t.rev_entries
    | Some s -> s.sink_driver_writes ~time ~core ~stores

let add_lock_event t ev =
  match t.sink with
  | None -> t.rev_lock_events <- ev :: t.rev_lock_events
  | Some s -> s.sink_lock_event ev

let add_decision t ~time ~core ~ar ~decision =
  let d = { time; core; ar; decision } in
  match t.sink with
  | None -> t.rev_decisions <- d :: t.rev_decisions
  | Some s -> s.sink_decision d

let add_conflict t ~time ~aggressor_core ~victim_core ~aggressor_ar ~victim_ar ~line =
  let c = { time; aggressor_core; victim_core; aggressor_ar; victim_ar; line } in
  match t.sink with
  | None -> t.rev_conflicts <- c :: t.rev_conflicts
  | Some s -> s.sink_conflict c

let initial t = t.initial

let entries t = List.rev t.rev_entries

let witnesses t =
  List.filter_map (function Commit w -> Some w | Driver_writes _ -> None) (entries t)

let lock_events t = List.rev t.rev_lock_events

let decisions t = List.rev t.rev_decisions

let conflicts t = List.rev t.rev_conflicts

let ars t = t.ars

let commit_count t = t.next_seq
