(* Incremental, bounded-memory face of the execution oracle (DESIGN.md §14).

   The post hoc oracles consume a complete per-run history: every witness,
   lock event and decision, retained until the run ends. This module checks
   the same stream online, one emission at a time, and retires state as soon
   as the global committed frontier proves it can no longer participate in a
   violation — so a checked run carries O(live lines) of checker state
   instead of O(history).

   Retirement invariant. Let F be the minimum attempt-begin time over all
   in-flight attempts (or the latest stream time when every core is idle).
   The engine feeds emissions in non-decreasing time order (the sequential
   loop is monotone in [t.now], and the PDES driver disables extended bursts
   whenever a checker is attached), and every future witness performs all of
   its reads and acquires visibility inside its own attempt interval — so
   every future read time and every future visibility is >= F. Hence:

   - a recorded reader with first-read time tr <= F can never close a Wr
     cycle (that needs tr > vis' for some future visibility vis' >= F);
   - a recorded writer with visibility vis <= F can never close an Rw cycle
     (needs a future read tr < vis <= F) nor a Ww cycle (needs a future
     visibility vis' < vis <= F).

   Dropping exactly that state changes no check outcome, so the first
   violation reported here is identical — field for field — to the post hoc
   {!Serial.check} over the full history. Dropped entries are folded into
   per-line and global high-water counters, never lost silently. *)

type line_state = {
  mutable last_writer : (Witness.t * int) option;  (* witness, visibility *)
  mutable readers : (Witness.t * int) list;  (* live readers, newest first *)
  mutable n_readers : int;
  mutable retired_readers : int;  (* compact summary of dropped readers *)
}

type stats = {
  live_lines : int;
  peak_live_lines : int;
  live_entries : int;
  peak_live_entries : int;
  retired : int;
  commits : int;
}

type results = {
  commits : int;
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
  static_ : (unit, Staticcheck.Gate.violation) result option;
}

type t = {
  sweep_every : int;
  static_gate : Staticcheck.Gate.t option;
  lines : (Mem.Addr.line, line_state) Hashtbl.t;
  locks : Lock_safety.t;
  inflight : int array;  (* attempt-begin time per core; -1 = idle *)
  mutable replay_cur : Replay.cursor option;
  mutable last_time : int;
  mutable n_commits : int;
  mutable since_sweep : int;
  (* Per-oracle first-error latches: after an oracle fails it stops being
     fed (its post hoc counterpart stops at the first error too); the other
     oracles keep running, matching {!Verdict.evaluate}'s independent
     results. The static gate latches witness and decision violations
     separately because the post hoc gate checks all witnesses before any
     decision. *)
  mutable serial_err : Serial.violation option;
  mutable replay_err : Replay.divergence option;
  mutable lock_err : Lock_safety.violation option;
  mutable gate_commit_err : Staticcheck.Gate.violation option;
  mutable gate_decision_err : Staticcheck.Gate.violation option;
  mutable gate_conflict_err : Staticcheck.Gate.violation option;
  mutable ars : Isa.Program.ar list;
  mutable live_entries : int;
  mutable peak_live_lines : int;
  mutable peak_live_entries : int;
  mutable retired : int;
}

let create ?static_gate ?(sweep_every = 512) ~cores () =
  if sweep_every < 1 then invalid_arg "Stream.create: sweep_every must be >= 1";
  {
    sweep_every;
    static_gate;
    lines = Hashtbl.create 1024;
    locks = Lock_safety.create ~cores;
    inflight = Array.make cores (-1);
    replay_cur = None;
    last_time = 0;
    n_commits = 0;
    since_sweep = 0;
    serial_err = None;
    replay_err = None;
    lock_err = None;
    gate_commit_err = None;
    gate_decision_err = None;
    gate_conflict_err = None;
    ars = [];
    live_entries = 0;
    peak_live_lines = 0;
    peak_live_entries = 0;
    retired = 0;
  }

let stats t =
  {
    live_lines = Hashtbl.length t.lines;
    peak_live_lines = t.peak_live_lines;
    live_entries = t.live_entries;
    peak_live_entries = t.peak_live_entries;
    retired = t.retired;
    commits = t.n_commits;
  }

let set_initial t snap = t.replay_cur <- Some (Replay.start ~initial:snap)

let note_time t time = if time > t.last_time then t.last_time <- time

(* ------------------------------------------------------------------ *)
(* Retirement *)

let frontier t =
  let f = ref max_int in
  Array.iter (fun b -> if b >= 0 && b < !f then f := b) t.inflight;
  if !f = max_int then t.last_time else !f

let sweep t =
  let f = frontier t in
  Hashtbl.filter_map_inplace
    (fun _line s ->
      let kept = List.filter (fun ((_ : Witness.t), tr) -> tr > f) s.readers in
      let n_kept = List.length kept in
      let dropped = s.n_readers - n_kept in
      if dropped > 0 then begin
        s.readers <- kept;
        s.n_readers <- n_kept;
        s.retired_readers <- s.retired_readers + dropped;
        t.retired <- t.retired + dropped;
        t.live_entries <- t.live_entries - dropped
      end;
      (match s.last_writer with
      | Some (_, vis) when vis <= f ->
          s.last_writer <- None;
          t.retired <- t.retired + 1;
          t.live_entries <- t.live_entries - 1
      | Some _ | None -> ());
      if s.n_readers = 0 && s.last_writer = None then None else Some s)
    t.lines

(* ------------------------------------------------------------------ *)
(* Serializability: Serial.add ported onto the retiring line table. The
   check logic is identical statement for statement; only the bookkeeping
   around the per-line entries differs. *)

let state t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
      let s = { last_writer = None; readers = []; n_readers = 0; retired_readers = 0 } in
      Hashtbl.add t.lines line s;
      s

exception Found of Serial.violation

let serial_add t (w : Witness.t) =
  try
    List.iter
      (fun (line, tr) ->
        let s = state t line in
        (match s.last_writer with
        | Some (earlier, vis) when tr < vis ->
            raise
              (Found
                 {
                   Serial.earlier;
                   later = w;
                   line;
                   kind = Serial.Rw;
                   detail =
                     Printf.sprintf
                       "later read line %d at t=%d, before earlier's write became visible at t=%d"
                       line tr vis;
                 })
        | _ -> ());
        s.readers <- (w, tr) :: s.readers;
        s.n_readers <- s.n_readers + 1;
        t.live_entries <- t.live_entries + 1)
      w.reads;
    List.iter
      (fun (line, _first_write) ->
        let s = state t line in
        let vis = Witness.visibility w line in
        (match s.last_writer with
        | Some (earlier, prev_vis) when vis < prev_vis ->
            raise
              (Found
                 {
                   Serial.earlier;
                   later = w;
                   line;
                   kind = Serial.Ww;
                   detail =
                     Printf.sprintf
                       "later's write to line %d became visible at t=%d, before earlier's at t=%d"
                       line vis prev_vis;
                 })
        | _ -> ());
        List.iter
          (fun ((reader : Witness.t), tr) ->
            if reader.seq <> w.seq && tr > vis then
              raise
                (Found
                   {
                     Serial.earlier = reader;
                     later = w;
                     line;
                     kind = Serial.Wr;
                     detail =
                       Printf.sprintf
                         "earlier read line %d at t=%d, after later's write became visible at t=%d"
                         line tr vis;
                   }))
          s.readers;
        if s.last_writer = None then t.live_entries <- t.live_entries + 1;
        t.live_entries <- t.live_entries - s.n_readers;
        s.last_writer <- Some (w, vis);
        s.readers <- [];
        s.n_readers <- 0)
      w.writes;
    Ok ()
  with Found v -> Error v

(* ------------------------------------------------------------------ *)
(* Feeding *)

let add_commit t (w : Witness.t) =
  note_time t w.time;
  (match t.serial_err with
  | Some _ -> ()
  | None -> (
      match serial_add t w with Ok () -> () | Error v -> t.serial_err <- Some v));
  (match (t.replay_err, t.replay_cur) with
  | Some _, _ | _, None -> ()
  | None, Some cur -> (
      match Replay.step cur w with Ok () -> () | Error d -> t.replay_err <- Some d));
  (match (t.static_gate, t.gate_commit_err) with
  | None, _ | _, Some _ -> ()
  | Some gate, None -> (
      match
        Staticcheck.Gate.check_commit gate ~ar:w.Witness.ar ~init_regs:w.Witness.init_regs
          ~reads:(List.map fst w.Witness.reads)
          ~writes:(List.map fst w.Witness.writes)
      with
      | Ok () -> ()
      | Error v -> t.gate_commit_err <- Some v));
  t.n_commits <- t.n_commits + 1;
  let live = Hashtbl.length t.lines in
  if live > t.peak_live_lines then t.peak_live_lines <- live;
  if t.live_entries > t.peak_live_entries then t.peak_live_entries <- t.live_entries;
  t.since_sweep <- t.since_sweep + 1;
  if t.since_sweep >= t.sweep_every then begin
    t.since_sweep <- 0;
    sweep t
  end

let add_driver_writes t ~time ~core:_ ~stores =
  note_time t time;
  match (t.replay_err, t.replay_cur) with
  | Some _, _ | _, None -> ()
  | None, Some cur -> Replay.apply_driver_writes cur stores

let add_lock_event t (ev : Lock_safety.event) =
  (match ev with
  | Lock_safety.Attempt_begin { time; core } ->
      note_time t time;
      t.inflight.(core) <- time
  | Lock_safety.Attempt_end { time; core } ->
      note_time t time;
      t.inflight.(core) <- -1
  | Lock_safety.Lock { time; _ } | Lock_safety.Unlock { time; _ } -> note_time t time);
  match t.lock_err with
  | Some _ -> ()
  | None -> (
      match Lock_safety.add t.locks ev with Ok () -> () | Error v -> t.lock_err <- Some v)

let set_ars t ars = t.ars <- ars

let add_conflict t (c : Collector.conflict) =
  note_time t c.Collector.time;
  match (t.static_gate, t.gate_conflict_err) with
  | None, _ | _, Some _ -> ()
  | Some gate, None -> (
      match
        Staticcheck.Gate.check_conflict gate ~ars:t.ars ~aggressor:c.Collector.aggressor_ar
          ~victim:c.Collector.victim_ar ~line:c.Collector.line
      with
      | Ok () -> ()
      | Error v -> t.gate_conflict_err <- Some v)

let add_decision t (d : Collector.decision) =
  note_time t d.Collector.time;
  match (t.static_gate, t.gate_decision_err) with
  | None, _ | _, Some _ -> ()
  | Some gate, None -> (
      match
        Staticcheck.Gate.check_decision gate ~ar:d.Collector.ar ~decision:d.Collector.decision
      with
      | Ok () -> ()
      | Error v -> t.gate_decision_err <- Some v)

(* ------------------------------------------------------------------ *)
(* Closing the run *)

let finish t ~final =
  let serial = match t.serial_err with Some v -> Error v | None -> Ok () in
  let replay =
    match (t.replay_err, t.replay_cur) with
    | Some d, _ -> Error d
    | None, None -> invalid_arg "Stream.finish: no initial snapshot was fed"
    | None, Some cur -> Replay.finish cur ~final
  in
  let locks =
    match t.lock_err with Some v -> Error v | None -> Lock_safety.finish t.locks
  in
  let static_ =
    Option.map
      (fun (_ : Staticcheck.Gate.t) ->
        (* Witness violations outrank decision violations, which outrank
           conflict violations, matching the post hoc gate's
           witnesses-then-decisions-then-conflicts order. *)
        match (t.gate_commit_err, t.gate_decision_err, t.gate_conflict_err) with
        | Some v, _, _ -> Error v
        | None, Some v, _ -> Error v
        | None, None, Some v -> Error v
        | None, None, None -> Ok ())
      t.static_gate
  in
  { commits = t.n_commits; serial; replay; locks; static_ }

let sink t =
  {
    Collector.sink_initial = set_initial t;
    sink_commit = add_commit t;
    sink_driver_writes = (fun ~time ~core ~stores -> add_driver_writes t ~time ~core ~stores);
    sink_lock_event = add_lock_event t;
    sink_decision = add_decision t;
    sink_conflict = add_conflict t;
    sink_ars = set_ars t;
    sink_stats =
      (fun () ->
        let s = stats t in
        (s.peak_live_lines, s.retired));
  }
