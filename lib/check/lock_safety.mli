(** Lock-safety invariants over the engine's lock/release event stream.

    CLEAR's cacheline-lock machinery must uphold three invariants, checked
    here from a complete event log (the bounded trace ring may drop events;
    this stream never does):

    - {b mutual exclusion}: a line is never locked by two cores at once;
    - {b lexicographic acquisition}: within one attempt, ALT locks are taken
      in non-decreasing directory-set-index order (the deadlock-avoidance
      argument of the paper relies on this total order);
    - {b complete release}: every lock taken during an attempt is released by
      the matching commit or abort — nothing leaks past [Attempt_end], and
      nothing is unlocked that was never locked. *)

type event =
  | Attempt_begin of { time : int; core : int }
  | Lock of { time : int; core : int; line : Mem.Addr.line; key : int }
      (** [key] is the lexicographic acquisition key (directory set index). *)
  | Unlock of { time : int; core : int; line : Mem.Addr.line }
  | Attempt_end of { time : int; core : int }

type violation = { time : int; core : int; reason : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val create : cores:int -> t

val add : t -> event -> (unit, violation) result
(** Feed events in emission order. After an [Error] the state is undefined. *)

val finish : t -> (unit, violation) result
(** End-of-run check: no core may still hold a lock. *)

val check : cores:int -> event list -> (unit, violation) result
(** [add] every event, then [finish]. *)
