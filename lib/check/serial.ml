type kind = Rw | Ww | Wr

type violation = {
  earlier : Witness.t;
  later : Witness.t;
  line : Mem.Addr.line;
  kind : kind;
  detail : string;
}

let kind_name = function Rw -> "read-stale (RW)" | Ww -> "write-order (WW)" | Wr -> "future-read (WR)"

let pp_violation fmt v =
  Format.fprintf fmt
    "@[<v2>serializability violation on line %d [%s]:@ earlier: %a@ later:   %a@ %s@ cycle: [%a] \
     -> [%a] (commit order) -> [%a] (dependency)@]"
    v.line (kind_name v.kind) Witness.pp v.earlier Witness.pp v.later v.detail Witness.pp v.earlier
    Witness.pp v.later Witness.pp v.earlier

(* Per-line state: the last committed writer (with the cycle its write became
   visible) and every reader that committed since. Readers before the last
   writer are irrelevant: any conflict they could expose against a future
   writer W would already have fired as an Rw/Ww check when the current
   writer committed after them, or will fire against the current writer's
   visibility which is at least as recent. *)
type line_state = {
  mutable last_writer : (Witness.t * int) option;  (* witness, visibility *)
  mutable readers : (Witness.t * int) list;  (* witness, first-read cycle *)
}

type t = { lines : (Mem.Addr.line, line_state) Hashtbl.t }

let create () = { lines = Hashtbl.create 1024 }

let state t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
      let s = { last_writer = None; readers = [] } in
      Hashtbl.add t.lines line s;
      s

exception Found of violation

let add t (w : Witness.t) =
  try
    (* Reads first: each must not predate the visibility of the last
       committed write to the same line. *)
    List.iter
      (fun (line, tr) ->
        let s = state t line in
        (match s.last_writer with
        | Some (earlier, vis) when tr < vis ->
            raise
              (Found
                 {
                   earlier;
                   later = w;
                   line;
                   kind = Rw;
                   detail =
                     Printf.sprintf
                       "later read line %d at t=%d, before earlier's write became visible at t=%d"
                       line tr vis;
                 })
        | _ -> ());
        s.readers <- (w, tr) :: s.readers)
      w.reads;
    (* Writes second: visibility must not precede the last writer's, nor any
       earlier committer's read of the same line. *)
    List.iter
      (fun (line, _first_write) ->
        let s = state t line in
        let vis = Witness.visibility w line in
        (match s.last_writer with
        | Some (earlier, prev_vis) when vis < prev_vis ->
            raise
              (Found
                 {
                   earlier;
                   later = w;
                   line;
                   kind = Ww;
                   detail =
                     Printf.sprintf
                       "later's write to line %d became visible at t=%d, before earlier's at t=%d"
                       line vis prev_vis;
                 })
        | _ -> ());
        List.iter
          (fun ((reader : Witness.t), tr) ->
            if reader.seq <> w.seq && tr > vis then
              raise
                (Found
                   {
                     earlier = reader;
                     later = w;
                     line;
                     kind = Wr;
                     detail =
                       Printf.sprintf
                         "earlier read line %d at t=%d, after later's write became visible at t=%d"
                         line tr vis;
                   }))
          s.readers;
        s.last_writer <- Some (w, vis);
        s.readers <- [])
      w.writes;
    Ok ()
  with Found v -> Error v

let check witnesses =
  let t = create () in
  List.fold_left
    (fun acc w -> match acc with Error _ -> acc | Ok () -> add t w)
    (Ok ()) witnesses
