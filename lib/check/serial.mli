(** Conflict-graph serializability checker over committed witnesses.

    Builds the direct-serialization graph incrementally in commit order. The
    candidate serial order is the commit order itself, so the check reduces
    to: no temporal dependency may point {e against} commit order. For each
    shared line we track the last committed writer (with its visibility time)
    and the readers since that writer; each new witness is checked against
    that state in O(footprint).

    Three violation kinds, each a minimal two-node cycle with an
    earlier-committed witness:

    - {b Rw}: the later committer read the line {e before} the earlier
      writer's write became visible — it observed the pre-write value, so an
      anti-dependency (later → earlier) closes a cycle with commit order.
    - {b Ww}: the later committer's write became visible {e before} the
      earlier writer's — the final value in memory is the earlier commit's,
      inverting the write order implied by commit order.
    - {b Wr}: a direct-mode writer's store became visible {e before} a read
      performed by an already-committed witness — the earlier commit read
      data from a transaction serialized after it.

    All comparisons are strict; same-cycle ties are accepted (see
    DESIGN.md §9 for why the engine's same-cycle doom processing makes those
    benign, and what that blind spot costs). *)

type kind = Rw | Ww | Wr

type violation = {
  earlier : Witness.t;  (** committed first *)
  later : Witness.t;  (** committed second, closes the cycle *)
  line : Mem.Addr.line;
  kind : kind;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit
(** Prints the minimal witness cycle: commit-order edge one way, temporal
    dependency the other. *)

type t

val create : unit -> t

val add : t -> Witness.t -> (unit, violation) result
(** Feed witnesses in commit order; the first violation found is returned.
    After an [Error] the checker state is undefined — report and stop. *)

val check : Witness.t list -> (unit, violation) result
(** Run [add] over a complete commit-ordered history. *)
