(** Accumulates everything the engine emits for one checked run.

    The engine (when created with a collector) feeds this during simulation:
    the initial memory snapshot, one witness per committed attempt, any
    store writes performed by workload drivers {e outside} atomic regions
    (thread-private scratch buffers; see DESIGN.md §9), and the complete
    lock/release event stream. {!Verdict.evaluate} consumes the result. *)

type entry =
  | Commit of Witness.t
  | Driver_writes of { time : int; core : int; stores : (Mem.Addr.t * int) list }
      (** Non-transactional stores a driver issued while choosing its next
          operation, in program order. Replayed positionally; not part of the
          serializability check. *)

type decision = {
  time : int;
  core : int;
  ar : Isa.Program.ar;
  decision : Clear.Decision.mode;
}
(** One end-of-discovery CLEAR assessment (paper Figure 2) the engine
    performed; the static soundness gate asserts each lies inside the
    statically predicted decision envelope. *)

type conflict = {
  time : int;
  aggressor_core : int;
  victim_core : int;
  aggressor_ar : Isa.Program.ar;
  victim_ar : Isa.Program.ar;
  line : Mem.Addr.line;
}
(** One engine-observed conflict event with a known line: a doom (the
    aggressor's access or lock acquisition killed the victim's speculative
    attempt) or a NACK (the aggressor held the line exclusively and the
    victim's request was refused). The static soundness gate asserts each
    line lies in the static may-conflict cover for the AR pair
    ({!Staticcheck.Conflict}). The engine deduplicates per
    (aggressor AR, victim AR, line), so volume is bounded by the static
    matrix size, not the run length. *)

type sink = {
  sink_initial : Mem.Store.image -> unit;
  sink_commit : Witness.t -> unit;
  sink_driver_writes : time:int -> core:int -> stores:(Mem.Addr.t * int) list -> unit;
  sink_lock_event : Lock_safety.event -> unit;
  sink_decision : decision -> unit;
  sink_conflict : conflict -> unit;
  sink_ars : Isa.Program.ar list -> unit;
  sink_stats : unit -> int * int;  (** (peak live lines, retired entries) *)
}
(** An online consumer of the emission stream. A streaming collector
    forwards every emission here instead of accumulating it, so a checked
    run holds O(live state) instead of O(history); {!Stream.sink} builds
    one over the incremental oracles. Plain closures — no module dependency
    from here onto the streaming checker. *)

type t

val create : cores:int -> t
(** A post hoc (accumulating) collector: everything is retained for
    {!Verdict.evaluate} after the run. *)

val create_streaming : cores:int -> sink -> t
(** A streaming collector: emissions are forwarded to [sink] in emission
    order and discarded; {!entries}/{!witnesses}/{!lock_events}/
    {!decisions} stay empty. Witness [seq] assignment and
    {!commit_count} work identically in both modes. *)

val cores : t -> int

val is_streaming : t -> bool

val stream_stats : t -> (int * int) option
(** [sink_stats] passthrough — [None] on accumulating collectors. The
    engine folds this into its perf counters at end of run. *)

val set_initial : t -> Mem.Store.image -> unit
(** Memory snapshot taken after workload setup, before any simulated cycle.
    An {!Mem.Store.image} is a cheap chunk-sharing freeze, not a copy. *)

val add_commit :
  t ->
  time:int ->
  core:int ->
  ar:Isa.Program.ar ->
  init_regs:(Isa.Instr.reg * int) list ->
  mode:Witness.mode ->
  retries:int ->
  reads:(Mem.Addr.line * int) list ->
  writes:(Mem.Addr.line * int) list ->
  stores:(Mem.Addr.t * int) list ->
  unit
(** Record a committed attempt; the commit-order [seq] is assigned here. *)

val add_driver_writes : t -> time:int -> core:int -> stores:(Mem.Addr.t * int) list -> unit
(** Ignored when [stores] is empty. *)

val add_lock_event : t -> Lock_safety.event -> unit

val add_decision :
  t -> time:int -> core:int -> ar:Isa.Program.ar -> decision:Clear.Decision.mode -> unit

val set_ars : t -> Isa.Program.ar list -> unit
(** The workload's full static AR list, fed once at engine creation — the
    universe the may-conflict matrix is built over. *)

val add_conflict :
  t ->
  time:int ->
  aggressor_core:int ->
  victim_core:int ->
  aggressor_ar:Isa.Program.ar ->
  victim_ar:Isa.Program.ar ->
  line:Mem.Addr.line ->
  unit

val initial : t -> Mem.Store.image option

val entries : t -> entry list
(** Commits and driver writes, in emission order. *)

val witnesses : t -> Witness.t list
(** Just the commits, in commit order. *)

val lock_events : t -> Lock_safety.event list

val decisions : t -> decision list
(** End-of-discovery decisions, in emission order. *)

val conflicts : t -> conflict list
(** Deduplicated conflict events, in emission order. *)

val ars : t -> Isa.Program.ar list
(** As fed by {!set_ars}; empty if the engine never called it. *)

val commit_count : t -> int
