type mode = Speculative | Scl | Nscl | Fallback

let mode_buffered = function Speculative | Scl -> true | Nscl | Fallback -> false

let mode_name = function
  | Speculative -> "spec"
  | Scl -> "s-cl"
  | Nscl -> "ns-cl"
  | Fallback -> "fallback"

type t = {
  seq : int;
  time : int;
  core : int;
  ar : Isa.Program.ar;
  init_regs : (Isa.Instr.reg * int) list;
  mode : mode;
  retries : int;
  reads : (Mem.Addr.line * int) list;
  writes : (Mem.Addr.line * int) list;
  stores : (Mem.Addr.t * int) list;
}

let visibility w line =
  let first_write = List.assoc line w.writes in
  if mode_buffered w.mode then w.time else first_write

let pp fmt w =
  Format.fprintf fmt "#%d t=%d core=%d %s %s (%dR/%dW)" w.seq w.time w.core
    (mode_name w.mode) w.ar.Isa.Program.name (List.length w.reads)
    (List.length w.writes)
