type t = {
  mutable rl : int array; (* read lines *)
  mutable rt : int array; (* first-read cycles, parallel to rl *)
  mutable rn : int;
  mutable wl : int array;
  mutable wt : int array;
  mutable wn : int;
  mutable sa : int array; (* store addresses, program order *)
  mutable sv : int array; (* store values, parallel to sa *)
  mutable sn : int;
}

let initial = 16

let create () =
  {
    rl = Array.make initial 0;
    rt = Array.make initial 0;
    rn = 0;
    wl = Array.make initial 0;
    wt = Array.make initial 0;
    wn = 0;
    sa = Array.make initial 0;
    sv = Array.make initial 0;
    sn = 0;
  }

let grow a n = if n = Array.length a then Array.append a (Array.make n 0) else a

(* Linear-scan dedup: attempt footprints are bounded by the CLEAR table
   sizes (tens of lines), where a scan beats hashing and allocates nothing. *)
let mem a n x =
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

let note_read t ~line ~time =
  if not (mem t.rl t.rn line) then begin
    t.rl <- grow t.rl t.rn;
    t.rt <- grow t.rt t.rn;
    t.rl.(t.rn) <- line;
    t.rt.(t.rn) <- time;
    t.rn <- t.rn + 1
  end

let note_write t ~line ~time =
  if not (mem t.wl t.wn line) then begin
    t.wl <- grow t.wl t.wn;
    t.wt <- grow t.wt t.wn;
    t.wl.(t.wn) <- line;
    t.wt.(t.wn) <- time;
    t.wn <- t.wn + 1
  end

let note_store t ~addr ~value =
  t.sa <- grow t.sa t.sn;
  t.sv <- grow t.sv t.sn;
  t.sa.(t.sn) <- addr;
  t.sv.(t.sn) <- value;
  t.sn <- t.sn + 1

let reset t =
  t.rn <- 0;
  t.wn <- 0;
  t.sn <- 0

let sorted_pairs lines times n =
  let xs = ref [] in
  for i = n - 1 downto 0 do
    xs := (lines.(i), times.(i)) :: !xs
  done;
  (* Lines are unique, so this matches the old hashtable capture's
     [List.sort compare] on (line, time) bindings exactly — as does the
     explicit int-pair comparator, which avoids the generic-compare call
     per element on this per-commit path. *)
  let cmp (l1, t1) (l2, t2) = if l1 <> l2 then Int.compare l1 l2 else Int.compare t1 t2 in
  List.sort cmp !xs

let reads t = sorted_pairs t.rl t.rt t.rn

let writes t = sorted_pairs t.wl t.wt t.wn

let stores t =
  let xs = ref [] in
  for i = t.sn - 1 downto 0 do
    xs := (t.sa.(i), t.sv.(i)) :: !xs
  done;
  !xs
