(** A witness of one committed atomic-region attempt.

    The engine emits one witness per commit (when capture is on), recording
    everything the oracles need: when and where the AR committed, which mode
    committed it, its read/write footprint with first-access times, and the
    exact store log it drained into memory. Capture is O(footprint) per
    attempt; aborted attempts leave no witness. *)

type mode = Speculative | Scl | Nscl | Fallback

val mode_buffered : mode -> bool
(** Buffered modes (HTM speculation, S-CL) publish their writes atomically at
    commit time; direct modes (NS-CL, fallback) write the store as they
    execute, so their writes become visible at first-write time. *)

val mode_name : mode -> string

type t = {
  seq : int;  (** commit order index, assigned by the collector *)
  time : int;  (** simulated cycle of the commit *)
  core : int;
  ar : Isa.Program.ar;
  init_regs : (Isa.Instr.reg * int) list;
  mode : mode;
  retries : int;  (** aborted attempts preceding this commit *)
  reads : (Mem.Addr.line * int) list;
      (** footprint lines read, with first-read cycle, sorted by line *)
  writes : (Mem.Addr.line * int) list;
      (** footprint lines written, with first-write cycle, sorted by line *)
  stores : (Mem.Addr.t * int) list;
      (** drained (address, value) store log in program order *)
}

val visibility : t -> Mem.Addr.line -> int
(** Cycle at which this witness's write to [line] became visible to other
    cores: commit time for buffered modes, first-write time for direct
    modes. Raises [Not_found] if the witness did not write [line]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: [#seq t=time core=c mode AR (xR/yW)]. *)
