(** Combined result of the oracles over one run. *)

type t = {
  commits : int;  (** witnesses checked *)
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
  static_ : (unit, Staticcheck.Gate.violation) result option;
      (** static-vs-dynamic soundness gate; [None] when no gate was
          supplied to {!evaluate} *)
}

val ok : t -> bool

val evaluate : ?static_gate:Staticcheck.Gate.t -> Collector.t -> final:Mem.Store.image -> t
(** Run serializability, replay, and lock-safety over a completed run's
    collector; with [static_gate], additionally assert every witness's
    footprint lies inside the static may-sets and every end-of-discovery
    decision inside the static envelope. Raises [Invalid_argument] if the
    collector never received an initial snapshot (i.e. the engine was not
    created with it). *)

val of_stream : Stream.t -> final:Mem.Store.image -> t
(** Close a streaming checker ({!Stream.finish}) and package its results.
    For the same run, the verdict is identical — field for field, including
    which violation is reported first — to {!evaluate} over an accumulating
    collector; only the peak memory differs. *)

val pp : Format.formatter -> t -> unit
(** Multi-line report: one PASS/FAIL line per oracle, violation details on
    failure. *)

val to_string : t -> string
