(** Combined result of the three oracles over one run. *)

type t = {
  commits : int;  (** witnesses checked *)
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
}

val ok : t -> bool

val evaluate : Collector.t -> final:Mem.Store.image -> t
(** Run serializability, replay, and lock-safety over a completed run's
    collector. Raises [Invalid_argument] if the collector never received an
    initial snapshot (i.e. the engine was not created with it). *)

val pp : Format.formatter -> t -> unit
(** Multi-line report: one PASS/FAIL line per oracle, violation details on
    failure. *)

val to_string : t -> string
