(** Sequential replay oracle.

    Re-executes every committed atomic region single-threaded, in commit
    order, on a private copy of the initial memory image — interleaving the
    drivers' non-transactional writes at their recorded positions — and
    demands the result match the concurrent simulation twice over:

    - {b per-witness}: each replayed AR must produce exactly the store log
      the simulated attempt drained into memory (address-for-address,
      value-for-value, in program order). A mismatch pinpoints the guilty
      witness.
    - {b whole-image}: the final replayed memory must be bit-identical to
      the simulated final memory. This backstop catches corruption the store
      logs cannot localise (e.g. a stray direct write between commits).

    If commit order is serializable (see {!Serial}) and replay passes, the
    concurrent execution is observationally equivalent to running every
    committed AR back-to-back — the strongest statement the oracle makes. *)

type divergence =
  | Store_mismatch of {
      witness : Witness.t;
      index : int;  (** position in the store log *)
      expected : (Mem.Addr.t * int) option;  (** simulated entry, if any *)
      got : (Mem.Addr.t * int) option;  (** replayed entry, if any *)
    }
  | Memory_mismatch of {
      addr : Mem.Addr.t;  (** first differing word *)
      replayed : int;
      simulated : int;
      differing : int;  (** total differing words *)
    }
  | Replay_error of { witness : Witness.t; message : string }
      (** The re-executed body faulted (out-of-range access, runaway loop). *)

val pp_divergence : Format.formatter -> divergence -> unit

(** {1 Windowed cursor}

    The incremental face of the oracle, used by {!Stream}: each committed
    prefix is replayed into the rolling store and discarded, so an online
    checker carries O(touched memory words), never the witness history. *)

type cursor

val start : initial:Mem.Store.image -> cursor
(** A fresh replay store built from [initial] (COW — shares every untouched
    chunk with the simulation's store). *)

val step : cursor -> Witness.t -> (unit, divergence) result
(** Replay one committed witness, in commit order, folding its stores into
    the rolling store. After an [Error] the cursor is dead — report and
    stop. *)

val apply_driver_writes : cursor -> (Mem.Addr.t * int) list -> unit
(** Apply a driver's non-transactional writes at their recorded stream
    position. *)

val finish : cursor -> final:Mem.Store.image -> (unit, divergence) result
(** Whole-image backstop: the rolling store must be bit-identical to the
    simulated final memory. *)

val run :
  initial:Mem.Store.image ->
  entries:Collector.entry list ->
  final:Mem.Store.image ->
  (unit, divergence) result
(** [run ~initial ~entries ~final] replays [entries] on a store built from
    [initial] and compares against [final] — {!start}/{!step}/{!finish}
    over a complete per-run entry list. Both images share untouched
    chunks with the simulation's store, so the whole-image comparison costs
    O(words actually written) rather than O(memory size). *)
