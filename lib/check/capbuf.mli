(** Pooled per-core witness-capture buffer.

    The engine's first capture implementation allocated per access (boxed
    hashtable bindings) and per attempt (store-log conses) — millions of
    words of churn over a checked sweep, growing linearly with event count
    and therefore with open-system scale. A [Capbuf.t] is a handful of flat
    int arrays owned by one core and reused across every attempt and
    request of a run: recording an access writes two ints, and {!reset}
    just zeroes the lengths.

    Capture stays observation-only: the engine consults the buffer exactly
    when it consulted the hashtables, and {!reads}/{!writes} reproduce the
    old sorted-binding lists element for element, so checked statistics and
    witnesses are bit-identical to the unpooled implementation. *)

type t

val create : unit -> t

val note_read : t -> line:Mem.Addr.line -> time:int -> unit
(** First access wins: later reads of a recorded line are ignored, so the
    stored cycle is the line's first-read time. O(footprint) scan — cheaper
    than hashing at attempt-footprint sizes, and allocation-free. *)

val note_write : t -> line:Mem.Addr.line -> time:int -> unit

val note_store : t -> addr:Mem.Addr.t -> value:int -> unit
(** Appends; the store log keeps program order and duplicates. *)

val reset : t -> unit
(** O(1); keeps the arrays for the next attempt. *)

val reads : t -> (Mem.Addr.line * int) list
(** Sorted by line (unique), the {!Witness.t} convention. *)

val writes : t -> (Mem.Addr.line * int) list

val stores : t -> (Mem.Addr.t * int) list
(** In program order. *)
