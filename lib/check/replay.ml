type divergence =
  | Store_mismatch of {
      witness : Witness.t;
      index : int;
      expected : (Mem.Addr.t * int) option;
      got : (Mem.Addr.t * int) option;
    }
  | Memory_mismatch of { addr : Mem.Addr.t; replayed : int; simulated : int; differing : int }
  | Replay_error of { witness : Witness.t; message : string }

let pp_entry fmt = function
  | None -> Format.fprintf fmt "(none)"
  | Some (a, v) -> Format.fprintf fmt "M[%d]=%d" a v

let pp_divergence fmt = function
  | Store_mismatch { witness; index; expected; got } ->
      Format.fprintf fmt
        "@[<v2>replay divergence in %a:@ store #%d: simulated %a, replayed %a@]" Witness.pp
        witness index pp_entry expected pp_entry got
  | Memory_mismatch { addr; replayed; simulated; differing } ->
      Format.fprintf fmt
        "final memory differs in %d word(s); first at M[%d]: replayed %d, simulated %d" differing
        addr replayed simulated
  | Replay_error { witness; message } ->
      Format.fprintf fmt "replay of %a faulted: %s" Witness.pp witness message

exception Diverged of divergence

let replay_witness mem (w : Witness.t) =
  (* Run the AR body against the replay memory, logging stores; then check
     the log against the simulated one and apply it. Stores are applied as
     they execute (the body may read back its own writes). *)
  let words = Mem.Store.size mem in
  let rev_log = ref [] in
  let load a =
    if a < 0 || a >= words then
      raise (Isa.Interp.Error (Printf.sprintf "load from out-of-bounds address %d" a));
    Mem.Store.read mem a
  in
  let store a v =
    if a < 0 || a >= words then
      raise (Isa.Interp.Error (Printf.sprintf "store to out-of-bounds address %d" a));
    Mem.Store.write mem a v;
    rev_log := (a, v) :: !rev_log
  in
  (try Isa.Interp.run w.ar ~init_regs:w.init_regs ~load ~store
   with Isa.Interp.Error msg -> raise (Diverged (Replay_error { witness = w; message = msg })));
  let got = List.rev !rev_log in
  let rec compare_logs i expected got =
    match (expected, got) with
    | [], [] -> ()
    | e :: es, g :: gs when e = g -> compare_logs (i + 1) es gs
    | e :: _, g :: _ ->
        raise
          (Diverged (Store_mismatch { witness = w; index = i; expected = Some e; got = Some g }))
    | e :: _, [] ->
        raise (Diverged (Store_mismatch { witness = w; index = i; expected = Some e; got = None }))
    | [], g :: _ ->
        raise (Diverged (Store_mismatch { witness = w; index = i; expected = None; got = Some g }))
  in
  compare_logs 0 w.stores got

(* ------------------------------------------------------------------ *)
(* Windowed cursor: the incremental face of the oracle. The rolling store
   is the only state carried between steps — a replayed prefix is folded
   into it and discarded, so streaming replay holds O(touched words), not
   O(history). [run] below is a thin loop over the cursor. *)

type cursor = { mem : Mem.Store.t }

let start ~initial =
  (* The replay store shares every untouched chunk with [initial] — and,
     transitively, with the simulation's [final] image — so the closing
     comparison only scans chunks one of the two sides actually wrote. *)
  { mem = Mem.Store.of_snapshot initial }

let step cur (w : Witness.t) =
  match replay_witness cur.mem w with
  | () -> Ok ()
  | exception Diverged d -> Error d

let apply_driver_writes cur stores = List.iter (fun (a, v) -> Mem.Store.write cur.mem a v) stores

let finish cur ~final =
  let replayed = Mem.Store.snapshot cur.mem in
  if Mem.Store.image_words replayed <> Mem.Store.image_words final then
    Error
      (Memory_mismatch
         {
           addr = 0;
           replayed = Mem.Store.image_words replayed;
           simulated = Mem.Store.image_words final;
           differing = -1;
         })
  else begin
    match Mem.Store.image_diff replayed final with
    | None -> Ok ()
    | Some (addr, replayed, simulated, differing) ->
        Error (Memory_mismatch { addr; replayed; simulated; differing })
  end

let run ~initial ~entries ~final =
  let cur = start ~initial in
  let fed =
    List.fold_left
      (fun acc entry ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match entry with
            | Collector.Commit w -> step cur w
            | Collector.Driver_writes { stores; _ } ->
                apply_driver_writes cur stores;
                Ok ()))
      (Ok ()) entries
  in
  match fed with Error _ as e -> e | Ok () -> finish cur ~final
