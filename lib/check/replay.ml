type divergence =
  | Store_mismatch of {
      witness : Witness.t;
      index : int;
      expected : (Mem.Addr.t * int) option;
      got : (Mem.Addr.t * int) option;
    }
  | Memory_mismatch of { addr : Mem.Addr.t; replayed : int; simulated : int; differing : int }
  | Replay_error of { witness : Witness.t; message : string }

let pp_entry fmt = function
  | None -> Format.fprintf fmt "(none)"
  | Some (a, v) -> Format.fprintf fmt "M[%d]=%d" a v

let pp_divergence fmt = function
  | Store_mismatch { witness; index; expected; got } ->
      Format.fprintf fmt
        "@[<v2>replay divergence in %a:@ store #%d: simulated %a, replayed %a@]" Witness.pp
        witness index pp_entry expected pp_entry got
  | Memory_mismatch { addr; replayed; simulated; differing } ->
      Format.fprintf fmt
        "final memory differs in %d word(s); first at M[%d]: replayed %d, simulated %d" differing
        addr replayed simulated
  | Replay_error { witness; message } ->
      Format.fprintf fmt "replay of %a faulted: %s" Witness.pp witness message

exception Diverged of divergence

let replay_witness mem (w : Witness.t) =
  (* Run the AR body against the replay memory, logging stores; then check
     the log against the simulated one and apply it. Stores are applied as
     they execute (the body may read back its own writes). *)
  let rev_log = ref [] in
  let load a =
    if a < 0 || a >= Array.length mem then
      raise (Isa.Interp.Error (Printf.sprintf "load from out-of-bounds address %d" a));
    mem.(a)
  in
  let store a v =
    if a < 0 || a >= Array.length mem then
      raise (Isa.Interp.Error (Printf.sprintf "store to out-of-bounds address %d" a));
    mem.(a) <- v;
    rev_log := (a, v) :: !rev_log
  in
  (try Isa.Interp.run w.ar ~init_regs:w.init_regs ~load ~store
   with Isa.Interp.Error msg -> raise (Diverged (Replay_error { witness = w; message = msg })));
  let got = List.rev !rev_log in
  let rec compare_logs i expected got =
    match (expected, got) with
    | [], [] -> ()
    | e :: es, g :: gs when e = g -> compare_logs (i + 1) es gs
    | e :: _, g :: _ ->
        raise
          (Diverged (Store_mismatch { witness = w; index = i; expected = Some e; got = Some g }))
    | e :: _, [] ->
        raise (Diverged (Store_mismatch { witness = w; index = i; expected = Some e; got = None }))
    | [], g :: _ ->
        raise (Diverged (Store_mismatch { witness = w; index = i; expected = None; got = Some g }))
  in
  compare_logs 0 w.stores got

let run ~initial ~entries ~final =
  let mem = Array.copy initial in
  try
    List.iter
      (function
        | Collector.Commit w -> replay_witness mem w
        | Collector.Driver_writes { stores; _ } -> List.iter (fun (a, v) -> mem.(a) <- v) stores)
      entries;
    if Array.length mem <> Array.length final then
      Error
        (Memory_mismatch
           { addr = 0; replayed = Array.length mem; simulated = Array.length final; differing = -1 })
    else begin
      let differing = ref 0 and first = ref (-1) in
      Array.iteri
        (fun i v ->
          if v <> final.(i) then begin
            incr differing;
            if !first < 0 then first := i
          end)
        mem;
      if !differing = 0 then Ok ()
      else
        Error
          (Memory_mismatch
             {
               addr = !first;
               replayed = mem.(!first);
               simulated = final.(!first);
               differing = !differing;
             })
    end
  with Diverged d -> Error d
