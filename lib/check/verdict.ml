type t = {
  commits : int;
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
  static_ : (unit, Staticcheck.Gate.violation) result option;
}

let ok t =
  Result.is_ok t.serial && Result.is_ok t.replay && Result.is_ok t.locks
  && match t.static_ with None -> true | Some r -> Result.is_ok r

(* Dynamic footprint ⊆ static may-sets for every witness, every
   end-of-discovery decision inside the static envelope, and every observed
   conflict line inside the static may-conflict cover for its AR pair. *)
let run_static_gate gate collector =
  let check_witness (w : Witness.t) =
    Staticcheck.Gate.check_commit gate ~ar:w.Witness.ar ~init_regs:w.Witness.init_regs
      ~reads:(List.map fst w.Witness.reads)
      ~writes:(List.map fst w.Witness.writes)
  in
  let check_decision (d : Collector.decision) =
    Staticcheck.Gate.check_decision gate ~ar:d.Collector.ar ~decision:d.Collector.decision
  in
  let rec all f = function
    | [] -> Ok ()
    | x :: rest -> ( match f x with Ok () -> all f rest | Error _ as e -> e)
  in
  let check_conflict (c : Collector.conflict) =
    Staticcheck.Gate.check_conflict gate ~ars:(Collector.ars collector)
      ~aggressor:c.Collector.aggressor_ar ~victim:c.Collector.victim_ar ~line:c.Collector.line
  in
  match all check_witness (Collector.witnesses collector) with
  | Error _ as e -> e
  | Ok () -> (
      match all check_decision (Collector.decisions collector) with
      | Error _ as e -> e
      | Ok () -> all check_conflict (Collector.conflicts collector))

let evaluate ?static_gate collector ~final =
  if Collector.is_streaming collector then
    invalid_arg "Verdict.evaluate: streaming collector retains no history; use of_stream";
  let initial =
    match Collector.initial collector with
    | Some snap -> snap
    | None -> invalid_arg "Verdict.evaluate: collector has no initial snapshot"
  in
  {
    commits = Collector.commit_count collector;
    serial = Serial.check (Collector.witnesses collector);
    replay = Replay.run ~initial ~entries:(Collector.entries collector) ~final;
    locks = Lock_safety.check ~cores:(Collector.cores collector) (Collector.lock_events collector);
    static_ = Option.map (fun gate -> run_static_gate gate collector) static_gate;
  }

let of_stream stream ~final =
  let r = Stream.finish stream ~final in
  {
    commits = r.Stream.commits;
    serial = r.Stream.serial;
    replay = r.Stream.replay;
    locks = r.Stream.locks;
    static_ = r.Stream.static_;
  }

let pp_oracle fmt name pp_err = function
  | Ok () -> Format.fprintf fmt "@ %-16s PASS" name
  | Error e -> Format.fprintf fmt "@ %-16s FAIL@   @[%a@]" name pp_err e

let pp fmt t =
  Format.fprintf fmt "@[<v2>check: %d committed attempt(s)%s"
    t.commits
    (if ok t then " — all oracles passed" else "");
  pp_oracle fmt "serializability" Serial.pp_violation t.serial;
  pp_oracle fmt "replay" Replay.pp_divergence t.replay;
  pp_oracle fmt "lock-safety" Lock_safety.pp_violation t.locks;
  (match t.static_ with
  | None -> ()
  | Some r -> pp_oracle fmt "static-gate" Staticcheck.Gate.pp_violation r);
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
