type t = {
  commits : int;
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
}

let ok t =
  Result.is_ok t.serial && Result.is_ok t.replay && Result.is_ok t.locks

let evaluate collector ~final =
  let initial =
    match Collector.initial collector with
    | Some snap -> snap
    | None -> invalid_arg "Verdict.evaluate: collector has no initial snapshot"
  in
  {
    commits = Collector.commit_count collector;
    serial = Serial.check (Collector.witnesses collector);
    replay = Replay.run ~initial ~entries:(Collector.entries collector) ~final;
    locks = Lock_safety.check ~cores:(Collector.cores collector) (Collector.lock_events collector);
  }

let pp_oracle fmt name pp_err = function
  | Ok () -> Format.fprintf fmt "@ %-16s PASS" name
  | Error e -> Format.fprintf fmt "@ %-16s FAIL@   @[%a@]" name pp_err e

let pp fmt t =
  Format.fprintf fmt "@[<v2>check: %d committed attempt(s)%s"
    t.commits
    (if ok t then " — all oracles passed" else "");
  pp_oracle fmt "serializability" Serial.pp_violation t.serial;
  pp_oracle fmt "replay" Replay.pp_divergence t.replay;
  pp_oracle fmt "lock-safety" Lock_safety.pp_violation t.locks;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
