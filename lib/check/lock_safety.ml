type event =
  | Attempt_begin of { time : int; core : int }
  | Lock of { time : int; core : int; line : Mem.Addr.line; key : int }
  | Unlock of { time : int; core : int; line : Mem.Addr.line }
  | Attempt_end of { time : int; core : int }

type violation = { time : int; core : int; reason : string }

let pp_violation fmt v =
  Format.fprintf fmt "lock-safety violation at t=%d on core %d: %s" v.time v.core v.reason

type core_state = { mutable held : Mem.Addr.line list; mutable last_key : int }

type t = {
  holders : (Mem.Addr.line, int) Hashtbl.t;  (* line -> holding core *)
  cores : core_state array;
}

let create ~cores =
  { holders = Hashtbl.create 64; cores = Array.init cores (fun _ -> { held = []; last_key = min_int }) }

let err time core fmt = Printf.ksprintf (fun reason -> Error { time; core; reason }) fmt

let add t = function
  | Attempt_begin { time; core } ->
      let cs = t.cores.(core) in
      if cs.held <> [] then
        err time core "attempt begins while still holding %d line lock(s) from a previous attempt"
          (List.length cs.held)
      else begin
        cs.last_key <- min_int;
        Ok ()
      end
  | Lock { time; core; line; key } -> (
      match Hashtbl.find_opt t.holders line with
      | Some holder when holder = core -> err time core "re-locked line %d it already holds" line
      | Some holder -> err time core "locked line %d already held by core %d" line holder
      | None ->
          let cs = t.cores.(core) in
          if key < cs.last_key then
            err time core "lock on line %d breaks lexicographic order (key %d after %d)" line key
              cs.last_key
          else begin
            Hashtbl.replace t.holders line core;
            cs.held <- line :: cs.held;
            cs.last_key <- key;
            Ok ()
          end)
  | Unlock { time; core; line } -> (
      match Hashtbl.find_opt t.holders line with
      | Some holder when holder = core ->
          Hashtbl.remove t.holders line;
          let cs = t.cores.(core) in
          cs.held <- List.filter (fun l -> l <> line) cs.held;
          Ok ()
      | Some holder -> err time core "unlocked line %d held by core %d" line holder
      | None -> err time core "unlocked line %d that is not locked" line)
  | Attempt_end { time; core } ->
      let cs = t.cores.(core) in
      if cs.held <> [] then
        err time core "attempt ends with %d unreleased line lock(s) (first: line %d)"
          (List.length cs.held)
          (List.hd cs.held)
      else Ok ()

let finish t =
  let result = ref (Ok ()) in
  Array.iteri
    (fun core cs ->
      match !result with
      | Error _ -> ()
      | Ok () ->
          if cs.held <> [] then
            result :=
              err max_int core "simulation ended with %d line lock(s) still held" (List.length cs.held))
    t.cores;
  (match !result with
  | Error _ -> ()
  | Ok () ->
      if Hashtbl.length t.holders > 0 then
        let line, core = Hashtbl.fold (fun l c _ -> (l, c)) t.holders (-1, -1) in
        result := err max_int core "simulation ended with line %d still locked" line);
  !result

let check ~cores events =
  let t = create ~cores in
  let fed =
    List.fold_left (fun acc e -> match acc with Error _ -> acc | Ok () -> add t e) (Ok ()) events
  in
  match fed with Error _ as e -> e | Ok () -> finish t
