(** Incremental, bounded-memory execution oracle (DESIGN.md §14).

    Consumes the same emission stream a post hoc {!Collector} accumulates —
    witness by witness, at commit time — and produces, for every oracle, a
    result identical field for field to the post hoc evaluation, while
    retiring state the committed frontier proves inert:

    - {b serializability}: {!Serial}'s per-line state under a retirement
      discipline. Let F be the minimum attempt-begin time over in-flight
      attempts (tracked from the lock-event stream; the latest stream time
      when all cores are idle). Every future read time and visibility is
      ≥ F, so readers with first-read time ≤ F and writers with visibility
      ≤ F can never close a Wr / Rw / Ww cycle and are dropped, folded into
      per-line high-water counters. Memory is O(live lines), not
      O(history).
    - {b replay}: the windowed {!Replay} cursor — committed prefixes are
      replayed into the rolling store and discarded.
    - {b lock safety}: {!Lock_safety} is already incremental.
    - {b static gate}: each witness / decision is checked as it arrives.

    Each oracle latches its first error and stops being fed (its post hoc
    counterpart stops at the first error too); the others keep running, so
    the final {!results} match {!Verdict.evaluate} exactly. *)

type stats = {
  live_lines : int;  (** lines currently holding checker state *)
  peak_live_lines : int;  (** high-water mark of [live_lines] *)
  live_entries : int;  (** live reader + writer entries across all lines *)
  peak_live_entries : int;
  retired : int;  (** entries dropped by the frontier discipline *)
  commits : int;
}

type results = {
  commits : int;
  serial : (unit, Serial.violation) result;
  replay : (unit, Replay.divergence) result;
  locks : (unit, Lock_safety.violation) result;
  static_ : (unit, Staticcheck.Gate.violation) result option;
}
(** Field-for-field the payload of a {!Verdict.t}; {!Verdict.of_stream}
    packages it. *)

type t

val create : ?static_gate:Staticcheck.Gate.t -> ?sweep_every:int -> cores:int -> unit -> t
(** [sweep_every] (default 512) is the retirement cadence in commits: peak
    live state is bounded by the live lines plus one sweep window. Raises
    [Invalid_argument] when it is < 1. *)

val set_initial : t -> Mem.Store.image -> unit
(** Must be fed before the first commit for the replay oracle to run;
    {!finish} raises [Invalid_argument] otherwise. *)

val add_commit : t -> Witness.t -> unit
(** Feed witnesses in commit order ([seq] ascending, non-decreasing
    [time]). *)

val add_driver_writes :
  t -> time:int -> core:int -> stores:(Mem.Addr.t * int) list -> unit

val add_lock_event : t -> Lock_safety.event -> unit
(** Also drives the frontier: [Attempt_begin]/[Attempt_end] mark cores
    in-flight/idle. *)

val add_decision : t -> Collector.decision -> unit

val finish : t -> final:Mem.Store.image -> results
(** Close the run: whole-image replay backstop, lock-release check, and the
    latched first errors. *)

val stats : t -> stats

val sink : t -> Collector.sink
(** Wrap this checker as a {!Collector.sink} for
    {!Collector.create_streaming}, which is how the engine's [?check]
    collector feeds it without the engine changing. *)
