module S = Set.Make (String)
module I = Isa.Instr

type classification = Immutable | Likely_immutable | Mutable

let classification_name = function
  | Immutable -> "immutable"
  | Likely_immutable -> "likely immutable"
  | Mutable -> "mutable"

let anon_region = "<anon>"

let region_name r = if r = "" then anon_region else r

(* Taint state: one region set per register. The dataflow runs to fixpoint
   over the (tiny) CFG; merge is set union. *)
let indirections (ar : Isa.Program.ar) =
  let body = ar.body in
  let n = Array.length body in
  let nregs = I.num_regs in
  if n = 0 then []
  else begin
    (* in_state.(i).(r) = taint of register r before instruction i *)
    let in_state = Array.init n (fun _ -> Array.make nregs S.empty) in
    let reached = Array.make n false in
    reached.(0) <- true;
    let collected = ref S.empty in
    let taint_of st = function I.Reg r -> st.(r) | I.Imm _ -> S.empty in
    let use_as_indirection st op = collected := S.union !collected (taint_of st op) in
    let changed = ref true in
    let merge_into i st =
      if i < n then begin
        let dst = in_state.(i) in
        let was_reached = reached.(i) in
        reached.(i) <- true;
        for r = 0 to nregs - 1 do
          let u = S.union dst.(r) st.(r) in
          if not (S.equal u dst.(r)) then begin
            dst.(r) <- u;
            changed := true
          end
        done;
        if not was_reached then changed := true
      end
    in
    while !changed do
      changed := false;
      let before_collect = !collected in
      for i = 0 to n - 1 do
        if reached.(i) then begin
          let st = Array.copy in_state.(i) in
          match body.(i) with
          | I.Ld { dst; base; off = _; region } ->
              use_as_indirection st base;
              st.(dst) <- S.singleton (region_name region);
              merge_into (i + 1) st
          | I.St { base; off = _; src = _; region = _ } ->
              use_as_indirection st base;
              merge_into (i + 1) st
          | I.Mov { dst; src } ->
              st.(dst) <- taint_of st src;
              merge_into (i + 1) st
          | I.Binop { op = _; dst; a; b } ->
              st.(dst) <- S.union (taint_of st a) (taint_of st b);
              merge_into (i + 1) st
          | I.Br { cond = _; a; b; target } ->
              use_as_indirection st a;
              use_as_indirection st b;
              merge_into target st;
              merge_into (i + 1) st
          | I.Jmp target -> merge_into target st
          | I.Nop -> merge_into (i + 1) st
          | I.Halt -> ()
        end
      done;
      if not (S.equal before_collect !collected) then changed := true
    done;
    S.elements !collected
  end

(* Classification from an already-computed indirection list; shared with the
   static verifier (lib/staticcheck), whose abstract interpreter reproduces
   [indirections] and must agree with [classify] by construction. *)
let classify_regions ~indirections:regions ~written_regions =
  match regions with
  | [] -> Immutable
  | regions ->
      let written = S.of_list (List.map region_name written_regions) in
      if List.exists (fun r -> S.mem r written) regions then Mutable else Likely_immutable

let classify ~ar ~written_regions = classify_regions ~indirections:(indirections ar) ~written_regions

let classify_workload ars =
  let written_regions = List.concat_map Isa.Program.regions_written ars in
  List.map (fun ar -> (ar, classify ~ar ~written_regions)) ars

let count classified =
  List.fold_left
    (fun (im, li, mu) (_, c) ->
      match c with
      | Immutable -> (im + 1, li, mu)
      | Likely_immutable -> (im, li + 1, mu)
      | Mutable -> (im, li, mu + 1))
    (0, 0, 0) classified
