(** Static mutability analysis of atomic regions (paper §3, Table 1).

    A region's cacheline footprint is {e immutable} across retries when no
    loaded value flows into an address computation or a conditional branch —
    exactly the property the hardware's indirection bits detect dynamically.
    This module computes it statically with a taint dataflow over the
    mini-ISA body: every load taints its destination with the load's region
    tag, taint propagates through ALU operations, and any tainted register
    used as a base address or branch operand records an indirection.

    When indirections exist, the paper distinguishes {e likely immutable}
    regions (the indirection sources are never written by concurrent atomic
    regions — e.g. bitcoin's wallet array) from {e mutable} ones (the
    indirection is through data the workload updates — e.g. list next
    pointers). Statically this is the emptiness of the intersection between
    the regions feeding indirections and the regions written by any AR of the
    workload (including the region itself). *)

type classification = Immutable | Likely_immutable | Mutable

val classification_name : classification -> string

val anon_region : string
(** ["<anon>"], the normalised tag of untagged loads and stores. *)

val region_name : string -> string
(** Identity on non-empty tags; [anon_region] for [""]. *)

val indirections : Isa.Program.ar -> string list
(** Region tags of loads whose results reach an address computation or
    branch. Empty when the footprint is statically immutable. Untagged loads
    report as ["<anon>"]. *)

val classify_regions :
  indirections:string list -> written_regions:string list -> classification
(** Classification from a precomputed indirection list (as returned by
    {!indirections}); [classify] is [classify_regions] over the taint
    analysis, and the static verifier feeds it the abstract-interpretation
    equivalent. *)

val classify : ar:Isa.Program.ar -> written_regions:string list -> classification

val classify_workload : Isa.Program.ar list -> (Isa.Program.ar * classification) list
(** Classify every AR against the union of regions written by all ARs of the
    workload. *)

val count : (Isa.Program.ar * classification) list -> int * int * int
(** [(immutable, likely_immutable, mutable)] counts — one Table 1 row. *)
