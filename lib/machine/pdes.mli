(** Configuration of the windowed conservative PDES engine driver
    (DESIGN.md §12).

    [window] caps how far (in simulated cycles) one core may run ahead of
    the globally earliest pending event inside a single burst, on top of the
    conservative interaction bounds the driver derives from static
    footprints and dynamic next-event times. The bound never affects
    simulation output — every window size produces output bit-identical to
    the sequential engine — only how much bookkeeping a burst may
    accumulate before the driver re-synchronises. *)

type t = { window : int }  (** max lookahead distance per burst, in cycles *)

val unbounded : t
(** No cap beyond the conservative interaction bounds ([max_int]). *)

val windowed : int -> t
(** Cap bursts at [max 1 n] cycles of lookahead. *)

val describe : t -> string
