(** Optional execution tracing.

    A bounded ring of per-core lifecycle events (attempt begins, mode
    transitions, commits, aborts, lock activity). Tracing is off unless an
    engine is created with a trace; recording is O(1) and keeps only the most
    recent [capacity] events, so it is safe to leave on for long runs when
    debugging a livelock or an unexpected abort pattern. *)

type kind =
  | Begin_attempt of { attempt : int; mode : string }
  | Enter_failed_mode
  | Converted of string  (** decision-tree outcome for the retry *)
  | Locked of Mem.Addr.line
  | Unlocked of Mem.Addr.line  (** released at the holder's commit/abort *)
  | Commit of { mode : string; retries : int }
  | Aborted of Abort.cause
  | Stalled of Mem.Addr.line

type event = { time : int; core : int; ar : string; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. *)

val record : t -> time:int -> core:int -> ar:string -> kind -> unit

val events : t -> event list
(** Chronological (oldest first), at most [capacity]. *)

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val retained : t -> int
(** Events still in the ring (≤ capacity and ≤ {!recorded}). *)

val pp_event : Format.formatter -> event -> unit

val dump : ?limit:int -> t -> Format.formatter -> unit
(** Print the most recent [limit] events (default: everything retained).
    [limit] is clamped to the retained count. *)

val to_chrome_json : t -> string
(** Export the retained events in Chrome's trace_event JSON format (load in
    [chrome://tracing] or Perfetto). One Chrome process per simulated core;
    each event is an instant at its simulated cycle. *)
