(** Open-system request queue: the arrival process and per-request
    lifecycle tracker behind {!Config.open_queue}.

    The closed-loop engine couples the clock to the workload — each core
    issues [ops_per_thread] operations and stops, so load is whatever the
    machine sustains. An open system decouples them: requests arrive on
    their own schedule (offered load), queue while every core is busy, and
    each records enqueue → dispatch → commit timestamps so the harness can
    report sojourn-latency percentiles under overload.

    Determinism: the full arrival schedule is generated at {!create} from
    the RNG handed in (a dedicated split of the engine's root seed), with a
    draw count fixed by the parameters alone. Everything after that is pure
    integer bookkeeping, so runs stay bit-identical per seed at any job
    count. *)

type t

val generate : rate:float -> requests:int -> process:Config.open_process -> Simrt.Rng.t -> int array
(** The raw arrival schedule (absolute arrival times, strictly increasing)
    {!create} draws. Exposed so tests can pin the interarrival stream
    bit-for-bit; gaps are clamped to ≥ 1 cycle, and the Poisson draw is
    clamped away from 1.0 so a tail sample can never overflow to a
    non-finite gap. *)

val create : Config.open_queue -> Simrt.Rng.t -> t
(** Draws all [open_requests] interarrival gaps up front (each clamped to
    ≥ 1 cycle). [Open_poisson] uses inverse-CDF exponential sampling with
    mean [1000 / open_rate] cycles; [Open_burst] reuses
    {!Sched.Profile.sample_dist}'s inverse-power kernel with its span
    chosen to match that same mean, so the two processes are comparable at
    equal offered load. *)

val admit_until : t -> now:int -> unit
(** Move every request whose arrival time is ≤ [now] from the schedule
    into the backlog, in arrival order. When a cap is set and the backlog
    is full, the request is dropped (saturation) instead. Idempotent;
    callers invoke it before every dispatch attempt, which makes the lazy
    admission exact. *)

val dispatch : t -> now:int -> int option
(** Pop the oldest waiting request (FIFO) and stamp its dispatch time.
    [None] when the backlog is empty. *)

val complete : t -> req:int -> now:int -> unit
(** Stamp [req]'s commit time. Raises [Invalid_argument] if the request
    already completed — one request maps to exactly one committed AR. *)

val next_arrival : t -> int option
(** Arrival time of the earliest request not yet admitted or dropped;
    [None] once the schedule is exhausted. Idle cores sleep until this. *)

val exhausted : t -> bool
(** No future arrivals and nothing waiting: dispatchers can park. *)

val backlog_depth : t -> int

val total : t -> int

val admitted : t -> int

val dropped : t -> int

val completed : t -> int

val qdepth_hw : t -> int
(** Backlog-depth high-water mark over the run. *)

val last_arrival : t -> int
(** Arrival time of the final generated request (0 when none). *)

val sojourns : t -> int array
(** [commit - arrival] for every completed request, in request order. *)

val waits : t -> int array
(** [dispatch - arrival] for every dispatched request, in request order. *)
