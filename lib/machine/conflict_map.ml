(* Cache lines are dense small ints (word address asr 3, bounded by the
   store size), so the per-line reader/writer core bitmasks live in two flat
   line-indexed arrays instead of a hashtable: adds, removals and conflict
   queries are single array accesses with no hashing and no allocation. The
   arrays are sized from the workload's declared memory and grown on demand
   should a line land beyond the hint. *)

type t = { cores : int; mutable readers : int array; mutable writers : int array }

let create ?(lines = 1024) ~cores () =
  let n = max 16 lines in
  { cores; readers = Array.make n 0; writers = Array.make n 0 }

let grow t line =
  let cap = ref (2 * Array.length t.readers) in
  while line >= !cap do
    cap := 2 * !cap
  done;
  let nr = Array.make !cap 0 and nw = Array.make !cap 0 in
  Array.blit t.readers 0 nr 0 (Array.length t.readers);
  Array.blit t.writers 0 nw 0 (Array.length t.writers);
  t.readers <- nr;
  t.writers <- nw

let bit core = 1 lsl core

let add_reader t ~core line =
  if line >= Array.length t.readers then grow t line;
  t.readers.(line) <- t.readers.(line) lor bit core

let add_writer t ~core line =
  if line >= Array.length t.readers then grow t line;
  t.writers.(line) <- t.writers.(line) lor bit core

let remove_line t ~core line =
  if line < Array.length t.readers then begin
    let mask = lnot (bit core) in
    t.readers.(line) <- t.readers.(line) land mask;
    t.writers.(line) <- t.writers.(line) land mask
  end

let remove_core t ~core ~lines = List.iter (fun line -> remove_line t ~core line) lines

let readers t line = if line < Array.length t.readers then t.readers.(line) else 0

let writers t line = if line < Array.length t.writers then t.writers.(line) else 0

(* Masks of *other* cores holding the line — the engine's eager conflict
   checks iterate these bitmasks directly rather than materialising victim
   lists. *)
let readers_excl t ~core line = readers t line land lnot (bit core)

let writers_excl t ~core line = writers t line land lnot (bit core)

(* Visit the set bits of a core mask in ascending core order (the same order
   the old list-building interface produced). *)
let iter_cores mask f =
  let m = ref mask and c = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then f !c;
    m := !m lsr 1;
    incr c
  done

let cores_of t mask ~excluding =
  let rec loop c acc =
    if c < 0 then acc
    else loop (c - 1) (if mask land (1 lsl c) <> 0 && c <> excluding then c :: acc else acc)
  in
  loop (t.cores - 1) []

let conflicting_readers t ~core line = cores_of t (readers t line) ~excluding:core

let conflicting_writers t ~core line = cores_of t (writers t line) ~excluding:core

let clear t =
  Array.fill t.readers 0 (Array.length t.readers) 0;
  Array.fill t.writers 0 (Array.length t.writers) 0
