(* Read/write sets are Linesets (flat growable int arrays — transactional
   footprints are a handful of lines, so linear membership beats hashing and
   nothing allocates per access). The store buffer is the log itself: two
   parallel growable int arrays in program order. Forwarding scans the log
   newest-first and commit drains it oldest-first, so no separate addr->value
   table is needed; SQ capacity bounds the scan at a few dozen entries. *)

type t = {
  read_set : Simrt.Lineset.t;
  write_set : Simrt.Lineset.t;
  mutable log_addr : int array;
  mutable log_val : int array;
  mutable log_len : int;
  mutable active : bool;
  mutable power : bool;
}

let create () =
  {
    read_set = Simrt.Lineset.create ~hint:64 ();
    write_set = Simrt.Lineset.create ~hint:64 ();
    log_addr = Array.make 64 0;
    log_val = Array.make 64 0;
    log_len = 0;
    active = false;
    power = false;
  }

let reset t =
  Simrt.Lineset.clear t.read_set;
  Simrt.Lineset.clear t.write_set;
  t.log_len <- 0;
  t.active <- false;
  t.power <- false

let active t = t.active

let start t =
  reset t;
  t.active <- true

let read_line t line = Simrt.Lineset.add t.read_set line

let write_line t line = Simrt.Lineset.add t.write_set line

let in_read_set t line = Simrt.Lineset.mem t.read_set line

let in_write_set t line = Simrt.Lineset.mem t.write_set line

let in_either_set t line = in_read_set t line || in_write_set t line

let read_set t = Simrt.Lineset.sorted_list t.read_set

let write_set t = Simrt.Lineset.sorted_list t.write_set

let iter_lines t f =
  Simrt.Lineset.iter t.read_set f;
  Simrt.Lineset.iter t.write_set f

let footprint t =
  let acc = ref [] in
  Simrt.Lineset.iter t.write_set (fun l ->
      if not (Simrt.Lineset.mem t.read_set l) then acc := l :: !acc);
  Simrt.Lineset.iter t.read_set (fun l -> acc := l :: !acc);
  List.sort Int.compare !acc

let footprint_size t =
  let extra = ref 0 in
  Simrt.Lineset.iter t.write_set (fun l ->
      if not (Simrt.Lineset.mem t.read_set l) then incr extra);
  Simrt.Lineset.size t.read_set + !extra

let buffer_store t addr v =
  if t.log_len = Array.length t.log_addr then begin
    let cap = 2 * t.log_len in
    let na = Array.make cap 0 and nv = Array.make cap 0 in
    Array.blit t.log_addr 0 na 0 t.log_len;
    Array.blit t.log_val 0 nv 0 t.log_len;
    t.log_addr <- na;
    t.log_val <- nv
  end;
  t.log_addr.(t.log_len) <- addr;
  t.log_val.(t.log_len) <- v;
  t.log_len <- t.log_len + 1

let forwarded t addr =
  let rec scan i = if i < 0 then None else if t.log_addr.(i) = addr then Some t.log_val.(i) else scan (i - 1) in
  scan (t.log_len - 1)

let store_count t = t.log_len

let drain t store =
  for i = 0 to t.log_len - 1 do
    Mem.Store.write store t.log_addr.(i) t.log_val.(i)
  done;
  t.log_len

let power t = t.power

let set_power t p = t.power <- p
