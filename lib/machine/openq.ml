type t = {
  arrival_t : int array;
  dispatch_t : int array;
  commit_t : int array;
  dropped : bool array;
  cap : int;
  backlog : int Queue.t;
  mutable next_idx : int;
  mutable admitted : int;
  mutable n_dropped : int;
  mutable completed : int;
  mutable qdepth_hw : int;
}

(* The whole arrival schedule is drawn up front from a dedicated RNG split:
   the draw count depends only on (rate, requests, process), never on how
   the simulation unfolds, so the stream stays bit-stable per seed. *)
let generate ~rate ~requests ~process rng =
  let mean = 1000.0 /. rate in
  let step =
    match (process : Config.open_process) with
    | Config.Open_poisson ->
        fun () ->
          (* Clamp the draw away from 1.0: [Rng.float] covers [0, 1), so
             log (1 - u) can reach -inf and int_of_float of a non-finite
             float is unspecified. The clamp caps a gap at ~13.8 means —
             beyond any plausible sample — and leaves every draw below the
             threshold, i.e. all but ~1 in 10^6, bit-identical. *)
          let u = Float.min (Simrt.Rng.float rng 1.0) 0.999999 in
          max 1 (int_of_float (Float.round (-.mean *. log (1.0 -. u))))
    | Config.Open_burst { heat } ->
        (* E[lo + span * u^(1+heat)] = lo + span/(2+heat); pick the span so
           the mean interarrival matches the Poisson case at equal rate. *)
        let lo = 1 in
        let span = max 0 (int_of_float (Float.round ((mean -. 1.0) *. (2.0 +. heat)))) in
        let dist = Sched.Profile.Burst { lo; hi = lo + span; heat } in
        fun () -> Sched.Profile.sample_dist dist ~base:0 rng
  in
  let arr = Array.make requests 0 in
  let t = ref 0 in
  for i = 0 to requests - 1 do
    t := !t + max 1 (step ());
    arr.(i) <- !t
  done;
  arr

let create (q : Config.open_queue) rng =
  let n = q.open_requests in
  {
    arrival_t = generate ~rate:q.open_rate ~requests:n ~process:q.open_process rng;
    dispatch_t = Array.make n (-1);
    commit_t = Array.make n (-1);
    dropped = Array.make n false;
    cap = q.open_queue_cap;
    backlog = Queue.create ();
    next_idx = 0;
    admitted = 0;
    n_dropped = 0;
    completed = 0;
    qdepth_hw = 0;
  }

let admit_until t ~now =
  let n = Array.length t.arrival_t in
  while t.next_idx < n && t.arrival_t.(t.next_idx) <= now do
    let i = t.next_idx in
    t.next_idx <- i + 1;
    if t.cap > 0 && Queue.length t.backlog >= t.cap then (
      t.dropped.(i) <- true;
      t.n_dropped <- t.n_dropped + 1)
    else (
      Queue.add i t.backlog;
      t.admitted <- t.admitted + 1;
      let d = Queue.length t.backlog in
      if d > t.qdepth_hw then t.qdepth_hw <- d)
  done

let dispatch t ~now =
  match Queue.take_opt t.backlog with
  | None -> None
  | Some i ->
      t.dispatch_t.(i) <- now;
      Some i

let complete t ~req ~now =
  if t.commit_t.(req) >= 0 then invalid_arg "Openq.complete: request completed twice";
  t.commit_t.(req) <- now;
  t.completed <- t.completed + 1

let next_arrival t =
  if t.next_idx < Array.length t.arrival_t then Some t.arrival_t.(t.next_idx) else None

let backlog_depth t = Queue.length t.backlog

let exhausted t = t.next_idx >= Array.length t.arrival_t && Queue.is_empty t.backlog

let total t = Array.length t.arrival_t

let admitted t = t.admitted

let dropped t = t.n_dropped

let completed t = t.completed

let qdepth_hw t = t.qdepth_hw

let last_arrival t =
  let n = Array.length t.arrival_t in
  if n = 0 then 0 else t.arrival_t.(n - 1)

let samples t ~upto =
  let acc = ref [] in
  for i = Array.length t.commit_t - 1 downto 0 do
    let v = upto i in
    if v >= 0 then acc := (v - t.arrival_t.(i)) :: !acc
  done;
  Array.of_list !acc

let sojourns t = samples t ~upto:(fun i -> t.commit_t.(i))

let waits t = samples t ~upto:(fun i -> t.dispatch_t.(i))
