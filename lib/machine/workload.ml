type op = {
  ar : Isa.Program.ar;
  init_regs : (Isa.Instr.reg * int) list;
  extra_think : int;
  lock_id : int;
}

type driver = unit -> op

type t = {
  name : string;
  description : string;
  ars : Isa.Program.ar list;
  memory_words : int;
  setup : Mem.Store.t -> Simrt.Rng.t -> unit;
  make_driver : tid:int -> threads:int -> Mem.Store.t -> Simrt.Rng.t -> driver;
  pure_driver : bool;
      (* the driver closures returned by [make_driver] never read or write
         the store (they only consume the RNG and private cursors) — issuing
         an op early cannot observe another core's effects, which the PDES
         engine's next-op insulation arm relies on *)
}

let op ?(extra_think = 0) ?(lock_id = 0) ar init_regs = { ar; init_regs; extra_think; lock_id }

let find_ar t name =
  match List.find_opt (fun (ar : Isa.Program.ar) -> ar.name = name) t.ars with
  | Some ar -> ar
  | None -> raise Not_found
