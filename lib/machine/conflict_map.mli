(** Global view of speculative sharers, the conflict-detection substrate.

    Maps each line to the bitmask of cores currently holding it in their
    speculative read or write set. Conceptually this is the information the
    directory derives from coherence requests; centralising it keeps the
    eager conflict checks O(1). Cores whose discovery entered failed mode
    withdraw their entries — their accesses are flagged non-aborting and must
    not generate new conflicts (paper §4.1).

    Lines are dense small ints (word address / words-per-line), so the masks
    live in two flat line-indexed arrays: every operation is an array access,
    no hashing, no allocation. *)

type t

val create : ?lines:int -> cores:int -> unit -> t
(** [lines] pre-sizes the arrays (one slot per line of the simulated
    memory); they grow automatically if a larger line id appears. *)

val add_reader : t -> core:int -> Mem.Addr.line -> unit

val add_writer : t -> core:int -> Mem.Addr.line -> unit

val remove_line : t -> core:int -> Mem.Addr.line -> unit
(** Withdraw [core] from one line (idempotent). *)

val remove_core : t -> core:int -> lines:Mem.Addr.line list -> unit
(** Withdraw [core] from the given lines (commit, abort or failed-mode
    entry). *)

val readers : t -> Mem.Addr.line -> int
(** Bitmask of speculative readers. *)

val writers : t -> Mem.Addr.line -> int

val readers_excl : t -> core:int -> Mem.Addr.line -> int
(** Reader bitmask with [core]'s own bit cleared — the victim set of an
    eager conflict check, without building a list. *)

val writers_excl : t -> core:int -> Mem.Addr.line -> int

val iter_cores : int -> (int -> unit) -> unit
(** [iter_cores mask f] applies [f] to every set bit of a core bitmask in
    ascending core order. *)

val conflicting_readers : t -> core:int -> Mem.Addr.line -> int list
(** Cores other than [core] with the line in their read set. (List-building
    convenience for tests; the engine iterates {!readers_excl} masks.) *)

val conflicting_writers : t -> core:int -> Mem.Addr.line -> int list

val clear : t -> unit
