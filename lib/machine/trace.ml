type kind =
  | Begin_attempt of { attempt : int; mode : string }
  | Enter_failed_mode
  | Converted of string
  | Locked of Mem.Addr.line
  | Unlocked of Mem.Addr.line
  | Commit of { mode : string; retries : int }
  | Aborted of Abort.cause
  | Stalled of Mem.Addr.line

type event = { time : int; core : int; ar : string; kind : kind }

type t = { ring : event option array; mutable next : int; mutable total : int }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time ~core ~ar kind =
  t.ring.(t.next) <- Some { time; core; ar; kind };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let events t =
  let n = Array.length t.ring in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let idx = (t.next + i) mod n in
      collect (i + 1) (match t.ring.(idx) with Some e -> e :: acc | None -> acc)
  in
  collect 0 []

let recorded t = t.total

let retained t = min t.total (Array.length t.ring)

let kind_to_string = function
  | Begin_attempt { attempt; mode } -> Printf.sprintf "begin attempt %d (%s)" attempt mode
  | Enter_failed_mode -> "enter failed-mode discovery"
  | Converted mode -> "converted: retry as " ^ mode
  | Locked line -> Printf.sprintf "locked line %d" line
  | Unlocked line -> Printf.sprintf "unlocked line %d" line
  | Commit { mode; retries } -> Printf.sprintf "commit (%s, %d retries)" mode retries
  | Aborted cause -> "abort: " ^ Abort.cause_name cause
  | Stalled line -> Printf.sprintf "stalled on locked line %d" line

let pp_event ppf e =
  Format.fprintf ppf "@[%8d core%-3d %-18s %s@]" e.time e.core e.ar (kind_to_string e.kind)

let dump ?limit t ppf =
  let all = events t in
  let all =
    match limit with
    | None -> all
    | Some n ->
        let n = max 0 (min n (List.length all)) in
        let len = List.length all in
        if len <= n then all else List.filteri (fun i _ -> i >= len - n) all
  in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) all

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  (* One Chrome "process" per simulated core; events are instants on the
     simulated-cycle timeline (chrome://tracing interprets ts as µs — here
     1 µs = 1 cycle). *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf s
  in
  let cores = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace cores e.core ()) (events t);
  Hashtbl.fold (fun core () acc -> core :: acc) cores []
  |> List.sort compare
  |> List.iter (fun core ->
         emit
           (Printf.sprintf
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"core %d\"}}"
              core core));
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":0,\"args\":{\"ar\":\"%s\"}}"
           (json_escape (kind_to_string e.kind))
           (match e.kind with
           | Begin_attempt _ -> "attempt"
           | Enter_failed_mode | Converted _ -> "discovery"
           | Locked _ | Unlocked _ | Stalled _ -> "lock"
           | Commit _ -> "commit"
           | Aborted _ -> "abort")
           e.time e.core (json_escape e.ar)))
    (events t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf
