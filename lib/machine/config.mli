(** Simulated-machine configuration (paper Table 2 plus CLEAR knobs).

    The four named presets correspond to the paper's evaluated
    configurations: requester-wins ([baseline], "B"), PowerTM ([power_tm],
    "P"), CLEAR over requester-wins ([clear_rw], "C") and CLEAR over PowerTM
    ([clear_power], "W"). *)

type htm_policy = Requester_wins | Power_tm

type frontend =
  | Htm  (** out-of-core speculation: TSX-like transactions, single global
             fallback lock (paper §4.4) *)
  | Sle  (** in-core speculation: lock elision bounded by the ROB/SQ window,
             fallback acquires the region's own lock (paper §4.1/§4.3) *)

type open_process =
  | Open_poisson  (** exponential interarrivals (memoryless) *)
  | Open_burst of { heat : float }
      (** inverse-power interarrivals via {!Sched.Profile}'s [Burst] kernel:
          mass concentrates at 1 cycle with a heavy tail; larger [heat]
          skews burstier at the same mean offered load *)

(** Open-system (request-driven) frontend parameters. Pure data so configs
    keep Marshalling (suite-cache digests compare structurally). *)
type open_queue = {
  open_rate : float;  (** offered load, requests per 1000 cycles (> 0) *)
  open_requests : int;  (** total requests the arrival process generates *)
  open_process : open_process;
  open_queue_cap : int;
      (** max waiting (admitted, undispatched) requests; arrivals beyond it
          are dropped at saturation. [0] = unbounded. *)
}

type t = {
  cores : int;
  mem_params : Mem.Params.t;
  memory_words : int;
  (* Core resources (Table 2) *)
  rob_entries : int;
  lq_entries : int;
  sq_entries : int;
  (* Speculation *)
  frontend : frontend;
  policy : htm_policy;
  max_retries : int;  (** memory-conflict retries before the fallback path *)
  xbegin_cost : int;  (** cycles *)
  xend_cost : int;
  abort_penalty : int;  (** pipeline flush + checkpoint restore *)
  spin_cycles : int;  (** fallback-lock polling interval *)
  (* CLEAR *)
  clear_enabled : bool;
  ert_entries : int;
  alt_capacity : int;
  crt_entries : int;
  crt_ways : int;
  failed_mode_discovery : bool;
      (** continue discovery after a conflict (ablation knob; paper §4.1) *)
  use_crt : bool;  (** lock previously-conflicting reads in S-CL (§4.4.2) *)
  crt_decay : bool;
      (** drop a CRT entry once an S-CL that locked it commits; prevents hot
          shared read lines from convoying every later S-CL (ablation knob) *)
  (* Workload pacing *)
  think_cycles : int;  (** non-AR work between operations *)
  ops_per_thread : int;
  seed : int;
  sched : Sched.Profile.t;
      (** Per-core schedule shape: think-time distributions, hot cores,
          phase offsets and the NUMA latency matrix. The default
          {!Sched.Profile.symmetric} reproduces the legacy single
          [think_cycles] pacing bit-for-bit. *)
  openloop : open_queue option;
      (** [Some q] switches the engine to the open-system frontend: cores
          pull the next queued request when idle instead of looping
          [ops_per_thread] fixed ops. [None] (all presets) is the classic
          closed loop, bit-identical to before this field existed. *)
  (* Fault injection (testing the execution oracle only) *)
  fault_blind_line : int option;
      (** When set, speculative conflict detection ignores this line entirely:
          accesses to it are neither checked against nor registered in the
          conflict map. This deliberately breaks atomicity — it exists so
          tests can prove the {!Check} oracles catch real bugs. [None] (the
          default) in all presets. *)
  fault_numa_blind : bool;
      (** When [true] and the schedule profile has an asymmetric NUMA matrix,
          speculative conflict detection skips every access whose remote-slice
          latency adder is positive — the cross-socket conflict probe is
          dropped. Like {!fault_blind_line}, this exists only to prove the
          oracles notice; [false] everywhere by default. *)
}

val default : t
(** 32 cores, Icelake-like hierarchy, requester-wins, CLEAR off. *)

val baseline : t

val power_tm : t

val clear_rw : t

val clear_power : t

val with_frontend : t -> frontend -> t
(** Switch speculation front-end, keeping everything else. *)

val preset_letter : t -> string
(** "B", "P", "C" or "W" (best-effort match on policy/clear flags). *)

val with_retries : t -> int -> t

val with_cores : t -> int -> t

val with_seed : t -> int -> t

val with_openloop : t -> open_queue option -> t
(** Attach (or detach) the open-system frontend. Raises [Invalid_argument]
    on a non-positive rate or request count, a negative queue cap, or
    negative burst heat. *)

val open_process_name : open_process -> string
(** Short human form, e.g. ["poisson"], ["burst(h1.5)"]. *)

val with_sched : t -> Sched.Profile.t -> t
(** Attach a schedule profile. Raises [Invalid_argument] when
    {!Sched.Profile.validate} reports problems. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump used to print Table 2. *)
