module Rng = Simrt.Rng
module Event_queue = Simrt.Event_queue
module I = Isa.Instr

(* Execution mode of the current attempt. *)
type mode =
  | M_spec (* plain speculative (possibly discovery) *)
  | M_scl
  | M_nscl
  | M_fallback

type phase =
  | P_next_op (* pick the next operation or finish *)
  | P_start (* begin an attempt *)
  | P_lock (* acquiring cachelines for a CL-mode retry *)
  | P_exec (* executing the AR body *)
  | P_done

type core = {
  id : int;
  rng : Rng.t;
  regs : Regfile.t;
  txn : Txn.t;
  ert : Clear.Ert.t;
  alt : Clear.Alt.t;
  crt : Clear.Crt.t;
  driver : Workload.driver;
  mutable ops_done : int;
  mutable op : Workload.op option;
  mutable phase : phase;
  mutable mode : mode;
  mutable pc : int;
  mutable attempt : int; (* 0-based attempt index for the current op *)
  mutable retries_counted : int; (* aborts that count toward the limit *)
  mutable attempt_instrs : int;
  mutable pending_abort : (Abort.cause * Mem.Addr.line option) option;
  mutable failed_mode : bool; (* discovery continuing after a conflict *)
  mutable failed_cause : Abort.cause;
  mutable discovery : bool; (* CLEAR discovery active this attempt *)
  mutable alt_overflow : bool;
  mutable sq_overflow : bool;
  mutable indirection_seen : bool;
  mutable planned : Clear.Decision.mode option; (* retry mode decided *)
  mutable lock_queue : Clear.Alt.entry list; (* entries left to lock *)
  mutable read_lock_held : bool;
  mutable explicit_fb_counted : bool; (* one explicit-fallback abort per spin session *)
  mutable footprint0 : Mem.Addr.line array option; (* fig. 1; sorted *)
  attempt_lines : Simrt.Lineset.t; (* footprint incl. CL modes *)
  mutable req : int; (* open-system request being served; -1 when none *)
  mutable finished : bool;
  (* Witness capture (populated only when the engine has a check collector;
     deliberately separate from the Txn sets, which NS-CL/fallback bypass).
     One pooled buffer per core, reused across attempts and requests. *)
  cap : Check.Capbuf.t;
}

type t = {
  cfg : Config.t;
  trace : Trace.t option;
  check : Check.Collector.t option;
  workload : Workload.t;
  store : Mem.Store.t;
  hierarchy : Mem.Hierarchy.t;
  conflicts : Conflict_map.t;
  locks : (int, Fallback_lock.t) Hashtbl.t;
      (* HTM: a single global fallback lock (id 0). SLE: one reader-writer
         lock per critical-section mutex. *)
  stats : Stats.t;
  perf : Simrt.Perfctr.t;
  openq : Openq.t option;
  cores : core array;
  queue : int Event_queue.t; (* payload: core id *)
  conflict_seen : (int * int * int, unit) Hashtbl.t;
      (* (aggressor AR id, victim AR id, line) triples already reported to
         the checker; bounds conflict-event volume by the static matrix
         size, not the run length *)
  mutable power_owner : int; (* PowerTM token, -1 when free *)
  mutable now : int;
}

let max_ar_instrs = 200_000

let create ?trace ?check (cfg : Config.t) (workload : Workload.t) =
  let words = max cfg.memory_words workload.memory_words in
  let store = Mem.Store.create ~words in
  let stats = Stats.create () in
  let hierarchy =
    Mem.Hierarchy.create ~numa:cfg.sched.Sched.Profile.numa cfg.mem_params ~cores:cfg.cores ~store
      ~counters:(Stats.counters stats)
  in
  let root_rng = Rng.create cfg.seed in
  workload.setup store (Rng.split root_rng 1_000_003);
  let dir_set_of = Mem.Params.dir_set_of cfg.mem_params in
  let cores =
    Array.init cfg.cores (fun id ->
        let rng = Rng.split root_rng id in
        {
          id;
          rng;
          regs = Regfile.create ();
          txn = Txn.create ();
          ert = Clear.Ert.create ~entries:cfg.ert_entries ();
          alt = Clear.Alt.create ~capacity:cfg.alt_capacity ~dir_set_of ();
          crt = Clear.Crt.create ~entries:cfg.crt_entries ~ways:cfg.crt_ways ();
          driver = workload.make_driver ~tid:id ~threads:cfg.cores store (Rng.split root_rng (7_919 + id));
          ops_done = 0;
          op = None;
          phase = P_next_op;
          mode = M_spec;
          pc = 0;
          attempt = 0;
          retries_counted = 0;
          attempt_instrs = 0;
          pending_abort = None;
          failed_mode = false;
          failed_cause = Abort.Memory_conflict;
          discovery = false;
          alt_overflow = false;
          sq_overflow = false;
          indirection_seen = false;
          planned = None;
          lock_queue = [];
          read_lock_held = false;
          explicit_fb_counted = false;
          footprint0 = None;
          attempt_lines = Simrt.Lineset.create ~hint:64 ();
          req = -1;
          finished = false;
          cap = Check.Capbuf.create ();
        })
  in
  let queue = Event_queue.create () in
  Array.iter
    (fun c ->
      let time = Sched.Profile.start_offset cfg.sched ~core:c.id ~base:cfg.think_cycles c.rng in
      Event_queue.push queue ~time c.id)
    cores;
  (* Snapshot after setup and driver construction (closure-creation-time
     writes are part of the initial image), before any simulated cycle. *)
  (match check with
  | None -> ()
  | Some col ->
      Check.Collector.set_ars col workload.ars;
      Check.Collector.set_initial col (Mem.Store.snapshot store));
  {
    cfg;
    trace;
    check;
    workload;
    store;
    hierarchy;
    (* Hint from the workload's own memory, not [cfg.memory_words] (whose
       default exists to bound the address space, not to be touched): lines
       are dense from zero and the map grows if an address lands beyond. *)
    conflicts = Conflict_map.create ~lines:((workload.memory_words asr 3) + 1) ~cores:cfg.cores ();
    locks = Hashtbl.create 16;
    stats;
    perf = Simrt.Perfctr.create ();
    (* The arrival schedule draws from its own split; Rng.split derives from
       the parent's original seed, not its state, so adding this split
       leaves every closed-loop stream bit-identical. *)
    openq =
      (match cfg.openloop with
      | None -> None
      | Some q -> Some (Openq.create q (Rng.split root_rng 104_729)));
    cores;
    queue;
    conflict_seen = Hashtbl.create 64;
    power_owner = -1;
    now = 0;
  }

let store t = t.store

let perfctr t = t.perf

let openq t = t.openq

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let current_op c = match c.op with Some op -> op | None -> invalid_arg "no current op"

let lock_table t id =
  match Hashtbl.find_opt t.locks id with
  | Some l -> l
  | None ->
      let l = Fallback_lock.create () in
      Hashtbl.add t.locks id l;
      l

(* The mutex this core's current operation falls back to: the region's own
   lock under SLE, the single global lock under HTM. *)
let op_lock t c =
  match t.cfg.frontend with
  | Config.Sle -> lock_table t (current_op c).Workload.lock_id
  | Config.Htm -> lock_table t 0

let is_speculating c = c.phase = P_exec && (c.mode = M_spec || c.mode = M_scl) && not c.failed_mode

let release_power t c = if t.power_owner = c.id then t.power_owner <- -1

let try_acquire_power t c =
  if
    t.cfg.policy = Config.Power_tm && c.attempt >= 1
    && (t.power_owner = -1 || t.power_owner = c.id)
  then begin
    t.power_owner <- c.id;
    Txn.set_power c.txn true
  end

(* Is core [v]'s transaction protected against requester-wins? *)
let victim_protected t (requester : core) (v : core) =
  let power = t.power_owner = v.id in
  let scl_shield =
    (* Paper §5.2: with CLEAR over PowerTM, S-CL and power transactions nack
       conflicting requests instead of aborting. *)
    v.mode = M_scl && t.cfg.clear_enabled && t.cfg.policy = Config.Power_tm
  in
  ignore requester;
  power || scl_shield

let doom t (v : core) cause line =
  if is_speculating t.cores.(v.id) && v.pending_abort = None then v.pending_abort <- Some (cause, line)

(* Report a line-bearing conflict (doom or NACK) between two mid-AR cores to
   the checker, deduplicated per (aggressor AR, victim AR, line). Pure
   observation: no simulation state is touched, so checked and unchecked
   runs stay bit-identical. *)
let note_conflict t (a : core) (v : core) line =
  match t.check with
  | None -> ()
  | Some col -> (
      match (a.op, v.op) with
      | Some aop, Some vop ->
          let key = (aop.Workload.ar.Isa.Program.id, vop.Workload.ar.Isa.Program.id, line) in
          if not (Hashtbl.mem t.conflict_seen key) then begin
            Hashtbl.replace t.conflict_seen key ();
            Check.Collector.add_conflict col ~time:t.now ~aggressor_core:a.id ~victim_core:v.id
              ~aggressor_ar:aop.Workload.ar ~victim_ar:vop.Workload.ar ~line
          end
      | _ -> ())

(* Record a touched line in the per-attempt footprint. *)
let touch_line t c line =
  t.perf.footprint_inserts <- t.perf.footprint_inserts + 1;
  Simrt.Lineset.add c.attempt_lines line

(* Sorted view of the attempt footprint; the returned array stays valid
   across later attempts (Lineset rebuilds into fresh arrays). *)
let attempt_footprint c = Simrt.Lineset.sorted_view c.attempt_lines

let trace_ev t c kind =
  match t.trace with
  | None -> ()
  | Some tr ->
      let ar = match c.op with Some op -> op.Workload.ar.Isa.Program.name | None -> "-" in
      Trace.record tr ~time:t.now ~core:c.id ~ar kind

let mode_string = function
  | M_spec -> "speculative"
  | M_scl -> "S-CL"
  | M_nscl -> "NS-CL"
  | M_fallback -> "fallback"

(* ------------------------------------------------------------------ *)
(* Witness capture (execution oracle)                                  *)

let capturing t = t.check <> None

let cap_read t c line = if capturing t then Check.Capbuf.note_read c.cap ~line ~time:t.now

let cap_write t c line = if capturing t then Check.Capbuf.note_write c.cap ~line ~time:t.now

let cap_store t c addr value = if capturing t then Check.Capbuf.note_store c.cap ~addr ~value

let cap_reset c = Check.Capbuf.reset c.cap

let lock_ev t ev =
  match t.check with None -> () | Some col -> Check.Collector.add_lock_event col ev

let witness_mode_of = function
  | M_spec -> Check.Witness.Speculative
  | M_scl -> Check.Witness.Scl
  | M_nscl -> Check.Witness.Nscl
  | M_fallback -> Check.Witness.Fallback


(* Fault injection: accesses the conflict-detection hardware is blind to
   (testing knobs — see Config.fault_blind_line / fault_numa_blind). The
   numa-blind fault drops the conflict probe on every access whose
   cross-socket adder is positive, so remote-socket transactions race
   undetected. *)
let blind t (c : core) line =
  (match t.cfg.fault_blind_line with Some l -> l = line | None -> false)
  || (t.cfg.fault_numa_blind && Mem.Hierarchy.numa_adder t.hierarchy ~core:c.id line > 0)


(* ------------------------------------------------------------------ *)
(* Commit/abort bookkeeping                                            *)

let fig1_close t c =
  (* End of attempt 1: compare footprints for the Figure 1 metric. *)
  match c.footprint0 with
  | Some fp0 when c.attempt = 1 ->
      let fp1 = attempt_footprint c in
      let stable = fp0 = fp1 && Array.length fp0 <= t.cfg.alt_capacity in
      Stats.note_first_abort t.stats ~footprint_stable:stable;
      c.footprint0 <- None
  | Some _ | None -> ()

let cleanup_cl_locks t c =
  if c.mode = M_scl || c.mode = M_nscl || c.lock_queue <> [] then begin
    List.iter
      (fun line ->
        trace_ev t c (Trace.Unlocked line);
        lock_ev t (Check.Lock_safety.Unlock { time = t.now; core = c.id; line }))
      (Mem.Hierarchy.locked_lines t.hierarchy ~core:c.id);
    ignore (Mem.Hierarchy.unlock_all t.hierarchy ~core:c.id : int)
  end;
  c.lock_queue <- [];
  (* Drop whichever hold we have on the fallback lock: the shared hold of a
     CL-mode execution or the exclusive hold of a fallback execution. *)
  Fallback_lock.release (op_lock t c) ~core:c.id;
  c.read_lock_held <- false

let stats_mode_of c =
  match c.mode with
  | M_spec -> Stats.Speculative
  | M_scl -> Stats.Scl
  | M_nscl -> Stats.Nscl
  | M_fallback -> Stats.Fallback_mode

let finish_op c =
  c.ops_done <- c.ops_done + 1;
  c.op <- None;
  c.attempt <- 0;
  c.retries_counted <- 0;
  c.planned <- None;
  c.footprint0 <- None;
  c.phase <- P_next_op

let do_commit t c =
  let op = current_op c in
  (* A committed S-CL resolved the conflicts its CRT-locked reads guarded
     against: decay those entries so hot shared lines do not convoy every
     subsequent S-CL of this core. *)
  if c.mode = M_scl && t.cfg.crt_decay then
    List.iter
      (fun (e : Clear.Alt.entry) ->
        if e.needs_locking && not e.written then Clear.Crt.remove c.crt e.line)
      (Clear.Alt.entries c.alt);
  let drained = if c.mode = M_spec || c.mode = M_scl then Txn.drain c.txn t.store else 0 in
  (match t.check with
  | None -> ()
  | Some col ->
      Check.Collector.add_commit col ~time:t.now ~core:c.id ~ar:op.Workload.ar
        ~init_regs:op.Workload.init_regs ~mode:(witness_mode_of c.mode)
        ~retries:c.retries_counted ~reads:(Check.Capbuf.reads c.cap)
        ~writes:(Check.Capbuf.writes c.cap) ~stores:(Check.Capbuf.stores c.cap));
  Txn.iter_lines c.txn (fun line -> Conflict_map.remove_line t.conflicts ~core:c.id line);
  cleanup_cl_locks t c;
  lock_ev t (Check.Lock_safety.Attempt_end { time = t.now; core = c.id });
  release_power t c;
  Txn.reset c.txn;
  fig1_close t c;
  Clear.Ert.note_commit c.ert ~pc:op.Workload.ar.Isa.Program.id;
  trace_ev t c (Trace.Commit { mode = mode_string c.mode; retries = c.retries_counted });
  Stats.note_commit ~ar:op.Workload.ar.Isa.Program.name t.stats ~mode:(stats_mode_of c)
    ~retries:c.retries_counted;
  t.perf.commits <- t.perf.commits + 1;
  (match t.openq with
  | Some oq when c.req >= 0 ->
      Openq.complete oq ~req:c.req ~now:t.now;
      c.req <- -1
  | Some _ | None -> ());
  finish_op c;
  t.cfg.xend_cost + (drained / 4)

let do_abort t c cause =
  trace_ev t c (Trace.Aborted cause);
  Stats.note_abort t.stats cause;
  t.perf.aborts <- t.perf.aborts + 1;
  for _ = 1 to c.attempt_instrs do
    Stats.note_wasted_instr t.stats
  done;
  Txn.iter_lines c.txn (fun line -> Conflict_map.remove_line t.conflicts ~core:c.id line);
  cleanup_cl_locks t c;
  lock_ev t (Check.Lock_safety.Attempt_end { time = t.now; core = c.id });
  release_power t c;
  (* A conflicting read feeds the CRT so the next S-CL locks it too. *)
  (match c.pending_abort with
  | Some (_, Some line) when t.cfg.use_crt && Txn.in_read_set c.txn line && not (Txn.in_write_set c.txn line) ->
      Clear.Crt.insert c.crt line
  | Some _ | None -> ());
  c.pending_abort <- None;
  if c.attempt = 0 then begin
    let fp = attempt_footprint c in
    c.footprint0 <- (if Array.length fp = 0 then None else Some fp)
  end
  else fig1_close t c;
  Txn.reset c.txn;
  if Abort.counts_toward_retry_limit cause then c.retries_counted <- c.retries_counted + 1;
  c.attempt <- c.attempt + 1;
  (* PowerTM: a transaction aborted by a conflict reserves the power token
     right away, so its retry runs with conflict priority. Fallback-related
     aborts do not reserve — the retry would only spin on the lock while
     squatting on the token. *)
  (match cause with
  | Abort.Memory_conflict | Abort.Nacked ->
      if t.cfg.policy = Config.Power_tm && t.power_owner = -1 then t.power_owner <- c.id
  | Abort.Explicit_fallback | Abort.Other_fallback | Abort.Capacity | Abort.Scl_deviation
  | Abort.Other ->
      ());
  c.failed_mode <- false;
  c.discovery <- false;
  c.phase <- P_start;
  t.cfg.abort_penalty

(* Abort the speculating transactions subscribed to the acquired fallback
   lock: all of them under HTM (single global lock), only the elisions of the
   same mutex under SLE. *)
let doom_all_speculators t ~except ~lock_id =
  Array.iter
    (fun v ->
      if v.id <> except && is_speculating v then begin
        let subscribed =
          match t.cfg.frontend with
          | Config.Htm -> true
          | Config.Sle -> (
              match v.op with
              | Some op -> op.Workload.lock_id = lock_id
              | None -> false)
        in
        if subscribed then doom t v Abort.Other_fallback None
      end)
    t.cores

(* ------------------------------------------------------------------ *)
(* Discovery bookkeeping                                               *)

let record_in_alt _t c line ~written =
  if c.discovery && not c.alt_overflow then
    match Clear.Alt.record c.alt line ~written with
    | `Ok -> ()
    | `Overflow ->
        c.alt_overflow <- true;
        let op = current_op c in
        (match Clear.Ert.lookup c.ert ~pc:op.Workload.ar.Isa.Program.id with
        | Some e -> Clear.Ert.mark_not_convertible e
        | None -> ())

let end_of_discovery_decision t c =
  (* Failed-mode discovery reached the end of the AR: hierarchical
     assessment (paper Figure 2), then the abort proceeds. *)
  let op = current_op c in
  let pc = op.Workload.ar.Isa.Program.id in
  let fits = (not c.alt_overflow) && not c.sq_overflow in
  let lockable =
    fits && Mem.Cache.would_fit (Mem.Hierarchy.l1 t.hierarchy ~core:c.id) (Clear.Alt.lines c.alt)
  in
  let immutable = not c.indirection_seen in
  (match Clear.Ert.lookup c.ert ~pc with
  | Some e ->
      if not lockable then Clear.Ert.mark_not_convertible e;
      if not immutable then Clear.Ert.mark_not_immutable e
  | None -> ());
  let assessment = { Clear.Decision.fits_window = fits; lockable; immutable } in
  let decision = Clear.Decision.decide assessment in
  (match t.check with
  | Some col ->
      Check.Collector.add_decision col ~time:t.now ~core:c.id ~ar:op.Workload.ar ~decision
  | None -> ());
  c.planned <-
    (match decision with
    | Clear.Decision.Speculative_retry -> None
    | (Clear.Decision.Ns_cl | Clear.Decision.S_cl) as m -> Some m);
  match c.planned with
  | Some m -> trace_ev t c (Trace.Converted (Clear.Decision.mode_name m))
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Memory-instruction semantics                                        *)

exception Abort_now of Abort.cause

(* The access reached a remotely locked line and the requester is not itself
   holding cacheline locks: the directory retries the request (paper Figure
   6), so the instruction stalls and re-issues. *)
exception Stall_now

(* Charge latency and check capacity: evicting a line of our own speculative
   set aborts the transaction. *)
let check_evictions c outcome =
  List.iter
    (fun line -> if Txn.in_either_set c.txn line then raise (Abort_now Abort.Capacity))
    outcome.Mem.Hierarchy.l1_evicted

(* In S-CL mode the core holds cacheline locks, so a request that reaches a
   remotely locked line must be nacked (abort) to break lock cycles (paper
   Figure 5). A plain speculative core holds no locks and simply retries the
   request until the holder's AR completes. *)
let blocked_by_remote_lock t c line =
  match Mem.Hierarchy.locked_by t.hierarchy line with
  | Some holder when holder <> c.id ->
      if c.mode = M_scl then begin
        note_conflict t c t.cores.(holder) line;
        raise (Abort_now Abort.Nacked)
      end
      else raise Stall_now
  | Some _ | None -> ()

let spec_load t c addr =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  blocked_by_remote_lock t c line;
  if (not c.failed_mode) && not (blind t c line) then begin
    let wmask = Conflict_map.writers_excl t.conflicts ~core:c.id line in
    t.perf.conflict_checks <- t.perf.conflict_checks + 1;
    if wmask <> 0 then begin
      t.perf.conflict_hits <- t.perf.conflict_hits + 1;
      Conflict_map.iter_cores wmask (fun w ->
          let v = t.cores.(w) in
          note_conflict t c v line;
          if victim_protected t c v then raise (Abort_now Abort.Nacked)
          else doom t v Abort.Memory_conflict (Some line))
    end
  end;
  let outcome = Mem.Hierarchy.read_line t.hierarchy ~core:c.id line in
  check_evictions c outcome;
  Txn.read_line c.txn line;
  if (not c.failed_mode) && not (blind t c line) then Conflict_map.add_reader t.conflicts ~core:c.id line;
  record_in_alt t c line ~written:false;
  cap_read t c line;
  t.perf.store_forward_scans <- t.perf.store_forward_scans + 1;
  let value = match Txn.forwarded c.txn addr with Some v -> v | None -> Mem.Store.read t.store addr in
  (value, outcome.Mem.Hierarchy.latency)

let spec_store t c addr value =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  record_in_alt t c line ~written:true;
  if c.failed_mode then begin
    (* Failed mode: stores stay in the SQ, no coherence traffic. *)
    if Txn.store_count c.txn >= t.cfg.sq_entries then begin
      c.sq_overflow <- true;
      let op = current_op c in
      Clear.Ert.note_sq_full c.ert ~pc:op.Workload.ar.Isa.Program.id;
      raise (Abort_now c.failed_cause)
    end;
    Txn.buffer_store c.txn addr value;
    Txn.write_line c.txn line;
    cap_write t c line;
    cap_store t c addr value;
    (* SQ insertion only. *)
    1
  end
  else begin
    blocked_by_remote_lock t c line;
    if not (blind t c line) then begin
      let mask =
        Conflict_map.writers_excl t.conflicts ~core:c.id line
        lor Conflict_map.readers_excl t.conflicts ~core:c.id line
      in
      t.perf.conflict_checks <- t.perf.conflict_checks + 1;
      if mask <> 0 then begin
        t.perf.conflict_hits <- t.perf.conflict_hits + 1;
        Conflict_map.iter_cores mask (fun w ->
            let v = t.cores.(w) in
            note_conflict t c v line;
            if victim_protected t c v then raise (Abort_now Abort.Nacked)
            else doom t v Abort.Memory_conflict (Some line))
      end
    end;
    let outcome = Mem.Hierarchy.write_line t.hierarchy ~core:c.id line in
    check_evictions c outcome;
    Txn.buffer_store c.txn addr value;
    Txn.write_line c.txn line;
    if not (blind t c line) then Conflict_map.add_writer t.conflicts ~core:c.id line;
    cap_write t c line;
    cap_store t c addr value;
    outcome.Mem.Hierarchy.latency
  end

(* NS-CL: all accesses hit lines we hold locked; reads/writes go straight to
   memory. Deviation from the learned footprint means the immutability
   assessment was wrong — defensively fall back to a speculative retry. *)
let nscl_load t c addr =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  if Mem.Hierarchy.locked_by t.hierarchy line <> Some c.id then raise (Abort_now Abort.Scl_deviation);
  let outcome = Mem.Hierarchy.read_line t.hierarchy ~core:c.id line in
  cap_read t c line;
  (Mem.Store.read t.store addr, outcome.Mem.Hierarchy.latency)

let nscl_store t c addr value =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  if Mem.Hierarchy.locked_by t.hierarchy line <> Some c.id then raise (Abort_now Abort.Scl_deviation);
  let outcome = Mem.Hierarchy.write_line t.hierarchy ~core:c.id line in
  Mem.Store.write t.store addr value;
  cap_write t c line;
  cap_store t c addr value;
  outcome.Mem.Hierarchy.latency

(* S-CL: locked lines are safe; other accesses stay speculative with conflict
   detection armed. *)
let scl_load t c addr =
  let line = Mem.Addr.line_of addr in
  if Mem.Hierarchy.locked_by t.hierarchy line = Some c.id then begin
    touch_line t c line;
    let outcome = Mem.Hierarchy.read_line t.hierarchy ~core:c.id line in
    cap_read t c line;
    t.perf.store_forward_scans <- t.perf.store_forward_scans + 1;
    let value = match Txn.forwarded c.txn addr with Some v -> v | None -> Mem.Store.read t.store addr in
    (value, outcome.Mem.Hierarchy.latency)
  end
  else spec_load t c addr

let scl_store t c addr value =
  let line = Mem.Addr.line_of addr in
  if Mem.Hierarchy.locked_by t.hierarchy line = Some c.id then begin
    touch_line t c line;
    let outcome = Mem.Hierarchy.write_line t.hierarchy ~core:c.id line in
    Txn.buffer_store c.txn addr value;
    Txn.write_line c.txn line;
    cap_write t c line;
    cap_store t c addr value;
    outcome.Mem.Hierarchy.latency
  end
  else spec_store t c addr value

let fallback_load t c addr =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  let outcome = Mem.Hierarchy.read_line t.hierarchy ~core:c.id line in
  cap_read t c line;
  (Mem.Store.read t.store addr, outcome.Mem.Hierarchy.latency)

let fallback_store t c addr value =
  let line = Mem.Addr.line_of addr in
  touch_line t c line;
  (* Unprotected fallback stores clash with any straggling speculative
     reader/writer (they subscribed to the lock but may not have processed
     the abort yet). *)
  let mask =
    Conflict_map.writers_excl t.conflicts ~core:c.id line
    lor Conflict_map.readers_excl t.conflicts ~core:c.id line
  in
  t.perf.conflict_checks <- t.perf.conflict_checks + 1;
  if mask <> 0 then begin
    t.perf.conflict_hits <- t.perf.conflict_hits + 1;
    Conflict_map.iter_cores mask (fun w ->
        note_conflict t c t.cores.(w) line;
        doom t t.cores.(w) Abort.Other_fallback (Some line))
  end;
  let outcome = Mem.Hierarchy.write_line t.hierarchy ~core:c.id line in
  Mem.Store.write t.store addr value;
  cap_write t c line;
  cap_store t c addr value;
  outcome.Mem.Hierarchy.latency

(* ------------------------------------------------------------------ *)
(* One instruction                                                     *)

let note_indirection c used_operands =
  if List.exists (Regfile.operand_tainted c.regs) used_operands then c.indirection_seen <- true

let exec_instr t c =
  let op = current_op c in
  let body = op.Workload.ar.Isa.Program.body in
  if c.pc < 0 || c.pc >= Array.length body then failwith "Engine: PC out of range";
  let instr = body.(c.pc) in
  c.attempt_instrs <- c.attempt_instrs + 1;
  if c.attempt_instrs > max_ar_instrs then
    failwith (Printf.sprintf "Engine: AR %s exceeded %d instructions (runaway loop?)" op.Workload.ar.Isa.Program.name max_ar_instrs);
  Stats.note_instr t.stats;
  let base = I.base_cost instr in
  match instr with
  | I.Halt -> `Halt
  | I.Nop ->
      c.pc <- c.pc + 1;
      `Cost base
  | I.Mov { dst; src } ->
      Regfile.define_alu c.regs ~dst [ src ] (Regfile.operand c.regs src);
      c.pc <- c.pc + 1;
      `Cost base
  | I.Binop { op = bop; dst; a; b } ->
      let v = I.eval_binop bop (Regfile.operand c.regs a) (Regfile.operand c.regs b) in
      Regfile.define_alu c.regs ~dst [ a; b ] v;
      c.pc <- c.pc + 1;
      `Cost base
  | I.Jmp target ->
      c.pc <- target;
      `Cost base
  | I.Br { cond; a; b; target } ->
      note_indirection c [ a; b ];
      let taken = I.eval_cond cond (Regfile.operand c.regs a) (Regfile.operand c.regs b) in
      c.pc <- (if taken then target else c.pc + 1);
      `Cost base
  | I.Ld { dst; base = baseop; off; region = _ } ->
      note_indirection c [ baseop ];
      let addr = Regfile.operand c.regs baseop + off in
      let value, latency =
        match c.mode with
        | M_spec -> spec_load t c addr
        | M_scl -> scl_load t c addr
        | M_nscl -> nscl_load t c addr
        | M_fallback -> fallback_load t c addr
      in
      Regfile.define_load c.regs ~dst value;
      c.pc <- c.pc + 1;
      `Cost (base + latency)
  | I.St { base = baseop; off; src; region = _ } ->
      note_indirection c [ baseop ];
      let addr = Regfile.operand c.regs baseop + off in
      let value = Regfile.operand c.regs src in
      let latency =
        match c.mode with
        | M_spec -> spec_store t c addr value
        | M_scl -> scl_store t c addr value
        | M_nscl -> nscl_store t c addr value
        | M_fallback -> fallback_store t c addr value
      in
      c.pc <- c.pc + 1;
      `Cost (base + latency)

(* ------------------------------------------------------------------ *)
(* Phase steps: each returns the latency until this core's next event.  *)

let begin_attempt_common c =
  let op = current_op c in
  Regfile.load_initial c.regs op.Workload.init_regs;
  c.pc <- 0;
  c.attempt_instrs <- 0;
  c.indirection_seen <- false;
  c.alt_overflow <- false;
  c.sq_overflow <- false;
  c.failed_mode <- false;
  Simrt.Lineset.clear c.attempt_lines;
  cap_reset c;
  c.phase <- P_exec

let start_speculative t c =
  let op = current_op c in
  c.mode <- M_spec;
  trace_ev t c (Trace.Begin_attempt { attempt = c.attempt; mode = "speculative" });
  lock_ev t (Check.Lock_safety.Attempt_begin { time = t.now; core = c.id });
  Txn.start c.txn;
  try_acquire_power t c;
  c.discovery <-
    t.cfg.clear_enabled
    &&
    (let e = Clear.Ert.lookup_or_insert c.ert ~pc:op.Workload.ar.Isa.Program.id in
     Clear.Ert.discovery_enabled e);
  if c.discovery then Clear.Alt.reset c.alt;
  begin_attempt_common c;
  c.explicit_fb_counted <- false;
  t.cfg.xbegin_cost

let start_cl t c (mode : Clear.Decision.mode) =
  (* Read-lock the fallback lock, then queue the cacheline locks. *)
  if Fallback_lock.try_read_lock (op_lock t c) ~core:c.id then begin
    c.read_lock_held <- true;
    lock_ev t (Check.Lock_safety.Attempt_begin { time = t.now; core = c.id });
    let lock_all = mode = Clear.Decision.Ns_cl in
    Clear.Alt.prepare_locking c.alt ~lock_all ~extra:(fun line -> t.cfg.use_crt && Clear.Crt.mem c.crt line);
    c.lock_queue <- Clear.Alt.to_lock c.alt;
    c.mode <- (if mode = Clear.Decision.Ns_cl then M_nscl else M_scl);
    if c.mode = M_scl then Txn.start c.txn;
    c.phase <- P_lock;
    t.cfg.xbegin_cost
  end
  else (* fallback execution in flight: spin on the read lock *)
    t.cfg.spin_cycles

let step_start t c =
  if c.retries_counted > t.cfg.max_retries then begin
    (* Fallback path: acquire the global lock exclusively. *)
    let lock = op_lock t c in
    Fallback_lock.announce_writer lock ~core:c.id;
    if Fallback_lock.try_write_lock lock ~core:c.id then begin
      doom_all_speculators t ~except:c.id ~lock_id:(current_op c).Workload.lock_id;
      c.mode <- M_fallback;
      trace_ev t c (Trace.Begin_attempt { attempt = c.attempt; mode = "fallback" });
      lock_ev t (Check.Lock_safety.Attempt_begin { time = t.now; core = c.id });
      c.planned <- None;
      begin_attempt_common c;
      t.cfg.xbegin_cost
    end
    else t.cfg.spin_cycles
  end
  else
    match c.planned with
    | Some mode when t.cfg.clear_enabled -> start_cl t c mode
    | Some _ | None ->
        if Fallback_lock.writer_held (op_lock t c) then begin
          (* Explicit fallback: we tried to start but the lock is taken. *)
          if not c.explicit_fb_counted then begin
            Stats.note_abort t.stats Abort.Explicit_fallback;
            c.explicit_fb_counted <- true
          end;
          t.cfg.spin_cycles
        end
        else start_speculative t c

let step_lock t c =
  match c.lock_queue with
  | [] ->
      (* All locks held: run the body. *)
      begin_attempt_common c;
      1
  | entry :: rest -> (
      match Mem.Hierarchy.lock_line t.hierarchy ~core:c.id entry.Clear.Alt.line with
      | `Acquired outcome ->
          (* Locking implies exclusivity: any speculative transaction holding
             the line in its sets loses it (the lock's invalidation is a
             conflicting request it cannot win). *)
          let line = entry.Clear.Alt.line in
          let mask =
            Conflict_map.writers_excl t.conflicts ~core:c.id line
            lor Conflict_map.readers_excl t.conflicts ~core:c.id line
          in
          Conflict_map.iter_cores mask (fun w ->
              note_conflict t c t.cores.(w) line;
              doom t t.cores.(w) Abort.Memory_conflict (Some line));
          trace_ev t c (Trace.Locked line);
          lock_ev t
            (Check.Lock_safety.Lock
               { time = t.now; core = c.id; line; key = entry.Clear.Alt.dir_set });
          Clear.Alt.mark_locked entry;
          c.lock_queue <- rest;
          (* Lexicographically ordered locking is pipelined: charge the
             issue slot, and the transfer only when data had to move. *)
          let latency = max 2 (outcome.Mem.Hierarchy.latency / 2) in
          Simrt.Counter.add (Stats.counters t.stats) "lock_phase_cycles" latency;
          latency
      | `Held_by _ ->
          (* Owner will release at its AR end; retry (directory unblocks the
             entry rather than queueing us — paper Figure 6). *)
          Simrt.Counter.add (Stats.counters t.stats) "lock_phase_cycles" (t.cfg.spin_cycles / 2);
          t.cfg.spin_cycles / 2)

let enter_failed_mode t c cause =
  trace_ev t c Trace.Enter_failed_mode;
  c.failed_mode <- true;
  c.failed_cause <- cause;
  (* Our accesses are non-aborting from now on: withdraw from conflict
     detection so we damage no other transaction. *)
  Txn.iter_lines c.txn (fun line -> Conflict_map.remove_line t.conflicts ~core:c.id line);
  c.pending_abort <- None

let step_exec t c =
  (* Doom processing first. *)
  match c.pending_abort with
  | Some (cause, _line) when
      c.mode = M_spec && c.discovery && (not c.failed_mode) && cause = Abort.Memory_conflict
      && t.cfg.failed_mode_discovery && not c.alt_overflow ->
      enter_failed_mode t c cause;
      1
  | Some (cause, _) -> do_abort t c cause
  | None -> (
      match exec_instr t c with
      | `Cost latency ->
          (* In-core speculation (SLE) is bounded by the ROB and SQ: a region
             that outgrows the window cannot complete speculatively (paper
             §4.1, assessment 1). NS-CL and fallback run non-speculatively
             and retire freely. *)
          if
            t.cfg.frontend = Config.Sle
            && (c.mode = M_spec || c.mode = M_scl)
            && (c.attempt_instrs > t.cfg.rob_entries || Txn.store_count c.txn > t.cfg.sq_entries)
          then begin
            let op = current_op c in
            (match Clear.Ert.lookup c.ert ~pc:op.Workload.ar.Isa.Program.id with
            | Some e -> Clear.Ert.mark_not_convertible e
            | None -> ());
            do_abort t c Abort.Capacity
          end
          else begin
            if c.failed_mode then Stats.note_failed_discovery_cycles t.stats latency;
            latency
          end
      | `Halt ->
          if c.failed_mode then begin
            end_of_discovery_decision t c;
            do_abort t c c.failed_cause
          end
          else do_commit t c
      | exception Stall_now ->
          (* Re-issue the same instruction once the holder has had time to
             make progress. The PC did not advance. *)
          c.attempt_instrs <- c.attempt_instrs - 1;
          let latency = t.cfg.spin_cycles / 2 in
          Simrt.Counter.add (Stats.counters t.stats) "stall_cycles" latency;
          if c.failed_mode then Stats.note_failed_discovery_cycles t.stats latency;
          latency
      | exception Abort_now cause ->
          if c.mode = M_spec && c.discovery && (not c.failed_mode) && cause = Abort.Memory_conflict
             && t.cfg.failed_mode_discovery && not c.alt_overflow
          then begin
            enter_failed_mode t c cause;
            1
          end
          else begin
            (* Non-memory aborts mark the region non-discoverable. *)
            (match cause with
            | Abort.Capacity | Abort.Other ->
                let op = current_op c in
                (match Clear.Ert.lookup c.ert ~pc:op.Workload.ar.Isa.Program.id with
                | Some e -> Clear.Ert.mark_not_convertible e
                | None -> ())
            | Abort.Scl_deviation ->
                let op = current_op c in
                (match Clear.Ert.lookup c.ert ~pc:op.Workload.ar.Isa.Program.id with
                | Some e ->
                    Clear.Ert.mark_not_immutable e;
                    Clear.Ert.mark_not_convertible e
                | None -> ());
                c.planned <- None
            | Abort.Memory_conflict | Abort.Nacked | Abort.Explicit_fallback | Abort.Other_fallback -> ());
            do_abort t c cause
          end)

(* Pull the next operation from the driver and charge its think time. The
   driver call is shared by both frontends; only the decision of *whether*
   there is a next operation differs. *)
let issue_op t c =
  let op =
    match t.check with
    | None -> c.driver ()
    | Some col ->
        (* Drivers may write the store outside any AR (thread-private
           scratch, e.g. labyrinth's path buffers). Capture those writes so
           the replay oracle can apply them at the right point. *)
        let rev = ref [] in
        let op =
          Mem.Store.with_observer t.store
            (fun a v -> rev := (a, v) :: !rev)
            (fun () -> c.driver ())
        in
        Check.Collector.add_driver_writes col ~time:t.now ~core:c.id ~stores:(List.rev !rev);
        op
  in
  c.op <- Some op;
  c.phase <- P_start;
  c.attempt <- 0;
  c.retries_counted <- 0;
  c.planned <- None;
  (* Per-core pacing from the schedule profile (the symmetric default is
     the legacy think_cycles + U[0, think/2] draw, bit-for-bit). The
     workload's own extra_think rides on top regardless of profile. *)
  let think =
    Sched.Profile.sample_think t.cfg.sched ~core:c.id ~base:t.cfg.think_cycles c.rng
  in
  think + op.Workload.extra_think

let step_next_op t c =
  match t.openq with
  | None ->
      if c.ops_done >= Sched.Profile.ops_for t.cfg.sched ~core:c.id ~base:t.cfg.ops_per_thread
      then begin
        c.finished <- true;
        c.phase <- P_done;
        0
      end
      else issue_op t c
  | Some oq -> (
      (* Open-system frontend: the clock and the workload are decoupled.
         Admission is lazy but exact — every dispatch attempt first moves all
         arrivals up to [now] into the backlog, so FIFO order and drop
         decisions depend only on virtual time, never on host scheduling. *)
      Openq.admit_until oq ~now:t.now;
      match Openq.dispatch oq ~now:t.now with
      | Some req ->
          c.req <- req;
          issue_op t c
      | None ->
          if Openq.exhausted oq then begin
            c.finished <- true;
            c.phase <- P_done;
            0
          end
          else
            (* Backlog empty but more requests are coming: park until the
               next arrival. Draws nothing from the RNG. *)
            let ta =
              match Openq.next_arrival oq with
              | Some ta -> ta
              | None -> assert false (* not exhausted ⇒ an arrival exists *)
            in
            max 1 (ta - t.now))

let step t c =
  match c.phase with
  | P_next_op -> step_next_op t c
  | P_start -> step_start t c
  | P_lock -> step_lock t c
  | P_exec -> step_exec t c
  | P_done -> 0

let gc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Fold the request queue's end-of-run totals into the perf record — off the
   per-event datapath, so the open counters cost nothing when unused. *)
let sync_open_perf t =
  match t.openq with
  | None -> ()
  | Some oq ->
      t.perf.open_arrivals <- t.perf.open_arrivals + Openq.admitted oq;
      t.perf.open_dropped <- t.perf.open_dropped + Openq.dropped oq;
      t.perf.open_completed <- t.perf.open_completed + Openq.completed oq;
      t.perf.open_qdepth_hw <- max t.perf.open_qdepth_hw (Openq.qdepth_hw oq)

(* Streaming-oracle memory counters, synced once at end of run like the
   open-queue totals above. Accumulating collectors report nothing here. *)
let sync_check_perf t =
  match t.check with
  | None -> ()
  | Some col -> (
      match Check.Collector.stream_stats col with
      | None -> ()
      | Some (live_hw, retired) ->
          t.perf.check_live_lines <- max t.perf.check_live_lines live_hw;
          t.perf.check_retired <- t.perf.check_retired + retired)

let livelock_fail t =
  let dump =
    Array.to_list t.cores
    |> List.map (fun c ->
           Printf.sprintf "core %d: phase=%s mode=%s attempt=%d retries=%d planned=%s op=%s"
             c.id
             (match c.phase with
             | P_next_op -> "next_op"
             | P_start -> "start"
             | P_lock -> "lock"
             | P_exec -> "exec"
             | P_done -> "done")
             (match c.mode with
             | M_spec -> "spec"
             | M_scl -> "scl"
             | M_nscl -> "nscl"
             | M_fallback -> "fallback")
             c.attempt c.retries_counted
             (match c.planned with
             | None -> "-"
             | Some m -> Clear.Decision.mode_name m)
             (match c.op with
             | None -> "-"
             | Some op -> op.Workload.ar.Isa.Program.name))
    |> String.concat "\n"
  in
  failwith
    (Printf.sprintf
       "Engine.run: max_cycles exceeded (livelock?); fallback writer=%s readers=[%s]\n%s"
       (match Fallback_lock.writer (lock_table t 0) with
       | Some w -> string_of_int w
       | None -> "-")
       (String.concat "," (List.map string_of_int (Fallback_lock.readers (lock_table t 0))))
       dump)

let run_sequential ~max_cycles t =
  let words_before = gc_words () in
  let remaining = ref (Array.length t.cores) in
  let last_time = ref 0 in
  let continue = ref true in
  while !continue && !remaining > 0 do
    match Event_queue.pop t.queue with
    | None -> failwith "Engine.run: event queue drained with unfinished threads"
    | Some (time, id) ->
        t.perf.events_popped <- t.perf.events_popped + 1;
        if time > max_cycles then livelock_fail t;
        t.now <- time;
        let c = t.cores.(id) in
        let latency = step t c in
        if c.finished then begin
          decr remaining;
          last_time := max !last_time time
        end
        else begin
          Stats.add_busy_cycles t.stats latency;
          Event_queue.push t.queue ~time:(time + max 1 latency) id
        end;
        if !remaining = 0 then continue := false
  done;
  Stats.set_total_cycles t.stats !last_time;
  t.perf.sims <- t.perf.sims + 1;
  t.perf.allocated_words <- t.perf.allocated_words + int_of_float (gc_words () -. words_before);
  sync_open_perf t;
  sync_check_perf t;
  t.stats

(* ------------------------------------------------------------------ *)
(* Windowed conservative PDES driver (DESIGN.md §12).

   The sequential loop interleaves cores through one global queue in
   (time, push-order) order. [run_pdes] produces bit-identical output while
   letting the globally earliest core drain a private burst of events
   without re-entering the global selection:

   - basic burst: while the leader's next event is strictly earlier than
     every other core's pending event, executing it eagerly IS the
     sequential order — no proof needed. This is the dynamic
     next-conflict-time bound and is always available.
   - extended burst: a leader mid-speculation (P_exec, M_spec, HTM
     frontend, requester-wins, no trace/check observers) may also run past
     peers' pending times when every active peer is provably insulated:
     both sides' static line footprints ({!Staticcheck.Footprint}) resolve,
     are line- and L3-set-disjoint, neither side's private caches hold any
     of the other side's lines, and the peer provably cannot commit or
     enter the fallback path (doom_all / global-lock acquisition) for at
     least [slack] more cycles. Under those facts every leader event
     executed before the bound commutes with every peer event it overtakes,
     so state, stats and both cores' event streams are unchanged. Regions
     whose footprint the interval domain lost (Cany sites, unresolvable
     bindings) simply never extend — they fall back to basic bursts.

   Sequence numbers are the subtle part: the sequential driver breaks time
   ties by push order, and an overtaking burst pushes events "too early" in
   wall order. While any reordering is live ("dirty") the driver ignores
   raw seq numbers and breaks ties by the virtual push order, reconstructed
   by walking each core's chain of executed-ancestor event times (the
   chain that bottoms out in the pre-reorder clean prefix is older; two
   chains bottoming out together compare by the clean seqs captured when
   the reorder began). Once every pending event post-dates the reordered
   span, pending events are renumbered in virtual push order and cheap
   integer tie-breaking resumes. *)

(* Cap on per-core ancestor-history length while dirty; beyond it new
   extensions are blocked (basic bursts only) until the next sync, bounding
   memory without affecting output. *)
let hist_cap = 1 lsl 16

let run_pdes ~max_cycles t (p : Pdes.t) =
  let words_before = gc_words () in
  let n = Array.length t.cores in
  let perf = t.perf in
  let cfg = t.cfg in
  (* One static bundle per AR, computed lazily at first extension attempt. *)
  let statics : (int, Staticcheck.Footprint.t) Hashtbl.t = Hashtbl.create 16 in
  let static_of (ar : Isa.Program.ar) =
    match Hashtbl.find_opt statics ar.Isa.Program.id with
    | Some b -> b
    | None ->
        let b = Staticcheck.Footprint.of_ar ar in
        Hashtbl.add statics ar.Isa.Program.id b;
        b
  in
  (* Per-core pending event (time, seq); time -1 = finished. *)
  let ev_time = Array.make n (-1) in
  let ev_seq = Array.make n 0 in
  let next_seq = ref 0 in
  (* Per-core resolved footprint, cached per op (physical equality). *)
  let fp_op : Workload.op option array = Array.make n None in
  let fp_lines : int array option array = Array.make n None in
  let fp_sets : int array option array = Array.make n None in
  (* Dirty-span bookkeeping: executed-ancestor time chains. *)
  let dirty = ref false in
  let high_water = ref 0 in
  let hist = Array.make n [||] in
  let hist_len = Array.make n 0 in
  let hist_max = ref 0 in
  let base_seq = Array.make n 0 in
  let remaining = ref 0 in
  let last_time = ref 0 in
  (* Seed from the creation-time queue (drained in exact pop order, so the
     implied seqs are 0..k-1 in that order). *)
  List.iter
    (fun (time, id) ->
      ev_time.(id) <- time;
      ev_seq.(id) <- !next_seq;
      incr next_seq;
      incr remaining)
    (Event_queue.pop_until t.queue ~time:max_int);
  if !remaining = 0 then failwith "Engine.run: event queue drained with unfinished threads";
  (* Virtual push order of two pending events: walk executed-ancestor times
     backward while equal. A chain that bottoms out first is older — its
     ancestor executed in the clean prefix, whose times never exceed any
     dirty-span execution time, and a clean-prefix tie was already resolved
     in its favour by the clean selection order. Both bottoming out
     together compare by the clean seqs captured at dirty-start. *)
  let rec push_before a b k =
    let la = hist_len.(a) and lb = hist_len.(b) in
    if k > la && k > lb then base_seq.(a) < base_seq.(b)
    else if k > la then true
    else if k > lb then false
    else
      let ta = hist.(a).(la - k) and tb = hist.(b).(lb - k) in
      if ta <> tb then ta < tb else push_before a b (k + 1)
  in
  let before a b =
    ev_time.(a) < ev_time.(b)
    || (ev_time.(a) = ev_time.(b)
       && if !dirty then push_before a b 1 else ev_seq.(a) < ev_seq.(b))
  in
  let hist_append id time =
    let h = hist.(id) in
    let len = hist_len.(id) in
    if len = Array.length h then begin
      let nh = Array.make (max 64 (2 * len)) 0 in
      Array.blit h 0 nh 0 len;
      hist.(id) <- nh
    end;
    hist.(id).(len) <- time;
    hist_len.(id) <- len + 1;
    if len + 1 > !hist_max then hist_max := len + 1
  in
  (* Execute core [id]'s pending event; returns its virtual time. *)
  let exec_event id =
    let time = ev_time.(id) in
    t.now <- time;
    if !dirty then begin
      hist_append id time;
      if time > !high_water then high_water := time
    end;
    perf.Simrt.Perfctr.events_popped <- perf.Simrt.Perfctr.events_popped + 1;
    let c = t.cores.(id) in
    let latency = step t c in
    if c.finished then begin
      ev_time.(id) <- -1;
      decr remaining;
      last_time := max !last_time time
    end
    else begin
      Stats.add_busy_cycles t.stats latency;
      ev_time.(id) <- time + max 1 latency;
      ev_seq.(id) <- !next_seq;
      incr next_seq
    end;
    time
  in
  let sorted_distinct arr =
    Array.sort Int.compare arr;
    let m = Array.length arr in
    if m <= 1 then arr
    else begin
      let w = ref 1 in
      for i = 1 to m - 1 do
        if arr.(i) <> arr.(!w - 1) then begin
          arr.(!w) <- arr.(i);
          incr w
        end
      done;
      Array.sub arr 0 !w
    end
  in
  let disjoint a b =
    let la = Array.length a and lb = Array.length b in
    let i = ref 0 and j = ref 0 and ok = ref true in
    while !ok && !i < la && !j < lb do
      if a.(!i) = b.(!j) then ok := false
      else if a.(!i) < b.(!j) then incr i
      else incr j
    done;
    !ok
  in
  (* Resolved (lines, l3 sets) of [id]'s current op, or None. Exact line
     sets resolve as before; when enumeration hits the expansion cap or an
     indirection is bounded only by its region extent ([Cregion]), fall
     back to the sound line-interval cover and — when it is small enough —
     expand it into the same sorted-lines form, so cover disjointness
     reuses the one proof below. Covers too large to expand are refused:
     a pool-sized extent spans every L3 set, so the footprint argument
     could never discharge it anyway (the phase-window arms handle those
     peers instead). *)
  let cover_expand_cap = 64 in
  let resolve_fp b ~init =
    let lines, capped, cls =
      match Staticcheck.Footprint.lines_for_r b ~init with
      | `Lines lines -> (Some lines, false, `Exact)
      | (`Capped | `Unresolvable) as miss -> (
          let capped = miss = `Capped in
          match Staticcheck.Footprint.lines_cover b ~init with
          | Some cover
            when Array.fold_left (fun acc (lo, hi) -> acc + hi - lo + 1) 0 cover
                 <= cover_expand_cap ->
              let out = ref [] in
              for si = Array.length cover - 1 downto 0 do
                let lo, hi = cover.(si) in
                for l = hi downto lo do
                  out := l :: !out
                done
              done;
              (Some (Array.of_list !out), capped, `Cover)
          | Some _ | None -> (None, capped, `Unres))
    in
    let res =
      match lines with
      | None -> None
      | Some lines ->
          Some
            ( lines,
              sorted_distinct (Array.map (fun l -> Mem.Hierarchy.l3_set_of t.hierarchy l) lines)
            )
    in
    ((capped, cls), res)
  in
  (* Register-independent regions (no [Crel] site) resolve to the same
     footprint for every op, so the (lines, sets) pair is memoized per AR;
     the shared arrays are safe because the consumers below only read them.
     Counters still tick once per op-cache miss so the static_cover_*
     census stays a per-resolution count either way. *)
  let fp_memo :
      (int, (bool * [ `Exact | `Cover | `Unres ]) * (int array * int array) option) Hashtbl.t =
    Hashtbl.create 16
  in
  let footprint_of id =
    let c = t.cores.(id) in
    match c.op with
    | None -> None
    | Some op ->
        (match fp_op.(id) with
        | Some o when o == op -> ()
        | _ ->
            fp_op.(id) <- Some op;
            let b = static_of op.Workload.ar in
            let init = op.Workload.init_regs in
            (* The resolution is init-independent when no site is
               register-relative, when an unbounded site forces
               [`Unresolvable] under every binding, or when a single site's
               span guarantees both [`Capped] enumeration and an
               unexpandable cover — exactly the pointer-chasing regions
               whose per-op re-resolution would otherwise dominate the
               extension path. *)
            let init_independent =
              (not (Staticcheck.Footprint.has_reg_relative b))
              || (not (Staticcheck.Footprint.resolvable b))
              || Staticcheck.Footprint.always_capped b
                 && Staticcheck.Footprint.cover_lines_lb b > cover_expand_cap
            in
            let (capped, cls), res =
              if not init_independent then resolve_fp b ~init
              else
                let key = op.Workload.ar.Isa.Program.id in
                match Hashtbl.find_opt fp_memo key with
                | Some r -> r
                | None ->
                    let r = resolve_fp b ~init in
                    Hashtbl.add fp_memo key r;
                    r
            in
            if capped then
              perf.Simrt.Perfctr.static_cover_capped <-
                perf.Simrt.Perfctr.static_cover_capped + 1;
            (match cls with
            | `Exact ->
                perf.Simrt.Perfctr.static_cover_exact <-
                  perf.Simrt.Perfctr.static_cover_exact + 1
            | `Cover ->
                perf.Simrt.Perfctr.static_cover_cover <-
                  perf.Simrt.Perfctr.static_cover_cover + 1
            | `Unres ->
                perf.Simrt.Perfctr.static_cover_unresolved <-
                  perf.Simrt.Perfctr.static_cover_unresolved + 1);
            match res with
            | None ->
                fp_lines.(id) <- None;
                fp_sets.(id) <- None
            | Some (lines, sets) ->
                fp_lines.(id) <- Some lines;
                fp_sets.(id) <- Some sets);
        (match (fp_lines.(id), fp_sets.(id)) with
        | Some l, Some s -> Some (l, s)
        | _ -> None)
  in
  let caches_hold core lines =
    let l1 = Mem.Hierarchy.l1 t.hierarchy ~core and l2 = Mem.Hierarchy.l2 t.hierarchy ~core in
    Array.exists (fun l -> Mem.Cache.mem l1 l || Mem.Cache.mem l2 l) lines
  in
  (* Phase-window insulation: a peer parked *between* attempts executes
     only core-local work for a provable number of cycles, independent of
     its footprint. Two arms (sound only under [ext_enabled]'s conditions —
     no checker, HTM front-end, requester-wins):

     - [P_next_op], closed loop, pure driver: the pending event runs the
       finish check or [issue_op] (pure driver, own RNG, resets the attempt
       state to [retries_counted = 0], [planned = None]) and schedules a
       [P_start] at least one cycle later. That [P_start] either spins on
       the held write lock — constant during a speculative leader's burst,
       since the leader never takes or releases the fallback lock — or
       begins a speculative attempt ([Txn.start], ERT lookup: core-local
       under requester-wins). The first event that can touch shared state
       (a [P_exec] memory access) is therefore at least
       [1 + max 1 (min xbegin_cost spin_cycles)] cycles out.
     - [P_start] below the retry budget with no planned CL mode: the same
       argument without the leading next-op hop.

     Excluded on purpose: [P_start] past the retry budget (announces and
     may take the write lock, dooming everyone), a planned CL mode
     ([start_cl] leads to [P_lock] whose lock acquisitions doom globally),
     open-loop runs (the driver pops the shared request queue, and a
     leader's in-burst commit pushes completions into it) and impure
     drivers (labyrinth reads the store). *)
  let spin_floor = max 1 (min cfg.Config.xbegin_cost cfg.Config.spin_cycles) in
  let arm_next_op = t.openq = None && t.workload.Workload.pure_driver in
  (* All slack functions return cycles, -1 for "not insulated" — the loop
     below runs per peer per burst, so no options are allocated here. *)
  let phase_window_slack x =
    let c = t.cores.(x) in
    match c.phase with
    | P_next_op when arm_next_op -> 1 + spin_floor
    | P_start when c.retries_counted <= cfg.Config.max_retries && c.planned = None -> spin_floor
    | _ -> -1
  in
  (* Cycles (from peer [x]'s pending event) before [x] can possibly commit
     or enter the fallback path — the two ways a footprint-disjoint peer
     can still interact (post-commit driver work, resp. doom_all and the
     global lock). -1 = not insulated by the footprint argument; requires
     a resolved footprint (exact or expanded cover) on both sides. *)
  let footprint_slack x ~llines ~lsets ~leader =
    let c = t.cores.(x) in
    match c.phase with
    | P_done | P_next_op -> -1
    | P_start when c.retries_counted > cfg.Config.max_retries -> -1
    | P_start | P_lock | P_exec -> (
        match footprint_of x with
        | None -> -1
        | Some (xlines, xsets) ->
            if
              (not (disjoint llines xlines))
              || (not (disjoint lsets xsets))
              || caches_hold leader xlines || caches_hold x llines
            then -1
            else begin
              let b = static_of (current_op c).Workload.ar in
              let mth0 = Staticcheck.Footprint.min_cycles_from_entry b in
              let restart = cfg.Config.abort_penalty + cfg.Config.xbegin_cost + mth0 in
              let commit_slack =
                match c.phase with
                | P_exec -> min (Staticcheck.Footprint.min_cycles_to_halt b ~pc:c.pc) restart
                | _ -> 1 + mth0
              in
              if c.phase = P_exec && c.mode = M_fallback then commit_slack
              else begin
                let needed = cfg.Config.max_retries + 1 - c.retries_counted in
                let fallback_slack =
                  (needed * cfg.Config.abort_penalty) + ((needed - 1) * cfg.Config.xbegin_cost)
                in
                min fallback_slack commit_slack
              end
            end)
  in
  (* Best insulation over both arms; each is independently sound, so the
     larger window applies. *)
  let insulation_slack x ~lfp ~leader =
    let pw = phase_window_slack x in
    let fp =
      match lfp with
      | None -> -1
      | Some (llines, lsets) -> footprint_slack x ~llines ~lsets ~leader
    in
    max pw fp
  in
  (* The leader may execute its next event ahead of a time-tied or earlier
     peer event only if it stays core-local: still mid-speculation, and any
     memory access lands on a line no other core has in its read or write
     set (requester-wins would otherwise doom them out of order). *)
  let ext_step_safe id =
    let c = t.cores.(id) in
    c.phase = P_exec && c.mode = M_spec
    && (match c.pending_abort with
       | Some _ -> true (* abort processing is core-local *)
       | None -> (
           match c.op with
           | None -> false
           | Some op ->
               let body = op.Workload.ar.Isa.Program.body in
               c.pc >= 0
               && c.pc < Array.length body
               && (match body.(c.pc) with
                  | I.Ld { base; off; _ } | I.St { base; off; _ } ->
                      let addr = Regfile.operand c.regs base + off in
                      addr >= 0
                      && Conflict_map.writers_excl t.conflicts ~core:c.id (Mem.Addr.line_of addr)
                         lor Conflict_map.readers_excl t.conflicts ~core:c.id (Mem.Addr.line_of addr)
                         = 0
                  | _ -> true)))
  in
  let ext_enabled =
    t.trace = None && t.check = None
    && cfg.Config.frontend = Config.Htm
    && cfg.Config.policy = Config.Requester_wins
  in
  (* Earliest virtual time at which any peer could interact with the
     leader's burst; the leader may execute events strictly before it. The
     leader's own footprint is needed only by the footprint arm — the
     phase-window arms insulate peers even when the leader's lines are
     unresolvable (pointer-chasing regions). *)
  let extension_bound id =
    let lfp = footprint_of id in
    let bound = ref max_int in
    for x = 0 to n - 1 do
      if x <> id && ev_time.(x) >= 0 && ev_time.(x) < !bound then begin
        let slack = insulation_slack x ~lfp ~leader:id in
        if slack < 0 then bound := ev_time.(x)
        else bound := min !bound (ev_time.(x) + slack)
      end
    done;
    !bound
  in
  while !remaining > 0 do
    (* Merged selection: globally earliest pending event in virtual order. *)
    let leader = ref (-1) in
    for x = 0 to n - 1 do
      if ev_time.(x) >= 0 && (!leader < 0 || before x !leader) then leader := x
    done;
    let id = !leader in
    if ev_time.(id) > max_cycles then livelock_fail t;
    perf.Simrt.Perfctr.pdes_windows <- perf.Simrt.Perfctr.pdes_windows + 1;
    let tied = ref false in
    for x = 0 to n - 1 do
      if x <> id && ev_time.(x) = ev_time.(id) then tied := true
    done;
    if !tied then perf.Simrt.Perfctr.pdes_merge_events <- perf.Simrt.Perfctr.pdes_merge_events + 1;
    let t0 = exec_event id in
    let cap = if p.Pdes.window = max_int then max_int else t0 + p.Pdes.window in
    let last = ref t0 in
    (* Basic burst: strictly earliest == sequential order. *)
    let basic_bound = ref max_int in
    for x = 0 to n - 1 do
      if x <> id && ev_time.(x) >= 0 && ev_time.(x) < !basic_bound then basic_bound := ev_time.(x)
    done;
    let bb = min !basic_bound cap in
    while ev_time.(id) >= 0 && ev_time.(id) < bb && ev_time.(id) <= max_cycles do
      last := exec_event id
    done;
    (* Extended burst: overtake insulated peers. *)
    if
      ext_enabled && !hist_max < hist_cap
      && ev_time.(id) >= 0
      && ev_time.(id) >= !basic_bound
      && ev_time.(id) < cap
      && ev_time.(id) <= max_cycles
      &&
      let c = t.cores.(id) in
      c.phase = P_exec && c.mode = M_spec
    then begin
      let eb = min (extension_bound id) cap in
      if eb <= ev_time.(id) then
        perf.Simrt.Perfctr.pdes_window_stalls <- perf.Simrt.Perfctr.pdes_window_stalls + 1
      else begin
            let stopped = ref false in
            while
              (not !stopped)
              && ev_time.(id) >= 0
              && ev_time.(id) < eb
              && ev_time.(id) <= max_cycles
            do
              if ext_step_safe id then begin
                if not !dirty then begin
                  dirty := true;
                  high_water := 0;
                  hist_max := 0;
                  for x = 0 to n - 1 do
                    hist_len.(x) <- 0;
                    base_seq.(x) <- ev_seq.(x)
                  done
                end;
                last := exec_event id;
                perf.Simrt.Perfctr.pdes_ext_events <- perf.Simrt.Perfctr.pdes_ext_events + 1
              end
              else begin
                stopped := true;
                perf.Simrt.Perfctr.pdes_window_stalls <- perf.Simrt.Perfctr.pdes_window_stalls + 1
              end
            done
          end
    end;
    let lookahead = !last - t0 in
    perf.Simrt.Perfctr.pdes_lookahead_total <- perf.Simrt.Perfctr.pdes_lookahead_total + lookahead;
    if lookahead > perf.Simrt.Perfctr.pdes_lookahead_max then
      perf.Simrt.Perfctr.pdes_lookahead_max <- lookahead;
    (* Sync: once every pending event post-dates the reordered span,
       renumber pendings in virtual push order and drop the chains. *)
    if !dirty && !remaining > 0 then begin
      let minp = ref max_int in
      for x = 0 to n - 1 do
        if ev_time.(x) >= 0 && ev_time.(x) < !minp then minp := ev_time.(x)
      done;
      if !minp > !high_water then begin
        let pending = ref [] in
        for x = n - 1 downto 0 do
          if ev_time.(x) >= 0 then pending := x :: !pending
        done;
        let ordered = List.sort (fun a b -> if push_before a b 1 then -1 else 1) !pending in
        List.iter
          (fun x ->
            ev_seq.(x) <- !next_seq;
            incr next_seq)
          ordered;
        for x = 0 to n - 1 do
          hist_len.(x) <- 0;
          base_seq.(x) <- ev_seq.(x)
        done;
        hist_max := 0;
        dirty := false;
        high_water := 0
      end
    end
  done;
  Stats.set_total_cycles t.stats !last_time;
  t.perf.sims <- t.perf.sims + 1;
  t.perf.allocated_words <- t.perf.allocated_words + int_of_float (gc_words () -. words_before);
  sync_open_perf t;
  sync_check_perf t;
  t.stats

let run ?(max_cycles = 4_000_000_000) ?pdes t =
  match pdes with None -> run_sequential ~max_cycles t | Some p -> run_pdes ~max_cycles t p

let run_workload ?pdes cfg workload = run ?pdes (create cfg workload)
