type htm_policy = Requester_wins | Power_tm

type frontend = Htm | Sle

type open_process = Open_poisson | Open_burst of { heat : float }

type open_queue = {
  open_rate : float;
  open_requests : int;
  open_process : open_process;
  open_queue_cap : int;
}

type t = {
  cores : int;
  mem_params : Mem.Params.t;
  memory_words : int;
  rob_entries : int;
  lq_entries : int;
  sq_entries : int;
  frontend : frontend;
  policy : htm_policy;
  max_retries : int;
  xbegin_cost : int;
  xend_cost : int;
  abort_penalty : int;
  spin_cycles : int;
  clear_enabled : bool;
  ert_entries : int;
  alt_capacity : int;
  crt_entries : int;
  crt_ways : int;
  failed_mode_discovery : bool;
  use_crt : bool;
  crt_decay : bool;
  think_cycles : int;
  ops_per_thread : int;
  seed : int;
  sched : Sched.Profile.t;
  openloop : open_queue option;
  fault_blind_line : int option;
  fault_numa_blind : bool;
}

let default =
  {
    cores = 32;
    mem_params = Mem.Params.icelake_like;
    memory_words = 1 lsl 22 (* 4 M words = 32 MiB *);
    rob_entries = 352;
    lq_entries = 128;
    sq_entries = 72;
    frontend = Htm;
    policy = Requester_wins;
    max_retries = 4;
    xbegin_cost = 12;
    xend_cost = 12;
    abort_penalty = 30;
    spin_cycles = 60;
    clear_enabled = false;
    ert_entries = 16;
    alt_capacity = 32;
    crt_entries = 64;
    crt_ways = 8;
    failed_mode_discovery = true;
    use_crt = true;
    crt_decay = true;
    think_cycles = 150;
    ops_per_thread = 400;
    seed = 42;
    sched = Sched.Profile.symmetric;
    openloop = None;
    fault_blind_line = None;
    fault_numa_blind = false;
  }

let baseline = default

let power_tm = { default with policy = Power_tm }

let clear_rw = { default with clear_enabled = true }

let clear_power = { default with policy = Power_tm; clear_enabled = true }

let with_frontend t f = { t with frontend = f }

let preset_letter t =
  match (t.policy, t.clear_enabled) with
  | Requester_wins, false -> "B"
  | Power_tm, false -> "P"
  | Requester_wins, true -> "C"
  | Power_tm, true -> "W"

let with_retries t n = { t with max_retries = n }

let with_cores t n = { t with cores = n }

let with_seed t s = { t with seed = s }

let with_openloop t q =
  (match q with
  | None -> ()
  | Some q ->
      if q.open_rate <= 0.0 then invalid_arg "Config.with_openloop: open_rate must be positive";
      if q.open_requests <= 0 then
        invalid_arg "Config.with_openloop: open_requests must be positive";
      if q.open_queue_cap < 0 then
        invalid_arg "Config.with_openloop: open_queue_cap must be non-negative";
      match q.open_process with
      | Open_poisson -> ()
      | Open_burst { heat } ->
          if heat < 0.0 then invalid_arg "Config.with_openloop: negative burst heat");
  { t with openloop = q }

let open_process_name = function
  | Open_poisson -> "poisson"
  | Open_burst { heat } -> Printf.sprintf "burst(h%.1f)" heat

let with_sched t p =
  (match Sched.Profile.validate p with
  | [] -> ()
  | problems ->
      invalid_arg
        (Printf.sprintf "Config.with_sched: invalid profile %S: %s" p.Sched.Profile.name
           (String.concat "; " problems)));
  { t with sched = p }

let policy_name = function Requester_wins -> "requester-wins" | Power_tm -> "PowerTM"

let pp ppf t =
  let p = t.mem_params in
  Format.fprintf ppf
    "@[<v>Core      | %d-core out-of-order Icelake-like. ROB: %d uops; LQ: %d entries; SQ: %d entries@,\
     L1 Cache  | Data: %d sets x %d ways (48KiB), %d-cycle access latency@,\
     L2 Cache  | %d sets x %d ways (512KiB), %d-cycle access latency@,\
     L3 Cache  | %d sets x %d ways (4MiB), %d-cycle access latency@,\
     Memory    | %d-cycle access latency@,\
     Coherence | MESI directory, %d sets; %d-cycle message hop@,\
     HTM       | %s, %s%s; %d retries before taking the fallback lock@]"
    t.cores t.rob_entries t.lq_entries t.sq_entries p.Mem.Params.l1_sets p.Mem.Params.l1_ways
    p.Mem.Params.l1_hit p.Mem.Params.l2_sets p.Mem.Params.l2_ways p.Mem.Params.l2_hit
    p.Mem.Params.l3_sets p.Mem.Params.l3_ways p.Mem.Params.l3_hit p.Mem.Params.memory
    p.Mem.Params.dir_sets p.Mem.Params.coherence_msg (policy_name t.policy)
    (match t.frontend with Htm -> "out-of-core (HTM)" | Sle -> "in-core (SLE)")
    (if t.clear_enabled then " + CLEAR" else "")
    t.max_retries
