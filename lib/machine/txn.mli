(** Per-core transactional state: read/write sets and the speculative store
    buffer.

    Speculative stores never reach the backing store; they live here at word
    granularity and drain at commit. Loads forward from the buffer. The
    read/write sets are line-granular, mirroring the L1-based tracking of the
    paper's TSX-like baseline. *)

type t

val create : unit -> t

val reset : t -> unit

val active : t -> bool

val start : t -> unit

val read_line : t -> Mem.Addr.line -> unit
(** Add to the read set. *)

val write_line : t -> Mem.Addr.line -> unit

val in_read_set : t -> Mem.Addr.line -> bool

val in_write_set : t -> Mem.Addr.line -> bool

val in_either_set : t -> Mem.Addr.line -> bool

val read_set : t -> Mem.Addr.line list

val write_set : t -> Mem.Addr.line list

val iter_lines : t -> (Mem.Addr.line -> unit) -> unit
(** Visit every line of the read set then of the write set, without
    allocating; lines in both sets are visited twice, so the callback must
    be idempotent (conflict-map withdrawal is). *)

val footprint : t -> Mem.Addr.line list
(** Union of read and write sets, sorted. *)

val footprint_size : t -> int

val buffer_store : t -> Mem.Addr.t -> int -> unit

val forwarded : t -> Mem.Addr.t -> int option
(** Value a load should see if the address was speculatively written. *)

val store_count : t -> int
(** Dynamic stores buffered (SQ occupancy in failed mode). *)

val drain : t -> Mem.Store.t -> int
(** Write the buffer to memory in program order; returns the number of words
    written. Does not reset the sets. *)

val power : t -> bool

val set_power : t -> bool -> unit
