(** Workload interface: what a benchmark provides to the simulator.

    A workload owns a static set of atomic regions (mini-ISA bodies), a
    one-time memory initialiser and a per-thread driver. The driver models
    the code outside atomic regions: it picks the next operation and computes
    the AR's initial registers (indices, pointers, operand values). Driver
    work is charged as think time, not simulated instruction by
    instruction — the paper's region of interest is the parallel phase, whose
    behaviour is dominated by the ARs. *)

type op = {
  ar : Isa.Program.ar;
  init_regs : (Isa.Instr.reg * int) list;
      (** architectural registers live at AR entry; identical on retries *)
  extra_think : int;  (** additional pre-AR cycles beyond the configured
                          think time *)
  lock_id : int;
      (** the mutex protecting this critical section. Ignored by the HTM
          front-end (one global fallback lock); under SLE the fallback path
          acquires exactly this lock, so independent regions (e.g. different
          hash buckets) serialize independently *)
}

type driver = unit -> op
(** Called once per operation; may keep per-thread state in its closure. *)

type t = {
  name : string;
  description : string;
  ars : Isa.Program.ar list;  (** every static AR, for Table 1 *)
  memory_words : int;  (** backing-store size this workload needs *)
  setup : Mem.Store.t -> Simrt.Rng.t -> unit;
      (** initialise shared data structures before threads start *)
  make_driver : tid:int -> threads:int -> Mem.Store.t -> Simrt.Rng.t -> driver;
  pure_driver : bool;
      (** the driver closures returned by [make_driver] never read or write
          the store (they only consume their RNG and private cursors), so
          issuing an op early cannot observe another core's effects. The
          PDES engine's next-op insulation arm requires this; declare
          [false] whenever the driver inspects shared memory (labyrinth). *)
}

val op : ?extra_think:int -> ?lock_id:int -> Isa.Program.ar -> (Isa.Instr.reg * int) list -> op
(** [lock_id] defaults to 0, a single workload-wide mutex. *)

val find_ar : t -> string -> Isa.Program.ar
(** Look up a static AR by name; raises [Not_found]. *)
