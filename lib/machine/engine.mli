(** The simulated multicore: event loop, HTM semantics and CLEAR modes.

    One engine simulates one run: [cores] threads each executing
    [ops_per_thread] operations of a workload. Per-core clocks advance
    through a global event heap at instruction granularity; everything is
    deterministic given the configuration seed.

    Execution of one atomic region follows the paper:

    - attempt 0 runs speculatively and, under CLEAR, doubles as discovery
      (footprint into the ALT, indirection bits, SQ pressure);
    - on a conflict the discovery continues in failed mode to the region's
      end, then the decision tree picks NS-CL, S-CL or a plain retry;
    - NS-CL/S-CL read-lock the fallback lock and acquire cacheline locks in
      lexicographical (directory-set) order; requests reaching a remotely
      locked line follow the deadlock-avoidance protocol of paper Figures 5
      and 6 — plain speculative requesters stall and re-issue, S-CL
      requesters (which hold locks) are nacked and abort;
    - after [max_retries] counted retries the fallback path takes the
      fallback lock exclusively (the single global lock under HTM, the
      region's own mutex under SLE).

    When the configuration carries an {!Config.open_queue}, the fixed
    per-core op count is replaced by the open-system frontend: an idle core
    pulls the next queued request ({!Openq}), parks until the next arrival
    when the backlog is empty, and finishes once the arrival schedule is
    exhausted. Closed-loop configurations are untouched bit-for-bit. *)

type t

val create : ?trace:Trace.t -> ?check:Check.Collector.t -> Config.t -> Workload.t -> t
(** Builds the machine, allocates the backing store and runs the workload's
    [setup]. When [trace] is given, per-core lifecycle events are recorded
    into it. When [check] is given, the engine captures the material the
    execution oracle needs: the initial memory snapshot, one
    {!Check.Witness.t} per committed attempt (read/write footprint with
    first-access cycles plus the drained store log — O(footprint) per
    commit), non-transactional driver writes, and the complete lock/release
    event stream. Capture has no effect on simulated behaviour: results are
    bit-identical with and without it. *)

val run : ?max_cycles:int -> ?pdes:Pdes.t -> t -> Stats.t
(** Simulate until every thread finished its operations. Raises [Failure] if
    [max_cycles] (default 4e9) elapse first — a livelock guard, not an
    expected outcome. The returned statistics include the total cycle count
    of the parallel phase.

    With [?pdes] the windowed conservative PDES driver (DESIGN.md §12)
    replaces the global event loop: cores drain private event bursts bounded
    by conservative interaction bounds derived from static footprints
    ({!Staticcheck.Footprint}) with dynamic next-event times as the
    fallback. Output is bit-identical to the sequential driver for every
    window size — the option trades scheduling overhead, never accuracy. *)

val store : t -> Mem.Store.t
(** The backing store, for post-run invariant checks in tests. *)

val perfctr : t -> Simrt.Perfctr.t
(** Hot-path performance counters accumulated by {!run}. Engine-internal
    instrumentation only — never part of the simulated statistics, so reading
    (or ignoring) them cannot affect simulation output. *)

val openq : t -> Openq.t option
(** The open-system request queue, present iff the configuration set
    [openloop]. After {!run} it holds the full per-request lifecycle
    (arrival/dispatch/commit stamps) the latency reporter reads. *)

val run_workload : ?pdes:Pdes.t -> Config.t -> Workload.t -> Stats.t
(** [create] + [run]. *)
