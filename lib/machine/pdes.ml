type t = { window : int }

let unbounded = { window = max_int }

let windowed n = { window = max 1 n }

let describe t = if t.window = max_int then "pdes(window=inf)" else Printf.sprintf "pdes(window=%d)" t.window
