(** The scheduler-scenario registry.

    Each scenario is a named {!Profile.t} capturing one contention shape the
    symmetric machine cannot express: a pinned hot core, heavy-tailed think
    skew, a two-socket latency split, or phased thread arrival. The registry
    backs [clear_sim sched], the [--sched] flag on suite/bench runs, and the
    golden-fingerprint tables in [test/test_sched.ml]. *)

val symmetric : Profile.t
(** {!Profile.symmetric}: the baseline every other scenario is compared to. *)

val hot_core : Profile.t
(** One core pinned hot: near-zero think and twice the operations, so it
    collides with everyone and stresses the bounded-retry path. *)

val skewed_think : Profile.t
(** All cores draw think times from a heavy-tailed burst distribution:
    long quiet gaps punctuated by tight op bursts. *)

val numa2x : Profile.t
(** Two sockets; remote-slice accesses pay a 2x-ish latency adder, widening
    conflict windows for the far socket. *)

val phased_start : Profile.t
(** Cores arrive staggered by a fixed stride, so contention builds up as a
    wave instead of a stampede. *)

val all : (string * Profile.t) list
(** Every scenario, baseline first, in presentation order. *)

val names : string list

val find : string -> Profile.t option
(** Lookup by name, e.g. [find "numa2x"]. *)

val find_exn : string -> Profile.t
(** Like {!find} but raises [Invalid_argument] listing valid names. *)
