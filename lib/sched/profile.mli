(** Per-core schedule profiles: the machine's contention shape.

    The paper evaluates CLEAR on symmetric cores with one global
    [think_cycles]; a profile generalises that axis — per-core think-time
    distributions, start-phase offsets, hot-core operation multipliers, and
    a socket latency-asymmetry matrix ({!Mem.Numa}) — while staying pure
    data: a profile contains no closures, so it Marshals (suite-cache
    digests) and compares structurally.

    Determinism contract: every sampling function draws a fixed number of
    values from the caller's {!Simrt.Rng} stream per call (at most one), so
    two runs with equal (config, workload, seed) remain bit-identical
    regardless of job count or cache state. [Default] reproduces the
    pre-profile engine pacing draw-for-draw: the {!symmetric} profile is
    guaranteed to leave every historical golden fingerprint unchanged. *)

type think_dist =
  | Default
      (** the legacy pacing: [base + U[0, base/2]] cycles, where [base] is
          the configuration's [think_cycles] *)
  | Const of int  (** exactly this many cycles, no draw *)
  | Uniform of { lo : int; hi : int }  (** [U[lo, hi]], inclusive *)
  | Burst of { lo : int; hi : int; heat : float }
      (** pareto-ish: mass concentrates at [lo] with a heavy tail towards
          [hi]; larger [heat] skews harder. Samples are clamped to
          [[lo, hi]] so bounds stay exact. *)

type t = {
  name : string;
  description : string;
  think : think_dist;  (** pacing for cores not designated hot *)
  hot_cores : int;  (** the first [hot_cores] cores are "hot" *)
  hot_think : think_dist;  (** pacing for hot cores *)
  hot_op_mult : int;  (** hot cores run [hot_op_mult * ops_per_thread] ops *)
  phase_stride : int;  (** core [i]'s first op is delayed by [i * stride] *)
  numa : Mem.Numa.t;  (** socket latency asymmetry; {!Mem.Numa.flat} = none *)
}

val symmetric : t
(** The identity profile: [Default] pacing everywhere, no hot cores, no
    phase stagger, flat latency. Running under [symmetric] is bit-identical
    to the engine before profiles existed. *)

val is_symmetric : t -> bool
(** Structural check that a profile cannot perturb the symmetric machine
    (all-[Default] pacing, multiplier 1, zero stride, flat matrix). *)

val is_hot : t -> core:int -> bool

val think_for : t -> core:int -> think_dist

val sample_dist : think_dist -> base:int -> Simrt.Rng.t -> int
(** One draw from a distribution directly (at most one value from [rng]).
    [base] only matters for [Default]. This is the sampling kernel behind
    {!sample_think}; the open-system traffic generator reuses the [Burst]
    inverse-power case for bursty interarrival times. *)

val sample_think : t -> core:int -> base:int -> Simrt.Rng.t -> int
(** One op's think time for [core], excluding the workload's per-op
    [extra_think] (the engine adds that separately). Draws at most one
    value from [rng]. *)

val think_bounds : t -> core:int -> base:int -> int * int
(** Inclusive [(min, max)] envelope of {!sample_think} for this core: every
    sample lies within it, for every seed. *)

val start_offset : t -> core:int -> base:int -> Simrt.Rng.t -> int
(** When [core]'s first op becomes runnable:
    [phase_stride * core + U[0, base]]. The uniform jitter term is the
    legacy warm-up draw, kept for all profiles so the symmetric case stays
    bit-identical. Draws exactly one value from [rng]. *)

val ops_for : t -> core:int -> base:int -> int
(** The number of operations [core] runs: [base] ([ops_per_thread]) times
    the hot multiplier when the core is hot. *)

val total_ops : t -> cores:int -> base:int -> int
(** Sum of {!ops_for} over all cores — the run's expected commit count. *)

val validate : t -> string list
(** Structural problems, empty when the profile is usable: negative or
    inverted distribution bounds, negative heat, [hot_cores < 0],
    [hot_op_mult < 1], negative stride, or a malformed NUMA matrix. *)

val dist_name : think_dist -> string
(** Short human form, e.g. ["const(20)"], ["burst(30..600,h1.5)"]. *)

val pp : Format.formatter -> t -> unit
