let symmetric = Profile.symmetric

let hot_core =
  {
    Profile.name = "hot_core";
    description = "one pinned core with near-zero think and 2x the ops";
    think = Profile.Default;
    hot_cores = 1;
    hot_think = Profile.Const 20;
    hot_op_mult = 2;
    phase_stride = 0;
    numa = Mem.Numa.flat;
  }

let skewed_think =
  {
    Profile.name = "skewed_think";
    description = "heavy-tailed think on every core: bursts then silence";
    think = Profile.Burst { lo = 30; hi = 600; heat = 1.5 };
    hot_cores = 0;
    hot_think = Profile.Default;
    hot_op_mult = 1;
    phase_stride = 0;
    numa = Mem.Numa.flat;
  }

let numa2x =
  {
    Profile.name = "numa2x";
    description = "two sockets; remote-slice accesses pay a +60-cycle adder";
    think = Profile.Default;
    hot_cores = 0;
    hot_think = Profile.Default;
    hot_op_mult = 1;
    phase_stride = 0;
    numa = Mem.Numa.two_socket ~remote:60;
  }

let phased_start =
  {
    Profile.name = "phased_start";
    description = "cores start in a 400-cycle-stride wave, not a stampede";
    think = Profile.Default;
    hot_cores = 0;
    hot_think = Profile.Default;
    hot_op_mult = 1;
    phase_stride = 400;
    numa = Mem.Numa.flat;
  }

let all =
  [
    ("symmetric", symmetric);
    ("hot_core", hot_core);
    ("skewed_think", skewed_think);
    ("numa2x", numa2x);
    ("phased_start", phased_start);
  ]

let names = List.map fst all

let find name = List.assoc_opt name all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "unknown sched scenario %S (valid: %s)" name (String.concat ", " names))
