module Rng = Simrt.Rng

type think_dist =
  | Default
  | Const of int
  | Uniform of { lo : int; hi : int }
  | Burst of { lo : int; hi : int; heat : float }

type t = {
  name : string;
  description : string;
  think : think_dist;
  hot_cores : int;
  hot_think : think_dist;
  hot_op_mult : int;
  phase_stride : int;
  numa : Mem.Numa.t;
}

let symmetric =
  {
    name = "symmetric";
    description = "uniform cores, legacy pacing (the paper's machine)";
    think = Default;
    hot_cores = 0;
    hot_think = Default;
    hot_op_mult = 1;
    phase_stride = 0;
    numa = Mem.Numa.flat;
  }

let is_symmetric t =
  t.think = Default && t.hot_cores = 0 && t.hot_op_mult = 1 && t.phase_stride = 0
  && Mem.Numa.is_flat t.numa

let is_hot t ~core = core < t.hot_cores

let think_for t ~core = if is_hot t ~core then t.hot_think else t.think

let sample_dist dist ~base rng =
  match dist with
  | Default -> base + Rng.int rng (1 + (base / 2))
  | Const c -> c
  | Uniform { lo; hi } -> Rng.int_in rng lo hi
  | Burst { lo; hi; heat } ->
      (* Inverse-power sampling (same trick as Rng.zipf): u^(1+heat) piles
         mass near 0, so most thinks sit at [lo] with occasional long
         pauses towards [hi]. Clamped so the declared bounds are exact. *)
      let u = Rng.float rng 1.0 in
      let span = float_of_int (hi - lo + 1) in
      let x = lo + int_of_float (span *. (u ** (1.0 +. heat))) in
      if x > hi then hi else if x < lo then lo else x

let dist_bounds dist ~base =
  match dist with
  | Default -> (base, base + (base / 2))
  | Const c -> (c, c)
  | Uniform { lo; hi } | Burst { lo; hi; _ } -> (lo, hi)

let sample_think t ~core ~base rng = sample_dist (think_for t ~core) ~base rng

let think_bounds t ~core ~base = dist_bounds (think_for t ~core) ~base

let start_offset t ~core ~base rng = (t.phase_stride * core) + Rng.int rng (base + 1)

let ops_for t ~core ~base = if is_hot t ~core then base * t.hot_op_mult else base

let total_ops t ~cores ~base =
  let n = ref 0 in
  for core = 0 to cores - 1 do
    n := !n + ops_for t ~core ~base
  done;
  !n

let dist_problems label = function
  | Default -> []
  | Const c -> if c < 0 then [ label ^ ": negative constant think" ] else []
  | Uniform { lo; hi } ->
      if lo < 0 then [ label ^ ": negative lower bound" ]
      else if lo > hi then [ label ^ ": inverted bounds" ]
      else []
  | Burst { lo; hi; heat } ->
      (if lo < 0 then [ label ^ ": negative lower bound" ]
       else if lo > hi then [ label ^ ": inverted bounds" ]
       else [])
      @ if heat < 0.0 then [ label ^ ": negative heat" ] else []

let validate t =
  dist_problems "think" t.think
  @ dist_problems "hot_think" t.hot_think
  @ (if t.hot_cores < 0 then [ "hot_cores: negative" ] else [])
  @ (if t.hot_op_mult < 1 then [ "hot_op_mult: must be >= 1" ] else [])
  @ (if t.phase_stride < 0 then [ "phase_stride: negative" ] else [])
  @ if Mem.Numa.well_formed t.numa then [] else [ "numa: malformed matrix" ]

let dist_name = function
  | Default -> "default"
  | Const c -> Printf.sprintf "const(%d)" c
  | Uniform { lo; hi } -> Printf.sprintf "uniform(%d..%d)" lo hi
  | Burst { lo; hi; heat } -> Printf.sprintf "burst(%d..%d,h%.1f)" lo hi heat

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %s@,think %s%s; stride %d; sockets %d%s@]" t.name t.description
    (dist_name t.think)
    (if t.hot_cores > 0 then
       Printf.sprintf "; %d hot core(s) think %s x%d ops" t.hot_cores (dist_name t.hot_think)
         t.hot_op_mult
     else "")
    t.phase_stride t.numa.Mem.Numa.sockets
    (if Mem.Numa.is_flat t.numa then "" else " (asymmetric)")
