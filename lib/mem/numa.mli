(** Socket-level latency asymmetry ("NUMA-ish" in ROADMAP's words).

    Cores are partitioned into [sockets] contiguous groups and every
    directory slice (hence every cache line) has a home socket. An access
    that leaves the requester's private caches — a coherence transfer, an
    L3/memory fill, or a cacheline-lock acquisition — consults the line's
    home slice and is charged [adders.(requester socket).(home socket)]
    extra cycles on top of the symmetric hierarchy latency. The diagonal is
    zero, so a 1-socket matrix reproduces the symmetric machine exactly.

    The matrix is pure data (Marshal-safe): it travels inside
    [Machine.Config] and therefore participates in the suite-cache digest. *)

type t = {
  sockets : int;  (** >= 1 *)
  adders : int array array;
      (** [sockets x sockets]; [adders.(i).(j)] is the extra latency a core
          of socket [i] pays to reach a line homed on socket [j]. Zero
          diagonal, non-negative, symmetric. *)
}

val flat : t
(** One socket, zero adder: the symmetric machine. *)

val two_socket : remote:int -> t
(** Two sockets whose cross-socket accesses each pay [remote] extra
    cycles. *)

val well_formed : t -> bool
(** Square [sockets x sockets] matrix, [sockets >= 1], zero diagonal,
    non-negative entries, and symmetric ([adders.(i).(j) = adders.(j).(i)]).
    Every matrix accepted by {!Hierarchy.create} must satisfy this. *)

val socket_of_core : t -> cores:int -> int -> int
(** Contiguous block partition: with [cores] total cores, core [c] belongs
    to socket [c * sockets / cores] (the last socket absorbs any
    remainder). With [cores < sockets] every core gets its own socket. *)

val home_of_dir_set : t -> dir_set:int -> int
(** The home socket of a directory slice: [dir_set mod sockets], so
    consecutive slices interleave across sockets. *)

val adder : t -> cores:int -> core:int -> dir_set:int -> int
(** The extra cycles [core] pays to reach a line of slice [dir_set]. Zero
    whenever requester and home sockets coincide (and always zero for
    {!flat}). *)

val is_flat : t -> bool
(** True when no (core, slice) pair can ever be charged: a single socket or
    an all-zero matrix. *)
