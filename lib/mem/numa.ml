type t = { sockets : int; adders : int array array }

let flat = { sockets = 1; adders = [| [| 0 |] |] }

let two_socket ~remote =
  { sockets = 2; adders = [| [| 0; remote |]; [| remote; 0 |] |] }

let well_formed t =
  t.sockets >= 1
  && Array.length t.adders = t.sockets
  && Array.for_all (fun row -> Array.length row = t.sockets) t.adders
  && begin
       let ok = ref true in
       for i = 0 to t.sockets - 1 do
         for j = 0 to t.sockets - 1 do
           if t.adders.(i).(j) < 0 then ok := false;
           if i = j && t.adders.(i).(j) <> 0 then ok := false;
           if t.adders.(i).(j) <> t.adders.(j).(i) then ok := false
         done
       done;
       !ok
     end

let socket_of_core t ~cores core =
  if t.sockets = 1 then 0
  else if cores <= t.sockets then core mod t.sockets
  else min (t.sockets - 1) (core * t.sockets / cores)

let home_of_dir_set t ~dir_set = dir_set mod t.sockets

let adder t ~cores ~core ~dir_set =
  if t.sockets = 1 then 0
  else t.adders.(socket_of_core t ~cores core).(home_of_dir_set t ~dir_set)

let is_flat t =
  t.sockets = 1 || Array.for_all (fun row -> Array.for_all (fun a -> a = 0) row) t.adders
