(** Three-level cache hierarchy glued to the MESI directory.

    Private L1/L2 per core, shared L3, all tag-only (data lives in the
    backing {!Store}). Accesses return the latency to charge and the lines the
    access evicted from the requesting core's L1 — the machine uses the latter
    for HTM capacity aborts. Lines locked by the requesting core hit with L1
    latency regardless of tag state (locked lines are pinned). *)

type t

type outcome = {
  latency : int;  (** cycles to charge the requesting instruction *)
  l1_evicted : Addr.line list;
      (** lines this access pushed out of the requester's L1 *)
}

val create :
  ?numa:Numa.t -> Params.t -> cores:int -> store:Store.t -> counters:Simrt.Counter.set -> t
(** [numa] (default {!Numa.flat}) adds per-(core socket, home slice) latency
    on every access that consults the directory beyond a private L1 hit:
    coherence exchanges, L3/memory fills, and cacheline-lock acquisitions.
    Charged cycles accumulate in the ["numa_adder_cycles"] counter. Raises
    [Invalid_argument] when the matrix is not {!Numa.well_formed}. *)

val params : t -> Params.t

val numa : t -> Numa.t

val numa_adder : t -> core:int -> Addr.line -> int
(** The asymmetry cycles [core] would pay to consult [line]'s home directory
    slice; zero on a flat matrix. Pure query — charges nothing. *)

val store : t -> Store.t

val directory : t -> Directory.t

val l1 : t -> core:int -> Cache.t

val l2 : t -> core:int -> Cache.t

val l3_set_of : t -> Addr.line -> int
(** The shared-L3 set index [line] maps to. Pure query: the PDES engine uses
    it to prove two cores' footprints cannot perturb each other's L3
    replacement state inside a lookahead window. *)

val read_line : t -> core:int -> Addr.line -> outcome
(** Obtain a shared copy of the line for [core]. *)

val write_line : t -> core:int -> Addr.line -> outcome
(** Obtain an exclusive copy for [core], invalidating remote copies. *)

val lock_line : t -> core:int -> Addr.line -> [ `Acquired of outcome | `Held_by of int ]
(** Attempt to lock a line (exclusive + pinned). Fails without side effects
    when another core holds the lock. *)

val unlock_line : t -> core:int -> Addr.line -> unit

val unlock_all : t -> core:int -> int
(** Bulk-unlock every line held by [core]; returns the number released. *)

val locked_by : t -> Addr.line -> int option

val locked_lines : t -> core:int -> Addr.line list
(** Every line currently locked by [core] (release tracing and oracles). *)

val flush_core : t -> core:int -> unit
(** Drop all of [core]'s private-cache contents (used by tests). *)
