module Counter = Simrt.Counter

type t = {
  params : Params.t;
  store : Store.t;
  directory : Directory.t;
  l1s : Cache.t array;
  l2s : Cache.t array;
  l3 : Cache.t;
  counters : Counter.set;
  numa : Numa.t;
  cores : int;
}

type outcome = { latency : int; l1_evicted : Addr.line list }

let create ?(numa = Numa.flat) params ~cores ~store ~counters =
  if not (Numa.well_formed numa) then invalid_arg "Hierarchy.create: malformed NUMA matrix";
  {
    params;
    store;
    directory = Directory.create ~cores;
    l1s = Array.init cores (fun _ -> Cache.create ~sets:params.Params.l1_sets ~ways:params.Params.l1_ways);
    l2s = Array.init cores (fun _ -> Cache.create ~sets:params.Params.l2_sets ~ways:params.Params.l2_ways);
    l3 = Cache.create ~sets:params.Params.l3_sets ~ways:params.Params.l3_ways;
    counters;
    numa;
    cores;
  }

let params t = t.params

let store t = t.store

let directory t = t.directory

let l1 t ~core = t.l1s.(core)

let l2 t ~core = t.l2s.(core)

let l3_set_of t line = line land (Cache.sets t.l3 - 1)

let locked_by t line = Directory.locked_by t.directory line

let numa t = t.numa

(* The extra cycles [core] pays to consult [line]'s home directory slice.
   Zero on the symmetric machine ([Numa.flat]); charged only when an access
   actually leaves the private caches, so L1 hits stay socket-blind. *)
let numa_adder t ~core line =
  Numa.adder t.numa ~cores:t.cores ~core ~dir_set:(Params.dir_set_of t.params line)

let charge_numa t n =
  if n > 0 then Counter.add t.counters "numa_adder_cycles" n;
  n

(* Install [line] in [core]'s private caches, spilling L1 victims into L2 and
   dropping L2 victims from the directory when they are no longer cached
   privately. Returns the L1 victims. *)
let install_private t ~core line =
  let l1 = t.l1s.(core) and l2 = t.l2s.(core) in
  let evicted = ref [] in
  (match Cache.insert l1 line with
  | None -> ()
  | Some victim ->
      evicted := [ victim ];
      (match Cache.insert l2 victim with
      | None -> ()
      | Some l2_victim ->
          if not (Cache.mem l1 l2_victim) then Directory.drop_core t.directory ~core l2_victim));
  ignore (Cache.insert l2 line : Addr.line option);
  !evicted

let charge_coherence t (coh : Directory.coherence) =
  Counter.add t.counters "coh_msgs" coh.msgs;
  if coh.from_remote then Counter.incr t.counters "remote_transfer";
  (coh.msgs * t.params.Params.coherence_msg / 4)
  + if coh.from_remote then t.params.Params.remote_transfer else 0

let invalidate_remote t line cores =
  List.iter
    (fun c ->
      ignore (Cache.invalidate t.l1s.(c) line : bool);
      ignore (Cache.invalidate t.l2s.(c) line : bool))
    cores

let access t ~core line ~exclusive =
  let p = t.params in
  if locked_by t line = Some core then begin
    (* Pinned by our own cacheline lock: guaranteed L1-latency hit. *)
    Counter.incr t.counters "l1_hit";
    { latency = Params.load_latency p ~level:`L1; l1_evicted = [] }
  end
  else begin
    let dir = t.directory in
    let coh, invalidated =
      if exclusive then Directory.write dir ~core line
      else (Directory.read dir ~core line, [])
    in
    invalidate_remote t line invalidated;
    let coh_latency = charge_coherence t coh in
    let numa = numa_adder t ~core line in
    let l1 = t.l1s.(core) and l2 = t.l2s.(core) in
    (* An exclusive access that had to invalidate other copies pays the
       coherence round-trip even if its own tags hit. *)
    if Cache.touch l1 line && coh.msgs = 0 then begin
      Counter.incr t.counters "l1_hit";
      { latency = Params.load_latency p ~level:`L1; l1_evicted = [] }
    end
    else if Cache.touch l2 line && not coh.from_remote then begin
      Counter.incr t.counters "l2_hit";
      (* Private hit, but any coherence exchange went through the line's
         home slice — cross-socket requesters pay the asymmetry adder. *)
      let remote = if coh.msgs > 0 then charge_numa t numa else 0 in
      let evicted = install_private t ~core line in
      { latency = Params.load_latency p ~level:`L2 + coh_latency + remote; l1_evicted = evicted }
    end
    else begin
      let level =
        if coh.from_remote then begin
          Counter.incr t.counters "l3_hit";
          `L3
        end
        else if Cache.touch t.l3 line then begin
          Counter.incr t.counters "l3_hit";
          `L3
        end
        else begin
          Counter.incr t.counters "mem_access";
          `Mem
        end
      in
      ignore (Cache.insert t.l3 line : Addr.line option);
      let evicted = install_private t ~core line in
      (* Fills beyond the private caches are serviced via the home slice:
         always charge the asymmetry adder on this path. *)
      { latency = Params.load_latency p ~level + coh_latency + charge_numa t numa;
        l1_evicted = evicted }
    end
  end

let read_line t ~core line =
  match locked_by t line with
  | Some holder when holder <> core ->
      (* Callers must check the lock first; reading through a remote lock
         would violate atomicity. *)
      invalid_arg "Hierarchy.read_line: line locked by another core"
  | Some _ | None -> access t ~core line ~exclusive:false

let write_line t ~core line =
  match locked_by t line with
  | Some holder when holder <> core -> invalid_arg "Hierarchy.write_line: line locked by another core"
  | Some _ | None -> access t ~core line ~exclusive:true

let lock_line t ~core line =
  match Directory.lock t.directory ~core line with
  | `Held_by holder -> `Held_by holder
  | `Acquired invalidated ->
      invalidate_remote t line invalidated;
      Counter.incr t.counters "line_locks";
      Counter.add t.counters "coh_msgs" 2;
      let evicted = install_private t ~core line in
      let transfer = if invalidated <> [] then t.params.Params.remote_transfer else 0 in
      (* Lock acquisition always talks to the home slice. *)
      let remote = charge_numa t (numa_adder t ~core line) in
      `Acquired { latency = t.params.Params.coherence_msg + transfer + remote; l1_evicted = evicted }

let unlock_line t ~core line = Directory.unlock t.directory ~core line

let locked_lines t ~core = Directory.locked_lines t.directory ~core

let unlock_all t ~core =
  let lines = Directory.locked_lines t.directory ~core in
  Directory.unlock_all t.directory ~core;
  Counter.add t.counters "coh_msgs" (if lines = [] then 0 else 1);
  List.length lines

let flush_core t ~core =
  Cache.iter t.l1s.(core) (fun line -> Directory.drop_core t.directory ~core line);
  Cache.iter t.l2s.(core) (fun line -> Directory.drop_core t.directory ~core line);
  Cache.clear t.l1s.(core);
  Cache.clear t.l2s.(core)
