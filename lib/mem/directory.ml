type entry = {
  mutable owner : int; (* core holding M/E, -1 if none *)
  mutable sharers : int; (* bitmask of cores with S copies (excludes owner) *)
  mutable locked_by : int; (* -1 if unlocked *)
}

type t = { cores : int; entries : (Addr.line, entry) Hashtbl.t; locked : (int, (Addr.line, unit) Hashtbl.t) Hashtbl.t }

type coherence = { msgs : int; from_remote : bool }

let create ~cores =
  if cores <= 0 || cores > 62 then invalid_arg "Directory.create: cores must be in [1, 62]";
  { cores; entries = Hashtbl.create 4096; locked = Hashtbl.create 16 }

let cores t = t.cores

let entry t line =
  match Hashtbl.find_opt t.entries line with
  | Some e -> e
  | None ->
      let e = { owner = -1; sharers = 0; locked_by = -1 } in
      Hashtbl.add t.entries line e;
      e

let bit core = 1 lsl core

let read t ~core line =
  let e = entry t line in
  if e.owner = core then { msgs = 0; from_remote = false }
  else if e.sharers land bit core <> 0 then { msgs = 0; from_remote = false }
  else if e.owner >= 0 then begin
    (* Downgrade the remote owner to a sharer; data forwarded core-to-core. *)
    e.sharers <- e.sharers lor bit e.owner lor bit core;
    e.owner <- -1;
    { msgs = 3; from_remote = true }
  end
  else begin
    e.sharers <- e.sharers lor bit core;
    { msgs = 2; from_remote = false }
  end

let write t ~core line =
  let e = entry t line in
  if e.owner = core && e.sharers = 0 then ({ msgs = 0; from_remote = false }, [])
  else begin
    let invalidated = ref [] in
    if e.owner >= 0 && e.owner <> core then invalidated := [ e.owner ];
    for c = t.cores - 1 downto 0 do
      if c <> core && e.sharers land bit c <> 0 then invalidated := c :: !invalidated
    done;
    let from_remote = e.owner >= 0 && e.owner <> core in
    let msgs = 2 + List.length !invalidated in
    e.owner <- core;
    e.sharers <- 0;
    ({ msgs; from_remote }, !invalidated)
  end

let drop_core t ~core line =
  match Hashtbl.find_opt t.entries line with
  | None -> ()
  | Some e ->
      if e.owner = core then e.owner <- -1;
      e.sharers <- e.sharers land lnot (bit core)

let owner t line =
  match Hashtbl.find_opt t.entries line with
  | Some e when e.owner >= 0 -> Some e.owner
  | Some _ | None -> None

let is_sharer t ~core line =
  match Hashtbl.find_opt t.entries line with
  | Some e -> e.owner = core || e.sharers land bit core <> 0
  | None -> false

let locked_table t core =
  match Hashtbl.find_opt t.locked core with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.add t.locked core tbl;
      tbl

let lock t ~core line =
  let e = entry t line in
  if e.locked_by = core then `Acquired []
  else if e.locked_by >= 0 then `Held_by e.locked_by
  else begin
    (* Locking implies exclusivity: steal ownership, drop other sharers. *)
    let _coh, invalidated = write t ~core line in
    e.locked_by <- core;
    Hashtbl.replace (locked_table t core) line ();
    `Acquired invalidated
  end

let unlock t ~core line =
  match Hashtbl.find_opt t.entries line with
  | Some e when e.locked_by = core ->
      e.locked_by <- -1;
      Hashtbl.remove (locked_table t core) line
  | Some _ | None -> ()

let locked_lines t ~core =
  match Hashtbl.find_opt t.locked core with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun line () acc -> line :: acc) tbl [] |> List.sort Int.compare

let unlock_all t ~core =
  match Hashtbl.find_opt t.locked core with
  | None -> ()
  | Some tbl ->
      Hashtbl.iter
        (fun line () ->
          match Hashtbl.find_opt t.entries line with
          | Some e when e.locked_by = core -> e.locked_by <- -1
          | Some _ | None -> ())
        tbl;
      Hashtbl.reset tbl

let locked_by t line =
  match Hashtbl.find_opt t.entries line with
  | Some e when e.locked_by >= 0 -> Some e.locked_by
  | Some _ | None -> None
