(** Flat backing store: the simulated machine's physical memory.

    One 63-bit OCaml int per 64-bit word. Workload values fit comfortably;
    addresses stored in memory (pointers) are plain word addresses. *)

type t

val create : words:int -> t
(** Zero-initialised memory of [words] words. *)

val size : t -> int

val read : t -> Addr.t -> int
(** Raises [Invalid_argument] when out of bounds. *)

val write : t -> Addr.t -> int -> unit

val fill : t -> Addr.t -> len:int -> int -> unit
(** [fill t a ~len v] writes [v] to [len] consecutive words from [a]. *)

val snapshot : t -> int array
(** Copy of the full memory image (execution-oracle capture). *)

val of_snapshot : int array -> t
(** Fresh store initialised from a snapshot (the array is copied). *)

val with_observer : t -> (Addr.t -> int -> unit) -> (unit -> 'a) -> 'a
(** [with_observer t f body] runs [body] with [f] invoked after every
    {!write} (including {!fill}), then restores the previous observer. Used
    by the execution oracle to witness non-transactional stores performed by
    workload drivers. *)
