(** Chunked backing store: the simulated machine's physical memory.

    One 63-bit OCaml int per 64-bit word. Workload values fit comfortably;
    addresses stored in memory (pointers) are plain word addresses.

    Memory is organised in 4096-word chunks shared copy-on-write: a fresh
    store aliases one global zero chunk everywhere, and {!snapshot} freezes
    the current chunks into an immutable {!image} in O(chunks) instead of
    copying the whole address space. Untouched chunks stay physically shared
    between a store, its snapshots and stores rebuilt from them, which makes
    snapshot/replay/compare in the execution oracle O(touched words). *)

type t

type image
(** Immutable memory image (cheap snapshot; chunks shared COW). *)

val create : words:int -> t
(** Zero-initialised memory of [words] words. O(words / 4096). *)

val size : t -> int

val read : t -> Addr.t -> int
(** Raises [Invalid_argument] when out of bounds. *)

val write : t -> Addr.t -> int -> unit

val fill : t -> Addr.t -> len:int -> int -> unit
(** [fill t a ~len v] writes [v] to [len] consecutive words from [a]. *)

val snapshot : t -> image
(** Freeze the current contents (execution-oracle capture). The store stays
    usable; later writes clone the affected chunk, never the image. *)

val of_snapshot : image -> t
(** Fresh store initialised from an image (chunks shared until written). *)

val image_words : image -> int

val image_read : image -> Addr.t -> int

val image_of_array : int array -> image
(** Materialise an image from a flat array (tests, hand-built histories). *)

val image_to_array : image -> int array

val image_diff : image -> image -> (Addr.t * int * int * int) option
(** [image_diff a b] is [None] when equal, otherwise
    [Some (first_addr, a_value, b_value, differing_words)]. Physically
    shared chunks are skipped without scanning. Raises [Invalid_argument]
    when the images differ in size. *)

val with_observer : t -> (Addr.t -> int -> unit) -> (unit -> 'a) -> 'a
(** [with_observer t f body] runs [body] with [f] invoked after every
    {!write} (including {!fill}), then restores the previous observer. Used
    by the execution oracle to witness non-transactional stores performed by
    workload drivers. *)
