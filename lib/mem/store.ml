(* The backing store is chunked with copy-on-write sharing. A fresh store
   points every chunk slot at one shared all-zero chunk, so creating a
   32 MiB store allocates a pointer table, not 32 MiB — simulations touch
   only their workload's working set, and the old flat [Array.make words 0]
   dominated the whole suite's wall time (page-faulting and zero-filling
   4 M words per simulation).

   [snapshot] freezes the store: it hands out the chunk table as an
   immutable [image] and marks every chunk shared, so both sides clone a
   chunk only when they next write it. Snapshots, replay stores and final
   images of the same run therefore share all untouched chunks physically,
   which [image_diff] exploits to compare runs in O(touched). *)

let chunk_shift = 12

let chunk_words = 1 lsl chunk_shift (* 4096 words = 32 KiB *)

let chunk_mask = chunk_words - 1

let zero_chunk = Array.make chunk_words 0

type t = {
  words : int;
  chunks : int array array;
  owned : Bytes.t; (* '\001' = privately owned, writable in place *)
  mutable observer : (int -> int -> unit) option;
}

type image = { i_words : int; i_chunks : int array array }

let nchunks words = (words + chunk_words - 1) lsr chunk_shift

let create ~words =
  {
    words;
    chunks = Array.make (nchunks words) zero_chunk;
    owned = Bytes.make (nchunks words) '\000';
    observer = None;
  }

let size t = t.words

let read t a =
  if a < 0 || a >= t.words then
    invalid_arg (Printf.sprintf "Store.read: address %d out of bounds" a);
  (Array.unsafe_get t.chunks (a lsr chunk_shift)).(a land chunk_mask)

let write t a v =
  if a < 0 || a >= t.words then
    invalid_arg (Printf.sprintf "Store.write: address %d out of bounds" a);
  let ci = a lsr chunk_shift in
  if Bytes.unsafe_get t.owned ci = '\000' then begin
    t.chunks.(ci) <- Array.copy t.chunks.(ci);
    Bytes.unsafe_set t.owned ci '\001'
  end;
  (Array.unsafe_get t.chunks ci).(a land chunk_mask) <- v;
  match t.observer with None -> () | Some f -> f a v

let fill t a ~len v =
  for i = a to a + len - 1 do
    write t i v
  done

let snapshot t =
  Bytes.fill t.owned 0 (Bytes.length t.owned) '\000';
  { i_words = t.words; i_chunks = Array.copy t.chunks }

let of_snapshot img =
  {
    words = img.i_words;
    chunks = Array.copy img.i_chunks;
    owned = Bytes.make (Array.length img.i_chunks) '\000';
    observer = None;
  }

let image_words img = img.i_words

let image_read img a =
  if a < 0 || a >= img.i_words then
    invalid_arg (Printf.sprintf "Store.image_read: address %d out of bounds" a);
  img.i_chunks.(a lsr chunk_shift).(a land chunk_mask)

let image_of_array arr =
  let words = Array.length arr in
  let chunks =
    Array.init (nchunks words) (fun ci ->
        let c = Array.make chunk_words 0 in
        let base = ci lsl chunk_shift in
        Array.blit arr base c 0 (min chunk_words (words - base));
        c)
  in
  { i_words = words; i_chunks = chunks }

let image_to_array img =
  Array.init img.i_words (fun a -> img.i_chunks.(a lsr chunk_shift).(a land chunk_mask))

(* First difference and total differing-word count between two equally sized
   images. Chunks that are physically shared (untouched since a common
   snapshot) are skipped without scanning. *)
let image_diff a b =
  if a.i_words <> b.i_words then invalid_arg "Store.image_diff: image sizes differ";
  let first = ref (-1) and a_val = ref 0 and b_val = ref 0 and differing = ref 0 in
  Array.iteri
    (fun ci ca ->
      let cb = b.i_chunks.(ci) in
      if ca != cb then begin
        let base = ci lsl chunk_shift in
        let limit = min chunk_words (a.i_words - base) in
        for i = 0 to limit - 1 do
          let va = Array.unsafe_get ca i and vb = Array.unsafe_get cb i in
          if va <> vb then begin
            incr differing;
            if !first < 0 then begin
              first := base + i;
              a_val := va;
              b_val := vb
            end
          end
        done
      end)
    a.i_chunks;
  if !differing = 0 then None else Some (!first, !a_val, !b_val, !differing)

let with_observer t f body =
  let saved = t.observer in
  t.observer <- Some f;
  Fun.protect ~finally:(fun () -> t.observer <- saved) body
