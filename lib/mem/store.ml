type t = { data : int array; mutable observer : (int -> int -> unit) option }

let create ~words = { data = Array.make words 0; observer = None }

let size t = Array.length t.data

let read t a =
  if a < 0 || a >= Array.length t.data then
    invalid_arg (Printf.sprintf "Store.read: address %d out of bounds" a);
  t.data.(a)

let write t a v =
  if a < 0 || a >= Array.length t.data then
    invalid_arg (Printf.sprintf "Store.write: address %d out of bounds" a);
  t.data.(a) <- v;
  match t.observer with None -> () | Some f -> f a v

let fill t a ~len v =
  for i = a to a + len - 1 do
    write t i v
  done

let snapshot t = Array.copy t.data

let of_snapshot arr = { data = Array.copy arr; observer = None }

let with_observer t f body =
  let saved = t.observer in
  t.observer <- Some f;
  Fun.protect ~finally:(fun () -> t.observer <- saved) body
