(** The latency-vs-offered-load sweep: a grid of configurations × load
    points, each an independent deterministic simulation.

    Determinism contract: the grid is enumerated in (config, sorted load)
    order and {!Simrt.Pool.parallel_map} preserves it, so the JSON emitted
    from the results is byte-identical at any job count. Nothing host- or
    time-dependent (wall clock, job count) enters {!to_json}. *)

type options = {
  workload : string;  (** registry name; scaled via {!Workloads.Registry.open_scaled} *)
  keys : int;  (** keyed-structure entries — size well past the L3 *)
  theta : float;  (** Zipf popularity skew *)
  loads : float list;  (** offered loads, requests per 1000 cycles *)
  requests : int;  (** requests per load point *)
  process : Machine.Config.open_process;
  queue_cap : int;  (** 0 = unbounded backlog *)
  configs : Machine.Config.t list;  (** base presets; seed/queue applied per point *)
  seed : int;
  jobs : int;
  check : bool;  (** oracle-check each config's lowest load point *)
  stream : bool;  (** run those checks online ({!Check.Stream}) *)
  pdes : Machine.Pdes.t option;
}

val default_options : options
(** arrayswap over 2^17 slots (8 MiB, twice the L3) at Zipf theta 6 —
    hot-headed enough that conflicts happen despite the huge key space —
    with Poisson arrivals and retries clamped to 1 on both the
    fallback-heavy baseline ("B") and CLEAR ("C"), the pair the overload
    figure contrasts. *)

val run : options -> Driver.t list
(** One {!Driver.run_point} per (config, load) cell, in grid order. Loads
    are de-duplicated and sorted ascending; with [check] set, each config's
    lowest load point runs under the execution oracle. *)

val to_json : options -> Driver.t list -> Report.Json.t
(** The sweep header plus the [curve] array, in grid order. *)

val table : Driver.t list -> Report.Table.t
(** Human-readable curve (sojourn percentiles per row). *)
