module Config = Machine.Config

type t = {
  workload : string;
  preset : string;
  retries : int;
  rate : float;
  process : string;
  seed : int;
  total_cycles : int;
  commits : int;
  requests : int;
  admitted : int;
  dropped : int;
  completed : int;
  qdepth_hw : int;
  sojourn : Report.Percentile.t option;
  wait : Report.Percentile.t option;
  checked : bool;
  stream : bool;
  oracle_ok : bool;
  events : int;  (** engine events popped — the oracle's stream length scale *)
  check_live_lines : int;  (** streaming-checker live-line high-water mark *)
  check_retired : int;  (** checker entries retired behind the frontier *)
}

let run_point ?pdes ?(check = false) ?(stream = false) (cfg : Config.t)
    (workload : Machine.Workload.t) =
  let q =
    match cfg.Config.openloop with
    | Some q -> q
    | None -> invalid_arg "Openloop.Driver.run_point: config has no open queue"
  in
  let stream = check && stream in
  (* [streamer] holds the online checker when streaming; the collector then
     forwards emissions instead of accumulating them, which is what keeps
     always-on checking affordable at open-system history lengths. *)
  let streamer =
    if stream then
      Some
        (Check.Stream.create
           ~static_gate:(Clear_repro.Run.static_gate_of_config cfg)
           ~cores:cfg.Config.cores ())
    else None
  in
  let collector =
    match streamer with
    | Some str ->
        Some (Check.Collector.create_streaming ~cores:cfg.Config.cores (Check.Stream.sink str))
    | None ->
        if check then Some (Check.Collector.create ~cores:cfg.Config.cores) else None
  in
  let engine = Machine.Engine.create ?check:collector cfg workload in
  let stats = Machine.Engine.run ?pdes engine in
  let oracle_ok =
    match (streamer, collector) with
    | _, None -> true
    | Some str, _ ->
        let final = Mem.Store.snapshot (Machine.Engine.store engine) in
        Check.Verdict.ok (Check.Verdict.of_stream str ~final)
    | None, Some col ->
        let final = Mem.Store.snapshot (Machine.Engine.store engine) in
        Check.Verdict.ok
          (Check.Verdict.evaluate
             ~static_gate:(Clear_repro.Run.static_gate_of_config cfg)
             col ~final)
  in
  let perf = Machine.Engine.perfctr engine in
  let oq =
    match Machine.Engine.openq engine with
    | Some oq -> oq
    | None -> assert false (* cfg.openloop is Some, so the engine built one *)
  in
  {
    workload = workload.Machine.Workload.name;
    preset = Config.preset_letter cfg;
    retries = cfg.Config.max_retries;
    rate = q.Config.open_rate;
    process = Config.open_process_name q.Config.open_process;
    seed = cfg.Config.seed;
    total_cycles = Machine.Stats.total_cycles stats;
    commits = Machine.Stats.commits stats;
    requests = q.Config.open_requests;
    admitted = Machine.Openq.admitted oq;
    dropped = Machine.Openq.dropped oq;
    completed = Machine.Openq.completed oq;
    qdepth_hw = Machine.Openq.qdepth_hw oq;
    sojourn = Report.Percentile.of_samples (Machine.Openq.sojourns oq);
    wait = Report.Percentile.of_samples (Machine.Openq.waits oq);
    checked = check;
    stream;
    oracle_ok;
    events = perf.Simrt.Perfctr.events_popped;
    check_live_lines = perf.Simrt.Perfctr.check_live_lines;
    check_retired = perf.Simrt.Perfctr.check_retired;
  }

let percentile_json = function
  | None -> Report.Json.Null
  | Some p -> Report.Percentile.to_json p

let to_json r =
  Report.Json.Obj
    [
      ("workload", Report.Json.Str r.workload);
      ("preset", Report.Json.Str r.preset);
      ("retries", Report.Json.Int r.retries);
      ("rate", Report.Json.Float r.rate);
      ("process", Report.Json.Str r.process);
      ("seed", Report.Json.Int r.seed);
      ("total_cycles", Report.Json.Int r.total_cycles);
      ("commits", Report.Json.Int r.commits);
      ("requests", Report.Json.Int r.requests);
      ("admitted", Report.Json.Int r.admitted);
      ("dropped", Report.Json.Int r.dropped);
      ("completed", Report.Json.Int r.completed);
      ("qdepth_hw", Report.Json.Int r.qdepth_hw);
      ("sojourn", percentile_json r.sojourn);
      ("wait", percentile_json r.wait);
      ("checked", Report.Json.Bool r.checked);
      ("stream", Report.Json.Bool r.stream);
      ("oracle_ok", Report.Json.Bool r.oracle_ok);
      ("events", Report.Json.Int r.events);
      ("check_live_lines", Report.Json.Int r.check_live_lines);
      ("check_retired", Report.Json.Int r.check_retired);
    ]
