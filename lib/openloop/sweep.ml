module Config = Machine.Config

type options = {
  workload : string;
  keys : int;
  theta : float;
  loads : float list;
  requests : int;
  process : Config.open_process;
  queue_cap : int;
  configs : Config.t list;
  seed : int;
  jobs : int;
  check : bool;
  stream : bool;
  pdes : Machine.Pdes.t option;
}

(* Defaults shared by the CLI and the smoke harness. Retries 1 makes the
   baseline fallback-heavy — the contrast CLEAR's single-retry bound exists
   to beat — and the key space (1 MiW of array lines = 8 MiB) is twice the
   L3, so popularity skew rather than cache residency decides hotness.
   The skew sits far above the closed-loop tiers ({!Workloads.Common}
   tops out at 0.6): over 2^17 keys a 0.6 head almost never collides, and
   the overload figure needs a genuinely hot head — theta 6 puts ~2.3% of
   requests on the hottest line, enough for the fallback convoy to form. *)
let default_options =
  {
    workload = "arrayswap";
    keys = 1 lsl 17;
    theta = 6.0;
    loads = [ 30.0; 60.0; 120.0 ];
    requests = 3_000;
    process = Config.Open_poisson;
    queue_cap = 0;
    configs =
      [
        Config.with_retries Config.baseline 1;
        Config.with_retries Config.clear_rw 1;
      ];
    seed = 42;
    jobs = 1;
    check = false;
    stream = false;
    pdes = None;
  }

let run (o : options) =
  if o.loads = [] then invalid_arg "Openloop.Sweep.run: empty load list";
  if o.configs = [] then invalid_arg "Openloop.Sweep.run: empty config list";
  let workload = Workloads.Registry.open_scaled o.workload ~keys:o.keys ~theta:o.theta in
  let loads = List.sort_uniq compare o.loads in
  let lowest = List.hd loads in
  let tasks =
    List.concat_map
      (fun cfg ->
        List.map
          (fun rate ->
            let q =
              {
                Config.open_rate = rate;
                open_requests = o.requests;
                open_process = o.process;
                open_queue_cap = o.queue_cap;
              }
            in
            (Config.with_openloop (Config.with_seed cfg o.seed) (Some q), o.check && rate = lowest))
          loads)
      o.configs
  in
  (* Order-preserving map: results line up with the (config, load) grid, so
     the emitted curve is identical at any job count. *)
  Simrt.Pool.parallel_map ~jobs:o.jobs
    (fun (cfg, check) -> Driver.run_point ?pdes:o.pdes ~check ~stream:o.stream cfg workload)
    tasks

let to_json (o : options) results =
  Report.Json.Obj
    [
      ("schema", Report.Json.Str "clear-sim/openloop-sweep/v1");
      ("workload", Report.Json.Str o.workload);
      ("keys", Report.Json.Int o.keys);
      ("theta", Report.Json.Float o.theta);
      ("process", Report.Json.Str (Config.open_process_name o.process));
      ("requests", Report.Json.Int o.requests);
      ("queue_cap", Report.Json.Int o.queue_cap);
      ("seed", Report.Json.Int o.seed);
      ("curve", Report.Json.List (List.map Driver.to_json results));
    ]

let pctl_cell f = function
  | None -> "-"
  | Some (p : Report.Percentile.t) -> string_of_int (f p)

let table results =
  let t =
    Report.Table.create ~title:"Open-system sweep: sojourn latency vs offered load"
      ~columns:
        [
          "preset";
          "rate/kcyc";
          "completed";
          "dropped";
          "qdepth_hw";
          "p50";
          "p99";
          "p999";
          "max";
          "oracle";
        ]
  in
  let last_preset = ref "" in
  List.iter
    (fun (r : Driver.t) ->
      if !last_preset <> "" && !last_preset <> r.Driver.preset then Report.Table.add_separator t;
      last_preset := r.Driver.preset;
      Report.Table.add_row t
        [
          r.Driver.preset;
          Report.Table.f2 r.Driver.rate;
          string_of_int r.Driver.completed;
          string_of_int r.Driver.dropped;
          string_of_int r.Driver.qdepth_hw;
          pctl_cell (fun p -> p.Report.Percentile.p50) r.Driver.sojourn;
          pctl_cell (fun p -> p.Report.Percentile.p99) r.Driver.sojourn;
          pctl_cell (fun p -> p.Report.Percentile.p999) r.Driver.sojourn;
          pctl_cell (fun p -> p.Report.Percentile.max) r.Driver.sojourn;
          (if not r.Driver.checked then "-" else if r.Driver.oracle_ok then "ok" else "FAIL");
        ])
    results;
  t
