(** Small dense-int set on a growable array.

    The engine's per-attempt footprints and transactional read/write sets
    are a handful of cache-line ids; a flat array with linear membership
    beats hashing at that size and allocates nothing per operation.
    Members are kept unique in insertion order, with a lazily (re)built
    sorted view cached until the next mutation. *)

type t

val create : ?hint:int -> unit -> t
(** Empty set; [hint] pre-sizes the backing array (default 16). *)

val clear : t -> unit
(** O(1); keeps the backing array. *)

val size : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool
(** Linear scan over the members. *)

val add : t -> int -> unit
(** No-op when already present. *)

val iter : t -> (int -> unit) -> unit
(** Insertion order. *)

val sorted_view : t -> int array
(** Ascending members. Cached: repeated calls without intervening {!add} /
    {!clear} return the same array. The array is never mutated afterwards —
    holding it across later mutations is safe — but callers must not write
    to it. *)

val sorted_list : t -> int list
