let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let trimmed_mean ~trim xs =
  let n = List.length xs in
  if n <= trim then mean xs
  else begin
    let m = median xs in
    let by_distance =
      List.sort (fun a b -> Float.compare (abs_float (a -. m)) (abs_float (b -. m))) xs
    in
    let kept = List.filteri (fun i _ -> i < n - trim) by_distance in
    mean kept
  end

let geomean = function
  | [] -> 0.0
  | xs ->
      let logs = List.map (fun x -> if x <= 0.0 then 0.0 else log x) xs in
      exp (mean logs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
      sqrt var

let min_max = function
  | [] -> invalid_arg "Summary.min_max: empty list"
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs
