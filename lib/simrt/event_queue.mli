(** Binary min-heap priority queue ordering simulator events by time.

    The global simulation loop pops the (time, payload) pair with the smallest
    time; ties are broken by insertion order (FIFO among equal times) so the
    simulation is fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time x] schedules [x] at [time]. [time] must be
    non-negative. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest event without removing it. *)

val pop_until : 'a t -> time:int -> (int * 'a) list
(** [pop_until q ~time] removes and returns every event scheduled at or
    before [time], in exactly the order repeated {!pop} calls would yield
    ((time, insertion) order). Batched drain for windowed consumers: the
    horizon is tested against the heap root, so events beyond it pay no heap
    operation at all. *)

val clear : 'a t -> unit
