(** Hot-path performance counters.

    Unlike {!Counter} (string-keyed, hashtable-backed, part of the
    simulation's statistics), a [Perfctr.t] is a flat record of mutable
    ints the engine bumps directly on its per-event datapath — cheap enough
    to stay on even in production runs, and deliberately {e outside} the
    simulated statistics so enabling or extending it can never perturb
    simulation output. Dumped by [bench/main.exe --perf] and recorded in
    BENCH_suite.json to keep the datapath costs measured across PRs. *)

type t = {
  mutable sims : int;  (** simulations aggregated into this record *)
  mutable events_popped : int;  (** event-queue pops (engine main loop) *)
  mutable conflict_checks : int;  (** conflict-map mask queries *)
  mutable conflict_hits : int;  (** queries returning a non-empty victim mask *)
  mutable footprint_inserts : int;  (** per-attempt footprint line touches *)
  mutable store_forward_scans : int;  (** store-buffer lookups by loads *)
  mutable aborts : int;
  mutable commits : int;
  mutable allocated_words : int;  (** OCaml words allocated during [Engine.run] *)
  mutable pdes_windows : int;  (** lookahead bursts executed by the PDES driver *)
  mutable pdes_window_stalls : int;
      (** extension attempts cut short: an ineligible peer, an unresolvable
          footprint, or a dynamic pre-check (conflict mask, mode change) *)
  mutable pdes_merge_events : int;  (** events executed by the global merged selection *)
  mutable pdes_ext_events : int;
      (** events executed past the dynamic next-event bound, i.e. justified
          only by the static-footprint insulation argument *)
  mutable pdes_lookahead_total : int;  (** summed per-burst lookahead distance (cycles) *)
  mutable pdes_lookahead_max : int;  (** largest single-burst lookahead (cycles) *)
  mutable static_cover_exact : int;
      (** PDES footprint resolutions where the exact line set enumerated *)
  mutable static_cover_cover : int;
      (** footprint resolutions that fell back to a line-interval cover
          small enough to expand (cap hit or region-bounded indirection) *)
  mutable static_cover_capped : int;
      (** resolutions where exact enumeration hit the expansion cap — the
          formerly silent [Footprint.lines_for] failure mode, now counted *)
  mutable static_cover_unresolved : int;
      (** resolutions with no usable footprint: an unbounded site, or a
          cover too large to expand (pool-sized region extents) *)
  mutable open_arrivals : int;
      (** open-system requests admitted to the queue (excludes drops) *)
  mutable open_dropped : int;  (** requests dropped at saturation (queue cap hit) *)
  mutable open_completed : int;  (** requests that committed their AR *)
  mutable open_qdepth_hw : int;  (** queue-depth high-water mark *)
  mutable check_live_lines : int;
      (** streaming-oracle live-line high-water mark (lines still holding
          checker state; 0 for unchecked or post hoc-checked runs) *)
  mutable check_retired : int;
      (** checker entries retired by the streaming oracle's committed
          frontier (see DESIGN.md §14) *)
}

val create : unit -> t

val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** Counters add; [pdes_lookahead_max], [open_qdepth_hw] and
    [check_live_lines] take the maximum. *)

val mean_lookahead : t -> float
(** [pdes_lookahead_total / pdes_windows]; 0 when no window ran. *)

val to_list : t -> (string * int) list
(** Stable name/value pairs for reporting. *)
