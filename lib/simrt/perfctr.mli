(** Hot-path performance counters.

    Unlike {!Counter} (string-keyed, hashtable-backed, part of the
    simulation's statistics), a [Perfctr.t] is a flat record of mutable
    ints the engine bumps directly on its per-event datapath — cheap enough
    to stay on even in production runs, and deliberately {e outside} the
    simulated statistics so enabling or extending it can never perturb
    simulation output. Dumped by [bench/main.exe --perf] and recorded in
    BENCH_suite.json to keep the datapath costs measured across PRs. *)

type t = {
  mutable sims : int;  (** simulations aggregated into this record *)
  mutable events_popped : int;  (** event-queue pops (engine main loop) *)
  mutable conflict_checks : int;  (** conflict-map mask queries *)
  mutable conflict_hits : int;  (** queries returning a non-empty victim mask *)
  mutable footprint_inserts : int;  (** per-attempt footprint line touches *)
  mutable store_forward_scans : int;  (** store-buffer lookups by loads *)
  mutable aborts : int;
  mutable commits : int;
  mutable allocated_words : int;  (** OCaml words allocated during [Engine.run] *)
}

val create : unit -> t

val reset : t -> unit

val merge_into : dst:t -> t -> unit

val to_list : t -> (string * int) list
(** Stable name/value pairs for reporting. *)
