type t = {
  mutable data : int array; (* unique members, insertion order *)
  mutable len : int;
  mutable sorted : int array; (* cached ascending view, length = len when valid *)
  mutable sorted_valid : bool;
}

let create ?(hint = 16) () =
  { data = Array.make (max 1 hint) 0; len = 0; sorted = [||]; sorted_valid = false }

let clear t =
  t.len <- 0;
  t.sorted_valid <- false

let size t = t.len

let is_empty t = t.len = 0

let mem t x =
  let d = t.data in
  let n = t.len in
  let rec scan i = i < n && (Array.unsafe_get d i = x || scan (i + 1)) in
  scan 0

let add t x =
  if not (mem t x) then begin
    if t.len = Array.length t.data then begin
      let nd = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 nd 0 t.len;
      t.data <- nd
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted_valid <- false
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

(* Rebuilding into a fresh array (rather than sorting in place) means a
   previously returned view stays valid forever — callers may hold it across
   later mutations (e.g. the Figure 1 footprint comparison). *)
let sorted_view t =
  if not t.sorted_valid then begin
    let a = Array.sub t.data 0 t.len in
    Array.sort (fun (x : int) y -> compare x y) a;
    t.sorted <- a;
    t.sorted_valid <- true
  end;
  t.sorted

let sorted_list t = Array.to_list (sorted_view t)
