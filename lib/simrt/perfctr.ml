type t = {
  mutable sims : int;
  mutable events_popped : int;
  mutable conflict_checks : int;
  mutable conflict_hits : int;
  mutable footprint_inserts : int;
  mutable store_forward_scans : int;
  mutable aborts : int;
  mutable commits : int;
  mutable allocated_words : int;
}

let create () =
  {
    sims = 0;
    events_popped = 0;
    conflict_checks = 0;
    conflict_hits = 0;
    footprint_inserts = 0;
    store_forward_scans = 0;
    aborts = 0;
    commits = 0;
    allocated_words = 0;
  }

let reset t =
  t.sims <- 0;
  t.events_popped <- 0;
  t.conflict_checks <- 0;
  t.conflict_hits <- 0;
  t.footprint_inserts <- 0;
  t.store_forward_scans <- 0;
  t.aborts <- 0;
  t.commits <- 0;
  t.allocated_words <- 0

let merge_into ~dst src =
  dst.sims <- dst.sims + src.sims;
  dst.events_popped <- dst.events_popped + src.events_popped;
  dst.conflict_checks <- dst.conflict_checks + src.conflict_checks;
  dst.conflict_hits <- dst.conflict_hits + src.conflict_hits;
  dst.footprint_inserts <- dst.footprint_inserts + src.footprint_inserts;
  dst.store_forward_scans <- dst.store_forward_scans + src.store_forward_scans;
  dst.aborts <- dst.aborts + src.aborts;
  dst.commits <- dst.commits + src.commits;
  dst.allocated_words <- dst.allocated_words + src.allocated_words

let to_list t =
  [
    ("sims", t.sims);
    ("events_popped", t.events_popped);
    ("conflict_checks", t.conflict_checks);
    ("conflict_hits", t.conflict_hits);
    ("footprint_inserts", t.footprint_inserts);
    ("store_forward_scans", t.store_forward_scans);
    ("aborts", t.aborts);
    ("commits", t.commits);
    ("allocated_words", t.allocated_words);
  ]
