type t = {
  mutable sims : int;
  mutable events_popped : int;
  mutable conflict_checks : int;
  mutable conflict_hits : int;
  mutable footprint_inserts : int;
  mutable store_forward_scans : int;
  mutable aborts : int;
  mutable commits : int;
  mutable allocated_words : int;
  mutable pdes_windows : int;
  mutable pdes_window_stalls : int;
  mutable pdes_merge_events : int;
  mutable pdes_ext_events : int;
  mutable pdes_lookahead_total : int;
  mutable pdes_lookahead_max : int;
  mutable static_cover_exact : int;
  mutable static_cover_cover : int;
  mutable static_cover_capped : int;
  mutable static_cover_unresolved : int;
  mutable open_arrivals : int;
  mutable open_dropped : int;
  mutable open_completed : int;
  mutable open_qdepth_hw : int;
  mutable check_live_lines : int;
  mutable check_retired : int;
}

let create () =
  {
    sims = 0;
    events_popped = 0;
    conflict_checks = 0;
    conflict_hits = 0;
    footprint_inserts = 0;
    store_forward_scans = 0;
    aborts = 0;
    commits = 0;
    allocated_words = 0;
    pdes_windows = 0;
    pdes_window_stalls = 0;
    pdes_merge_events = 0;
    pdes_ext_events = 0;
    pdes_lookahead_total = 0;
    pdes_lookahead_max = 0;
    static_cover_exact = 0;
    static_cover_cover = 0;
    static_cover_capped = 0;
    static_cover_unresolved = 0;
    open_arrivals = 0;
    open_dropped = 0;
    open_completed = 0;
    open_qdepth_hw = 0;
    check_live_lines = 0;
    check_retired = 0;
  }

let reset t =
  t.sims <- 0;
  t.events_popped <- 0;
  t.conflict_checks <- 0;
  t.conflict_hits <- 0;
  t.footprint_inserts <- 0;
  t.store_forward_scans <- 0;
  t.aborts <- 0;
  t.commits <- 0;
  t.allocated_words <- 0;
  t.pdes_windows <- 0;
  t.pdes_window_stalls <- 0;
  t.pdes_merge_events <- 0;
  t.pdes_ext_events <- 0;
  t.pdes_lookahead_total <- 0;
  t.pdes_lookahead_max <- 0;
  t.static_cover_exact <- 0;
  t.static_cover_cover <- 0;
  t.static_cover_capped <- 0;
  t.static_cover_unresolved <- 0;
  t.open_arrivals <- 0;
  t.open_dropped <- 0;
  t.open_completed <- 0;
  t.open_qdepth_hw <- 0;
  t.check_live_lines <- 0;
  t.check_retired <- 0

let merge_into ~dst src =
  dst.sims <- dst.sims + src.sims;
  dst.events_popped <- dst.events_popped + src.events_popped;
  dst.conflict_checks <- dst.conflict_checks + src.conflict_checks;
  dst.conflict_hits <- dst.conflict_hits + src.conflict_hits;
  dst.footprint_inserts <- dst.footprint_inserts + src.footprint_inserts;
  dst.store_forward_scans <- dst.store_forward_scans + src.store_forward_scans;
  dst.aborts <- dst.aborts + src.aborts;
  dst.commits <- dst.commits + src.commits;
  dst.allocated_words <- dst.allocated_words + src.allocated_words;
  dst.pdes_windows <- dst.pdes_windows + src.pdes_windows;
  dst.pdes_window_stalls <- dst.pdes_window_stalls + src.pdes_window_stalls;
  dst.pdes_merge_events <- dst.pdes_merge_events + src.pdes_merge_events;
  dst.pdes_ext_events <- dst.pdes_ext_events + src.pdes_ext_events;
  dst.pdes_lookahead_total <- dst.pdes_lookahead_total + src.pdes_lookahead_total;
  dst.pdes_lookahead_max <- max dst.pdes_lookahead_max src.pdes_lookahead_max;
  dst.static_cover_exact <- dst.static_cover_exact + src.static_cover_exact;
  dst.static_cover_cover <- dst.static_cover_cover + src.static_cover_cover;
  dst.static_cover_capped <- dst.static_cover_capped + src.static_cover_capped;
  dst.static_cover_unresolved <- dst.static_cover_unresolved + src.static_cover_unresolved;
  dst.open_arrivals <- dst.open_arrivals + src.open_arrivals;
  dst.open_dropped <- dst.open_dropped + src.open_dropped;
  dst.open_completed <- dst.open_completed + src.open_completed;
  dst.open_qdepth_hw <- max dst.open_qdepth_hw src.open_qdepth_hw;
  dst.check_live_lines <- max dst.check_live_lines src.check_live_lines;
  dst.check_retired <- dst.check_retired + src.check_retired

let mean_lookahead t =
  if t.pdes_windows = 0 then 0.
  else float_of_int t.pdes_lookahead_total /. float_of_int t.pdes_windows

let to_list t =
  [
    ("sims", t.sims);
    ("events_popped", t.events_popped);
    ("conflict_checks", t.conflict_checks);
    ("conflict_hits", t.conflict_hits);
    ("footprint_inserts", t.footprint_inserts);
    ("store_forward_scans", t.store_forward_scans);
    ("aborts", t.aborts);
    ("commits", t.commits);
    ("allocated_words", t.allocated_words);
    ("pdes_windows", t.pdes_windows);
    ("pdes_window_stalls", t.pdes_window_stalls);
    ("pdes_merge_events", t.pdes_merge_events);
    ("pdes_ext_events", t.pdes_ext_events);
    ("pdes_lookahead_total", t.pdes_lookahead_total);
    ("pdes_lookahead_max", t.pdes_lookahead_max);
    ("static_cover_exact", t.static_cover_exact);
    ("static_cover_cover", t.static_cover_cover);
    ("static_cover_capped", t.static_cover_capped);
    ("static_cover_unresolved", t.static_cover_unresolved);
    ("open_arrivals", t.open_arrivals);
    ("open_dropped", t.open_dropped);
    ("open_completed", t.open_completed);
    ("open_qdepth_hw", t.open_qdepth_hw);
    ("check_live_lines", t.check_live_lines);
    ("check_retired", t.check_retired);
  ]
