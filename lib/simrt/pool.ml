type job = unit -> unit

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  queue : job Queue.t;
  busy : bool Atomic.t; (* a [map] is in flight: single-submitter guard *)
  mutable pending : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let clamp_jobs ?(context = "pool") n =
  if n < 1 then begin
    Printf.eprintf "[%s] --jobs expects a positive integer, got %d\n%!" context n;
    exit 2
  end;
  let cap = Domain.recommended_domain_count () in
  if n > cap then begin
    Printf.eprintf
      "[%s] --jobs %d exceeds this host's recommended domain count %d; clamping to %d\n%!" context
      n cap cap;
    cap
  end
  else n

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* Jobs never raise: [map] wraps the user function so failures are
       recorded and re-raised on the submitting domain. *)
    job ();
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker_loop t
  end

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      queue = Queue.create ();
      busy = Atomic.make false;
      pending = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  (* The completion protocol (a shared [pending] counter drained to zero)
     cannot tell two submitters' batches apart, so interleaved [map] calls
     would wait on each other's jobs. Enforce the documented single-submitter
     contract instead of corrupting the wait. *)
  if not (Atomic.compare_and_set t.busy false true) then
    invalid_arg "Pool.map: concurrent submitters on a single-submitter pool";
  Fun.protect ~finally:(fun () -> Atomic.set t.busy false) @@ fun () ->
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let error = Atomic.make None in
    let job i () =
      match f arr.(i) with
      | v -> out.(i) <- Some v
      | exception e ->
          ignore (Atomic.compare_and_set error None (Some (e, Printexc.get_raw_backtrace ())))
    in
    Mutex.lock t.mutex;
    t.pending <- t.pending + n;
    for i = 0 to n - 1 do
      Queue.push (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    while t.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> invalid_arg "Pool.map: missing result") out)
  end

let parallel_map ~jobs f xs =
  if jobs <= 1 || List.compare_length_with xs 2 < 0 then List.map f xs
  else begin
    let t = create ~jobs:(min jobs (List.length xs)) in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
  end
