type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let clear t =
  t.heap <- [||];
  t.size <- 0;
  t.next_seq <- 0

(* [a] sorts before [b] when earlier in time, or same time but pushed
   earlier. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nh = Array.make ncap e in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let push t ~time payload =
  assert (time >= 0);
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  let h = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  h.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h.(!i) h.(parent) then begin
      let tmp = h.(parent) in
      h.(parent) <- h.(!i);
      h.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let h = t.heap in
    let top = h.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      h.(0) <- h.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before h.(l) h.(!smallest) then smallest := l;
        if r < t.size && before h.(r) h.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.(!smallest) in
          h.(!smallest) <- h.(!i);
          h.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop_until t ~time:horizon =
  (* One [pop] per drained event, but no per-event [peek] round-trips: the
     windowed PDES driver calls this once per window instead of peeking
     before every pop. *)
  let rec drain acc =
    if t.size = 0 || t.heap.(0).time > horizon then List.rev acc
    else
      match pop t with
      | Some ev -> drain (ev :: acc)
      | None -> List.rev acc
  in
  drain []
