(** Fixed pool of OCaml 5 domains with a mutex/condition work queue.

    The simulator itself is single-threaded and deterministic; the pool
    parallelises *independent* simulations (one per (config, workload, seed))
    across host cores. Each job builds its own state, so running the same
    task list at any job count yields bit-identical results in the same
    order. *)

type t
(** A pool of worker domains. One submitter at a time: [map] must not be
    called concurrently from several domains on the same pool — a second
    concurrent call raises [Invalid_argument] (the completion protocol
    cannot tell two batches apart). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (the submitting domain keeps a
    core), never below 1. *)

val clamp_jobs : ?context:string -> int -> int
(** Validate a user-supplied [--jobs] value: exits with status 2 (after an
    error line tagged [context]) when it is not positive, clamps it to the
    host's recommended domain count with a warning when it exceeds it (extra
    domains only add scheduling overhead), and returns it unchanged
    otherwise. Shared by the bench harness and the CLI so the two front ends
    cannot drift. *)

val create : jobs:int -> t
(** Spawn [max 1 jobs] worker domains, idle until work arrives. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element of [xs] on the pool's workers and
    returns the results in input order. If any application raises, one such
    exception is re-raised on the calling domain after all jobs finished. *)

val shutdown : t -> unit
(** Finish queued work, stop and join every worker. The pool must not be
    used afterwards. *)

val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: create a pool of [jobs] domains, [map], shut down.
    [jobs <= 1] (or fewer than two elements) runs inline on the calling
    domain, spawning nothing. *)
