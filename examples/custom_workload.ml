(* Building your own workload against the public API.

     dune exec examples/custom_workload.exe

   The example implements a tiny "bank" with an audit operation:
   - [deposit] has a fixed footprint (immutable -> NS-CL eligible);
   - [audit] walks the account list — an indirection, but through links no
     AR ever writes, so it classifies as likely immutable (S-CL eligible).

   It shows the three layers a workload touches: the assembler eDSL for AR
   bodies, the static mutability analysis, and the engine. *)

module A = Isa.Asm
module I = Isa.Instr
module P = Isa.Program
module W = Machine.Workload
module Config = Machine.Config
module Stats = Machine.Stats

let reg r = I.Reg r

let imm i = I.Imm i

(* Accounts: a linked list of [balance; next] records, plus a standalone
   total-deposits counter. *)
let accounts = 10

let counter_addr = 64

let account_addr i = 128 + (i * 8)

let deposit =
  P.build_ar ~id:0 ~name:"deposit" (fun b ->
      (* r0 = &account.balance, r1 = amount, r2 = &total counter *)
      A.ld b ~dst:8 ~base:(reg 0) ~region:"acct" ();
      A.add b ~dst:8 (reg 8) (reg 1);
      A.st b ~base:(reg 0) ~src:(reg 8) ~region:"acct" ();
      A.ld b ~dst:9 ~base:(reg 2) ~region:"total" ();
      A.add b ~dst:9 (reg 9) (reg 1);
      A.st b ~base:(reg 2) ~src:(reg 9) ~region:"total" ();
      A.halt b)

let audit =
  P.build_ar ~id:1 ~name:"audit" (fun b ->
      (* r0 = first account, r5 = mailbox: sum balances along next links *)
      let loop = A.new_label b in
      let done_ = A.new_label b in
      A.mov b ~dst:9 (imm 0);
      A.mov b ~dst:8 (reg 0);
      A.place b loop;
      A.brc b I.Eq (reg 8) (imm 0) done_;
      A.ld b ~dst:10 ~base:(reg 8) ~region:"acct" ();
      A.add b ~dst:9 (reg 9) (reg 10);
      A.ld b ~dst:8 ~base:(reg 8) ~off:1 ~region:"acct.link" ();
      A.jmp b loop;
      A.place b done_;
      A.st b ~base:(reg 5) ~src:(reg 9) ~region:"mailbox" ();
      A.halt b)

let mailbox tid = 2048 + (tid * 8)

let bank : W.t =
  {
    W.name = "bank";
    description = "deposits + list-walking audits";
    ars = [ deposit; audit ];
    memory_words = 4096;
    setup =
      (fun store _rng ->
        Mem.Store.write store counter_addr 0;
        for i = 0 to accounts - 1 do
          Mem.Store.write store (account_addr i) 100;
          Mem.Store.write store
            (account_addr i + 1)
            (if i = accounts - 1 then 0 else account_addr (i + 1))
        done);
    make_driver =
      (fun ~tid ~threads:_ _store rng () ->
        if Simrt.Rng.chance rng 0.8 then
          let i = Simrt.Rng.int rng accounts in
          W.op deposit [ (0, account_addr i); (1, 1 + Simrt.Rng.int rng 9); (2, counter_addr) ]
        else W.op audit [ (0, account_addr 0); (5, mailbox tid) ]);
    pure_driver = true;
  }

let () =
  (* 1. Static view: what will CLEAR be able to do with these regions? *)
  print_endline "static classification:";
  List.iter
    (fun (ar, c) ->
      Printf.printf "  %-8s -> %s\n" ar.P.name (Clear.Analysis.classification_name c))
    (Clear.Analysis.classify_workload bank.W.ars);
  print_newline ();
  (* 2. Dynamic view: run it under baseline and CLEAR. *)
  List.iter
    (fun (label, preset) ->
      let cfg = { preset with Config.cores = 8; ops_per_thread = 400 } in
      let engine = Machine.Engine.create cfg bank in
      let stats = Machine.Engine.run engine in
      Printf.printf "%-22s cycles=%-8d aborts/commit=%-5.2f NS-CL=%d S-CL=%d fallback=%d\n" label
        (Stats.total_cycles stats) (Stats.aborts_per_commit stats)
        (Stats.commits_in_mode stats Stats.Nscl)
        (Stats.commits_in_mode stats Stats.Scl)
        (Stats.commits_in_mode stats Stats.Fallback_mode);
      (* 3. The audit invariant: deposits are atomic, so the final total
            counter equals the sum of balance growth. *)
      let store = Machine.Engine.store engine in
      let balances = ref 0 in
      for i = 0 to accounts - 1 do
        balances := !balances + Mem.Store.read store (account_addr i)
      done;
      let grown = !balances - (accounts * 100) in
      assert (grown = Mem.Store.read store counter_addr);
      Printf.printf "%-22s invariant holds: balance growth %d == total counter\n" "" grown)
    [ ("baseline (B)", Config.baseline); ("CLEAR+PowerTM (W)", Config.clear_power) ]
