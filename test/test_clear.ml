(* Tests for the CLEAR hardware structures and the static mutability
   analysis. *)

module Ert = Clear.Ert
module Alt = Clear.Alt
module Crt = Clear.Crt
module Decision = Clear.Decision
module Indirection = Clear.Indirection
module Analysis = Clear.Analysis
module A = Isa.Asm
module I = Isa.Instr
module P = Isa.Program

(* ------------------------------------------------------------------ *)
(* ERT *)

let test_ert_defaults () =
  let t = Ert.create ~entries:4 () in
  let e = Ert.lookup_or_insert t ~pc:10 in
  Alcotest.(check bool) "convertible" true e.Ert.is_convertible;
  Alcotest.(check bool) "immutable" true e.Ert.is_immutable;
  Alcotest.(check int) "counter zero" 0 e.Ert.sq_full;
  Alcotest.(check bool) "discovery enabled" true (Ert.discovery_enabled e);
  Alcotest.(check int) "occupancy" 1 (Ert.occupancy t)

let test_ert_lookup_miss () =
  let t = Ert.create () in
  Alcotest.(check bool) "miss" true (Ert.lookup t ~pc:1 = None)

let test_ert_lru_eviction () =
  let t = Ert.create ~entries:2 () in
  let _ = Ert.lookup_or_insert t ~pc:1 in
  let _ = Ert.lookup_or_insert t ~pc:2 in
  (* refresh pc 1 so pc 2 is LRU *)
  let _ = Ert.lookup t ~pc:1 in
  let _ = Ert.lookup_or_insert t ~pc:3 in
  Alcotest.(check bool) "pc1 kept" true (Ert.lookup t ~pc:1 <> None);
  Alcotest.(check bool) "pc2 evicted" true (Ert.lookup t ~pc:2 = None)

let test_ert_flags_persist () =
  let t = Ert.create () in
  let e = Ert.lookup_or_insert t ~pc:5 in
  Ert.mark_not_convertible e;
  Ert.mark_not_immutable e;
  let e' = Ert.lookup_or_insert t ~pc:5 in
  Alcotest.(check bool) "same entry" true (e == e');
  Alcotest.(check bool) "not convertible" false e'.Ert.is_convertible;
  Alcotest.(check bool) "discovery disabled" false (Ert.discovery_enabled e')

let test_ert_sq_counter () =
  let t = Ert.create () in
  let e = Ert.lookup_or_insert t ~pc:5 in
  Ert.note_sq_full t ~pc:5;
  Ert.note_sq_full t ~pc:5;
  Alcotest.(check bool) "still enabled below saturation" true (Ert.discovery_enabled e);
  Ert.note_sq_full t ~pc:5;
  Ert.note_sq_full t ~pc:5 (* saturates at 3 *);
  Alcotest.(check int) "saturated" 3 e.Ert.sq_full;
  Alcotest.(check bool) "disabled at saturation" false (Ert.discovery_enabled e);
  Ert.note_commit t ~pc:5;
  Alcotest.(check int) "commit decrements" 2 e.Ert.sq_full;
  Alcotest.(check bool) "re-enabled" true (Ert.discovery_enabled e)

(* ------------------------------------------------------------------ *)
(* ALT *)

let make_alt ?(capacity = 8) () = Alt.create ~capacity ~dir_set_of:(fun line -> line mod 4) ()

let test_alt_record_and_order () =
  let t = make_alt () in
  List.iter (fun l -> ignore (Alt.record t l ~written:false)) [ 10; 5; 7 ];
  (* dir sets: 10->2, 5->1, 7->3 — lock order sorts by (dir_set, line) *)
  Alcotest.(check (list int)) "lock order" [ 5; 10; 7 ] (Alt.lines t);
  Alcotest.(check int) "size" 3 (Alt.size t)

let test_alt_merge_written () =
  let t = make_alt () in
  ignore (Alt.record t 5 ~written:false);
  ignore (Alt.record t 5 ~written:true);
  Alcotest.(check int) "no duplicate" 1 (Alt.size t);
  Alcotest.(check (list int)) "written merged" [ 5 ] (Alt.written_lines t)

let test_alt_overflow () =
  let t = make_alt ~capacity:2 () in
  Alcotest.(check bool) "first ok" true (Alt.record t 1 ~written:false = `Ok);
  Alcotest.(check bool) "second ok" true (Alt.record t 2 ~written:false = `Ok);
  Alcotest.(check bool) "third overflows" true (Alt.record t 3 ~written:false = `Overflow);
  Alcotest.(check bool) "re-record existing ok" true (Alt.record t 1 ~written:true = `Ok);
  Alcotest.(check int) "contents preserved" 2 (Alt.size t)

let test_alt_prepare_locking_modes () =
  let t = make_alt () in
  ignore (Alt.record t 1 ~written:false);
  ignore (Alt.record t 2 ~written:true);
  ignore (Alt.record t 3 ~written:false);
  Alt.prepare_locking t ~lock_all:true ~extra:(fun _ -> false);
  Alcotest.(check int) "NS-CL locks everything" 3 (List.length (Alt.to_lock t));
  Alt.prepare_locking t ~lock_all:false ~extra:(fun _ -> false);
  Alcotest.(check (list int)) "S-CL locks writes" [ 2 ]
    (List.map (fun e -> e.Alt.line) (Alt.to_lock t));
  Alt.prepare_locking t ~lock_all:false ~extra:(fun l -> l = 3);
  Alcotest.(check (list int)) "CRT adds reads" [ 2; 3 ]
    (List.map (fun e -> e.Alt.line) (Alt.to_lock t))

let test_alt_groups () =
  let t = make_alt () in
  (* 1, 5, 9 share dir set 1; 2 is alone in set 2 *)
  List.iter (fun l -> ignore (Alt.record t l ~written:true)) [ 1; 5; 9; 2 ];
  Alt.prepare_locking t ~lock_all:true ~extra:(fun _ -> false);
  let groups = Alt.lock_groups t in
  Alcotest.(check (list (list int)))
    "groups by dir set"
    [ [ 1; 5; 9 ]; [ 2 ] ]
    (List.map (List.map (fun e -> e.Alt.line)) groups);
  let conflict_bits = List.map (fun e -> e.Alt.conflict) (Alt.entries t) in
  (* all but the last of each group carry the conflict bit *)
  Alcotest.(check (list bool)) "conflict bits" [ true; true; false; false ] conflict_bits

let test_alt_all_locked () =
  let t = make_alt () in
  ignore (Alt.record t 1 ~written:true);
  ignore (Alt.record t 2 ~written:true);
  Alt.prepare_locking t ~lock_all:true ~extra:(fun _ -> false);
  Alcotest.(check bool) "not yet" false (Alt.all_locked t);
  List.iter Alt.mark_locked (Alt.to_lock t);
  Alcotest.(check bool) "done" true (Alt.all_locked t)

let test_alt_reset () =
  let t = make_alt () in
  ignore (Alt.record t 1 ~written:true);
  Alt.reset t;
  Alcotest.(check int) "empty" 0 (Alt.size t)

let prop_alt_lock_all_covers_everything =
  QCheck.Test.make ~name:"prepare ~lock_all marks every entry" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 0 1000))
    (fun lines ->
      let t = Alt.create ~capacity:64 ~dir_set_of:(fun l -> l mod 16) () in
      List.iter (fun l -> ignore (Alt.record t l ~written:false)) lines;
      Alt.prepare_locking t ~lock_all:true ~extra:(fun _ -> false);
      List.length (Alt.to_lock t) = Alt.size t)

let prop_alt_to_lock_subset =
  QCheck.Test.make ~name:"to_lock is a subset of entries" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_range 0 1000) bool))
    (fun accesses ->
      let t = Alt.create ~capacity:64 ~dir_set_of:(fun l -> l mod 16) () in
      List.iter (fun (l, w) -> ignore (Alt.record t l ~written:w)) accesses;
      Alt.prepare_locking t ~lock_all:false ~extra:(fun _ -> false);
      let lines = Alt.lines t in
      List.for_all (fun e -> List.mem e.Alt.line lines) (Alt.to_lock t))

let prop_ert_occupancy =
  QCheck.Test.make ~name:"ERT occupancy = min(distinct pcs, capacity)" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 30) (int_range 0 100)))
    (fun (entries, pcs) ->
      let t = Ert.create ~entries () in
      List.iter (fun pc -> ignore (Ert.lookup_or_insert t ~pc)) pcs;
      let distinct = List.length (List.sort_uniq compare pcs) in
      Ert.occupancy t = min distinct entries)

let prop_alt_sorted_by_dir_set =
  QCheck.Test.make ~name:"ALT lines sorted by lexicographic key" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 0 1000))
    (fun lines ->
      let t = Alt.create ~capacity:64 ~dir_set_of:(fun l -> l mod 16) () in
      List.iter (fun l -> ignore (Alt.record t l ~written:false)) lines;
      let keys = List.map (fun l -> (l mod 16, l)) (Alt.lines t) in
      keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* CRT *)

let test_crt_insert_mem () =
  let t = Crt.create ~entries:16 ~ways:2 () in
  Crt.insert t 42;
  Alcotest.(check bool) "present" true (Crt.mem t 42);
  Alcotest.(check bool) "absent" false (Crt.mem t 43);
  Crt.insert t 42;
  Alcotest.(check int) "idempotent" 1 (Crt.size t)

let test_crt_way_eviction () =
  let t = Crt.create ~entries:4 ~ways:2 () in
  (* set count = 2; lines 0,2,4 all map to set 0 *)
  Crt.insert t 0;
  Crt.insert t 2;
  Crt.insert t 0 (* refresh 0; 2 becomes LRU *);
  Crt.insert t 4;
  Alcotest.(check bool) "0 kept" true (Crt.mem t 0);
  Alcotest.(check bool) "2 evicted" false (Crt.mem t 2);
  Alcotest.(check bool) "4 present" true (Crt.mem t 4)

let test_crt_clear () =
  let t = Crt.create () in
  Crt.insert t 1;
  Crt.clear t;
  Alcotest.(check int) "cleared" 0 (Crt.size t)

let test_crt_remove () =
  let t = Crt.create () in
  Crt.insert t 5;
  Crt.insert t 6;
  Crt.remove t 5;
  Alcotest.(check bool) "removed" false (Crt.mem t 5);
  Alcotest.(check bool) "other kept" true (Crt.mem t 6);
  Crt.remove t 99 (* absent: no-op *);
  Alcotest.(check int) "size" 1 (Crt.size t)

let test_crt_geometry () =
  Alcotest.check_raises "bad geometry"
    (Invalid_argument "Crt.create: entries must be a positive multiple of ways") (fun () ->
      ignore (Crt.create ~entries:10 ~ways:4 ()))

(* ------------------------------------------------------------------ *)
(* Decision *)

let test_decision_tree () =
  let d fits lockable immutable =
    Decision.decide { Decision.fits_window = fits; lockable; immutable }
  in
  Alcotest.(check string) "overflow -> retry" "speculative"
    (Decision.mode_name (d false true true));
  Alcotest.(check string) "unlockable -> retry" "speculative"
    (Decision.mode_name (d true false true));
  Alcotest.(check string) "immutable -> NS-CL" "NS-CL" (Decision.mode_name (d true true true));
  Alcotest.(check string) "mutable -> S-CL" "S-CL" (Decision.mode_name (d true true false))

(* ------------------------------------------------------------------ *)
(* Indirection bits *)

let test_indirection_propagation () =
  let t = Indirection.create ~regs:8 in
  Indirection.define_load t ~dst:1;
  Alcotest.(check bool) "load sets" true (Indirection.get t 1);
  Indirection.define t ~dst:2 ~srcs:[ 1; 3 ];
  Alcotest.(check bool) "propagates" true (Indirection.get t 2);
  Indirection.define t ~dst:1 ~srcs:[ 3 ];
  Alcotest.(check bool) "overwrite clears" false (Indirection.get t 1);
  Alcotest.(check bool) "any_set" true (Indirection.any_set t [ 0; 2 ]);
  Alcotest.(check int) "count" 1 (Indirection.count_set t);
  Indirection.reset t;
  Alcotest.(check int) "reset" 0 (Indirection.count_set t)

(* ------------------------------------------------------------------ *)
(* Static analysis *)

let build name f = P.build_ar ~id:0 ~name f

let test_analysis_immutable () =
  let ar =
    build "imm" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"a" ();
        A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
        A.st b ~base:(I.Reg 0) ~src:(I.Reg 8) ~region:"a" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "no indirections" [] (Analysis.indirections ar);
  Alcotest.(check string) "immutable" "immutable"
    (Analysis.classification_name (Analysis.classify ~ar ~written_regions:[ "a" ]))

let test_analysis_likely_immutable () =
  (* address comes through a load from "dir", which no AR writes *)
  let ar =
    build "likely" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"dir" ();
        A.ld b ~dst:9 ~base:(I.Reg 8) ~region:"rec" ();
        A.st b ~base:(I.Reg 8) ~src:(I.Reg 9) ~region:"rec" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "dir feeds addresses" [ "dir" ] (Analysis.indirections ar);
  Alcotest.(check string) "likely" "likely immutable"
    (Analysis.classification_name (Analysis.classify ~ar ~written_regions:[ "rec" ]));
  Alcotest.(check string) "mutable when dir written" "mutable"
    (Analysis.classification_name (Analysis.classify ~ar ~written_regions:[ "dir" ]))

let test_analysis_branch_dependency () =
  (* a branch on a loaded value is an indirection even without address use *)
  let ar =
    build "br" (fun b ->
        let skip = A.new_label b in
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"flag" ();
        A.brc b I.Eq (I.Reg 8) (I.Imm 0) skip;
        A.st b ~base:(I.Reg 1) ~src:(I.Imm 1) ~region:"out" ();
        A.place b skip;
        A.halt b)
  in
  Alcotest.(check (list string)) "branch taint" [ "flag" ] (Analysis.indirections ar)

let test_analysis_taint_through_alu () =
  let ar =
    build "alu" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"idx" ();
        A.mul b ~dst:9 (I.Reg 8) (I.Imm 8);
        A.add b ~dst:9 (I.Reg 9) (I.Reg 1);
        A.ld b ~dst:10 ~base:(I.Reg 9) ~region:"slot" ();
        A.st b ~base:(I.Reg 2) ~src:(I.Reg 10) ~region:"out" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "taint flows through ALU" [ "idx" ] (Analysis.indirections ar)

let test_analysis_loop_fixpoint () =
  (* list traversal: the loop-carried register becomes tainted on the second
     iteration — requires the dataflow to iterate to fixpoint *)
  let ar =
    build "loop" (fun b ->
        let loop = A.new_label b in
        let done_ = A.new_label b in
        A.mov b ~dst:8 (I.Reg 0);
        A.place b loop;
        A.brc b I.Eq (I.Reg 8) (I.Imm 0) done_;
        A.ld b ~dst:8 ~base:(I.Reg 8) ~region:"link" ();
        A.jmp b loop;
        A.place b done_;
        A.halt b)
  in
  Alcotest.(check (list string)) "loop-carried taint found" [ "link" ] (Analysis.indirections ar)

let test_analysis_data_only_load () =
  (* a loaded value used only as store data is not an indirection *)
  let ar =
    build "data" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"src" ();
        A.st b ~base:(I.Reg 1) ~src:(I.Reg 8) ~region:"dst" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "no indirection" [] (Analysis.indirections ar)

let test_analysis_workload_counts () =
  (* expected (immutable, likely, mutable) per benchmark *)
  let expected =
    [
      ("arrayswap", (2, 0, 0));
      ("bitcoin", (0, 1, 0));
      ("bst", (0, 0, 3));
      ("deque", (0, 0, 2));
      ("hashmap", (0, 0, 3));
      ("mwobject", (1, 0, 0));
      ("queue", (0, 0, 2));
      ("stack", (1, 0, 1));
      ("sorted-list", (1, 0, 2));
      ("bayes", (0, 5, 9));
      ("genome", (0, 0, 5));
      ("intruder", (0, 2, 1));
      ("kmeans-h", (1, 2, 0));
      ("kmeans-l", (1, 2, 0));
      ("labyrinth", (0, 0, 3));
      ("ssca2", (2, 1, 0));
      ("vacation-h", (0, 1, 2));
      ("vacation-l", (0, 1, 2));
      ("yada", (1, 0, 5));
    ]
  in
  List.iter
    (fun (name, (im, li, mu)) ->
      let w = Workloads.Registry.find name in
      let got = Analysis.count (Analysis.classify_workload w.Machine.Workload.ars) in
      Alcotest.(check (triple int int int)) name (im, li, mu) got)
    expected

let test_analysis_untagged_indirection () =
  (* an untagged load feeding an address reports as <anon>; an untagged
     store elsewhere in the workload then makes the AR mutable *)
  let ar =
    build "anon" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ();
        A.ld b ~dst:9 ~base:(I.Reg 8) ~region:"rec" ();
        A.st b ~base:(I.Reg 1) ~src:(I.Reg 9) ~region:"rec" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "anon indirection" [ Analysis.anon_region ]
    (Analysis.indirections ar);
  Alcotest.(check string) "likely when anon never written" "likely immutable"
    (Analysis.classification_name (Analysis.classify ~ar ~written_regions:[ "rec" ]));
  Alcotest.(check string) "mutable when some AR stores untagged" "mutable"
    (Analysis.classification_name
       (Analysis.classify ~ar ~written_regions:[ "rec"; Analysis.anon_region ]))

let test_analysis_taint_every_binop () =
  (* taint must propagate through all twelve ALU operations, via either
     operand position *)
  List.iter
    (fun op ->
      List.iter
        (fun tainted_first ->
          let ar =
            build "binop" (fun b ->
                A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"src" ();
                (if tainted_first then A.binop b op ~dst:9 (I.Reg 8) (I.Imm 3)
                 else A.binop b op ~dst:9 (I.Imm 3) (I.Reg 8));
                A.ld b ~dst:10 ~base:(I.Reg 9) ~region:"tgt" ();
                A.st b ~base:(I.Reg 1) ~src:(I.Reg 10) ~region:"out" ();
                A.halt b)
          in
          Alcotest.(check (list string)) "binop propagates taint" [ "src" ]
            (Analysis.indirections ar))
        [ true; false ])
    [ I.Add; I.Sub; I.Mul; I.Div; I.Rem; I.And; I.Or; I.Xor; I.Shl; I.Shr; I.Min; I.Max ]

let test_analysis_mov_imm_clears_taint () =
  (* overwriting a tainted register with an immediate kills the taint, so
     the later address use is not an indirection *)
  let ar =
    build "movclear" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"src" ();
        A.mov b ~dst:8 (I.Imm 64);
        A.ld b ~dst:9 ~base:(I.Reg 8) ~region:"tgt" ();
        A.st b ~base:(I.Reg 1) ~src:(I.Reg 9) ~region:"out" ();
        A.halt b)
  in
  Alcotest.(check (list string)) "taint cleared" [] (Analysis.indirections ar)

let test_analysis_cross_ar_mutability () =
  (* the reader indirects through "dir" but never writes it; the writer AR
     does, so classify_workload demotes the reader to mutable *)
  let reader =
    build "reader" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"dir" ();
        A.ld b ~dst:9 ~base:(I.Reg 8) ~region:"rec" ();
        A.st b ~base:(I.Reg 8) ~src:(I.Reg 9) ~region:"rec" ();
        A.halt b)
  in
  let writer =
    P.build_ar ~id:1 ~name:"writer" (fun b ->
        A.st b ~base:(I.Reg 0) ~src:(I.Imm 7) ~region:"dir" ();
        A.halt b)
  in
  let reader_class ars =
    match List.assq_opt reader (Analysis.classify_workload ars) with
    | Some c -> Analysis.classification_name c
    | None -> Alcotest.fail "reader missing from classification"
  in
  Alcotest.(check string) "alone: likely immutable" "likely immutable" (reader_class [ reader ]);
  Alcotest.(check string) "with writer: mutable" "mutable" (reader_class [ reader; writer ])

(* ------------------------------------------------------------------ *)
(* Storage accounting *)

let test_storage_paper_numbers () =
  let b = Clear.Storage.paper in
  Alcotest.(check (float 0.01)) "indirection" 22.5 b.Clear.Storage.indirection_bytes;
  Alcotest.(check (float 0.01)) "ERT" 146.0 b.Clear.Storage.ert_bytes;
  Alcotest.(check (float 0.01)) "ALT" 276.0 b.Clear.Storage.alt_bytes;
  Alcotest.(check (float 0.01)) "CRT" 544.0 b.Clear.Storage.crt_bytes;
  Alcotest.(check (float 0.01)) "total < 1KiB" 988.5 b.Clear.Storage.total_bytes

let test_storage_scales () =
  let b = Clear.Storage.compute ~ert_entries:32 () in
  Alcotest.(check (float 0.01)) "double ERT" 292.0 b.Clear.Storage.ert_bytes;
  Alcotest.(check bool) "total grows" true
    (b.Clear.Storage.total_bytes > Clear.Storage.paper.Clear.Storage.total_bytes)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "clear"
    [
      ( "ert",
        [
          Alcotest.test_case "defaults" `Quick test_ert_defaults;
          Alcotest.test_case "lookup miss" `Quick test_ert_lookup_miss;
          Alcotest.test_case "LRU eviction" `Quick test_ert_lru_eviction;
          Alcotest.test_case "flags persist" `Quick test_ert_flags_persist;
          Alcotest.test_case "SQ-full counter" `Quick test_ert_sq_counter;
        ]
        @ qsuite [ prop_ert_occupancy ] );
      ( "alt",
        [
          Alcotest.test_case "record/order" `Quick test_alt_record_and_order;
          Alcotest.test_case "merge written" `Quick test_alt_merge_written;
          Alcotest.test_case "overflow" `Quick test_alt_overflow;
          Alcotest.test_case "prepare modes" `Quick test_alt_prepare_locking_modes;
          Alcotest.test_case "lock groups" `Quick test_alt_groups;
          Alcotest.test_case "all_locked" `Quick test_alt_all_locked;
          Alcotest.test_case "reset" `Quick test_alt_reset;
        ]
        @ qsuite
            [ prop_alt_sorted_by_dir_set; prop_alt_lock_all_covers_everything; prop_alt_to_lock_subset ]
      );
      ( "crt",
        [
          Alcotest.test_case "insert/mem" `Quick test_crt_insert_mem;
          Alcotest.test_case "way eviction" `Quick test_crt_way_eviction;
          Alcotest.test_case "clear" `Quick test_crt_clear;
          Alcotest.test_case "remove" `Quick test_crt_remove;
          Alcotest.test_case "geometry" `Quick test_crt_geometry;
        ] );
      ("decision", [ Alcotest.test_case "tree" `Quick test_decision_tree ]);
      ("indirection", [ Alcotest.test_case "propagation" `Quick test_indirection_propagation ]);
      ( "analysis",
        [
          Alcotest.test_case "immutable" `Quick test_analysis_immutable;
          Alcotest.test_case "likely immutable" `Quick test_analysis_likely_immutable;
          Alcotest.test_case "branch dependency" `Quick test_analysis_branch_dependency;
          Alcotest.test_case "taint through ALU" `Quick test_analysis_taint_through_alu;
          Alcotest.test_case "loop fixpoint" `Quick test_analysis_loop_fixpoint;
          Alcotest.test_case "data-only load" `Quick test_analysis_data_only_load;
          Alcotest.test_case "workload table 1" `Quick test_analysis_workload_counts;
          Alcotest.test_case "untagged indirection" `Quick test_analysis_untagged_indirection;
          Alcotest.test_case "taint through every binop" `Quick test_analysis_taint_every_binop;
          Alcotest.test_case "Mov Imm clears taint" `Quick test_analysis_mov_imm_clears_taint;
          Alcotest.test_case "mutable via another AR's writes" `Quick
            test_analysis_cross_ar_mutability;
        ] );
      ( "storage",
        [
          Alcotest.test_case "paper numbers" `Quick test_storage_paper_numbers;
          Alcotest.test_case "scales with entries" `Quick test_storage_scales;
        ] );
    ]
