(* PDES determinism net: the windowed conservative driver (DESIGN.md §12)
   must reproduce the sequential engine bit for bit — same stats fingerprint,
   same hardware-counter set, same final memory image — at every window size,
   across the whole engine-golden and sched-golden grids, on random
   workloads, and under the execution oracles. One positive test asserts the
   extended-burst machinery actually fires (a determinism net over a path
   that never executes would prove nothing). *)

module Engine = Machine.Engine
module Config = Machine.Config
module Pdes = Machine.Pdes
module Stats = Machine.Stats
module Workload = Machine.Workload
module Store = Mem.Store
module Perfctr = Simrt.Perfctr
module A = Isa.Asm
module I = Isa.Instr
module P = Isa.Program
module Scenarios = Sched.Scenarios

let windows = [ ("w1", Pdes.windowed 1); ("w16", Pdes.windowed 16); ("w256", Pdes.windowed 256); ("winf", Pdes.unbounded) ]

let presets =
  [ ("B", Config.baseline); ("P", Config.power_tm); ("C", Config.clear_rw); ("W", Config.clear_power) ]

let fingerprint stats =
  ( Stats.total_cycles stats,
    Stats.commits stats,
    Stats.aborts stats,
    Stats.instrs stats,
    Stats.wasted_instrs stats )

(* Run one config+workload sequentially and under PDES, demanding an
   identical fingerprint, counter set and memory image. Returns the PDES
   engine's perf counters (for the extension-fires test). *)
let assert_identical ~what cfg workload pdes =
  let seq = Engine.create cfg workload in
  let seq_stats = Engine.run seq in
  let par = Engine.create cfg workload in
  let par_stats = Engine.run ~pdes par in
  let sf = fingerprint seq_stats and pf = fingerprint par_stats in
  if sf <> pf then begin
    let a, b, c, d, e = sf and a', b', c', d', e' = pf in
    Alcotest.failf "%s: sequential (%d,%d,%d,%d,%d) <> pdes (%d,%d,%d,%d,%d)" what a b c d e a' b'
      c' d' e'
  end;
  let sc = Simrt.Counter.to_list (Stats.counters seq_stats) in
  let pc = Simrt.Counter.to_list (Stats.counters par_stats) in
  if sc <> pc then Alcotest.failf "%s: hardware counter sets differ" what;
  (match Store.image_diff (Store.snapshot (Engine.store seq)) (Store.snapshot (Engine.store par)) with
  | None -> ()
  | Some (addr, _, sv, pv) ->
      Alcotest.failf "%s: memory images differ at %d (seq %d, pdes %d)" what addr sv pv);
  Engine.perfctr par

(* ------------------------------------------------------------------ *)
(* The engine-golden grid (test_engine.ml's fingerprint table): every
   workload x preset x seed, at every window size. *)

let test_engine_grid (wname, pname, pdes) () =
  List.iter
    (fun (letter, preset) ->
      List.iter
        (fun seed ->
          let cfg =
            Config.with_seed { preset with Config.cores = 4; ops_per_thread = 40; max_retries = 4 } seed
          in
          let what = Printf.sprintf "%s/%s seed %d %s" wname letter seed pname in
          ignore (assert_identical ~what cfg (Workloads.Registry.find wname) pdes))
        [ 3; 5; 7 ])
    presets

(* ------------------------------------------------------------------ *)
(* The sched-golden grid (test_sched.ml's scenario table): every scheduler
   scenario x preset x seed on the stack benchmark, at every window size. *)

let test_sched_grid (pname, pdes) () =
  let stack = Workloads.Registry.find "stack" in
  List.iter
    (fun (sname, profile) ->
      List.iter
        (fun (letter, preset) ->
          List.iter
            (fun seed ->
              let cfg =
                Config.with_sched
                  { preset with Config.cores = 4; ops_per_thread = 40; max_retries = 4; seed }
                  profile
              in
              let what = Printf.sprintf "sched %s/%s seed %d %s" sname letter seed pname in
              ignore (assert_identical ~what cfg stack pdes))
            [ 3; 5; 7 ])
        presets)
    Scenarios.all

(* ------------------------------------------------------------------ *)
(* Extended bursts must actually fire: per-core private counters give every
   op a resolvable one-line footprint, all disjoint across cores, so the
   insulation proof succeeds whenever a leader is mid-speculation. *)

let private_counters_workload () =
  let ar =
    P.build_ar ~id:0 ~name:"bump" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"ctr" ();
        A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
        A.st b ~base:(I.Reg 0) ~src:(I.Reg 8) ~region:"ctr" ();
        A.halt b)
  in
  {
    Workload.name = "private-counters";
    description = "per-core disjoint counters (PDES extension test)";
    ars = [ ar ];
    memory_words = 1 lsl 16;
    setup = (fun _ _ -> ());
    make_driver =
      (fun ~tid ~threads:_ _ _ () ->
        (* one line per core, far apart: distinct lines and L3 sets *)
        Workload.op ar [ (0, 64 + (tid * 1024)) ]);
    pure_driver = true;
  }

let test_extension_fires () =
  let w = private_counters_workload () in
  let cfg = { Config.baseline with Config.cores = 4; ops_per_thread = 50; memory_words = 1 lsl 16 } in
  let perf = assert_identical ~what:"private counters" cfg w Pdes.unbounded in
  Alcotest.(check bool)
    (Printf.sprintf "extended bursts fired (got %d)" perf.Perfctr.pdes_ext_events)
    true
    (perf.Perfctr.pdes_ext_events > 0);
  Alcotest.(check bool) "windows counted" true (perf.Perfctr.pdes_windows > 0);
  Alcotest.(check bool) "lookahead accumulated" true (perf.Perfctr.pdes_lookahead_total > 0)

(* ------------------------------------------------------------------ *)
(* Random workloads: loop-free ARs over a closed pointer window (the
   test_fuzz discipline), swept across presets and scheduler profiles. *)

let window_base = 256
let window_words = 32

let gen_ar ~rng ~id =
  let gi bound = 1 + Random.State.int rng bound in
  let n = 3 + Random.State.int rng 10 in
  let body =
    Array.init (n + 1) (fun i ->
        if i = n then I.Halt
        else
          match Random.State.int rng 6 with
          | 0 -> I.Ld { dst = 4 + Random.State.int rng 4; base = I.Reg (Random.State.int rng 4); off = Random.State.int rng 8; region = "w" }
          | 1 ->
              I.St
                {
                  base = I.Reg (Random.State.int rng 4);
                  off = Random.State.int rng 8;
                  src = I.Reg (4 + Random.State.int rng 4);
                  region = "w";
                }
          | 2 -> I.Binop { op = I.Add; dst = 4 + Random.State.int rng 4; a = I.Reg (4 + Random.State.int rng 4); b = I.Imm (gi 100) }
          | 3 -> I.Mov { dst = 4 + Random.State.int rng 4; src = I.Imm (gi 1000) }
          | 4 ->
              let target = i + 1 + Random.State.int rng (n - i) in
              I.Br { cond = I.Lt; a = I.Reg (4 + Random.State.int rng 4); b = I.Imm (gi 50); target }
          | _ -> I.Nop)
  in
  P.make_ar ~id ~name:(Printf.sprintf "rnd%d" id) body

let gen_workload ~seed =
  let rng = Random.State.make [| 0x9de5; seed |] in
  let ars = List.init 3 (fun id -> gen_ar ~rng ~id) in
  let arr = Array.of_list ars in
  {
    Workload.name = Printf.sprintf "rnd-%d" seed;
    description = "random loop-free regions (PDES identity property)";
    ars;
    memory_words = window_base + window_words + 64;
    setup =
      (fun store rng ->
        for i = 0 to window_words - 1 do
          Store.write store (window_base + i) (window_base + Simrt.Rng.int rng window_words)
        done);
    make_driver =
      (fun ~tid:_ ~threads:_ _ rng () ->
        let ar = arr.(Simrt.Rng.int rng (Array.length arr)) in
        let inits = List.init 4 (fun r -> (r, window_base + Simrt.Rng.int rng window_words)) in
        Workload.op ar inits);
    pure_driver = true;
  }

let qcheck_random_identity =
  QCheck.Test.make ~name:"random workloads: pdes == sequential" ~count:12
    QCheck.(pair (int_bound 1000) (int_bound 2))
    (fun (seed, prof_idx) ->
      let w = gen_workload ~seed in
      let profile =
        List.nth [ Scenarios.symmetric; Scenarios.numa2x; Scenarios.hot_core ] prof_idx
      in
      List.iter
        (fun (letter, preset) ->
          let cfg =
            Config.with_sched
              { preset with Config.cores = 4; ops_per_thread = 12; memory_words = 1 lsl 16; seed = 11 + seed }
              profile
          in
          List.iter
            (fun (pname, pdes) ->
              let what = Printf.sprintf "rnd seed %d %s/%s %s" seed profile.Sched.Profile.name letter pname in
              ignore (assert_identical ~what cfg w pdes))
            [ ("w16", Pdes.windowed 16); ("winf", Pdes.unbounded) ])
        presets;
      true)

(* ------------------------------------------------------------------ *)
(* The four execution oracles stay green under PDES (witness capture is an
   observer, so extension is disabled and windowed basic bursts carry the
   run — exactly the fallback path the oracles must also cover). *)

let test_oracles_under_pdes () =
  List.iter
    (fun seed ->
      let w = gen_workload ~seed in
      List.iter
        (fun (letter, preset) ->
          let cfg = { preset with Config.cores = 4; ops_per_thread = 10; memory_words = 1 lsl 16 } in
          let sim = { Clear_repro.Run.cfg; workload = w; seed = 100 + seed } in
          let seq_stats, seq_verdict = Clear_repro.Run.run_sim_checked sim in
          let pdes_stats, pdes_verdict =
            Clear_repro.Run.run_sim_checked ~pdes:(Pdes.windowed 64) sim
          in
          if not (Check.Verdict.ok pdes_verdict) then
            Alcotest.failf "seed %d preset %s: oracle failed under PDES:\n%s" seed letter
              (Check.Verdict.to_string pdes_verdict);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d preset %s: sequential oracle clean" seed letter)
            true (Check.Verdict.ok seq_verdict);
          if fingerprint seq_stats <> fingerprint pdes_stats then
            Alcotest.failf "seed %d preset %s: checked stats differ under PDES" seed letter)
        presets)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)

let () =
  let engine_grid =
    List.concat_map
      (fun wname ->
        List.map
          (fun (pname, pdes) ->
            Alcotest.test_case (Printf.sprintf "%s @ %s" wname pname) `Slow
              (test_engine_grid (wname, pname, pdes)))
          windows)
      (* hashmap/bitcoin/bst are the engine-golden grid; mwobject and
         arrayswap have resolvable (register-relative / immutable)
         footprints, so they stress the extended-burst path on real
         workloads rather than only the basic one. *)
      [ "hashmap"; "bitcoin"; "bst"; "mwobject"; "arrayswap" ]
  in
  let sched_grid =
    List.map
      (fun (pname, pdes) ->
        Alcotest.test_case (Printf.sprintf "sched grid @ %s" pname) `Slow
          (test_sched_grid (pname, pdes)))
      windows
  in
  Alcotest.run "pdes"
    [
      ("engine-grid", engine_grid);
      ("sched-grid", sched_grid);
      ( "extension",
        [ Alcotest.test_case "extended bursts fire and stay identical" `Quick test_extension_fires ] );
      ("random", [ QCheck_alcotest.to_alcotest qcheck_random_identity ]);
      ( "oracles",
        [ Alcotest.test_case "all four oracles green under PDES" `Slow test_oracles_under_pdes ] );
    ]
