(* Scenario tests: direct reconstructions of situations the paper discusses —
   the Figure 5 cross-lock deadlock, S-CL deviation, ALT overflow, ERT
   eviction under many static ARs. *)

module Engine = Machine.Engine
module Config = Machine.Config
module Stats = Machine.Stats
module Workload = Machine.Workload
module Store = Mem.Store
module A = Isa.Asm
module I = Isa.Instr
module P = Isa.Program

let base_cfg =
  { Config.clear_rw with Config.cores = 2; ops_per_thread = 120; memory_words = 1 lsl 18 }

(* Paper Figure 5: core 0 locks line b and reads line a; core 1 locks line a
   and reads line b. Without nacks the two S-CL executions would deadlock;
   with nacks the blocked load aborts its AR and the system makes progress. *)
let fig5_workload () =
  let line_a = 64 and line_b = 128 in
  let ptr0 = 192 and ptr1 = 256 in
  (* AR 0: writes a, reads b (through a pointer — the indirection makes the
     region mutable, so its retry runs S-CL and locks only line a). AR 1 is
     the mirror image. Their cross reads reproduce Figure 5's cycle. *)
  let make_ar ~id ~name ~write_addr ~ptr_slot =
    P.build_ar ~id ~name (fun b ->
        A.ld b ~dst:7 ~base:(I.Imm ptr_slot) ~region:"ptr" ();
        A.ld b ~dst:8 ~base:(I.Reg 7) ~region:"x" ();
        A.ld b ~dst:9 ~base:(I.Imm write_addr) ~region:"x" ();
        A.add b ~dst:9 (I.Reg 9) (I.Imm 1);
        A.add b ~dst:9 (I.Reg 9) (I.Reg 8);
        A.st b ~base:(I.Imm write_addr) ~src:(I.Reg 9) ~region:"x" ();
        A.halt b)
  in
  let ar0 = make_ar ~id:0 ~name:"w_a_r_b" ~write_addr:line_a ~ptr_slot:ptr0 in
  let ar1 = make_ar ~id:1 ~name:"w_b_r_a" ~write_addr:line_b ~ptr_slot:ptr1 in
  {
    Workload.name = "fig5";
    description = "cross-locked reads (paper Figure 5)";
    ars = [ ar0; ar1 ];
    memory_words = 512;
    setup =
      (fun store _ ->
        Store.write store line_a 0;
        Store.write store line_b 0;
        Store.write store ptr0 line_b;
        Store.write store ptr1 line_a);
    make_driver = (fun ~tid ~threads:_ _ _ () -> Workload.op (if tid = 0 then ar0 else ar1) []);
    pure_driver = true;
  }

let test_fig5_no_deadlock () =
  (* The run must terminate (the engine's livelock guard would raise) and
     commit everything. *)
  let stats = Engine.run_workload base_cfg (fig5_workload ()) in
  Alcotest.(check int) "all commits" 240 (Stats.commits stats)

let test_fig5_values_consistent () =
  (* Both counters only ever increase by 1 + other (reads are of committed
     state), so the final values are deterministic per seed and the run is
     serializable: replaying the committed history sequentially must be
     *possible* — we verify the weaker but still sharp invariant that both
     cells are non-negative and the run is reproducible. *)
  let run () =
    let engine = Engine.create base_cfg (fig5_workload ()) in
    let _ = Engine.run engine in
    (Store.read (Engine.store engine) 64, Store.read (Engine.store engine) 128)
  in
  let a1 = run () and a2 = run () in
  Alcotest.(check (pair int int)) "deterministic" a1 a2

(* S-CL deviation: an AR whose footprint depends on a value another AR
   flips. Discovery classifies it mutable (S-CL); when the selector flips
   mid-stream the S-CL execution deviates from the learned footprint and must
   still be handled correctly. *)
let deviation_workload () =
  let selector = 64 and cell0 = 128 and cell1 = 192 in
  let flip =
    P.build_ar ~id:0 ~name:"flip" (fun b ->
        A.ld b ~dst:8 ~base:(I.Imm selector) ~region:"sel" ();
        A.binop b I.Xor ~dst:8 (I.Reg 8) (I.Imm 1);
        A.st b ~base:(I.Imm selector) ~src:(I.Reg 8) ~region:"sel" ();
        A.halt b)
  in
  let chase =
    P.build_ar ~id:1 ~name:"chase" (fun b ->
        (* address depends on the selector: footprint mutates across runs *)
        A.ld b ~dst:8 ~base:(I.Imm selector) ~region:"sel" ();
        A.mul b ~dst:9 (I.Reg 8) (I.Imm 64);
        A.add b ~dst:9 (I.Reg 9) (I.Imm cell0);
        A.ld b ~dst:10 ~base:(I.Reg 9) ~region:"cell" ();
        A.add b ~dst:10 (I.Reg 10) (I.Imm 1);
        A.st b ~base:(I.Reg 9) ~src:(I.Reg 10) ~region:"cell" ();
        A.halt b)
  in
  ( {
      Workload.name = "deviation";
      description = "footprint flips with a shared selector";
      ars = [ flip; chase ];
      memory_words = 256;
      setup =
        (fun store _ ->
          Store.write store selector 0;
          Store.write store cell0 0;
          Store.write store cell1 0);
      make_driver =
        (fun ~tid ~threads:_ _ rng () ->
          if tid = 0 && Simrt.Rng.chance rng 0.5 then Workload.op flip []
          else Workload.op chase []);
      pure_driver = true;
    },
    (cell0, cell1) )

let test_deviation_total_conserved () =
  let w, (cell0, cell1) = deviation_workload () in
  let cfg = { base_cfg with Config.cores = 4 } in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let store = Engine.store engine in
  let chases = Stats.commits_for_ar stats "chase" in
  Alcotest.(check int) "every chase incremented exactly one cell" chases
    (Store.read store cell0 + Store.read store cell1)

(* ALT overflow: an AR touching more than 32 distinct lines can never be
   converted; with CLEAR enabled it must behave like the baseline (plain
   retries, then fallback) and stay correct. *)
let wide_workload ~lines =
  let base = 64 in
  let ar =
    P.build_ar ~id:0 ~name:"wide" (fun b ->
        for i = 0 to lines - 1 do
          let addr = base + (i * 8) in
          A.ld b ~dst:8 ~base:(I.Imm addr) ~region:"w" ();
          A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
          A.st b ~base:(I.Imm addr) ~src:(I.Reg 8) ~region:"w" ()
        done;
        A.halt b)
  in
  {
    Workload.name = "wide";
    description = "AR wider than the ALT";
    ars = [ ar ];
    memory_words = 64 + (lines * 8) + 64;
    setup = (fun store _ -> Store.fill store 64 ~len:(lines * 8) 0);
    make_driver = (fun ~tid:_ ~threads:_ _ _ () -> Workload.op ar []);
    pure_driver = true;
  }

let test_alt_overflow_no_conversion () =
  let w = wide_workload ~lines:40 in
  let cfg = { base_cfg with Config.cores = 4; ops_per_thread = 40 } in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  Alcotest.(check int) "no NS-CL" 0 (Stats.commits_in_mode stats Stats.Nscl);
  Alcotest.(check int) "no S-CL" 0 (Stats.commits_in_mode stats Stats.Scl);
  Alcotest.(check int) "all commit" 160 (Stats.commits stats);
  (* every slot incremented once per committed op *)
  let store = Engine.store engine in
  Alcotest.(check int) "atomicity across 40 lines" 160 (Store.read store 64)

(* ERT pressure: more static ARs than ERT entries forces evictions; CLEAR
   must stay correct (conversions may just happen less often). *)
let many_ars_workload ~ar_count =
  let base = 64 in
  let ars =
    List.init ar_count (fun i ->
        P.build_ar ~id:i ~name:(Printf.sprintf "inc%d" i) (fun b ->
            let addr = base + (i * 8) in
            A.ld b ~dst:8 ~base:(I.Imm addr) ~region:"c" ();
            A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
            A.st b ~base:(I.Imm addr) ~src:(I.Reg 8) ~region:"c" ();
            A.halt b))
  in
  let arr = Array.of_list ars in
  {
    Workload.name = "many-ars";
    description = "more static ARs than ERT entries";
    ars;
    memory_words = 64 + (ar_count * 8) + 64;
    setup = (fun store _ -> Store.fill store 64 ~len:(ar_count * 8) 0);
    make_driver =
      (fun ~tid:_ ~threads:_ _ rng () ->
        Workload.op arr.(Simrt.Rng.int rng ar_count) []);
    pure_driver = true;
  }

let test_ert_pressure () =
  let ar_count = 40 (* well beyond the 16-entry ERT *) in
  let w = many_ars_workload ~ar_count in
  let cfg = { base_cfg with Config.cores = 8; ops_per_thread = 100 } in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  Alcotest.(check int) "all commit" 800 (Stats.commits stats);
  let store = Engine.store engine in
  let total = ref 0 in
  for i = 0 to ar_count - 1 do
    total := !total + Store.read store (64 + (i * 8))
  done;
  Alcotest.(check int) "increments conserved" 800 !total

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "scenarios"
    [
      ( "figure5",
        [
          case "no deadlock with nacks" test_fig5_no_deadlock;
          case "values deterministic" test_fig5_values_consistent;
        ] );
      ("deviation", [ case "total conserved under S-CL deviation" test_deviation_total_conserved ]);
      ("overflow", [ case "ALT overflow disables conversion" test_alt_overflow_no_conversion ]);
      ("ert", [ case "ERT pressure stays correct" test_ert_pressure ]);
    ]
