(* The scheduler-scenario test net: golden fingerprints pinning every
   scenario's simulated execution bit-for-bit, qcheck properties over the
   profile axis (latency-matrix well-formedness, think-time envelopes,
   start-offset phases), and jobs-invariance of a sweep run under an
   asymmetric profile. *)

module Engine = Machine.Engine
module Config = Machine.Config
module Stats = Machine.Stats
module Profile = Sched.Profile
module Scenarios = Sched.Scenarios
module Numa = Mem.Numa

let preset_of_letter = function
  | "B" -> Config.baseline
  | "P" -> Config.power_tm
  | "C" -> Config.clear_rw
  | _ -> Config.clear_power

(* ------------------------------------------------------------------ *)
(* Registry sanity *)

let test_registry_valid () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check (list string)) (name ^ " validates clean") [] (Profile.validate p);
      Alcotest.(check string) (name ^ " is its registry key") name p.Profile.name)
    Scenarios.all;
  Alcotest.(check bool) "symmetric is symmetric" true (Profile.is_symmetric Scenarios.symmetric);
  List.iter
    (fun (name, p) ->
      if name <> "symmetric" then
        Alcotest.(check bool) (name ^ " perturbs the machine") false (Profile.is_symmetric p))
    Scenarios.all;
  Alcotest.(check bool) "find hits" true (Scenarios.find "numa2x" = Some Scenarios.numa2x);
  Alcotest.(check bool) "find misses" true (Scenarios.find "nope" = None);
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  match Scenarios.find_exn "nope" with
  | _ -> Alcotest.fail "find_exn should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error lists valid names" true
        (List.for_all (fun n -> contains_sub msg n) Scenarios.names)

let test_total_ops () =
  Alcotest.(check int) "symmetric total" (8 * 40)
    (Profile.total_ops Scenarios.symmetric ~cores:8 ~base:40);
  (* hot_core: one core runs 2x the ops. *)
  Alcotest.(check int) "hot_core total" ((7 * 40) + 80)
    (Profile.total_ops Scenarios.hot_core ~cores:8 ~base:40)

(* ------------------------------------------------------------------ *)
(* Golden fingerprints: (total cycles, commits, aborts, instrs, wasted)
   for every (scenario, config, seed) on the stack benchmark at 4 cores,
   40 ops/thread, 4 retries. Captured from the initial sched subsystem;
   regenerate with:
     dune exec bin/clear_sim.exe -- sched --fingerprint --cores 4 --ops 40
   Any unintended drift here is a determinism break, not a tuning change —
   in particular the "symmetric" rows must match a pre-profile engine. *)
let golden_fingerprints =
  [
    ("symmetric", "B", 3, (28451, 160, 333, 1618, 638));
    ("symmetric", "B", 5, (31289, 160, 389, 1768, 728));
    ("symmetric", "B", 7, (32539, 160, 399, 1682, 684));
    ("symmetric", "P", 3, (28667, 160, 437, 2080, 1100));
    ("symmetric", "P", 5, (31522, 160, 496, 2197, 1165));
    ("symmetric", "P", 7, (30712, 160, 451, 2075, 1081));
    ("symmetric", "C", 3, (22857, 160, 126, 1967, 804));
    ("symmetric", "C", 5, (23770, 160, 130, 2085, 855));
    ("symmetric", "C", 7, (23971, 160, 121, 1947, 764));
    ("symmetric", "W", 3, (22441, 160, 124, 1931, 774));
    ("symmetric", "W", 5, (24109, 160, 128, 2079, 823));
    ("symmetric", "W", 7, (23243, 160, 125, 1954, 797));
    ("hot_core", "B", 3, (33124, 200, 478, 2059, 842));
    ("hot_core", "B", 5, (35162, 200, 499, 2179, 887));
    ("hot_core", "B", 7, (36021, 200, 541, 2162, 895));
    ("hot_core", "P", 3, (33090, 200, 593, 2698, 1485));
    ("hot_core", "P", 5, (38255, 200, 715, 3060, 1768));
    ("hot_core", "P", 7, (35347, 200, 631, 2795, 1532));
    ("hot_core", "C", 3, (23766, 200, 147, 2203, 846));
    ("hot_core", "C", 5, (25356, 200, 141, 2465, 945));
    ("hot_core", "C", 7, (25689, 200, 150, 2405, 935));
    ("hot_core", "W", 3, (24298, 200, 154, 2342, 919));
    ("hot_core", "W", 5, (25356, 200, 141, 2465, 945));
    ("hot_core", "W", 7, (25875, 200, 158, 2471, 996));
    ("skewed_think", "B", 3, (26873, 160, 292, 1494, 518));
    ("skewed_think", "B", 5, (31800, 160, 330, 1636, 600));
    ("skewed_think", "B", 7, (31972, 160, 309, 1575, 577));
    ("skewed_think", "P", 3, (29224, 160, 452, 2099, 1123));
    ("skewed_think", "P", 5, (32454, 160, 481, 2228, 1196));
    ("skewed_think", "P", 7, (32192, 160, 469, 2204, 1206));
    ("skewed_think", "C", 3, (22709, 160, 110, 1788, 681));
    ("skewed_think", "C", 5, (25076, 160, 114, 1910, 731));
    ("skewed_think", "C", 7, (24742, 160, 114, 1843, 714));
    ("skewed_think", "W", 3, (22172, 160, 126, 1872, 777));
    ("skewed_think", "W", 5, (24910, 160, 112, 1902, 725));
    ("skewed_think", "W", 7, (25090, 160, 113, 1832, 703));
    ("numa2x", "B", 3, (46708, 160, 497, 1842, 866));
    ("numa2x", "B", 5, (52640, 160, 551, 2039, 1003));
    ("numa2x", "B", 7, (49695, 160, 496, 1846, 860));
    ("numa2x", "P", 3, (44556, 160, 653, 2455, 1479));
    ("numa2x", "P", 5, (49170, 160, 754, 2700, 1664));
    ("numa2x", "P", 7, (51687, 160, 771, 2713, 1723));
    ("numa2x", "C", 3, (30576, 160, 157, 2043, 864));
    ("numa2x", "C", 5, (30801, 160, 143, 2248, 895));
    ("numa2x", "C", 7, (30127, 160, 130, 2078, 815));
    ("numa2x", "W", 3, (30689, 160, 189, 2232, 965));
    ("numa2x", "W", 5, (30781, 160, 143, 2238, 896));
    ("numa2x", "W", 7, (32646, 160, 162, 2215, 912));
    ("phased_start", "B", 3, (29411, 160, 316, 1559, 583));
    ("phased_start", "B", 5, (31819, 160, 385, 1720, 684));
    ("phased_start", "B", 7, (31235, 160, 317, 1552, 558));
    ("phased_start", "P", 3, (29127, 160, 428, 2002, 1026));
    ("phased_start", "P", 5, (33517, 160, 518, 2290, 1254));
    ("phased_start", "P", 7, (30792, 160, 456, 2111, 1125));
    ("phased_start", "C", 3, (22851, 160, 112, 1838, 721));
    ("phased_start", "C", 5, (24019, 160, 122, 2059, 838));
    ("phased_start", "C", 7, (23821, 160, 113, 1903, 748));
    ("phased_start", "W", 3, (22399, 160, 120, 1868, 743));
    ("phased_start", "W", 5, (24019, 160, 122, 2059, 838));
    ("phased_start", "W", 7, (23821, 160, 113, 1903, 748));
  ]

let test_golden_fingerprints () =
  let stack = Workloads.Registry.find "stack" in
  List.iter
    (fun (sname, letter, seed, (gc, gcm, gab, gin, gwa)) ->
      let cfg =
        Config.with_sched
          {
            (preset_of_letter letter) with
            Config.cores = 4;
            ops_per_thread = 40;
            max_retries = 4;
            seed;
          }
          (Scenarios.find_exn sname)
      in
      let stats = Engine.run_workload cfg stack in
      let got =
        ( Stats.total_cycles stats,
          Stats.commits stats,
          Stats.aborts stats,
          Stats.instrs stats,
          Stats.wasted_instrs stats )
      in
      if got <> (gc, gcm, gab, gin, gwa) then begin
        let c, cm, ab, ins, wa = got in
        Alcotest.failf "%s/%s seed %d: got (%d,%d,%d,%d,%d), golden (%d,%d,%d,%d,%d)" sname letter
          seed c cm ab ins wa gc gcm gab gin gwa
      end)
    golden_fingerprints

(* The symmetric profile must commit exactly cores x ops, and hot_core must
   commit the multiplied total — the golden table already encodes this, but
   state it explicitly so a regeneration cannot silently change semantics. *)
let test_commit_totals () =
  List.iter
    (fun (sname, _, _, (_, commits, _, _, _)) ->
      let expected =
        Profile.total_ops (Scenarios.find_exn sname) ~cores:4 ~base:40
      in
      Alcotest.(check int) (sname ^ " commit total") expected commits)
    golden_fingerprints

(* The NUMA counter must be zero on every flat scenario and positive under
   numa2x (remote traffic is unavoidable with a shared stack). *)
let test_numa_counter () =
  let stack = Workloads.Registry.find "stack" in
  let run sname =
    let cfg =
      Config.with_sched
        { Config.baseline with Config.cores = 4; ops_per_thread = 40; seed = 3 }
        (Scenarios.find_exn sname)
    in
    let stats = Engine.run_workload cfg stack in
    Simrt.Counter.get (Stats.counters stats) "numa_adder_cycles"
  in
  Alcotest.(check int) "symmetric charges nothing" 0 (run "symmetric");
  Alcotest.(check int) "hot_core charges nothing" 0 (run "hot_core");
  Alcotest.(check bool) "numa2x charges cycles" true (run "numa2x" > 0)

(* ------------------------------------------------------------------ *)
(* qcheck: latency-matrix well-formedness *)

let qcheck_two_socket_well_formed =
  QCheck.Test.make ~name:"two_socket is well-formed for any remote >= 0" ~count:200
    QCheck.(int_range 0 10_000)
    (fun remote -> Numa.well_formed (Numa.two_socket ~remote))

let qcheck_malformed_rejected =
  (* Perturb one off-diagonal cell of a valid matrix asymmetrically, put a
     non-zero on the diagonal, or make a cell negative: all must be caught. *)
  QCheck.Test.make ~name:"asymmetry, diagonal and sign violations rejected" ~count:200
    QCheck.(pair (int_range 1 500) (int_range 0 1))
    (fun (remote, which) ->
      let asym = Numa.two_socket ~remote in
      asym.Numa.adders.(0).(1) <- remote + 1;
      let diag = Numa.two_socket ~remote in
      diag.Numa.adders.(which).(which) <- 1;
      let neg = Numa.two_socket ~remote in
      neg.Numa.adders.(1).(0) <- -remote;
      neg.Numa.adders.(0).(1) <- -remote;
      (not (Numa.well_formed asym))
      && (not (Numa.well_formed diag))
      && not (Numa.well_formed neg))

let qcheck_adder_symmetric =
  QCheck.Test.make ~name:"adder is symmetric in (socket, slice)" ~count:300
    QCheck.(triple (int_range 0 1_000) (int_range 0 31) (int_range 0 4_095))
    (fun (remote, core, dir_set) ->
      let m = Numa.two_socket ~remote in
      let cores = 32 in
      let s = Numa.socket_of_core m ~cores core in
      let h = Numa.home_of_dir_set m ~dir_set in
      let a = Numa.adder m ~cores ~core ~dir_set in
      a = m.Numa.adders.(s).(h) && a = m.Numa.adders.(h).(s) && a >= 0)

let qcheck_flat_adder_zero =
  QCheck.Test.make ~name:"flat matrix never charges" ~count:200
    QCheck.(pair (int_range 0 63) (int_range 0 4_095))
    (fun (core, dir_set) -> Numa.adder Numa.flat ~cores:64 ~core ~dir_set = 0)

(* ------------------------------------------------------------------ *)
(* qcheck: think-time samples stay inside the declared envelope *)

let gen_dist =
  QCheck.Gen.(
    oneof
      [
        return Profile.Default;
        map (fun c -> Profile.Const c) (int_bound 500);
        map2 (fun lo span -> Profile.Uniform { lo; hi = lo + span }) (int_bound 300) (int_bound 400);
        map3
          (fun lo span heat ->
            Profile.Burst { lo; hi = lo + span; heat = float_of_int heat /. 4.0 })
          (int_bound 300) (int_bound 400) (int_bound 12);
      ])

let arb_profile_inputs =
  QCheck.make
    ~print:(fun (d, base, seed) -> Printf.sprintf "(%s, base %d, seed %d)" (Profile.dist_name d) base seed)
    QCheck.Gen.(triple gen_dist (int_range 1 400) (int_bound 10_000))

let qcheck_think_in_bounds =
  QCheck.Test.make ~name:"sample_think within think_bounds for all seeds" ~count:300
    arb_profile_inputs
    (fun (dist, base, seed) ->
      let p = { Scenarios.symmetric with Profile.think = dist; name = "q" } in
      let rng = Simrt.Rng.create seed in
      let lo, hi = Profile.think_bounds p ~core:3 ~base in
      let ok = ref (lo <= hi) in
      for _ = 1 to 100 do
        let s = Profile.sample_think p ~core:3 ~base rng in
        if s < lo || s > hi then ok := false
      done;
      !ok)

let qcheck_hot_think_selected =
  QCheck.Test.make ~name:"hot cores draw from hot_think's envelope" ~count:200
    arb_profile_inputs
    (fun (dist, base, seed) ->
      let p =
        {
          Scenarios.symmetric with
          Profile.name = "q-hot";
          hot_cores = 2;
          hot_think = dist;
          think = Profile.Const 7;
        }
      in
      let rng = Simrt.Rng.create seed in
      let lo, hi = Profile.think_bounds p ~core:0 ~base in
      let cold_lo, cold_hi = Profile.think_bounds p ~core:2 ~base in
      let hot_ok = ref true in
      for _ = 1 to 50 do
        let s = Profile.sample_think p ~core:1 ~base rng in
        if s < lo || s > hi then hot_ok := false
      done;
      !hot_ok && cold_lo = 7 && cold_hi = 7
      && Profile.sample_think p ~core:2 ~base rng = 7)

let qcheck_start_offset_bounds =
  QCheck.Test.make ~name:"start_offset = stride*core + U[0, base]" ~count:300
    QCheck.(triple (int_range 0 500) (int_range 0 31) (int_range 1 400))
    (fun (stride, core, base) ->
      let p = { Scenarios.symmetric with Profile.name = "q-stride"; phase_stride = stride } in
      let rng = Simrt.Rng.create (stride + core + base) in
      let off = Profile.start_offset p ~core ~base rng in
      off >= stride * core && off <= (stride * core) + base)

(* ------------------------------------------------------------------ *)
(* Jobs invariance: a sweep under an asymmetric schedule profile must be
   bit-identical at any job count (same contract the symmetric suite has). *)

let sched_micro_options =
  {
    Clear_repro.Experiments.cores = 4;
    ops_per_thread = 30;
    seeds = [ 3; 5 ];
    trim = 0;
    retry_choices = [ 4 ];
    sched = Scenarios.numa2x;
  }

let test_jobs_invariant_with_profile () =
  let workloads = [ Workloads.Stack.workload; Workloads.Bitcoin.workload ] in
  let run jobs = Clear_repro.Experiments.run_suite ~jobs ~workloads sched_micro_options in
  let s1 = run 1 and s2 = run 2 in
  Alcotest.(check bool)
    "numa2x sweep bit-identical at jobs 1 vs 2" true
    (s1.Clear_repro.Experiments.rows = s2.Clear_repro.Experiments.rows)

let test_profile_changes_results () =
  (* The non-symmetric scenarios must actually change the simulation — a
     profile that is silently ignored would pass every other test here. *)
  let stack = Workloads.Registry.find "stack" in
  let cycles sname =
    let cfg =
      Config.with_sched
        { Config.baseline with Config.cores = 4; ops_per_thread = 40; seed = 3 }
        (Scenarios.find_exn sname)
    in
    Stats.total_cycles (Engine.run_workload cfg stack)
  in
  let base = cycles "symmetric" in
  List.iter
    (fun sname ->
      if sname <> "symmetric" then
        Alcotest.(check bool) (sname ^ " perturbs the run") true (cycles sname <> base))
    Scenarios.names

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sched"
    [
      ( "registry",
        [
          Alcotest.test_case "scenarios validate" `Quick test_registry_valid;
          Alcotest.test_case "total ops" `Quick test_total_ops;
        ] );
      ( "golden",
        [
          Alcotest.test_case "scenario fingerprints" `Quick test_golden_fingerprints;
          Alcotest.test_case "commit totals" `Quick test_commit_totals;
          Alcotest.test_case "numa counter" `Quick test_numa_counter;
          Alcotest.test_case "profiles perturb" `Quick test_profile_changes_results;
        ] );
      ( "properties",
        qsuite
          [
            qcheck_two_socket_well_formed;
            qcheck_malformed_rejected;
            qcheck_adder_symmetric;
            qcheck_flat_adder_zero;
            qcheck_think_in_bounds;
            qcheck_hot_think_selected;
            qcheck_start_offset_bounds;
          ] );
      ( "parallel",
        [ Alcotest.test_case "jobs invariance under numa2x" `Quick test_jobs_invariant_with_profile ] );
    ]
