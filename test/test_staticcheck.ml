(* Tests for the static AR verifier: abstract-interpretation summaries,
   CLEAR table/decision prediction, the lint pass, and the static-vs-dynamic
   soundness gate (including the injected-bug path proving the gate fires). *)

module A = Staticcheck.Absint
module Pr = Staticcheck.Predict
module L = Staticcheck.Lint
module G = Staticcheck.Gate
module I = Isa.Instr
module P = Isa.Program

let build ?(id = 0) name f = P.build_ar ~id ~name f

(* ------------------------------------------------------------------ *)
(* Agreement with the reference mutability analysis over the registry *)

let test_registry_agreement () =
  List.iter
    (fun (w : Machine.Workload.t) ->
      let written_regions = List.concat_map P.regions_written w.ars in
      List.iter2
        (fun ar (ar', c) ->
          assert (ar == ar');
          let s = A.analyze_ar ar in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s indirections" w.name ar.P.name)
            (Clear.Analysis.indirections ar) s.A.indirections;
          let p = Pr.predict ~written_regions s in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s classification" w.name ar.P.name)
            (Clear.Analysis.classification_name c)
            (Clear.Analysis.classification_name p.Pr.classification))
        w.ars
        (Clear.Analysis.classify_workload w.ars))
    Workloads.Registry.all

(* Every registry AR must come out with a sound, non-trivial summary: a
   reachable Halt and a finite instruction bound on acyclic bodies. *)
let test_registry_summaries_sane () =
  List.iter
    (fun (w : Machine.Workload.t) ->
      List.iter
        (fun (ar : P.ar) ->
          let s = A.analyze_ar ar in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has a Halt path" w.name ar.P.name)
            true
            (s.A.min_store_execs < max_int);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s does not fall off the end" w.name ar.P.name)
            false s.A.falls_off_end)
        w.ars)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Decision envelope *)

let test_envelope_immutable_fit () =
  (* tiny, load-free, absolutely addressed: the only possible decision is
     NS-CL (fits everything, provably no indirection) *)
  let ar =
    build "tiny" (fun b ->
        Isa.Asm.st b ~base:(I.Imm 64) ~src:(I.Imm 1) ~region:"a" ();
        Isa.Asm.halt b)
  in
  let p = Pr.predict ~written_regions:[ "a" ] (A.analyze_ar ar) in
  Alcotest.(check string) "envelope" "NS-CL" (Pr.envelope_name p.Pr.envelope);
  Alcotest.(check bool) "NS-CL in" true
    (Pr.decision_in_envelope p.Pr.envelope Clear.Decision.Ns_cl);
  Alcotest.(check bool) "S-CL out" false
    (Pr.decision_in_envelope p.Pr.envelope Clear.Decision.S_cl);
  Alcotest.(check bool) "spec out" false
    (Pr.decision_in_envelope p.Pr.envelope Clear.Decision.Speculative_retry)

let test_envelope_fallback_only () =
  (* every path executes 2 stores; with a 1-entry SQ no discovery can ever
     complete, so the envelope is empty (fallback/speculation only) *)
  let ar =
    build "twostores" (fun b ->
        Isa.Asm.st b ~base:(I.Imm 64) ~src:(I.Imm 1) ~region:"a" ();
        Isa.Asm.st b ~base:(I.Imm 72) ~src:(I.Imm 2) ~region:"a" ();
        Isa.Asm.halt b)
  in
  let params = { Pr.default_params with Pr.sq_entries = 1 } in
  let p = Pr.predict ~params ~written_regions:[ "a" ] (A.analyze_ar ar) in
  Alcotest.(check bool) "fallback only" true p.Pr.envelope.Pr.fallback_only;
  Alcotest.(check string) "name" "fallback-only" (Pr.envelope_name p.Pr.envelope)

(* ------------------------------------------------------------------ *)
(* Lint *)

let expected_demo_errors = [ "div-zero"; "absurd-offset"; "target-range"; "missing-halt" ]

let test_lint_broken_demo () =
  let diags = L.check_body ~name:"demo" L.broken_demo in
  Alcotest.(check int) "error count" (List.length expected_demo_errors) (L.errors diags);
  let error_codes =
    List.filter_map (fun (d : L.diag) -> if d.L.severity = L.Error then Some d.L.code else None)
      diags
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "error codes" (List.sort compare expected_demo_errors) error_codes;
  (* the warnings are present too *)
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " reported") true
        (List.exists (fun (d : L.diag) -> d.L.code = code) diags))
    [ "dead-write"; "negative-offset"; "untagged-region" ]

let test_lint_registry_clean () =
  List.iter
    (fun (w : Machine.Workload.t) ->
      List.iter
        (fun ar ->
          let diags = L.check_ar ar in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s error-free" w.name ar.P.name)
            0 (L.errors diags))
        w.ars)
    Workloads.Registry.all

let test_lint_unreachable () =
  let body =
    [|
      I.Jmp 2;
      I.Mov { dst = 8; src = I.Imm 1 } (* unreachable *);
      I.Halt;
    |]
  in
  let diags = L.check_body ~name:"skip" body in
  Alcotest.(check bool) "unreachable flagged" true
    (List.exists (fun (d : L.diag) -> d.L.code = "unreachable" && d.L.index = Some 1) diags);
  Alcotest.(check int) "no errors" 0 (L.errors diags)

(* ------------------------------------------------------------------ *)
(* Soundness gate: property on random valid bodies *)

(* Generated bodies keep every value non-negative (no Sub/Div/Rem/Shl) so
   word addresses stay non-negative, matching the engine's address space.
   Branches may jump backward — the interpreter's fuel guard bounds those
   runs, and the containment property is checked on whatever prefix ran. *)
let gen_instr ~i ~n rng =
  let gi bound = 1 + Random.State.int rng bound in
  let data_reg () = 8 + Random.State.int rng 4 in
  let base_reg () = Random.State.int rng 4 in
  let operand () =
    if Random.State.bool rng then I.Reg (data_reg ()) else I.Imm (Random.State.int rng 200)
  in
  let base () =
    if Random.State.bool rng then I.Reg (base_reg ()) else I.Imm (64 + Random.State.int rng 256)
  in
  let region () = [| "a"; "b"; "c" |].(Random.State.int rng 3) in
  match Random.State.int rng 10 with
  | 0 | 1 ->
      I.Ld
        {
          dst = (if Random.State.bool rng then data_reg () else base_reg ());
          base = base ();
          off = Random.State.int rng 16;
          region = region ();
        }
  | 2 | 3 ->
      I.St { base = base (); off = Random.State.int rng 16; src = operand (); region = region () }
  | 4 -> I.Mov { dst = data_reg (); src = I.Imm (Random.State.int rng 500) }
  | 5 | 6 ->
      let ops = [| I.Add; I.Mul; I.And; I.Or; I.Xor; I.Min; I.Max; I.Shr |] in
      I.Binop
        {
          op = ops.(Random.State.int rng (Array.length ops));
          dst = data_reg ();
          a = operand ();
          b = operand ();
        }
  | 7 ->
      let conds = [| I.Eq; I.Ne; I.Lt; I.Le; I.Gt; I.Ge |] in
      let target =
        if Random.State.int rng 4 = 0 then Random.State.int rng (i + 1) (* backward: may loop *)
        else i + gi (n - i)
      in
      I.Br { cond = conds.(Random.State.int rng 6); a = operand (); b = operand (); target }
  | 8 -> I.Nop
  | _ -> I.Mov { dst = data_reg (); src = I.Reg (data_reg ()) }

let gen_ar seed =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let n = 2 + Random.State.int rng 12 in
  let body = Array.init (n + 1) (fun i -> if i = n then I.Halt else gen_instr ~i ~n rng) in
  let init_regs = List.init 4 (fun r -> (r, 64 + Random.State.int rng 512)) in
  (P.make_ar ~id:seed ~name:(Printf.sprintf "rand%d" seed) body, init_regs)

let run_recorded ar ~init_regs =
  let mem = Hashtbl.create 64 in
  let reads = ref [] and writes = ref [] and store_count = ref 0 in
  let load a =
    reads := Mem.Addr.line_of a :: !reads;
    Option.value (Hashtbl.find_opt mem a) ~default:0
  in
  let store a v =
    incr store_count;
    writes := Mem.Addr.line_of a :: !writes;
    Hashtbl.replace mem a v
  in
  let completed =
    match Isa.Interp.run ar ~init_regs ~load ~store with
    | () -> true
    | exception Isa.Interp.Error _ -> false (* fuel: generated backward branch looped *)
  in
  (!reads, !writes, !store_count, completed)

let prop_containment =
  QCheck.Test.make ~name:"dynamic footprint and store count within static bounds" ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ar, init_regs = gen_ar seed in
      let reads, writes, store_count, completed = run_recorded ar ~init_regs in
      let gate = G.create Pr.default_params in
      (match G.check_commit gate ~ar ~init_regs ~reads ~writes with
      | Ok () -> ()
      | Error v ->
          QCheck.Test.fail_reportf "seed %d: %s" seed (Format.asprintf "%a" G.pp_violation v));
      (* the per-attempt store bound only applies to completed attempts *)
      (if completed then
         let s = G.summary gate ar in
         match s.A.store_execs with
         | A.Unbounded -> ()
         | A.Finite k ->
             if store_count > k then
               QCheck.Test.fail_reportf "seed %d: %d stores > static bound %d" seed store_count k);
      true)

(* The interval cover must contain the exact enumeration whenever both
   resolve — [lines_cover] is advertised as a superset of [lines_for]. *)
let in_cover cover line = Array.exists (fun (lo, hi) -> lo <= line && line <= hi) cover

let prop_cover_superset =
  QCheck.Test.make ~name:"lines_cover contains lines_for whenever both resolve" ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ar, init_regs = gen_ar seed in
      let fp = Staticcheck.Footprint.of_ar ar in
      (match
         ( Staticcheck.Footprint.lines_for_r fp ~init:init_regs,
           Staticcheck.Footprint.lines_cover fp ~init:init_regs )
       with
      | `Lines lines, Some cover ->
          Array.iter
            (fun l ->
              if not (in_cover cover l) then
                QCheck.Test.fail_reportf "seed %d: exact line %d outside cover" seed l)
            lines
      | `Lines _, None ->
          QCheck.Test.fail_reportf "seed %d: exact set resolved but cover did not" seed
      | (`Capped | `Unresolvable), _ -> ());
      true)

(* Dynamic soundness of the cover alone: every line an execution actually
   touches lies inside [lines_cover] under the same binding — the property
   the PDES extension path and the conflict matrix both lean on. *)
let prop_dynamic_in_cover =
  QCheck.Test.make ~name:"every dynamic footprint line lies in the static cover" ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ar, init_regs = gen_ar seed in
      let reads, writes, _store_count, _completed = run_recorded ar ~init_regs in
      (match Staticcheck.Footprint.lines_cover (Staticcheck.Footprint.of_ar ar) ~init:init_regs with
      | None -> () (* unbounded site: no cover claimed, nothing to check *)
      | Some cover ->
          List.iter
            (fun l ->
              if not (in_cover cover l) then
                QCheck.Test.fail_reportf "seed %d: dynamic line %d escapes the cover" seed l)
            (reads @ writes));
      true)

(* ------------------------------------------------------------------ *)
(* Soundness gate: the injected analyzer bug is caught *)

let test_gate_injected_bug_fires () =
  let ar =
    build "onestore" (fun b ->
        Isa.Asm.st b ~base:(I.Imm 64) ~src:(I.Imm 1) ~region:"a" ();
        Isa.Asm.halt b)
  in
  let healthy = G.create Pr.default_params in
  let faulty = G.create ~fault_drop_store:true Pr.default_params in
  let writes = [ Mem.Addr.line_of 64 ] in
  (match G.check_commit healthy ~ar ~init_regs:[] ~reads:[] ~writes with
  | Ok () -> ()
  | Error v -> Alcotest.failf "healthy gate fired: %a" G.pp_violation v);
  match G.check_commit faulty ~ar ~init_regs:[] ~reads:[] ~writes with
  | Error (G.Footprint_escape { access = `Write; _ }) -> ()
  | Error v -> Alcotest.failf "wrong violation: %a" G.pp_violation v
  | Ok () -> Alcotest.fail "faulty gate did not fire"

(* The injected bug must surface as its own verdict class on a real engine
   run, with the other three oracles still passing. *)
let test_gate_injected_bug_distinct_verdict () =
  let cfg =
    Machine.Config.with_seed
      { Machine.Config.clear_rw with Machine.Config.cores = 2; ops_per_thread = 10 }
      7
  in
  let w = Workloads.Registry.find "arrayswap" in
  let collector = Check.Collector.create ~cores:cfg.Machine.Config.cores in
  let engine = Machine.Engine.create ~check:collector cfg w in
  let _stats = Machine.Engine.run engine in
  let final = Mem.Store.snapshot (Machine.Engine.store engine) in
  let params =
    Pr.params_of ~alt_capacity:cfg.Machine.Config.alt_capacity ~sq_entries:cfg.sq_entries
      ~rob_entries:cfg.rob_entries ~crt_entries:cfg.crt_entries ~crt_ways:cfg.crt_ways
      cfg.mem_params
  in
  let faulty = G.create ~fault_drop_store:true params in
  let v = Check.Verdict.evaluate ~static_gate:faulty collector ~final in
  Alcotest.(check bool) "verdict fails" false (Check.Verdict.ok v);
  Alcotest.(check bool) "serial still ok" true (Result.is_ok v.Check.Verdict.serial);
  Alcotest.(check bool) "replay still ok" true (Result.is_ok v.Check.Verdict.replay);
  Alcotest.(check bool) "locks still ok" true (Result.is_ok v.Check.Verdict.locks);
  match v.Check.Verdict.static_ with
  | Some (Error (G.Footprint_escape _)) -> ()
  | Some (Error v') -> Alcotest.failf "wrong violation class: %a" G.pp_violation v'
  | Some (Ok ()) -> Alcotest.fail "static gate passed despite injected bug"
  | None -> Alcotest.fail "no static gate in verdict"

(* And the healthy gate passes a full checked run end to end. *)
let test_gate_checked_run_passes () =
  let cfg = { Machine.Config.clear_power with Machine.Config.cores = 2; ops_per_thread = 10 } in
  let w = Workloads.Registry.find "sorted-list" in
  let _stats, v = Clear_repro.Run.run_sim_checked { Clear_repro.Run.cfg; workload = w; seed = 5 } in
  Alcotest.(check bool) "verdict ok" true (Check.Verdict.ok v);
  match v.Check.Verdict.static_ with
  | Some (Ok ()) -> ()
  | Some (Error v') -> Alcotest.failf "static gate fired: %a" G.pp_violation v'
  | None -> Alcotest.fail "checked run carried no static gate"

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "staticcheck"
    [
      ( "agreement",
        [
          Alcotest.test_case "classification matches Clear.Analysis" `Quick
            test_registry_agreement;
          Alcotest.test_case "registry summaries sane" `Quick test_registry_summaries_sane;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "immutable fit is NS-CL only" `Quick test_envelope_immutable_fit;
          Alcotest.test_case "SQ-starved body is fallback-only" `Quick test_envelope_fallback_only;
        ] );
      ( "lint",
        [
          Alcotest.test_case "broken demo hits every error" `Quick test_lint_broken_demo;
          Alcotest.test_case "registry is error-free" `Quick test_lint_registry_clean;
          Alcotest.test_case "unreachable code" `Quick test_lint_unreachable;
        ] );
      ( "gate",
        [
          Alcotest.test_case "injected bug fires" `Quick test_gate_injected_bug_fires;
          Alcotest.test_case "injected bug as distinct verdict" `Quick
            test_gate_injected_bug_distinct_verdict;
          Alcotest.test_case "checked run passes" `Quick test_gate_checked_run_passes;
        ]
        @ qsuite [ prop_containment; prop_cover_superset; prop_dynamic_in_cover ] );
    ]
