(* Unit and property tests for the simulator runtime: RNG, event queue,
   statistical summaries, counters, domain pool. *)

module Rng = Simrt.Rng
module Event_queue = Simrt.Event_queue
module Summary = Simrt.Summary
module Counter = Simrt.Counter
module Pool = Simrt.Pool

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 42 in
  let child1 = Rng.split parent 1 in
  (* Drawing from the parent must not change what a later identical split
     yields. *)
  let _ = Rng.next_int64 parent in
  let child1' = Rng.split parent 1 in
  Alcotest.(check int64) "split is draw-order independent" (Rng.next_int64 child1)
    (Rng.next_int64 child1')

let test_rng_split_distinct () =
  let parent = Rng.create 42 in
  let c1 = Rng.split parent 1 and c2 = Rng.split parent 2 in
  Alcotest.(check bool) "salted splits differ" true (Rng.next_int64 c1 <> Rng.next_int64 c2)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_chance_extremes () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "p=0" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1" true (Rng.chance rng 1.0)

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in stays in range" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 200))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let hi = lo + span in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_zipf_bounds =
  QCheck.Test.make ~name:"Rng.zipf stays in [0, n)" ~count:500
    QCheck.(triple small_int (int_range 1 100) (float_range 0.0 3.0))
    (fun (seed, n, theta) ->
      let rng = Rng.create seed in
      let v = Rng.zipf rng ~n ~theta in
      v >= 0 && v < n)

(* zipf draws exactly one uniform and maps it through u^(1+theta), which
   is pointwise decreasing in theta — so on the same stream, a higher
   theta can never yield a larger index. This is the "more skew means
   more popular keys" guarantee the open-loop harness leans on. *)
let prop_zipf_theta_monotone =
  QCheck.Test.make ~name:"Rng.zipf: higher theta, smaller index (same stream)" ~count:500
    QCheck.(quad small_int (int_range 1 10_000) (float_range 0.01 4.0) (float_range 0.01 4.0))
    (fun (seed, n, t1, t2) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let a = Rng.zipf (Rng.create seed) ~n ~theta:hi in
      let b = Rng.zipf (Rng.create seed) ~n ~theta:lo in
      a <= b)

let test_zipf_skew () =
  (* With strong skew, index 0's bucket should dominate. *)
  let rng = Rng.create 13 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Rng.zipf rng ~n:10 ~theta:2.0 in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "low indices dominate" true (counts.(0) > counts.(9) * 3)

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "c";
  Event_queue.push q ~time:1 "a";
  Event_queue.push q ~time:3 "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "-" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.push q ~time:7 x) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4 ] order

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:9 ();
  Event_queue.push q ~time:2 ();
  Alcotest.(check (option int)) "min time" (Some 2) (Event_queue.peek_time q)

let test_queue_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1 ();
  Event_queue.clear q;
  Alcotest.(check int) "cleared" 0 (Event_queue.length q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"pops come out time-sorted" ~count:200
    QCheck.(list (int_range 0 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* The simulator's determinism hinges on the full (time, seq) order: among
   equal times, events pop in push order. A narrow time range forces many
   ties; payloads carry the push index so the expected order is the stable
   sort of indices by time. *)
let prop_queue_time_seq_sorted =
  QCheck.Test.make ~name:"pop order is (time, seq)-sorted, FIFO among ties" ~count:300
    QCheck.(list (int_range 0 20))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t (t, i)) times;
      let rec drain acc =
        match Event_queue.pop q with Some (_, p) -> drain (p :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      popped = expected)

(* pop_until must be observationally equal to repeated pop while the head
   is at or before the horizon — same events, same order — and must leave
   everything later untouched. *)
let prop_queue_pop_until =
  QCheck.Test.make ~name:"pop_until == repeated pop up to the horizon" ~count:300
    QCheck.(pair (list (int_range 0 30)) (int_range 0 30))
    (fun (times, horizon) ->
      let fill () =
        let q = Event_queue.create () in
        List.iteri (fun i t -> Event_queue.push q ~time:t (t, i)) times;
        q
      in
      let qa = fill () and qb = fill () in
      let batch = Event_queue.pop_until qa ~time:horizon in
      let rec drain acc =
        match Event_queue.peek_time qb with
        | Some t when t <= horizon -> (
            match Event_queue.pop qb with Some ev -> drain (ev :: acc) | None -> List.rev acc)
        | _ -> List.rev acc
      in
      let manual = drain [] in
      let rec rest q acc =
        match Event_queue.pop q with Some ev -> rest q (ev :: acc) | None -> List.rev acc
      in
      batch = manual && rest qa [] = rest qb [])

(* Interleaved pushes and pops must preserve the same invariant: what pops
   next is always the earliest (time, seq) of what is currently queued. *)
let prop_queue_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop stays (time, seq)-sorted" ~count:200
    QCheck.(list (option (int_range 0 10)))
    (fun script ->
      let q = Event_queue.create () in
      let module S = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let live = ref S.empty in
      let idx = ref 0 in
      List.for_all
        (function
          | Some t ->
              Event_queue.push q ~time:t (t, !idx);
              live := S.add (t, !idx) !live;
              incr idx;
              true
          | None -> (
              match Event_queue.pop q with
              | None -> S.is_empty !live
              | Some (_, p) ->
                  let expected = S.min_elt !live in
                  live := S.remove expected !live;
                  p = expected))
        script)

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_mean () =
  check_float "mean" 2.0 (Summary.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Summary.mean [])

let test_median () =
  check_float "odd" 2.0 (Summary.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Summary.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_trimmed_mean () =
  (* The outlier 100 is farthest from the median and gets dropped. *)
  check_float "drops outlier" 2.0 (Summary.trimmed_mean ~trim:1 [ 1.0; 2.0; 3.0; 100.0 ]);
  check_float "degrades to mean" 51.0 (Summary.trimmed_mean ~trim:5 [ 2.0; 100.0 ])

let test_geomean () =
  check_float "geomean" 2.0 (Summary.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "identity" 5.0 (Summary.geomean [ 5.0 ])

let test_stddev () =
  check_float "constant" 0.0 (Summary.stddev [ 3.0; 3.0; 3.0 ]);
  check_float "simple" 1.0 (Summary.stddev [ 1.0; 3.0; 1.0; 3.0 ])

let test_min_max () =
  let lo, hi = Summary.min_max [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Summary.min_max: empty list") (fun () ->
      ignore (Summary.min_max []))

let prop_trimmed_mean_bracketed =
  QCheck.Test.make ~name:"trimmed mean lies within [min, max]" ~count:200
    QCheck.(pair (int_range 0 3) (list_of_size Gen.(int_range 1 20) (float_range (-100.0) 100.0)))
    (fun (trim, xs) ->
      let m = Summary.trimmed_mean ~trim xs in
      let lo, hi = Summary.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_median_bracketed =
  QCheck.Test.make ~name:"median lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-100.0) 100.0))
    (fun xs ->
      let m = Summary.median xs in
      let lo, hi = Summary.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean for positive values" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 100.0))
    (fun xs -> Summary.geomean xs <= Summary.mean xs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved, all results present"
    (List.map (fun x -> x * x) xs)
    (Pool.parallel_map ~jobs:4 (fun x -> x * x) xs)

let test_pool_matches_sequential () =
  let xs = List.init 37 (fun i -> i * 3) in
  let f x = (x * 7) mod 11 in
  Alcotest.(check (list int)) "jobs:1 == jobs:5" (Pool.parallel_map ~jobs:1 f xs)
    (Pool.parallel_map ~jobs:5 f xs)

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.parallel_map ~jobs:4 (fun x -> x * 9) [ 1 ])

let test_pool_more_jobs_than_work () =
  Alcotest.(check (list int)) "jobs > elements" [ 2; 4 ]
    (Pool.parallel_map ~jobs:16 (fun x -> x * 2) [ 1; 2 ])

let test_pool_exception_propagates () =
  Alcotest.check_raises "exception reaches the caller" (Failure "boom") (fun () ->
      ignore
        (Pool.parallel_map ~jobs:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 (fun i -> i))))

(* Random job counts, sizes and failure points: results must equal the
   sequential map and a raising job must surface as that exception. *)
let prop_pool_hammer =
  QCheck.Test.make ~name:"parallel_map under random jobs and failures" ~count:25
    QCheck.(triple (int_range 1 6) (int_range 0 40) (option (int_range 0 60)))
    (fun (jobs, n, boom) ->
      let xs = List.init n (fun i -> i) in
      let f x = match boom with Some b when x = b -> failwith "hammer" | _ -> (x * 2) + 1 in
      let expect_raise = match boom with Some b -> b < n | None -> false in
      match Pool.parallel_map ~jobs f xs with
      | results -> (not expect_raise) && results = List.init n (fun i -> (i * 2) + 1)
      | exception Failure msg -> expect_raise && msg = "hammer")

(* The completion protocol is single-submitter by contract; a second
   concurrent [map] must be rejected, not silently interleaved. *)
let test_pool_single_submitter_guard () =
  let p = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let started = Atomic.make false and release = Atomic.make false in
  let submitter =
    Domain.spawn (fun () ->
        Pool.map p
          (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done)
          [ () ])
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let rejected =
    match Pool.map p (fun x -> x) [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Atomic.set release true;
  ignore (Domain.join submitter : unit list);
  Alcotest.(check bool) "second submitter rejected" true rejected

let test_pool_reusable () =
  let p = Pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.(check int) "size" 3 (Pool.size p);
      Alcotest.(check (list int)) "first batch" [ 1; 2; 3 ] (Pool.map p (fun x -> x + 1) [ 0; 1; 2 ]);
      Alcotest.(check (list string)) "second batch, other type" [ "a!"; "b!" ]
        (Pool.map p (fun s -> s ^ "!") [ "a"; "b" ]))

(* ------------------------------------------------------------------ *)
(* Lineset *)

module Lineset = Simrt.Lineset

(* Random add/clear script checked against a reference Hashtbl set: size,
   membership and the sorted view must always agree. [None] means clear. *)
let prop_lineset_model =
  QCheck.Test.make ~name:"Lineset agrees with a reference set model" ~count:200
    QCheck.(list (option (int_range 0 60)))
    (fun script ->
      let ls = Lineset.create ~hint:2 () in
      let model = Hashtbl.create 16 in
      let model_sorted () = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
      List.for_all
        (function
          | None ->
              Lineset.clear ls;
              Hashtbl.reset model;
              Lineset.is_empty ls
          | Some x ->
              Lineset.add ls x;
              Hashtbl.replace model x ();
              Lineset.mem ls x
              && Lineset.size ls = Hashtbl.length model
              && Lineset.sorted_list ls = model_sorted ()
              && Array.to_list (Lineset.sorted_view ls) = model_sorted ())
        script)

(* The cached sorted view must stay valid (same contents) after later
   mutations — the engine holds attempt-0 footprints across attempts. *)
let test_lineset_view_stable () =
  let ls = Lineset.create () in
  List.iter (Lineset.add ls) [ 5; 1; 9 ];
  let view = Lineset.sorted_view ls in
  Alcotest.(check (array int)) "sorted" [| 1; 5; 9 |] view;
  Lineset.add ls 3;
  Lineset.clear ls;
  Lineset.add ls 42;
  Alcotest.(check (array int)) "old view untouched" [| 1; 5; 9 |] view;
  Alcotest.(check (array int)) "new view current" [| 42 |] (Lineset.sorted_view ls)

let test_lineset_insertion_order () =
  let ls = Lineset.create () in
  List.iter (Lineset.add ls) [ 7; 2; 7; 4; 2 ];
  let seen = ref [] in
  Lineset.iter ls (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "dedup, insertion order" [ 7; 2; 4 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_basic () =
  let set = Counter.create_set () in
  Counter.incr set "a";
  Counter.add set "a" 4;
  Counter.incr set "b";
  Alcotest.(check int) "a" 5 (Counter.get set "a");
  Alcotest.(check int) "b" 1 (Counter.get set "b");
  Alcotest.(check int) "missing" 0 (Counter.get set "zzz");
  Alcotest.(check (list (pair string int))) "sorted listing" [ ("a", 5); ("b", 1) ] (Counter.to_list set)

let test_counter_merge () =
  let a = Counter.create_set () and b = Counter.create_set () in
  Counter.add a "x" 2;
  Counter.add b "x" 3;
  Counter.add b "y" 1;
  Counter.merge_into ~dst:a b;
  Alcotest.(check int) "merged x" 5 (Counter.get a "x");
  Alcotest.(check int) "merged y" 1 (Counter.get a "y")

let test_counter_reset () =
  let set = Counter.create_set () in
  Counter.incr set "a";
  Counter.reset set;
  Alcotest.(check int) "reset" 0 (Counter.get set "a")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "simrt"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent of draws" `Quick test_rng_split_independent;
          Alcotest.test_case "splits distinct" `Quick test_rng_split_distinct;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        ]
        @ qsuite [ prop_int_bounds; prop_int_in_bounds; prop_zipf_bounds; prop_zipf_theta_monotone ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "clear" `Quick test_queue_clear;
        ]
        @ qsuite
            [
              prop_queue_sorted;
              prop_queue_time_seq_sorted;
              prop_queue_pop_until;
              prop_queue_interleaved;
            ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "parallel == sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_singleton;
          Alcotest.test_case "more jobs than work" `Quick test_pool_more_jobs_than_work;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reusable;
          Alcotest.test_case "single-submitter guard" `Quick test_pool_single_submitter_guard;
        ]
        @ qsuite [ prop_pool_hammer ] );
      ( "lineset",
        [
          Alcotest.test_case "sorted view stable across mutations" `Quick test_lineset_view_stable;
          Alcotest.test_case "iter dedups in insertion order" `Quick test_lineset_insertion_order;
        ]
        @ qsuite [ prop_lineset_model ] );
      ( "summary",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "trimmed mean" `Quick test_trimmed_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min_max" `Quick test_min_max;
        ]
        @ qsuite [ prop_geomean_le_mean; prop_trimmed_mean_bracketed; prop_median_bracketed ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "merge" `Quick test_counter_merge;
          Alcotest.test_case "reset" `Quick test_counter_reset;
        ] );
    ]
