(* End-to-end engine tests: semantic correctness of simulated execution,
   atomicity invariants under every execution mode, determinism, and the
   CLEAR-specific behaviours (discovery, NS-CL/S-CL conversion, fallback). *)

module Engine = Machine.Engine
module Config = Machine.Config
module Stats = Machine.Stats
module Workload = Machine.Workload
module Store = Mem.Store
module A = Isa.Asm
module I = Isa.Instr
module P = Isa.Program

let small cfg = { cfg with Config.cores = 8; ops_per_thread = 60; memory_words = 1 lsl 20 }

let tiny cfg = { cfg with Config.cores = 2; ops_per_thread = 10; memory_words = 1 lsl 18 }

(* ------------------------------------------------------------------ *)
(* A hand-built workload with a known arithmetic result: every op adds a
   fixed delta to one shared counter. Checks basic execution semantics and
   atomicity in one go: final counter = ops * delta exactly. *)

let counter_workload ~delta =
  let counter_addr = 64 in
  let ar =
    P.build_ar ~id:0 ~name:"count" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"ctr" ();
        A.add b ~dst:8 (I.Reg 8) (I.Reg 1);
        A.st b ~base:(I.Reg 0) ~src:(I.Reg 8) ~region:"ctr" ();
        A.halt b)
  in
  ( {
      Workload.name = "counter";
      description = "shared counter increments";
      ars = [ ar ];
      memory_words = 128;
      setup = (fun store _ -> Store.write store counter_addr 0);
      make_driver = (fun ~tid:_ ~threads:_ _ _ () -> Workload.op ar [ (0, counter_addr); (1, delta) ]);
      pure_driver = true;
    },
    counter_addr )

let test_counter_exact preset () =
  let w, addr = counter_workload ~delta:3 in
  let cfg = small preset in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let expected = cfg.Config.cores * cfg.Config.ops_per_thread in
  Alcotest.(check int) "all ops committed" expected (Stats.commits stats);
  Alcotest.(check int) "counter is atomic" (expected * 3) (Store.read (Engine.store engine) addr)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_determinism () =
  let run () =
    let stats = Engine.run_workload (small Config.clear_power) Workloads.Bst.workload in
    (Stats.total_cycles stats, Stats.commits stats, Stats.aborts stats)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "identical runs" a b

let test_seed_changes_outcome () =
  let run seed =
    let cfg = Config.with_seed (small Config.baseline) seed in
    Stats.total_cycles (Engine.run_workload cfg Workloads.Bst.workload)
  in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

(* Golden fingerprints: (total cycles, commits, aborts, instrs, wasted)
   captured from the original engine (Hashtbl conflict map, list-based
   footprints, flat-array store) at 4 cores, 40 ops/thread, 4 retries.
   The flat hot-path data structures must reproduce every simulated run
   bit for bit — any drift here is a semantic change, not an optimisation. *)
let golden_fingerprints =
  [
    ("hashmap", "B", 3, (18403, 160, 16, 3738, 204));
    ("hashmap", "B", 5, (21077, 160, 15, 4267, 324));
    ("hashmap", "B", 7, (18138, 160, 18, 3612, 278));
    ("hashmap", "P", 3, (18392, 160, 17, 3739, 211));
    ("hashmap", "P", 5, (21077, 160, 15, 4267, 324));
    ("hashmap", "P", 7, (18138, 160, 18, 3612, 278));
    ("hashmap", "C", 3, (18657, 160, 18, 4004, 449));
    ("hashmap", "C", 5, (20871, 160, 18, 4435, 503));
    ("hashmap", "C", 7, (18005, 160, 14, 3807, 472));
    ("hashmap", "W", 3, (18657, 160, 18, 4004, 449));
    ("hashmap", "W", 5, (20871, 160, 18, 4435, 503));
    ("hashmap", "W", 7, (17864, 160, 14, 3776, 441));
    ("bitcoin", "B", 3, (20713, 160, 44, 1639, 199));
    ("bitcoin", "B", 5, (20339, 160, 44, 1648, 208));
    ("bitcoin", "B", 7, (20533, 160, 47, 1676, 236));
    ("bitcoin", "P", 3, (20269, 160, 47, 1623, 183));
    ("bitcoin", "P", 5, (19952, 160, 24, 1561, 121));
    ("bitcoin", "P", 7, (20121, 160, 45, 1642, 202));
    ("bitcoin", "C", 3, (19303, 160, 19, 1612, 171));
    ("bitcoin", "C", 5, (19684, 160, 18, 1602, 162));
    ("bitcoin", "C", 7, (19186, 160, 26, 1676, 234));
    ("bitcoin", "W", 3, (19303, 160, 19, 1612, 171));
    ("bitcoin", "W", 5, (19684, 160, 18, 1602, 162));
    ("bitcoin", "W", 7, (19186, 160, 26, 1676, 234));
    ("bst", "B", 3, (22021, 160, 11, 9243, 67));
    ("bst", "B", 5, (21214, 160, 2, 8303, 90));
    ("bst", "B", 7, (22165, 160, 1, 9071, 27));
    ("bst", "P", 3, (21848, 160, 4, 9222, 46));
    ("bst", "P", 5, (21214, 160, 2, 8303, 90));
    ("bst", "P", 7, (22165, 160, 1, 9071, 27));
    ("bst", "C", 3, (21848, 160, 3, 9324, 146));
    ("bst", "C", 5, (21238, 160, 2, 8329, 116));
    ("bst", "C", 7, (22165, 160, 1, 9102, 58));
    ("bst", "W", 3, (21848, 160, 3, 9324, 146));
    ("bst", "W", 5, (21238, 160, 2, 8329, 116));
    ("bst", "W", 7, (22165, 160, 1, 9102, 58));
  ]

let test_golden_fingerprints () =
  List.iter
    (fun (wname, letter, seed, (gc, gcm, gab, gin, gwa)) ->
      let preset =
        match letter with
        | "B" -> Config.baseline
        | "P" -> Config.power_tm
        | "C" -> Config.clear_rw
        | _ -> Config.clear_power
      in
      let cfg =
        Config.with_seed { preset with Config.cores = 4; ops_per_thread = 40; max_retries = 4 } seed
      in
      let stats = Engine.run_workload cfg (Workloads.Registry.find wname) in
      let got =
        ( Stats.total_cycles stats,
          Stats.commits stats,
          Stats.aborts stats,
          Stats.instrs stats,
          Stats.wasted_instrs stats )
      in
      let c, cm, ab, ins, wa = got in
      if got <> (gc, gcm, gab, gin, gwa) then
        Alcotest.failf "%s/%s seed %d: got (%d,%d,%d,%d,%d), golden (%d,%d,%d,%d,%d)" wname letter
          seed c cm ab ins wa gc gcm gab gin gwa)
    golden_fingerprints

(* ------------------------------------------------------------------ *)
(* Atomicity invariants on real workloads, under every configuration. *)

let presets = [ ("B", Config.baseline); ("P", Config.power_tm); ("C", Config.clear_rw); ("W", Config.clear_power) ]

(* bitcoin: the total number of coins is conserved by transfers. *)
let test_bitcoin_conservation (name, preset) () =
  let w = Workloads.Bitcoin.make ~wallets:16 () in
  let cfg = small preset in
  let engine = Engine.create cfg w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  (* wallet pointers live in the users directory starting at word 64 *)
  let users = 64 in
  let total = ref 0 in
  for i = 0 to 15 do
    let wallet = Store.read store (users + i) in
    total := !total + Store.read store wallet
  done;
  Alcotest.(check int) (name ^ ": coins conserved") (16 * 10_000) !total

(* mwobject: field sums equal known per-commit deltas. *)
let test_mwobject_sums (name, preset) () =
  let w = Workloads.Mwobject.make ~objects:1 () in
  let cfg = small preset in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let store = Engine.store engine in
  let base = 64 in
  let commits = Stats.commits stats in
  (* deltas for fields 0 and 2 are always 1 per committed op *)
  Alcotest.(check int) (name ^ ": field0") commits (Store.read store (base + 0));
  Alcotest.(check int) (name ^ ": field2") commits (Store.read store (base + 2))

(* sorted-list: keys remain sorted strictly ascending and the list acyclic. *)
let test_sorted_list_invariant (name, preset) () =
  let w = Workloads.Sorted_list.workload in
  let engine = Engine.create (small preset) w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  let head = 64 in
  let seen = Hashtbl.create 64 in
  let rec walk node last count =
    if node = 0 then count
    else begin
      Alcotest.(check bool) (name ^ ": acyclic") false (Hashtbl.mem seen node);
      Hashtbl.add seen node ();
      let key = Store.read store node in
      Alcotest.(check bool) (name ^ ": sorted strictly") true (key > last);
      walk (Store.read store (node + 1)) key (count + 1)
    end
  in
  let n = walk (Store.read store head) min_int 0 in
  Alcotest.(check bool) (name ^ ": bounded by key range") true (n <= 24)

(* bst: in-order traversal is strictly sorted; structure acyclic. *)
let test_bst_invariant (name, preset) () =
  let w = Workloads.Bst.workload in
  let engine = Engine.create (small preset) w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  let root_addr = 64 in
  let seen = Hashtbl.create 256 in
  let last = ref min_int in
  let rec inorder node =
    if node <> 0 then begin
      Alcotest.(check bool) (name ^ ": acyclic") false (Hashtbl.mem seen node);
      Hashtbl.add seen node ();
      inorder (Store.read store (node + 1));
      let key = Store.read store node in
      Alcotest.(check bool) (name ^ ": in-order sorted") true (key > !last);
      last := key;
      inorder (Store.read store (node + 2))
    end
  in
  inorder (Store.read store root_addr)

(* queue: the chain from head is acyclic and null-terminated. *)
let test_queue_invariant (name, preset) () =
  let w = Workloads.Queue.workload in
  let engine = Engine.create (small preset) w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  let head = 64 in
  let seen = Hashtbl.create 256 in
  let rec walk node =
    if node <> 0 then begin
      Alcotest.(check bool) (name ^ ": acyclic") false (Hashtbl.mem seen node);
      Hashtbl.add seen node ();
      walk (Store.read store (node + 1))
    end
  in
  walk (Store.read store head)

(* stack: push/pop leave an acyclic chain whose length matches committed
   pushes minus non-empty pops. *)
let test_stack_invariant (name, preset) () =
  let w = Workloads.Stack.workload in
  let engine = Engine.create (small preset) w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  let top = 64 in
  let seen = Hashtbl.create 256 in
  let rec walk node n =
    if node = 0 then n
    else begin
      Alcotest.(check bool) (name ^ ": acyclic") false (Hashtbl.mem seen node);
      Hashtbl.add seen node ();
      walk (Store.read store (node + 1)) (n + 1)
    end
  in
  ignore (walk (Store.read store top) 0)

(* ------------------------------------------------------------------ *)
(* CLEAR-specific behaviour *)

let test_nscl_used_for_immutable () =
  let stats = Engine.run_workload (small Config.clear_rw) Workloads.Arrayswap.workload in
  Alcotest.(check bool) "NS-CL commits happen" true (Stats.commits_in_mode stats Stats.Nscl > 0);
  Alcotest.(check int) "no S-CL for immutable ARs" 0 (Stats.commits_in_mode stats Stats.Scl)

let test_scl_used_for_likely_immutable () =
  let stats = Engine.run_workload (small Config.clear_rw) Workloads.Bitcoin.workload in
  Alcotest.(check bool) "S-CL commits happen" true (Stats.commits_in_mode stats Stats.Scl > 0);
  Alcotest.(check int) "no NS-CL with indirections" 0 (Stats.commits_in_mode stats Stats.Nscl)

let test_no_cl_modes_when_disabled () =
  let stats = Engine.run_workload (small Config.baseline) Workloads.Arrayswap.workload in
  Alcotest.(check int) "no NS-CL" 0 (Stats.commits_in_mode stats Stats.Nscl);
  Alcotest.(check int) "no S-CL" 0 (Stats.commits_in_mode stats Stats.Scl)

let test_clear_reduces_aborts () =
  let run preset = Stats.aborts_per_commit (Engine.run_workload (small preset) Workloads.Mwobject.workload) in
  let b = run Config.baseline and c = run Config.clear_rw in
  Alcotest.(check bool) (Printf.sprintf "aborts/commit improves (B %.2f vs C %.2f)" b c) true (c < b)

let test_clear_improves_single_retry () =
  let breakdown preset =
    let s = Engine.run_workload (small preset) Workloads.Mwobject.workload in
    let one, _, _ = Stats.retry_breakdown s in
    one
  in
  Alcotest.(check bool) "more single-retry commits" true
    (breakdown Config.clear_rw > breakdown Config.baseline)

let test_fallback_under_zero_retries () =
  let cfg = { (small Config.baseline) with Config.max_retries = 0 } in
  let w, addr = counter_workload ~delta:1 in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let expected = cfg.Config.cores * cfg.Config.ops_per_thread in
  Alcotest.(check int) "all committed" expected (Stats.commits stats);
  Alcotest.(check int) "atomic under fallback" expected (Store.read (Engine.store engine) addr);
  Alcotest.(check bool) "fallback exercised" true (Stats.commits_in_mode stats Stats.Fallback_mode > 0)

let test_failed_mode_discovery_ablation () =
  (* Without failed-mode discovery the region's footprint is never fully
     learned, so no conversion can happen. *)
  let cfg = { (small Config.clear_rw) with Config.failed_mode_discovery = false } in
  let stats = Engine.run_workload cfg Workloads.Mwobject.workload in
  Alcotest.(check int) "no NS-CL without discovery-to-end" 0 (Stats.commits_in_mode stats Stats.Nscl);
  Alcotest.(check int) "no S-CL either" 0 (Stats.commits_in_mode stats Stats.Scl)

let test_spec_requests_stall_on_locked_lines () =
  (* Contended CLEAR run: locked lines must stall plain speculative
     requesters (counted) rather than abort them, and everything still
     commits. *)
  let cfg = small Config.clear_rw in
  let stats = Engine.run_workload cfg Workloads.Hashmap.workload in
  Alcotest.(check int) "all ops commit" (cfg.Config.cores * cfg.Config.ops_per_thread)
    (Stats.commits stats);
  Alcotest.(check bool) "stall cycles observed" true
    (Simrt.Counter.get (Stats.counters stats) "stall_cycles" > 0)

let test_crt_decay_prevents_convoy () =
  (* Without CRT decay, hot read lines stay locked by every S-CL: correct but
     slower. With decay the same workload must not be slower. *)
  let run decay =
    let cfg = { (small Config.clear_rw) with Config.crt_decay = decay } in
    Stats.total_cycles (Engine.run_workload cfg Workloads.Bst.workload)
  in
  let with_decay = run true and without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "decay not slower (%d vs %d)" with_decay without)
    true
    (with_decay <= without)

let test_power_token_single () =
  (* PowerTM must behave correctly even with heavy contention. *)
  let w, addr = counter_workload ~delta:1 in
  let cfg = small Config.power_tm in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let expected = cfg.Config.cores * cfg.Config.ops_per_thread in
  Alcotest.(check int) "commits" expected (Stats.commits stats);
  Alcotest.(check int) "atomicity" expected (Store.read (Engine.store engine) addr)

let test_fig1_in_bounds () =
  let stats = Engine.run_workload (small Config.baseline) Workloads.Stack.workload in
  let r = Stats.fig1_ratio stats in
  Alcotest.(check bool) "ratio within [0,1]" true (r >= 0.0 && r <= 1.0)

let test_total_cycles_positive () =
  let stats = Engine.run_workload (tiny Config.baseline) Workloads.Arrayswap.workload in
  Alcotest.(check bool) "cycles accrue" true (Stats.total_cycles stats > 0);
  Alcotest.(check bool) "instructions retired" true (Stats.instrs stats > 0)

let test_single_core_no_conflicts () =
  let cfg = { (tiny Config.baseline) with Config.cores = 1; ops_per_thread = 50 } in
  let stats = Engine.run_workload cfg Workloads.Hashmap.workload in
  Alcotest.(check int) "no aborts alone" 0 (Stats.aborts stats);
  Alcotest.(check int) "all first-try" 50 (Stats.commits_with_retries stats 0)

let test_every_workload_completes () =
  (* Sweep all benchmarks under the most complex configuration. *)
  List.iter
    (fun (w : Workload.t) ->
      let cfg = { (tiny Config.clear_power) with Config.cores = 4; ops_per_thread = 25 } in
      let stats = Engine.run_workload cfg w in
      Alcotest.(check int) (w.name ^ " commits everything") 100 (Stats.commits stats))
    Workloads.Registry.all

let test_single_core_clear_is_free () =
  (* Metamorphic property: with one core there are no conflicts, so
     discovery never influences timing — CLEAR on/off must give identical
     cycle counts. *)
  let run preset =
    let cfg = { (tiny preset) with Config.cores = 1; ops_per_thread = 80 } in
    Stats.total_cycles (Engine.run_workload cfg Workloads.Bitcoin.workload)
  in
  Alcotest.(check int) "identical cycles" (run Config.baseline) (run Config.clear_rw)

(* ------------------------------------------------------------------ *)
(* SLE front-end (in-core speculation, per-lock fallback) *)

let sle cfg = { cfg with Config.frontend = Config.Sle }

let test_sle_counter_atomicity () =
  let w, addr = counter_workload ~delta:2 in
  let cfg = sle (small Config.baseline) in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  let expected = cfg.Config.cores * cfg.Config.ops_per_thread in
  Alcotest.(check int) "commits" expected (Stats.commits stats);
  Alcotest.(check int) "atomic" (expected * 2) (Store.read (Engine.store engine) addr)

let test_sle_bitcoin_conservation () =
  let w = Workloads.Bitcoin.make ~wallets:16 () in
  let cfg = sle (small Config.clear_power) in
  let engine = Engine.create cfg w in
  let _ = Engine.run engine in
  let store = Engine.store engine in
  let total = ref 0 in
  for i = 0 to 15 do
    total := !total + Store.read store (Store.read store (64 + i))
  done;
  Alcotest.(check int) "coins conserved under SLE+CLEAR" (16 * 10_000) !total

let test_sle_window_bound () =
  (* An AR bigger than the ROB can never complete speculatively under SLE:
     every commit must come from the (per-lock) fallback path. *)
  let big_ar =
    P.build_ar ~id:0 ~name:"oversized" (fun b ->
        let counter = 64 in
        A.ld b ~dst:8 ~base:(I.Imm counter) ~region:"c" ();
        A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
        (* pad far beyond a tiny ROB *)
        for _ = 1 to 64 do
          A.nop b
        done;
        A.st b ~base:(I.Imm counter) ~src:(I.Reg 8) ~region:"c" ();
        A.halt b)
  in
  let w =
    {
      Workload.name = "oversized";
      description = "AR larger than the ROB";
      ars = [ big_ar ];
      memory_words = 128;
      setup = (fun store _ -> Store.write store 64 0);
      make_driver = (fun ~tid:_ ~threads:_ _ _ () -> Workload.op big_ar []);
      pure_driver = true;
    }
  in
  let cfg = { (sle (tiny Config.baseline)) with Config.rob_entries = 16; cores = 4; ops_per_thread = 20 } in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  Alcotest.(check int) "all committed" 80 (Stats.commits stats);
  Alcotest.(check int) "all via fallback" 80 (Stats.commits_in_mode stats Stats.Fallback_mode);
  Alcotest.(check int) "counter still atomic" 80 (Store.read (Engine.store engine) 64)

let test_sle_per_lock_independence () =
  (* Two ops on different locks must not explicit-fallback on each other:
     with 2 cores pinned to different locks and retries = 0 (always
     fallback), there are no fallback-related aborts at all. *)
  let ar =
    P.build_ar ~id:0 ~name:"bump" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"c" ();
        A.add b ~dst:8 (I.Reg 8) (I.Imm 1);
        A.st b ~base:(I.Reg 0) ~src:(I.Reg 8) ~region:"c" ();
        A.halt b)
  in
  let w =
    {
      Workload.name = "two-locks";
      description = "disjoint counters under disjoint locks";
      ars = [ ar ];
      memory_words = 256;
      setup =
        (fun store _ ->
          Store.write store 64 0;
          Store.write store 128 0);
      make_driver =
        (fun ~tid ~threads:_ _ _ () -> Workload.op ~lock_id:tid ar [ (0, 64 + (tid * 64)) ]);
      pure_driver = true;
    }
  in
  let cfg = { (sle (tiny Config.baseline)) with Config.cores = 2; ops_per_thread = 40; max_retries = 0 } in
  let engine = Engine.create cfg w in
  let stats = Engine.run engine in
  Alcotest.(check int) "commits" 80 (Stats.commits stats);
  Alcotest.(check int) "no explicit fallback aborts" 0
    (Stats.aborts_with_cause stats Machine.Abort.Explicit_fallback);
  Alcotest.(check int) "no other-fallback aborts" 0
    (Stats.aborts_with_cause stats Machine.Abort.Other_fallback)

let test_sle_clear_converts () =
  let cfg = sle (small Config.clear_rw) in
  let stats = Engine.run_workload cfg Workloads.Arrayswap.workload in
  Alcotest.(check bool) "NS-CL under SLE" true (Stats.commits_in_mode stats Stats.Nscl > 0)

let test_sle_every_workload_completes () =
  List.iter
    (fun (w : Workload.t) ->
      let cfg = { (sle (tiny Config.clear_power)) with Config.cores = 4; ops_per_thread = 15 } in
      let stats = Engine.run_workload cfg w in
      Alcotest.(check int) (w.name ^ " commits everything under SLE") 60 (Stats.commits stats))
    Workloads.Registry.all

let case name f = Alcotest.test_case name `Quick f

let per_preset name f = List.map (fun (l, p) -> case (name ^ " [" ^ l ^ "]") (f (l, p))) presets

let () =
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          case "counter exact [B]" (test_counter_exact Config.baseline);
          case "counter exact [P]" (test_counter_exact Config.power_tm);
          case "counter exact [C]" (test_counter_exact Config.clear_rw);
          case "counter exact [W]" (test_counter_exact Config.clear_power);
          case "single core, no conflicts" test_single_core_no_conflicts;
          case "single core: CLEAR is free" test_single_core_clear_is_free;
          case "cycles accrue" test_total_cycles_positive;
        ] );
      ( "determinism",
        [
          case "same seed, same run" test_determinism;
          case "seed sensitivity" test_seed_changes_outcome;
          case "golden fingerprints (pre-rewrite engine)" test_golden_fingerprints;
        ] );
      ( "atomicity",
        per_preset "bitcoin conservation" test_bitcoin_conservation
        @ per_preset "mwobject sums" test_mwobject_sums
        @ per_preset "sorted-list invariant" test_sorted_list_invariant
        @ per_preset "bst invariant" test_bst_invariant
        @ per_preset "queue invariant" test_queue_invariant
        @ per_preset "stack invariant" test_stack_invariant );
      ( "clear",
        [
          case "NS-CL for immutable" test_nscl_used_for_immutable;
          case "S-CL for likely immutable" test_scl_used_for_likely_immutable;
          case "no CL modes when disabled" test_no_cl_modes_when_disabled;
          case "fewer aborts" test_clear_reduces_aborts;
          case "more single-retry commits" test_clear_improves_single_retry;
          case "failed-mode discovery ablation" test_failed_mode_discovery_ablation;
          case "spec requests stall on locks" test_spec_requests_stall_on_locked_lines;
          case "CRT decay prevents convoy" test_crt_decay_prevents_convoy;
        ] );
      ( "fallback+power",
        [
          case "fallback path atomic" test_fallback_under_zero_retries;
          case "powertm atomic" test_power_token_single;
          case "fig1 bounded" test_fig1_in_bounds;
        ] );
      ( "sle",
        [
          case "counter atomicity" test_sle_counter_atomicity;
          case "bitcoin conservation" test_sle_bitcoin_conservation;
          case "ROB window bound" test_sle_window_bound;
          case "per-lock independence" test_sle_per_lock_independence;
          case "CLEAR converts under SLE" test_sle_clear_converts;
          case "every workload completes" test_sle_every_workload_completes;
        ] );
      ("sweep", [ case "every workload completes" test_every_workload_completes ]);
    ]
