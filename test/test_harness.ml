(* Tests for the experiment harness: measurements, retry sweeps and figure
   table generation on a miniature suite. *)

module Run = Clear_repro.Run
module Experiments = Clear_repro.Experiments
module Config = Machine.Config
module Table = Report.Table

let micro_options =
  {
    Experiments.cores = 4;
    ops_per_thread = 30;
    seeds = [ 3; 5 ];
    trim = 0;
    retry_choices = [ 4 ];
    sched = Sched.Profile.symmetric;
  }

let micro_workloads = [ Workloads.Arrayswap.workload; Workloads.Bitcoin.workload ]

let suite = lazy (Experiments.run_suite ~workloads:micro_workloads micro_options)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_measure_basics () =
  let cfg = Experiments.config_of_letter micro_options "B" in
  let m = Run.measure cfg Workloads.Arrayswap.workload ~seeds:[ 1; 2 ] ~trim:0 in
  Alcotest.(check string) "preset letter" "B" m.Run.preset;
  Alcotest.(check string) "workload name" "arrayswap" m.Run.workload;
  Alcotest.(check bool) "cycles positive" true (m.Run.cycles > 0.0);
  Alcotest.(check bool) "energy positive" true (m.Run.energy > 0.0);
  Alcotest.(check bool) "fractions bounded" true
    (List.for_all (fun (_, v) -> v >= 0.0 && v <= 1.0) m.Run.commit_mode_fractions)

let test_measure_deterministic () =
  let cfg = Experiments.config_of_letter micro_options "W" in
  let m1 = Run.measure cfg Workloads.Bitcoin.workload ~seeds:[ 1 ] ~trim:0 in
  let m2 = Run.measure cfg Workloads.Bitcoin.workload ~seeds:[ 1 ] ~trim:0 in
  Alcotest.(check (float 1e-9)) "same cycles" m1.Run.cycles m2.Run.cycles

let test_best_retries_picks_minimum () =
  let cfg = Experiments.config_of_letter micro_options "B" in
  let best =
    Run.measure_best_retries cfg Workloads.Arrayswap.workload ~seeds:[ 1 ] ~trim:0
      ~retry_choices:[ 1; 8 ]
  in
  let m1 = Run.measure (Config.with_retries cfg 1) Workloads.Arrayswap.workload ~seeds:[ 1 ] ~trim:0 in
  let m8 = Run.measure (Config.with_retries cfg 8) Workloads.Arrayswap.workload ~seeds:[ 1 ] ~trim:0 in
  Alcotest.(check (float 1e-9)) "best is the min" (min m1.Run.cycles m8.Run.cycles) best.Run.cycles

let test_config_of_letter () =
  Alcotest.(check bool) "B has clear off" false
    (Experiments.config_of_letter micro_options "B").Config.clear_enabled;
  Alcotest.(check bool) "W has clear on" true
    (Experiments.config_of_letter micro_options "W").Config.clear_enabled;
  Alcotest.(check int) "cores applied" 4 (Experiments.config_of_letter micro_options "C").Config.cores;
  Alcotest.check_raises "unknown letter" (Invalid_argument "config_of_letter: unknown preset X")
    (fun () -> ignore (Experiments.config_of_letter micro_options "X"))

(* The tentpole guarantee: the parallel sweep is bit-identical to the
   sequential one. Run.t contains only strings, ints, floats and variant
   lists, so structural equality is exact (floats must match to the last
   bit, not within a tolerance). *)
let test_suite_parallel_identical () =
  let seq = Experiments.run_suite ~jobs:1 ~workloads:micro_workloads micro_options in
  let par = Experiments.run_suite ~jobs:4 ~workloads:micro_workloads micro_options in
  Alcotest.(check bool) "jobs:4 suite equals jobs:1 suite" true
    (seq.Experiments.rows = par.Experiments.rows);
  List.iter2
    (fun (wname, per_seq) (wname', per_par) ->
      Alcotest.(check string) "same workload order" wname wname';
      List.iter2
        (fun (l, (a : Run.t)) (l', (b : Run.t)) ->
          Alcotest.(check string) "same preset order" l l';
          Alcotest.(check (float 0.0)) (wname ^ "/" ^ l ^ " cycles") a.Run.cycles b.Run.cycles;
          Alcotest.(check (float 0.0)) (wname ^ "/" ^ l ^ " energy") a.Run.energy b.Run.energy;
          Alcotest.(check int) (wname ^ "/" ^ l ^ " retries") a.Run.retries b.Run.retries)
        per_seq per_par)
    seq.Experiments.rows par.Experiments.rows

let test_measure_parallel_identical () =
  let cfg = Experiments.config_of_letter micro_options "W" in
  let a =
    Run.measure_best_retries ~jobs:1 cfg Workloads.Bitcoin.workload ~seeds:[ 1; 2; 3 ] ~trim:0
      ~retry_choices:[ 2; 5 ]
  in
  let b =
    Run.measure_best_retries ~jobs:3 cfg Workloads.Bitcoin.workload ~seeds:[ 1; 2; 3 ] ~trim:0
      ~retry_choices:[ 2; 5 ]
  in
  Alcotest.(check bool) "measure_best_retries jobs-invariant" true (a = b)

let test_suite_shape () =
  let s = Lazy.force suite in
  Alcotest.(check int) "two workloads" 2 (List.length s.Experiments.rows);
  List.iter
    (fun (_, per) -> Alcotest.(check int) "four presets" 4 (List.length per))
    s.Experiments.rows

let test_figures_render () =
  let s = Lazy.force suite in
  let tables =
    [
      Experiments.fig1 s;
      Experiments.fig8 s;
      Experiments.fig8_discovery s;
      Experiments.fig9 s;
      Experiments.fig10 s;
      Experiments.fig11 s;
      Experiments.fig12 s;
      Experiments.fig13 s;
      Experiments.headline s;
    ]
  in
  List.iter
    (fun t ->
      let str = Table.to_string t in
      Alcotest.(check bool) "renders rows" true (String.length str > 80);
      Alcotest.(check bool) "mentions a workload or metric" true
        (contains str "arrayswap" || contains str "Paper"))
    tables

let test_fig8_baseline_normalised_to_one () =
  let s = Lazy.force suite in
  let str = Table.to_string (Experiments.fig8 s) in
  Alcotest.(check bool) "B column is 1.000" true (contains str "1.000")

let test_table1_rows () =
  let str = Table.to_string (Experiments.table1 ()) in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " listed") true (contains str name))
    Workloads.Registry.names

let test_table2_mentions_htm () =
  let str = Table.to_string (Experiments.table2 micro_options) in
  Alcotest.(check bool) "mentions HTM" true (contains str "HTM");
  Alcotest.(check bool) "mentions MESI" true (contains str "MESI")

(* ------------------------------------------------------------------ *)
(* Per-simulation shard cache *)

module Suite_cache = Clear_repro.Suite_cache

let test_shard_roundtrip () =
  ignore (Suite_cache.clear ());
  let cfg = Experiments.config_of_letter micro_options "C" in
  let w = Workloads.Arrayswap.workload in
  let name = w.Machine.Workload.name in
  let stats = Run.run_sim { Run.cfg; workload = w; seed = 9 } in
  Alcotest.(check bool) "miss before save" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:9 = None);
  Suite_cache.save_shard cfg ~workload:name ~seed:9 stats;
  (match Suite_cache.load_shard cfg ~workload:name ~seed:9 with
  | None -> Alcotest.fail "hit expected after save"
  | Some s ->
      Alcotest.(check int) "cycles preserved" (Machine.Stats.total_cycles stats)
        (Machine.Stats.total_cycles s);
      Alcotest.(check int) "commits preserved" (Machine.Stats.commits stats)
        (Machine.Stats.commits s));
  (* the key is the full (config, workload, seed) triple *)
  Alcotest.(check bool) "other seed misses" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:10 = None);
  Alcotest.(check bool) "other workload misses" true
    (Suite_cache.load_shard cfg ~workload:"other" ~seed:9 = None);
  Alcotest.(check bool) "other config misses" true
    (Suite_cache.load_shard
       (Experiments.config_of_letter micro_options "B")
       ~workload:name ~seed:9
    = None);
  Alcotest.(check bool) "clear removes it" true (Suite_cache.clear () >= 1);
  Alcotest.(check bool) "miss after clear" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:9 = None)

let test_shard_prune_stale () =
  ignore (Suite_cache.clear ());
  let cfg = Experiments.config_of_letter micro_options "B" in
  let w = Workloads.Arrayswap.workload in
  let name = w.Machine.Workload.name in
  Suite_cache.save_shard cfg ~workload:name ~seed:4 (Run.run_sim { Run.cfg; workload = w; seed = 4 });
  let stale = Filename.concat Suite_cache.dir "shard-deadbeef.bin" in
  Out_channel.with_open_bin stale (fun oc -> Marshal.to_channel oc "not-this-build" []);
  Suite_cache.prune_stale ();
  Alcotest.(check bool) "stale entry removed" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh shard kept" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:4 <> None);
  ignore (Suite_cache.clear ())

(* Changing only the schedule profile must change the shard key: a shard
   written under the symmetric profile is invisible to a numa2x sweep and
   vice versa, while each profile still hits its own shards. *)
let test_shard_sched_keying () =
  ignore (Suite_cache.clear ());
  let cfg = Experiments.config_of_letter micro_options "C" in
  let cfg_numa = Config.with_sched cfg Sched.Scenarios.numa2x in
  let w = Workloads.Arrayswap.workload in
  let name = w.Machine.Workload.name in
  Suite_cache.save_shard cfg ~workload:name ~seed:9 (Run.run_sim { Run.cfg; workload = w; seed = 9 });
  Alcotest.(check bool) "numa2x misses symmetric shard" true
    (Suite_cache.load_shard cfg_numa ~workload:name ~seed:9 = None);
  Suite_cache.save_shard cfg_numa ~workload:name ~seed:9
    (Run.run_sim { Run.cfg = cfg_numa; workload = w; seed = 9 });
  Alcotest.(check bool) "numa2x shard hits" true
    (Suite_cache.load_shard cfg_numa ~workload:name ~seed:9 <> None);
  Alcotest.(check bool) "symmetric shard still hits" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:9 <> None);
  ignore (Suite_cache.clear ())

(* Partial-hit splice across a sched-profile change: warm the cache with one
   workload under numa2x, then sweep both workloads under numa2x (half hit,
   half simulated, spliced in task order) — the result must be bit-identical
   to a cold uncached numa2x sweep. A symmetric sweep warmed first makes
   sure foreign-profile shards never leak into the splice. *)
let test_partial_hit_splice_sched () =
  ignore (Suite_cache.clear ());
  let numa_options = { micro_options with Experiments.sched = Sched.Scenarios.numa2x } in
  ignore (Experiments.run_suite ~cache:true ~workloads:micro_workloads micro_options);
  ignore
    (Experiments.run_suite ~cache:true ~workloads:[ Workloads.Arrayswap.workload ] numa_options);
  let messages = ref [] in
  let progress m = messages := m :: !messages in
  let warm =
    Experiments.run_suite ~cache:true ~workloads:micro_workloads ~progress numa_options
  in
  Alcotest.(check bool) "sweep was a partial hit" true
    (List.exists (fun m -> contains m "shard(s) hit") !messages);
  let cold = Experiments.run_suite ~workloads:micro_workloads numa_options in
  Alcotest.(check bool) "spliced sweep equals cold sweep" true
    (warm.Experiments.rows = cold.Experiments.rows);
  ignore (Suite_cache.clear ())

(* prune_stale also sweeps up legacy whole-suite entries and shards written
   by other builds, without touching fresh shards or unrelated files. *)
let test_prune_legacy_and_clear_scope () =
  ignore (Suite_cache.clear ());
  let cfg = Experiments.config_of_letter micro_options "B" in
  let w = Workloads.Arrayswap.workload in
  let name = w.Machine.Workload.name in
  Suite_cache.save_shard cfg ~workload:name ~seed:4 (Run.run_sim { Run.cfg; workload = w; seed = 4 });
  let legacy = Filename.concat Suite_cache.dir "suite-0123abcd.bin" in
  Out_channel.with_open_bin legacy (fun oc -> Marshal.to_channel oc "some-old-build" []);
  let stale = Filename.concat Suite_cache.dir "shard-cafebabe.bin" in
  Out_channel.with_open_bin stale (fun oc -> Marshal.to_channel oc "not-this-build" []);
  let unrelated = Filename.concat Suite_cache.dir "notes.txt" in
  Out_channel.with_open_bin unrelated (fun oc -> Out_channel.output_string oc "keep me");
  Suite_cache.prune_stale ();
  Alcotest.(check bool) "legacy suite entry pruned" false (Sys.file_exists legacy);
  Alcotest.(check bool) "stale shard pruned" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh shard survives prune" true
    (Suite_cache.load_shard cfg ~workload:name ~seed:4 <> None);
  Alcotest.(check bool) "unrelated file survives prune" true (Sys.file_exists unrelated);
  Alcotest.(check bool) "clear removes the fresh shard" true (Suite_cache.clear () >= 1);
  Alcotest.(check bool) "unrelated file survives clear" true (Sys.file_exists unrelated);
  Sys.remove unrelated

let test_suite_cached_identical () =
  ignore (Suite_cache.clear ());
  let messages = ref [] in
  let progress m = messages := m :: !messages in
  let s1 = Experiments.run_suite ~cache:true ~workloads:micro_workloads ~progress micro_options in
  let s2 = Experiments.run_suite ~cache:true ~workloads:micro_workloads ~progress micro_options in
  Alcotest.(check bool) "second sweep hit the cache" true
    (List.exists (fun m -> contains m "shard(s) hit") !messages);
  Alcotest.(check string) "warm sweep identical"
    (Table.to_string (Experiments.fig8 s1))
    (Table.to_string (Experiments.fig8 s2));
  let s3 = Experiments.run_suite ~workloads:micro_workloads micro_options in
  Alcotest.(check string) "identical to uncached sweep"
    (Table.to_string (Experiments.fig8 s1))
    (Table.to_string (Experiments.fig8 s3));
  ignore (Suite_cache.clear ())

let () =
  Alcotest.run "harness"
    [
      ( "run",
        [
          Alcotest.test_case "measure basics" `Quick test_measure_basics;
          Alcotest.test_case "measure deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "best retries" `Quick test_best_retries_picks_minimum;
          Alcotest.test_case "config_of_letter" `Quick test_config_of_letter;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "suite jobs:4 == jobs:1" `Slow test_suite_parallel_identical;
          Alcotest.test_case "measure jobs:3 == jobs:1" `Slow test_measure_parallel_identical;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "suite shape" `Slow test_suite_shape;
          Alcotest.test_case "figures render" `Slow test_figures_render;
          Alcotest.test_case "fig8 normalised" `Slow test_fig8_baseline_normalised_to_one;
          Alcotest.test_case "table1 rows" `Quick test_table1_rows;
          Alcotest.test_case "table2 content" `Quick test_table2_mentions_htm;
        ] );
      ( "shard cache",
        [
          Alcotest.test_case "roundtrip + keying" `Quick test_shard_roundtrip;
          Alcotest.test_case "prune stale" `Quick test_shard_prune_stale;
          Alcotest.test_case "sched profile keying" `Quick test_shard_sched_keying;
          Alcotest.test_case "partial-hit splice across sched change" `Slow
            test_partial_hit_splice_sched;
          Alcotest.test_case "prune legacy + clear scope" `Quick
            test_prune_legacy_and_clear_scope;
          Alcotest.test_case "cached suite identical" `Slow test_suite_cached_identical;
        ] );
    ]
