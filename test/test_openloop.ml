(* Tests for the open-system traffic harness: exact percentile reporting,
   pooled witness capture, request-lifecycle conservation, saturation
   drops, jobs/PDES determinism and the suite-cache bypass. *)

module Config = Machine.Config
module Percentile = Report.Percentile
module Driver = Openloop.Driver
module Sweep = Openloop.Sweep

(* ------------------------------------------------------------------ *)
(* Percentile reporter *)

let test_percentile_edges () =
  Alcotest.(check bool) "empty is None" true (Percentile.of_samples [||] = None);
  (match Percentile.of_samples [| 7 |] with
  | None -> Alcotest.fail "singleton must report"
  | Some p ->
      Alcotest.(check int) "count" 1 p.Percentile.count;
      Alcotest.(check (float 0.0)) "mean" 7.0 p.Percentile.mean;
      Alcotest.(check int) "max" 7 p.Percentile.max;
      Alcotest.(check int) "p50" 7 p.Percentile.p50;
      Alcotest.(check int) "p99" 7 p.Percentile.p99;
      Alcotest.(check int) "p999" 7 p.Percentile.p999);
  Alcotest.(check int) "rank floor" 1 (Percentile.rank ~count:10 0.0);
  Alcotest.(check int) "rank ceiling" 10 (Percentile.rank ~count:10 1.0);
  Alcotest.check_raises "empty rank" (Invalid_argument "Percentile.rank: empty sample")
    (fun () -> ignore (Percentile.rank ~count:0 0.5));
  Alcotest.check_raises "quantile range" (Invalid_argument "Percentile.rank: quantile outside [0,1]")
    (fun () -> ignore (Percentile.rank ~count:4 1.5))

let test_percentile_known () =
  (* The documented examples: nearest-rank, no interpolation. *)
  (match Percentile.of_samples [| 4; 2; 1; 3 |] with
  | None -> Alcotest.fail "non-empty"
  | Some p -> Alcotest.(check int) "p50 of 1..4" 2 p.Percentile.p50);
  let thousand = Array.init 1000 (fun i -> i + 1) in
  match Percentile.of_samples thousand with
  | None -> Alcotest.fail "non-empty"
  | Some p ->
      Alcotest.(check int) "p99 of 1..1000" 990 p.Percentile.p99;
      Alcotest.(check int) "p999 of 1..1000" 999 p.Percentile.p999;
      Alcotest.(check int) "max" 1000 p.Percentile.max

(* The reporter must agree with a straight sorted-array oracle (the
   definition, written independently of the implementation). *)
let prop_percentile_oracle =
  QCheck.Test.make ~name:"percentiles match sorted-array oracle" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range (-1000) 1000))
    (fun samples ->
      let arr = Array.of_list samples in
      let sorted = List.sort compare samples in
      let n = List.length samples in
      let nth q =
        let r = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int n))) in
        List.nth sorted (r - 1)
      in
      match Percentile.of_samples arr with
      | None -> false
      | Some p ->
          p.Percentile.count = n
          && p.Percentile.max = List.nth sorted (n - 1)
          && p.Percentile.p50 = nth 0.50
          && p.Percentile.p99 = nth 0.99
          && p.Percentile.p999 = nth 0.999
          && abs_float
               (p.Percentile.mean -. List.fold_left (fun a v -> a +. float_of_int v) 0.0 sorted /. float_of_int n)
             < 1e-9)

(* ------------------------------------------------------------------ *)
(* Pooled witness-capture buffer *)

let test_capbuf_dedup_and_order () =
  let c = Check.Capbuf.create () in
  Check.Capbuf.note_read c ~line:9 ~time:3;
  Check.Capbuf.note_read c ~line:2 ~time:5;
  Check.Capbuf.note_read c ~line:9 ~time:7;
  (* dup: first wins *)
  Check.Capbuf.note_write c ~line:4 ~time:6;
  Check.Capbuf.note_store c ~addr:40 ~value:1;
  Check.Capbuf.note_store c ~addr:40 ~value:2;
  (* stores keep dups *)
  Alcotest.(check (list (pair int int))) "reads sorted, first time kept"
    [ (2, 5); (9, 3) ] (Check.Capbuf.reads c);
  Alcotest.(check (list (pair int int))) "writes" [ (4, 6) ] (Check.Capbuf.writes c);
  Alcotest.(check (list (pair int int))) "stores in program order"
    [ (40, 1); (40, 2) ] (Check.Capbuf.stores c);
  Check.Capbuf.reset c;
  Alcotest.(check (list (pair int int))) "reset empties reads" [] (Check.Capbuf.reads c);
  Alcotest.(check (list (pair int int))) "reset empties stores" [] (Check.Capbuf.stores c)

let test_capbuf_growth () =
  (* Push past the initial capacity (16) on every channel. *)
  let c = Check.Capbuf.create () in
  for i = 0 to 99 do
    Check.Capbuf.note_read c ~line:i ~time:(1000 + i);
    Check.Capbuf.note_write c ~line:i ~time:(2000 + i);
    Check.Capbuf.note_store c ~addr:i ~value:i
  done;
  Alcotest.(check int) "100 reads" 100 (List.length (Check.Capbuf.reads c));
  Alcotest.(check (list (pair int int))) "sorted unique reads"
    (List.init 100 (fun i -> (i, 1000 + i)))
    (Check.Capbuf.reads c);
  Alcotest.(check int) "100 stores" 100 (List.length (Check.Capbuf.stores c))

let test_capbuf_growth_boundary () =
  (* Exactly [initial] = 16 entries fit without growth; the 17th append is
     the growth trigger (grow fires when n = length) and must preserve every
     earlier entry on each channel. *)
  let c = Check.Capbuf.create () in
  for i = 15 downto 0 do
    Check.Capbuf.note_read c ~line:i ~time:(100 + i);
    Check.Capbuf.note_write c ~line:i ~time:(200 + i);
    Check.Capbuf.note_store c ~addr:i ~value:(-i)
  done;
  Alcotest.(check (list (pair int int))) "16 reads fill the initial arrays"
    (List.init 16 (fun i -> (i, 100 + i)))
    (Check.Capbuf.reads c);
  (* A duplicate at the boundary must not grow or append... *)
  Check.Capbuf.note_read c ~line:0 ~time:999;
  Alcotest.(check int) "dup at the boundary ignored" 16 (List.length (Check.Capbuf.reads c));
  (* ...while the 17th distinct entry grows and keeps all 16 predecessors. *)
  Check.Capbuf.note_read c ~line:16 ~time:116;
  Check.Capbuf.note_write c ~line:16 ~time:216;
  Check.Capbuf.note_store c ~addr:16 ~value:(-16);
  Alcotest.(check (list (pair int int))) "17 reads after growth"
    (List.init 17 (fun i -> (i, 100 + i)))
    (Check.Capbuf.reads c);
  Alcotest.(check (list (pair int int))) "17 writes after growth"
    (List.init 17 (fun i -> (i, 200 + i)))
    (Check.Capbuf.writes c);
  Alcotest.(check (list (pair int int))) "stores keep program order across growth"
    (List.init 16 (fun i -> (15 - i, -(15 - i))) @ [ (16, -16) ])
    (Check.Capbuf.stores c);
  (* Reset then refill past the boundary again: the grown arrays are reused. *)
  Check.Capbuf.reset c;
  Alcotest.(check (list (pair int int))) "reset empties" [] (Check.Capbuf.reads c);
  for i = 0 to 16 do
    Check.Capbuf.note_read c ~line:(50 + i) ~time:i
  done;
  Alcotest.(check int) "refill past boundary" 17 (List.length (Check.Capbuf.reads c))

(* Capture runs through the pooled buffers now; the observation-only
   contract must survive the pooling: a checked run's statistics are
   bit-identical to the unchecked run's, closed and open loop alike. *)
let small_closed preset =
  Config.with_seed (Config.with_cores (Config.with_retries preset 1) 4) 11

let test_pooled_capture_bit_identical_closed () =
  List.iter
    (fun (name, preset) ->
      let cfg = small_closed preset in
      let sim = { Clear_repro.Run.cfg; workload = Workloads.Arrayswap.workload; seed = 11 } in
      let plain = Clear_repro.Run.run_sim sim in
      let checked, verdict = Clear_repro.Run.run_sim_checked sim in
      Alcotest.(check bool) (name ^ " verdict clean") true (Check.Verdict.ok verdict);
      Alcotest.(check int) (name ^ " cycles") (Machine.Stats.total_cycles plain)
        (Machine.Stats.total_cycles checked);
      Alcotest.(check int) (name ^ " commits") (Machine.Stats.commits plain)
        (Machine.Stats.commits checked);
      Alcotest.(check int) (name ^ " aborts") (Machine.Stats.aborts plain)
        (Machine.Stats.aborts checked);
      Alcotest.(check int) (name ^ " instrs") (Machine.Stats.instrs plain)
        (Machine.Stats.instrs checked))
    [ ("B", Config.baseline); ("C", Config.clear_rw) ]

let open_cfg ?(cap = 0) ?(requests = 300) ?(rate = 80.0) preset =
  let q =
    { Config.open_rate = rate; open_requests = requests; open_process = Config.Open_poisson;
      open_queue_cap = cap }
  in
  Config.with_openloop (small_closed preset) (Some q)

let open_workload = lazy (Workloads.Registry.open_scaled "arrayswap" ~keys:(1 lsl 12) ~theta:6.0)

let test_pooled_capture_bit_identical_open () =
  let cfg = open_cfg Config.clear_rw in
  let w = Lazy.force open_workload in
  let plain = Driver.run_point ~check:false cfg w in
  let checked = Driver.run_point ~check:true cfg w in
  Alcotest.(check bool) "oracle clean" true checked.Driver.oracle_ok;
  Alcotest.(check bool) "checked flag" true checked.Driver.checked;
  (* Everything outside the two check-reporting fields is bit-identical. *)
  Alcotest.(check bool) "same lifecycle + latency" true
    ({ checked with Driver.checked = false; oracle_ok = plain.Driver.oracle_ok } = plain)

let test_streamed_point_bit_identical () =
  (* The streaming checker is observation-only too: a --check --stream point
     must agree with the unchecked point on every lifecycle and latency
     field, report a clean oracle, and expose its memory counters. *)
  let cfg = open_cfg Config.clear_rw in
  let w = Lazy.force open_workload in
  let plain = Driver.run_point ~check:false cfg w in
  let streamed = Driver.run_point ~check:true ~stream:true cfg w in
  Alcotest.(check bool) "oracle clean" true streamed.Driver.oracle_ok;
  Alcotest.(check bool) "stream flag" true streamed.Driver.stream;
  Alcotest.(check bool) "streamed point otherwise bit-identical" true
    ({
       streamed with
       Driver.checked = false;
       stream = false;
       oracle_ok = plain.Driver.oracle_ok;
       check_live_lines = plain.Driver.check_live_lines;
       check_retired = plain.Driver.check_retired;
     }
    = plain);
  Alcotest.(check bool) "live-line high water reported" true (streamed.Driver.check_live_lines > 0);
  Alcotest.(check int) "unchecked point has no checker state" 0 plain.Driver.check_live_lines;
  (* Streaming and post hoc verdicts agree on the same point. *)
  let posthoc = Driver.run_point ~check:true cfg w in
  Alcotest.(check bool) "posthoc agrees" posthoc.Driver.oracle_ok streamed.Driver.oracle_ok

(* ------------------------------------------------------------------ *)
(* Request-lifecycle conservation and saturation *)

let test_open_conservation () =
  let r = Driver.run_point (open_cfg Config.clear_rw) (Lazy.force open_workload) in
  Alcotest.(check int) "requests generated" 300 r.Driver.requests;
  Alcotest.(check int) "unbounded queue drops nothing" 0 r.Driver.dropped;
  Alcotest.(check int) "admitted = requests - dropped" r.Driver.requests
    (r.Driver.admitted + r.Driver.dropped);
  Alcotest.(check int) "every admitted request commits" r.Driver.admitted r.Driver.completed;
  (match r.Driver.sojourn with
  | None -> Alcotest.fail "sojourn report expected"
  | Some p ->
      Alcotest.(check int) "sojourn sample per completion" r.Driver.completed p.Percentile.count;
      Alcotest.(check bool) "p50 <= p99 <= p999 <= max" true
        (p.Percentile.p50 <= p.Percentile.p99
        && p.Percentile.p99 <= p.Percentile.p999
        && p.Percentile.p999 <= p.Percentile.max));
  match r.Driver.wait with
  | None -> Alcotest.fail "wait report expected"
  | Some p -> Alcotest.(check int) "wait sample per dispatch" r.Driver.admitted p.Percentile.count

let test_open_saturation_drops () =
  (* A tiny bounded queue under heavy offered load must shed requests,
     and the books must still balance. *)
  let r =
    Driver.run_point (open_cfg ~cap:8 ~rate:400.0 Config.baseline) (Lazy.force open_workload)
  in
  Alcotest.(check bool) "overload sheds load" true (r.Driver.dropped > 0);
  Alcotest.(check int) "conservation under drops" r.Driver.requests
    (r.Driver.admitted + r.Driver.dropped);
  Alcotest.(check int) "admitted all complete" r.Driver.admitted r.Driver.completed;
  Alcotest.(check bool) "queue high-water within cap" true (r.Driver.qdepth_hw <= 8)

(* ------------------------------------------------------------------ *)
(* Arrival schedule: the Poisson draw is clamped away from 1.0 so a tail
   sample can never overflow to a non-finite gap, and the stream is pinned
   bit-for-bit against both a golden prefix and an independent
   reimplementation of the draw loop. *)

let test_openq_poisson_pinned () =
  let rate = 80.0 and requests = 4096 in
  let got =
    Machine.Openq.generate ~rate ~requests ~process:Config.Open_poisson (Simrt.Rng.create 42)
  in
  (* Golden prefix for seed 42 at 80 req/kcycle. *)
  Alcotest.(check (array int)) "golden prefix"
    [| 17; 19; 23; 28; 29; 54; 57; 77; 82; 94 |]
    (Array.sub got 0 10);
  (* Independent reimplementation, clamp included, from the same seed. *)
  let expected =
    let rng = Simrt.Rng.create 42 in
    let mean = 1000.0 /. rate in
    let t = ref 0 in
    Array.init requests (fun _ ->
        let u = Float.min (Simrt.Rng.float rng 1.0) 0.999999 in
        t := !t + max 1 (int_of_float (Float.round (-.mean *. log (1.0 -. u))));
        !t)
  in
  Alcotest.(check (array int)) "bit-identical to the documented draw" expected got;
  (* Every gap is >= 1 cycle and below the clamp's ~13.8-mean ceiling:
     no draw can reach the non-finite region the clamp guards against. *)
  let max_gap = int_of_float (ceil (1000.0 /. rate *. -.log (1.0 -. 0.999999))) in
  let ok = ref true in
  Array.iteri
    (fun i t ->
      let gap = t - if i = 0 then 0 else got.(i - 1) in
      if gap < 1 || gap > max_gap then ok := false)
    got;
  Alcotest.(check bool) "gaps in [1, clamp ceiling]" true !ok

let test_openq_burst_pinned () =
  let gen () =
    Machine.Openq.generate ~rate:80.0 ~requests:512
      ~process:(Config.Open_burst { heat = 1.5 })
      (Simrt.Rng.create 42)
  in
  let a = gen () in
  Alcotest.(check (array int)) "golden prefix"
    [| 20; 21; 23; 26; 27; 56; 57; 81; 84; 97 |]
    (Array.sub a 0 10);
  Alcotest.(check (array int)) "same seed, same schedule" a (gen ());
  let ok = ref true in
  Array.iteri (fun i t -> if t <= (if i = 0 then 0 else a.(i - 1)) then ok := false) a;
  Alcotest.(check bool) "strictly increasing" true !ok

(* ------------------------------------------------------------------ *)
(* Determinism: job count and PDES must not change a byte of the sweep *)

let tiny_sweep jobs =
  {
    Sweep.default_options with
    Sweep.keys = 1 lsl 12;
    loads = [ 40.0; 80.0 ];
    requests = 200;
    jobs;
    check = true;
  }

let test_sweep_jobs_identical () =
  (* The CLI clamps --jobs to the host's domain count, so exercise the
     library path directly: parallel and sequential sweeps must serialise
     to the same bytes. *)
  let o1 = tiny_sweep 1 and o2 = tiny_sweep 2 in
  let j1 = Report.Json.to_string (Sweep.to_json o1 (Sweep.run o1)) in
  let j2 = Report.Json.to_string (Sweep.to_json o2 (Sweep.run o2)) in
  Alcotest.(check string) "jobs:2 sweep JSON equals jobs:1" j1 j2

let test_sweep_repeat_identical () =
  let o = tiny_sweep 1 in
  let j1 = Report.Json.to_string (Sweep.to_json o (Sweep.run o)) in
  let j2 = Report.Json.to_string (Sweep.to_json o (Sweep.run o)) in
  Alcotest.(check string) "same seed, same bytes" j1 j2

let test_open_pdes_identical () =
  let cfg = open_cfg Config.clear_rw in
  let w = Lazy.force open_workload in
  let seq = Driver.run_point cfg w in
  List.iter
    (fun pdes ->
      let par = Driver.run_point ~pdes cfg w in
      Alcotest.(check string)
        ("pdes " ^ Machine.Pdes.describe pdes ^ " point equals sequential")
        (Report.Json.to_string (Driver.to_json seq))
        (Report.Json.to_string (Driver.to_json par)))
    [ Machine.Pdes.unbounded; Machine.Pdes.windowed 64 ]

(* ------------------------------------------------------------------ *)
(* Suite cache: open-system runs bypass it in both directions *)

let test_open_cache_bypass () =
  ignore (Clear_repro.Suite_cache.clear ());
  let closed = small_closed Config.clear_rw in
  let opened = open_cfg Config.clear_rw in
  Alcotest.(check bool) "closed cfg cacheable" true (Clear_repro.Suite_cache.cacheable closed);
  Alcotest.(check bool) "open cfg not cacheable" false (Clear_repro.Suite_cache.cacheable opened);
  (* A cached suite run populates a shard for the closed config... *)
  let w = Workloads.Arrayswap.workload in
  let name = w.Machine.Workload.name in
  let stats = Clear_repro.Run.run_sim { Clear_repro.Run.cfg = closed; workload = w; seed = 11 } in
  Clear_repro.Suite_cache.save_shard closed ~workload:name ~seed:11 stats;
  Alcotest.(check bool) "closed shard hits" true
    (Clear_repro.Suite_cache.load_shard closed ~workload:name ~seed:11 <> None);
  (* ...but the open-loop sweep that follows must not read or write any
     shard: no stale closed-loop stats can splice into the curve, and no
     open-loop stats (missing the lifecycle data) can poison the cache. *)
  Alcotest.(check bool) "open load misses" true
    (Clear_repro.Suite_cache.load_shard opened ~workload:name ~seed:11 = None);
  Clear_repro.Suite_cache.save_shard opened ~workload:name ~seed:11 stats;
  Alcotest.(check bool) "open save is a no-op" false
    (Sys.file_exists (Clear_repro.Suite_cache.shard_path opened ~workload:name ~seed:11));
  (* The sweep itself still works with a warm cache sitting on disk. *)
  let r = Driver.run_point opened (Lazy.force open_workload) in
  Alcotest.(check bool) "open point ran for real" true (r.Driver.completed > 0);
  ignore (Clear_repro.Suite_cache.clear ())

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openloop"
    [
      ( "percentile",
        [
          Alcotest.test_case "edges" `Quick test_percentile_edges;
          Alcotest.test_case "documented values" `Quick test_percentile_known;
        ]
        @ qsuite [ prop_percentile_oracle ] );
      ( "capbuf",
        [
          Alcotest.test_case "dedup and order" `Quick test_capbuf_dedup_and_order;
          Alcotest.test_case "growth" `Quick test_capbuf_growth;
          Alcotest.test_case "growth at the initial boundary" `Quick test_capbuf_growth_boundary;
          Alcotest.test_case "closed-loop stats bit-identical" `Quick
            test_pooled_capture_bit_identical_closed;
          Alcotest.test_case "open-loop stats bit-identical" `Quick
            test_pooled_capture_bit_identical_open;
          Alcotest.test_case "streamed point bit-identical" `Quick
            test_streamed_point_bit_identical;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson schedule pinned" `Quick test_openq_poisson_pinned;
          Alcotest.test_case "burst schedule pinned" `Quick test_openq_burst_pinned;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "conservation" `Quick test_open_conservation;
          Alcotest.test_case "saturation drops" `Quick test_open_saturation_drops;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-invariant sweep" `Quick test_sweep_jobs_identical;
          Alcotest.test_case "repeat-invariant sweep" `Quick test_sweep_repeat_identical;
          Alcotest.test_case "pdes-invariant point" `Quick test_open_pdes_identical;
        ] );
      ( "suite-cache",
        [ Alcotest.test_case "open runs bypass cache" `Quick test_open_cache_bypass ] );
    ]
