(* Fuzzing the engine with randomly generated atomic regions.

   Programs are loop-free (branches only jump forward), so they always
   terminate. A closed pointer discipline keeps every computed address inside
   a shared 32-line window: registers r0–r3 are "pointer class" — they are
   initialised to window addresses and only ever written by loads — and every
   value stored to memory is itself a valid window address, so loading
   through a pointer register is always safe.

   For each generated program the properties are:
   - the simulation terminates and commits exactly cores * ops operations
     under every configuration (B/P/C/W, HTM and SLE);
   - runs are deterministic (same seed, same cycle count);
   - with CLEAR enabled the memory image equals a rerun with CLEAR enabled
     (and both stay within the window — no stray writes). *)

module Engine = Machine.Engine
module Config = Machine.Config
module Stats = Machine.Stats
module Workload = Machine.Workload
module Store = Mem.Store
module I = Isa.Instr
module P = Isa.Program

let window_base = 64

let window_lines = 32

let window_words = window_lines * 8

(* Generate one instruction at index [i] of a body of length [n]. *)
let gen_instr ~i ~n rng =
  let gi bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
  let gb () = QCheck.Gen.generate1 ~rand:rng QCheck.Gen.bool in
  let pointer_reg () = gi 3 in
  let data_reg () = 8 + gi 7 in
  let addr_operand () =
    if gb () then I.Imm (window_base + gi (window_words - 1)) else I.Reg (pointer_reg ())
  in
  let store_value () =
    (* stored values must be valid window addresses (pointer discipline) *)
    if gb () then I.Imm (window_base + gi (window_words - 1)) else I.Reg (pointer_reg ())
  in
  match gi 9 with
  | 0 | 1 ->
      (* load into a pointer register: the loaded value is a window address *)
      I.Ld { dst = pointer_reg (); base = addr_operand (); off = 0; region = "fuzz" }
  | 2 | 3 -> I.Ld { dst = data_reg (); base = addr_operand (); off = 0; region = "fuzz" }
  | 4 | 5 -> I.St { base = addr_operand (); off = 0; src = store_value (); region = "fuzz" }
  | 6 ->
      let ops = [| I.Add; I.Sub; I.Xor; I.And; I.Or; I.Min; I.Max |] in
      I.Binop
        {
          op = ops.(gi (Array.length ops - 1));
          dst = data_reg ();
          a = I.Reg (data_reg ());
          b = I.Imm (gi 100);
        }
  | 7 ->
      (* forward branch only: target in (i, n] — n is the Halt index *)
      let target = i + 1 + gi (n - i - 1) in
      I.Br { cond = I.Lt; a = I.Reg (data_reg ()); b = I.Imm (gi 50); target }
  | 8 -> I.Mov { dst = data_reg (); src = I.Imm (gi 1000) }
  | _ -> I.Nop

let gen_program ~seed ~id =
  let rng = Random.State.make [| seed; id |] in
  let n = 3 + QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound 20) in
  let body = Array.init (n + 1) (fun i -> if i = n then I.Halt else gen_instr ~i ~n rng) in
  P.make_ar ~id ~name:(Printf.sprintf "fuzz%d" id) body

let gen_workload ~seed ~ar_count =
  let ars = List.init ar_count (fun id -> gen_program ~seed ~id) in
  let arr = Array.of_list ars in
  {
    Workload.name = Printf.sprintf "fuzz-%d" seed;
    description = "randomly generated loop-free atomic regions";
    ars;
    memory_words = window_base + window_words + 64;
    setup =
      (fun store rng ->
        (* every word holds a valid window address *)
        for i = 0 to window_words - 1 do
          Store.write store (window_base + i)
            (window_base + Simrt.Rng.int rng window_words)
        done);
    make_driver =
      (fun ~tid:_ ~threads:_ _ rng () ->
        let ar = arr.(Simrt.Rng.int rng (Array.length arr)) in
        let inits =
          List.init 4 (fun r -> (r, window_base + Simrt.Rng.int rng window_words))
        in
        Workload.op ar inits);
      pure_driver = true;
    }

let cfgs =
  [
    ("B", Config.baseline);
    ("P", Config.power_tm);
    ("C", Config.clear_rw);
    ("W", Config.clear_power);
    ("W/SLE", { Config.clear_power with Config.frontend = Config.Sle });
  ]

let shape cfg = { cfg with Config.cores = 4; ops_per_thread = 15; memory_words = 1 lsl 16 }

let test_fuzz_terminates_and_commits () =
  for seed = 1 to 12 do
    let w = gen_workload ~seed ~ar_count:3 in
    List.iter
      (fun (label, cfg) ->
        let cfg = shape cfg in
        let stats = Engine.run_workload cfg w in
        Alcotest.(check int)
          (Printf.sprintf "seed %d %s commits" seed label)
          (cfg.Config.cores * cfg.Config.ops_per_thread)
          (Stats.commits stats))
      cfgs
  done

let test_fuzz_deterministic () =
  for seed = 20 to 26 do
    let w = gen_workload ~seed ~ar_count:2 in
    let run () = Stats.total_cycles (Engine.run_workload (shape Config.clear_power) w) in
    Alcotest.(check int) (Printf.sprintf "seed %d deterministic" seed) (run ()) (run ())
  done

let test_fuzz_no_stray_writes () =
  (* The pointer discipline must keep every write inside the window: all
     memory outside it stays zero. *)
  for seed = 30 to 35 do
    let w = gen_workload ~seed ~ar_count:3 in
    let cfg = shape Config.clear_rw in
    let engine = Engine.create cfg w in
    let _ = Engine.run engine in
    let store = Engine.store engine in
    for a = window_base + window_words to window_base + window_words + 63 do
      Alcotest.(check int) (Printf.sprintf "seed %d word %d untouched" seed a) 0 (Store.read store a)
    done
  done

let test_fuzz_window_values_stay_valid () =
  (* Closure property: after any run, every window word still holds a valid
     window address — otherwise some store leaked a non-pointer value. *)
  for seed = 40 to 45 do
    let w = gen_workload ~seed ~ar_count:4 in
    let engine = Engine.create (shape Config.clear_power) w in
    let _ = Engine.run engine in
    let store = Engine.store engine in
    for i = 0 to window_words - 1 do
      let v = Store.read store (window_base + i) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d slot %d in window" seed i)
        true
        (v >= window_base && v < window_base + window_words)
    done
  done

(* A random (but valid) schedule profile: random think distributions, hot
   cores, phase stagger, and a coin-flip two-socket latency matrix. Pure
   data, so it drops straight into Config.with_sched. *)
let gen_profile ~seed =
  let rng = Random.State.make [| seed; 0x5ced |] in
  let gi bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
  let dist () =
    match gi 3 with
    | 0 -> Sched.Profile.Default
    | 1 -> Sched.Profile.Const (gi 100)
    | 2 ->
        let lo = gi 100 in
        Sched.Profile.Uniform { lo; hi = lo + gi 200 }
    | _ ->
        let lo = gi 100 in
        Sched.Profile.Burst { lo; hi = lo + gi 300; heat = float_of_int (gi 8) /. 4.0 }
  in
  {
    Sched.Profile.name = Printf.sprintf "fuzz-prof-%d" seed;
    description = "randomly drawn schedule profile";
    think = dist ();
    hot_cores = gi 2;
    hot_think = dist ();
    hot_op_mult = 1 + gi 2;
    phase_stride = gi 500;
    numa = (if gi 1 = 0 then Mem.Numa.flat else Mem.Numa.two_socket ~remote:(10 + gi 90));
  }

let test_fuzz_oracles_pass () =
  (* The strongest property in the suite: every fuzzed execution, under
     every configuration and frontend — and under a randomly drawn schedule
     profile as well as the symmetric one — passes all oracles:
     serializability of the commit order, bit-exact sequential replay, lock
     safety, and the static soundness gate. *)
  for seed = 50 to 57 do
    let w = gen_workload ~seed ~ar_count:3 in
    let profile = gen_profile ~seed in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d profile valid" seed)
      [] (Sched.Profile.validate profile);
    List.iter
      (fun (label, cfg) ->
        List.iter
          (fun (plabel, prof) ->
            let cfg = Machine.Config.with_sched (shape cfg) prof in
            let sim = { Clear_repro.Run.cfg; workload = w; seed } in
            let _stats, verdict = Clear_repro.Run.run_sim_checked sim in
            if not (Check.Verdict.ok verdict) then
              Alcotest.failf "seed %d %s %s: %s" seed label plabel
                (Check.Verdict.to_string verdict))
          [ ("sym", Sched.Profile.symmetric); ("rand", profile) ])
      cfgs
  done

(* ------------------------------------------------------------------ *)
(* Injected numa-blind fault: when fault_numa_blind drops the conflict probe
   on every cross-socket access, remote-socket cores race on shared lines
   undetected — the oracles must notice. A shared counter homed on socket 0
   makes the lost updates deterministic to provoke. *)

let counter_workload =
  let ar =
    P.build_ar ~id:0 ~name:"count" (fun b ->
        Isa.Asm.ld b ~dst:8 ~base:(I.Imm 0) ~region:"ctr" ();
        Isa.Asm.add b ~dst:8 (I.Reg 8) (I.Imm 1);
        Isa.Asm.st b ~base:(I.Imm 0) ~src:(I.Reg 8) ~region:"ctr" ();
        Isa.Asm.halt b)
  in
  {
    Workload.name = "numa-counter";
    description = "shared counter homed on socket 0";
    ars = [ ar ];
    memory_words = 128;
    setup = (fun store _ -> Store.write store 0 0);
    make_driver = (fun ~tid:_ ~threads:_ _ _ () -> Workload.op ar []);
    pure_driver = true;
  }

let test_numa_blind_fault_caught () =
  let cfg sname fault =
    Machine.Config.with_sched
      {
        Config.baseline with
        Config.cores = 4;
        ops_per_thread = 60;
        memory_words = 1 lsl 16;
        fault_numa_blind = fault;
      }
      (Sched.Scenarios.find_exn sname)
  in
  (* Control 1: the fault knob is inert on a flat matrix (no access has a
     positive adder, so nothing is blind). *)
  let sim = { Clear_repro.Run.cfg = cfg "symmetric" true; workload = counter_workload; seed = 5 } in
  let _stats, verdict = Clear_repro.Run.run_sim_checked sim in
  Alcotest.(check bool) "flat matrix: knob inert, run clean" true (Check.Verdict.ok verdict);
  (* Control 2: numa2x without the fault is clean. *)
  let sim = { Clear_repro.Run.cfg = cfg "numa2x" false; workload = counter_workload; seed = 5 } in
  let _stats, verdict = Clear_repro.Run.run_sim_checked sim in
  Alcotest.(check bool) "numa2x without fault clean" true (Check.Verdict.ok verdict);
  (* The bug: numa2x with the dropped cross-socket probe loses updates. *)
  let sim = { Clear_repro.Run.cfg = cfg "numa2x" true; workload = counter_workload; seed = 5 } in
  let _stats, verdict = Clear_repro.Run.run_sim_checked sim in
  Alcotest.(check bool) "numa-blind fault caught" true (not (Check.Verdict.ok verdict));
  Alcotest.(check bool) "serializability or replay flagged" true
    (Result.is_error verdict.Check.Verdict.serial || Result.is_error verdict.Check.Verdict.replay)

(* ------------------------------------------------------------------ *)
(* Streaming checker vs post hoc oracles.

   Random witness streams respecting the engine's emission invariants —
   per-core attempts never overlap, the merged event stream is
   non-decreasing in time, reads/writes fall inside their attempt, commits
   precede same-cycle attempt ends — must produce the same serializability
   verdict from Check.Stream (at any retirement cadence) as from the post
   hoc Check.Serial over the full history. *)

let noop_ar = P.make_ar ~id:77 ~name:"noop" [| I.Halt |]

type gen_attempt = {
  g_core : int;
  g_begin : int;
  g_end : int;
  g_reads : (int * int) list;
  g_writes : (int * int) list;
  g_mode : Check.Witness.mode;
}

let gen_attempts rng =
  let gi bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
  let cores = 4 in
  let cursor = Array.make cores 0 in
  let n = 8 + gi 24 in
  List.init n (fun _ ->
      let core = gi (cores - 1) in
      let b = cursor.(core) + 1 + gi 5 in
      let e = b + 1 + gi 8 in
      cursor.(core) <- e;
      let span () = b + gi (e - b) in
      let subset () =
        List.filter_map (fun l -> if gi 2 = 0 then Some (l, span ()) else None) [ 0; 1; 2; 3; 4; 5 ]
      in
      let writes = subset () in
      let mode =
        match gi 3 with
        | 0 -> Check.Witness.Speculative
        | 1 -> Check.Witness.Scl
        | 2 -> Check.Witness.Nscl
        | _ -> Check.Witness.Fallback
      in
      { g_core = core; g_begin = b; g_end = e; g_reads = subset (); g_writes = writes; g_mode = mode })

(* Merge the attempts into the engine's stream order and materialise the
   commit-ordered witnesses: Attempt_begin at b, the commit then Attempt_end
   at e, ties resolved by insertion order (earlier attempt first), exactly
   as the sequential engine drains same-cycle events. *)
let events_of_attempts attempts =
  let raw =
    List.concat_map
      (fun a -> [ (a.g_begin, `Begin a); (a.g_end, `Commit a); (a.g_end, `End a) ])
      attempts
  in
  let raw = List.stable_sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) raw in
  let seq = ref 0 in
  List.map
    (fun (t, e) ->
      match e with
      | `Begin a -> (t, `Begin a)
      | `End a -> (t, `End a)
      | `Commit a ->
          let w =
            {
              Check.Witness.seq = !seq;
              time = a.g_end;
              core = a.g_core;
              ar = noop_ar;
              init_regs = [];
              mode = a.g_mode;
              retries = 0;
              reads = a.g_reads;
              writes = a.g_writes;
              stores = [];
            }
          in
          incr seq;
          (t, `Witness w))
    raw

let serial_fingerprint = function
  | Ok () -> None
  | Error (v : Check.Serial.violation) ->
      Some (v.Check.Serial.kind, v.Check.Serial.line, v.earlier.Check.Witness.seq, v.later.Check.Witness.seq)

let prop_stream_matches_serial =
  QCheck.Test.make ~name:"Check.Stream agrees with post hoc Check.Serial" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0x57e4 |] in
      let events = events_of_attempts (gen_attempts rng) in
      let ws = List.filter_map (function _, `Witness w -> Some w | _ -> None) events in
      let posthoc = serial_fingerprint (Check.Serial.check ws) in
      let zero = Store.image_of_array (Array.make 16 0) in
      List.for_all
        (fun sweep_every ->
          let str = Check.Stream.create ~sweep_every ~cores:4 () in
          Check.Stream.set_initial str zero;
          List.iter
            (fun (t, e) ->
              match e with
              | `Begin a ->
                  Check.Stream.add_lock_event str
                    (Check.Lock_safety.Attempt_begin { time = t; core = a.g_core })
              | `Witness w -> Check.Stream.add_commit str w
              | `End a ->
                  Check.Stream.add_lock_event str
                    (Check.Lock_safety.Attempt_end { time = t; core = a.g_core }))
            events;
          let results = Check.Stream.finish str ~final:zero in
          Result.is_ok results.Check.Stream.replay
          && Result.is_ok results.Check.Stream.locks
          && serial_fingerprint results.Check.Stream.serial = posthoc)
        [ 1; 2; 7; 512 ])

let test_fuzz_stream_agrees_with_posthoc () =
  (* Full engine runs: the streaming verdict equals the post hoc one byte
     for byte on fuzzed workloads under every configuration. *)
  for seed = 50 to 52 do
    let w = gen_workload ~seed ~ar_count:3 in
    List.iter
      (fun (label, cfg) ->
        let sim = { Clear_repro.Run.cfg = shape cfg; workload = w; seed } in
        let _stats, posthoc = Clear_repro.Run.run_sim_checked sim in
        let _stats, streamed = Clear_repro.Run.run_sim_checked ~stream:true sim in
        Alcotest.(check string)
          (Printf.sprintf "seed %d %s stream report" seed label)
          (Check.Verdict.to_string posthoc)
          (Check.Verdict.to_string streamed))
      cfgs
  done;
  (* ...and on an injected bug: the numa-blind fault's failing verdict must
     stream to the identical report. *)
  let cfg =
    Machine.Config.with_sched
      {
        Config.baseline with
        Config.cores = 4;
        ops_per_thread = 60;
        memory_words = 1 lsl 16;
        fault_numa_blind = true;
      }
      (Sched.Scenarios.find_exn "numa2x")
  in
  let sim = { Clear_repro.Run.cfg; workload = counter_workload; seed = 5 } in
  let _stats, posthoc = Clear_repro.Run.run_sim_checked sim in
  let _stats, streamed = Clear_repro.Run.run_sim_checked ~stream:true sim in
  Alcotest.(check bool) "fault caught by stream" true (not (Check.Verdict.ok streamed));
  Alcotest.(check string) "identical failing report" (Check.Verdict.to_string posthoc)
    (Check.Verdict.to_string streamed)

let () =
  Alcotest.run "fuzz"
    [
      ( "random programs",
        [
          Alcotest.test_case "terminate and commit (all configs)" `Quick test_fuzz_terminates_and_commits;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "no stray writes" `Quick test_fuzz_no_stray_writes;
          Alcotest.test_case "pointer closure" `Quick test_fuzz_window_values_stay_valid;
          Alcotest.test_case "all oracles pass (all configs x profiles)" `Quick
            test_fuzz_oracles_pass;
          Alcotest.test_case "numa-blind fault caught by oracles" `Quick
            test_numa_blind_fault_caught;
        ] );
      ( "streaming",
        [
          QCheck_alcotest.to_alcotest prop_stream_matches_serial;
          Alcotest.test_case "engine runs stream to identical verdicts" `Quick
            test_fuzz_stream_agrees_with_posthoc;
        ] );
    ]
