(* Tests for the machine substrate around the engine: register file,
   transactional state, conflict map, fallback lock, abort taxonomy,
   configuration presets and statistics. *)

module Regfile = Machine.Regfile
module Txn = Machine.Txn
module Conflict_map = Machine.Conflict_map
module Fallback_lock = Machine.Fallback_lock
module Abort = Machine.Abort
module Config = Machine.Config
module Stats = Machine.Stats
module I = Isa.Instr

(* ------------------------------------------------------------------ *)
(* Regfile *)

let test_regfile_values () =
  let r = Regfile.create () in
  Regfile.load_initial r [ (0, 10); (3, 7) ];
  Alcotest.(check int) "init r0" 10 (Regfile.get r 0);
  Alcotest.(check int) "init r3" 7 (Regfile.get r 3);
  Alcotest.(check int) "others zero" 0 (Regfile.get r 1);
  Alcotest.(check int) "operand reg" 10 (Regfile.operand r (I.Reg 0));
  Alcotest.(check int) "operand imm" 42 (Regfile.operand r (I.Imm 42))

let test_regfile_taint () =
  let r = Regfile.create () in
  Regfile.define_load r ~dst:1 5;
  Alcotest.(check bool) "load taints" true (Regfile.operand_tainted r (I.Reg 1));
  Regfile.define_alu r ~dst:2 [ I.Reg 1; I.Imm 3 ] 8;
  Alcotest.(check bool) "alu propagates" true (Regfile.operand_tainted r (I.Reg 2));
  Regfile.define_alu r ~dst:1 [ I.Imm 3 ] 3;
  Alcotest.(check bool) "overwrite clears" false (Regfile.operand_tainted r (I.Reg 1));
  Alcotest.(check bool) "imm never tainted" false (Regfile.operand_tainted r (I.Imm 0));
  Regfile.load_initial r [ (2, 0) ];
  Alcotest.(check bool) "initial regs untainted" false (Regfile.operand_tainted r (I.Reg 2))

(* ------------------------------------------------------------------ *)
(* Txn *)

let test_txn_sets () =
  let t = Txn.create () in
  Txn.start t;
  Alcotest.(check bool) "active" true (Txn.active t);
  Txn.read_line t 3;
  Txn.write_line t 5;
  Alcotest.(check bool) "read set" true (Txn.in_read_set t 3);
  Alcotest.(check bool) "write set" true (Txn.in_write_set t 5);
  Alcotest.(check bool) "either" true (Txn.in_either_set t 3 && Txn.in_either_set t 5);
  Alcotest.(check (list int)) "footprint sorted" [ 3; 5 ] (Txn.footprint t);
  Alcotest.(check int) "footprint size" 2 (Txn.footprint_size t);
  Txn.read_line t 5;
  Alcotest.(check int) "overlap counted once" 2 (Txn.footprint_size t)

let test_txn_buffer_forwarding () =
  let t = Txn.create () in
  Txn.start t;
  Txn.buffer_store t 100 1;
  Txn.buffer_store t 100 2;
  Alcotest.(check (option int)) "last value forwarded" (Some 2) (Txn.forwarded t 100);
  Alcotest.(check (option int)) "other addr" None (Txn.forwarded t 101);
  Alcotest.(check int) "store count is dynamic" 2 (Txn.store_count t)

let test_txn_drain_order () =
  let store = Mem.Store.create ~words:256 in
  let t = Txn.create () in
  Txn.start t;
  Txn.buffer_store t 10 1;
  Txn.buffer_store t 11 5;
  Txn.buffer_store t 10 9 (* later store to same address wins *);
  let n = Txn.drain t store in
  Alcotest.(check int) "words drained" 3 n;
  Alcotest.(check int) "program order respected" 9 (Mem.Store.read store 10);
  Alcotest.(check int) "other addr" 5 (Mem.Store.read store 11)

let test_txn_reset () =
  let t = Txn.create () in
  Txn.start t;
  Txn.buffer_store t 1 1;
  Txn.read_line t 0;
  Txn.reset t;
  Alcotest.(check bool) "inactive" false (Txn.active t);
  Alcotest.(check (list int)) "sets gone" [] (Txn.footprint t);
  Alcotest.(check (option int)) "buffer gone" None (Txn.forwarded t 1)

(* ------------------------------------------------------------------ *)
(* Conflict_map *)

let test_conflict_map () =
  let m = Conflict_map.create ~cores:4 () in
  Conflict_map.add_reader m ~core:0 7;
  Conflict_map.add_reader m ~core:2 7;
  Conflict_map.add_writer m ~core:1 7;
  Alcotest.(check (list int)) "readers excl self" [ 2 ] (Conflict_map.conflicting_readers m ~core:0 7);
  Alcotest.(check (list int)) "writers" [ 1 ] (Conflict_map.conflicting_writers m ~core:0 7);
  Conflict_map.remove_core m ~core:2 ~lines:[ 7 ];
  Alcotest.(check (list int)) "removed" [] (Conflict_map.conflicting_readers m ~core:0 7);
  Alcotest.(check int) "writer mask" 2 (Conflict_map.writers m 7);
  Conflict_map.clear m;
  Alcotest.(check int) "cleared" 0 (Conflict_map.writers m 7)

let test_conflict_map_excl_masks () =
  let m = Conflict_map.create ~lines:4 ~cores:8 () in
  (* line 300 is far beyond the 4-line hint: growth must be transparent. *)
  Conflict_map.add_reader m ~core:0 300;
  Conflict_map.add_reader m ~core:5 300;
  Conflict_map.add_writer m ~core:3 300;
  Alcotest.(check int) "readers_excl drops own bit" 0b100000
    (Conflict_map.readers_excl m ~core:0 300);
  Alcotest.(check int) "writers_excl keeps others" 0b1000 (Conflict_map.writers_excl m ~core:0 300);
  Alcotest.(check int) "writers_excl drops own bit" 0 (Conflict_map.writers_excl m ~core:3 300);
  Alcotest.(check int) "query beyond capacity is empty" 0 (Conflict_map.readers m 1_000_000);
  let seen = ref [] in
  Conflict_map.iter_cores 0b101001 (fun c -> seen := c :: !seen);
  Alcotest.(check (list int)) "iter_cores ascending" [ 0; 3; 5 ] (List.rev !seen)

(* Property: the flat line-indexed array behaves exactly like a reference
   Hashtbl model under random add/remove/query scripts, including removals
   of lines never added and queries far past the pre-sized capacity. *)
let prop_conflict_map_model =
  let cores = 8 in
  let op_gen =
    QCheck.Gen.(
      triple (int_range 0 3) (int_range 0 (cores - 1)) (int_range 0 200)
      |> map (fun (tag, core, line) -> (tag, core, line)))
  in
  QCheck.Test.make ~name:"Conflict_map agrees with a Hashtbl model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 120) op_gen))
    (fun script ->
      let m = Conflict_map.create ~lines:8 ~cores () in
      (* Model: line -> (reader mask, writer mask). *)
      let model : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
      let masks line = Option.value (Hashtbl.find_opt model line) ~default:(0, 0) in
      List.for_all
        (fun (tag, core, line) ->
          (match tag with
          | 0 ->
              Conflict_map.add_reader m ~core line;
              let r, w = masks line in
              Hashtbl.replace model line (r lor (1 lsl core), w)
          | 1 ->
              Conflict_map.add_writer m ~core line;
              let r, w = masks line in
              Hashtbl.replace model line (r, w lor (1 lsl core))
          | 2 ->
              Conflict_map.remove_line m ~core line;
              let r, w = masks line in
              let keep = lnot (1 lsl core) in
              Hashtbl.replace model line (r land keep, w land keep)
          | _ ->
              Conflict_map.remove_core m ~core ~lines:[ line; line + 7 ];
              let keep = lnot (1 lsl core) in
              List.iter
                (fun l ->
                  let r, w = masks l in
                  Hashtbl.replace model l (r land keep, w land keep))
                [ line; line + 7 ]);
          let r, w = masks line in
          let excl c mask = mask land lnot (1 lsl c) in
          let to_list mask =
            List.filter (fun c -> mask land (1 lsl c) <> 0) (List.init cores Fun.id)
          in
          Conflict_map.readers m line = r
          && Conflict_map.writers m line = w
          && Conflict_map.readers_excl m ~core line = excl core r
          && Conflict_map.writers_excl m ~core line = excl core w
          && Conflict_map.conflicting_readers m ~core line = to_list (excl core r)
          && Conflict_map.conflicting_writers m ~core line = to_list (excl core w))
        script)

(* ------------------------------------------------------------------ *)
(* Fallback_lock *)

let test_fallback_rw_semantics () =
  let l = Fallback_lock.create () in
  Alcotest.(check bool) "reader 0" true (Fallback_lock.try_read_lock l ~core:0);
  Alcotest.(check bool) "reader 1" true (Fallback_lock.try_read_lock l ~core:1);
  Alcotest.(check bool) "writer blocked by readers" false (Fallback_lock.try_write_lock l ~core:2);
  Fallback_lock.release l ~core:0;
  Fallback_lock.release l ~core:1;
  Alcotest.(check bool) "writer acquires" true (Fallback_lock.try_write_lock l ~core:2);
  Alcotest.(check bool) "reader blocked by writer" false (Fallback_lock.try_read_lock l ~core:0);
  Alcotest.(check (option int)) "writer id" (Some 2) (Fallback_lock.writer l);
  Fallback_lock.release l ~core:2;
  Alcotest.(check bool) "free" true (Fallback_lock.free l)

let test_fallback_writer_priority () =
  let l = Fallback_lock.create () in
  Alcotest.(check bool) "reader in" true (Fallback_lock.try_read_lock l ~core:0);
  Fallback_lock.announce_writer l ~core:1;
  Alcotest.(check bool) "new readers blocked" false (Fallback_lock.try_read_lock l ~core:2);
  Fallback_lock.release l ~core:0;
  Alcotest.(check bool) "writer gets in" true (Fallback_lock.try_write_lock l ~core:1);
  Alcotest.(check bool) "announcement cleared" true (Fallback_lock.writer_held l);
  Fallback_lock.release l ~core:1;
  Alcotest.(check bool) "readers again" true (Fallback_lock.try_read_lock l ~core:2)

let test_fallback_withdraw () =
  let l = Fallback_lock.create () in
  Fallback_lock.announce_writer l ~core:3;
  Fallback_lock.withdraw_writer l ~core:3;
  Alcotest.(check bool) "readers unblocked" true (Fallback_lock.try_read_lock l ~core:0)

(* ------------------------------------------------------------------ *)
(* Abort taxonomy *)

let test_abort_categories () =
  Alcotest.(check string) "nack is memory conflict" "Memory Conflict"
    (Abort.category_name (Abort.category Abort.Nacked));
  Alcotest.(check string) "capacity is others" "Others"
    (Abort.category_name (Abort.category Abort.Capacity));
  Alcotest.(check bool) "explicit fallback uncounted" false
    (Abort.counts_toward_retry_limit Abort.Explicit_fallback);
  Alcotest.(check bool) "memory conflict counted" true
    (Abort.counts_toward_retry_limit Abort.Memory_conflict);
  Alcotest.(check int) "four categories" 4 (List.length Abort.all_categories)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_presets () =
  Alcotest.(check string) "B" "B" (Config.preset_letter Config.baseline);
  Alcotest.(check string) "P" "P" (Config.preset_letter Config.power_tm);
  Alcotest.(check string) "C" "C" (Config.preset_letter Config.clear_rw);
  Alcotest.(check string) "W" "W" (Config.preset_letter Config.clear_power);
  Alcotest.(check bool) "clear off in baseline" false Config.baseline.Config.clear_enabled;
  Alcotest.(check bool) "clear on in W" true Config.clear_power.Config.clear_enabled;
  let c = Config.with_retries Config.baseline 7 in
  Alcotest.(check int) "with_retries" 7 c.Config.max_retries;
  Alcotest.(check int) "with_cores" 8 (Config.with_cores c 8).Config.cores;
  Alcotest.(check int) "with_seed" 3 (Config.with_seed c 3).Config.seed

let test_config_pp () =
  let s = Format.asprintf "%a" Config.pp Config.clear_power in
  Alcotest.(check bool) "mentions CLEAR" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  Alcotest.(check bool) "non-empty" true (String.length s > 100)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_commits_and_retries () =
  let s = Stats.create () in
  Stats.note_commit s ~ar:"x" ~mode:Stats.Speculative ~retries:0;
  Stats.note_commit s ~ar:"x" ~mode:Stats.Speculative ~retries:1;
  Stats.note_commit s ~ar:"y" ~mode:Stats.Scl ~retries:1;
  Stats.note_commit s ~mode:Stats.Fallback_mode ~retries:6;
  Alcotest.(check int) "commits" 4 (Stats.commits s);
  Alcotest.(check int) "per AR" 2 (Stats.commits_for_ar s "x");
  Alcotest.(check int) "scl commits" 1 (Stats.commits_in_mode s Stats.Scl);
  let one, many, fb = Stats.retry_breakdown s in
  Alcotest.(check (float 1e-9)) "one-retry share" (2.0 /. 3.0) one;
  Alcotest.(check (float 1e-9)) "many share" 0.0 many;
  Alcotest.(check (float 1e-9)) "fallback share" (1.0 /. 3.0) fb;
  Alcotest.(check (float 1e-9)) "first try" 0.25 (Stats.first_try_ratio s);
  Alcotest.(check (float 1e-9)) "single retry" 0.5 (Stats.single_retry_ratio s)

let test_stats_aborts () =
  let s = Stats.create () in
  Stats.note_abort s Abort.Memory_conflict;
  Stats.note_abort s Abort.Nacked;
  Stats.note_abort s Abort.Capacity;
  Stats.note_commit s ~mode:Stats.Speculative ~retries:3;
  Alcotest.(check int) "aborts" 3 (Stats.aborts s);
  Alcotest.(check int) "memory category groups nack" 2
    (Stats.aborts_in_category s Abort.Cat_memory_conflict);
  Alcotest.(check (float 1e-9)) "per commit" 3.0 (Stats.aborts_per_commit s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.note_commit a ~ar:"x" ~mode:Stats.Nscl ~retries:1;
  Stats.note_commit b ~ar:"x" ~mode:Stats.Nscl ~retries:1;
  Stats.note_abort b Abort.Memory_conflict;
  Stats.note_first_abort a ~footprint_stable:true;
  Stats.note_first_abort b ~footprint_stable:false;
  let m = Stats.merge [ a; b ] in
  Alcotest.(check int) "commits" 2 (Stats.commits m);
  Alcotest.(check int) "ar commits" 2 (Stats.commits_for_ar m "x");
  Alcotest.(check int) "aborts" 1 (Stats.aborts m);
  Alcotest.(check (float 1e-9)) "fig1" 0.5 (Stats.fig1_ratio m)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_ring () =
  let t = Machine.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Machine.Trace.record t ~time:i ~core:0 ~ar:"x" (Machine.Trace.Locked i)
  done;
  Alcotest.(check int) "total recorded" 5 (Machine.Trace.recorded t);
  let kept = Machine.Trace.events t in
  Alcotest.(check int) "capacity bounds retention" 3 (List.length kept);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 3; 4; 5 ]
    (List.map (fun (e : Machine.Trace.event) -> e.time) kept)

let test_trace_engine_integration () =
  let trace = Machine.Trace.create () in
  let cfg = { Config.clear_rw with Config.cores = 4; ops_per_thread = 20; memory_words = 1 lsl 20 } in
  let engine = Machine.Engine.create ~trace cfg Workloads.Arrayswap.workload in
  let _ = Machine.Engine.run engine in
  let events = Machine.Trace.events trace in
  Alcotest.(check bool) "events recorded" true (events <> []);
  let has p = List.exists p events in
  Alcotest.(check bool) "commits traced" true
    (has (fun e -> match e.Machine.Trace.kind with Machine.Trace.Commit _ -> true | _ -> false));
  Alcotest.(check bool) "begins traced" true
    (has (fun e -> match e.Machine.Trace.kind with Machine.Trace.Begin_attempt _ -> true | _ -> false))

let test_trace_dump_renders () =
  let t = Machine.Trace.create () in
  Machine.Trace.record t ~time:7 ~core:2 ~ar:"swap" (Machine.Trace.Aborted Abort.Nacked);
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Machine.Trace.dump t ppf;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "mentions cause" true
    (let rec contains i =
       i + 6 <= String.length s && (String.sub s i 6 = "nacked" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "machine"
    [
      ( "regfile",
        [
          Alcotest.test_case "values" `Quick test_regfile_values;
          Alcotest.test_case "taint" `Quick test_regfile_taint;
        ] );
      ( "txn",
        [
          Alcotest.test_case "sets" `Quick test_txn_sets;
          Alcotest.test_case "buffer forwarding" `Quick test_txn_buffer_forwarding;
          Alcotest.test_case "drain order" `Quick test_txn_drain_order;
          Alcotest.test_case "reset" `Quick test_txn_reset;
        ] );
      ( "conflict_map",
        [
          Alcotest.test_case "basics" `Quick test_conflict_map;
          Alcotest.test_case "excl masks + growth" `Quick test_conflict_map_excl_masks;
          QCheck_alcotest.to_alcotest prop_conflict_map_model;
        ] );
      ( "fallback_lock",
        [
          Alcotest.test_case "rw semantics" `Quick test_fallback_rw_semantics;
          Alcotest.test_case "writer priority" `Quick test_fallback_writer_priority;
          Alcotest.test_case "withdraw" `Quick test_fallback_withdraw;
        ] );
      ("abort", [ Alcotest.test_case "categories" `Quick test_abort_categories ]);
      ( "config",
        [
          Alcotest.test_case "presets" `Quick test_config_presets;
          Alcotest.test_case "pp" `Quick test_config_pp;
        ] );
      ( "stats",
        [
          Alcotest.test_case "commits/retries" `Quick test_stats_commits_and_retries;
          Alcotest.test_case "aborts" `Quick test_stats_aborts;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring;
          Alcotest.test_case "engine integration" `Quick test_trace_engine_integration;
          Alcotest.test_case "dump renders" `Quick test_trace_dump_renders;
        ] );
    ]
