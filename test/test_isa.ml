(* Tests for the mini-ISA: semantics, validation, the assembler and program
   containers. *)

module I = Isa.Instr
module A = Isa.Asm
module P = Isa.Program

let test_binop_semantics () =
  Alcotest.(check int) "add" 7 (I.eval_binop I.Add 3 4);
  Alcotest.(check int) "sub" (-1) (I.eval_binop I.Sub 3 4);
  Alcotest.(check int) "mul" 12 (I.eval_binop I.Mul 3 4);
  Alcotest.(check int) "div" 3 (I.eval_binop I.Div 13 4);
  Alcotest.(check int) "div by zero" 0 (I.eval_binop I.Div 13 0);
  Alcotest.(check int) "rem" 1 (I.eval_binop I.Rem 13 4);
  Alcotest.(check int) "rem by zero" 0 (I.eval_binop I.Rem 13 0);
  Alcotest.(check int) "and" 4 (I.eval_binop I.And 12 6);
  Alcotest.(check int) "or" 14 (I.eval_binop I.Or 12 6);
  Alcotest.(check int) "xor" 10 (I.eval_binop I.Xor 12 6);
  Alcotest.(check int) "shl" 24 (I.eval_binop I.Shl 3 3);
  Alcotest.(check int) "shr" 3 (I.eval_binop I.Shr 24 3);
  Alcotest.(check int) "shr negative" (-1) (I.eval_binop I.Shr (-1) 5);
  Alcotest.(check int) "min" 3 (I.eval_binop I.Min 3 4);
  Alcotest.(check int) "max" 4 (I.eval_binop I.Max 3 4)

let test_cond_semantics () =
  Alcotest.(check bool) "eq" true (I.eval_cond I.Eq 2 2);
  Alcotest.(check bool) "ne" true (I.eval_cond I.Ne 2 3);
  Alcotest.(check bool) "lt" true (I.eval_cond I.Lt 2 3);
  Alcotest.(check bool) "le" true (I.eval_cond I.Le 3 3);
  Alcotest.(check bool) "gt" false (I.eval_cond I.Gt 3 3);
  Alcotest.(check bool) "ge" true (I.eval_cond I.Ge 3 3)

let test_base_cost () =
  Alcotest.(check int) "mul heavier" 3 (I.base_cost (I.Binop { op = I.Mul; dst = 0; a = I.Imm 1; b = I.Imm 2 }));
  Alcotest.(check int) "div heaviest" 20 (I.base_cost (I.Binop { op = I.Div; dst = 0; a = I.Imm 1; b = I.Imm 2 }));
  Alcotest.(check int) "halt free" 0 (I.base_cost I.Halt)

let test_is_mem () =
  Alcotest.(check bool) "ld" true (I.is_mem (I.Ld { dst = 0; base = I.Imm 0; off = 0; region = "" }));
  Alcotest.(check bool) "nop" false (I.is_mem I.Nop)

let ok = Alcotest.result Alcotest.unit Alcotest.string

let test_validate () =
  Alcotest.check ok "valid" (Ok ()) (I.validate [| I.Nop; I.Halt |]);
  Alcotest.check ok "no halt" (Error "body contains no halt") (I.validate [| I.Nop |]);
  Alcotest.check ok "bad reg"
    (Error "instruction 0: bad destination register")
    (I.validate [| I.Mov { dst = 99; src = I.Imm 0 }; I.Halt |]);
  Alcotest.check ok "bad target"
    (Error "instruction 0: branch target out of range")
    (I.validate [| I.Br { cond = I.Eq; a = I.Imm 0; b = I.Imm 0; target = 5 }; I.Halt |]);
  (* unconditional jumps are range-checked exactly like branches *)
  Alcotest.check ok "bad jmp target"
    (Error "instruction 0: jump target out of range")
    (I.validate [| I.Jmp 5; I.Halt |]);
  Alcotest.check ok "negative jmp target"
    (Error "instruction 0: jump target out of range")
    (I.validate [| I.Jmp (-1); I.Halt |]);
  Alcotest.check ok "jmp in range" (Ok ()) (I.validate [| I.Jmp 1; I.Halt |])

let test_asm_labels () =
  let b = A.create () in
  let skip = A.new_label b in
  A.mov b ~dst:1 (I.Imm 0);
  A.brc b I.Eq (I.Reg 1) (I.Imm 0) skip;
  A.mov b ~dst:1 (I.Imm 99);
  A.place b skip;
  A.halt b;
  let body = A.assemble b in
  (match body.(1) with
  | I.Br { target; _ } -> Alcotest.(check int) "label resolved" 3 target
  | _ -> Alcotest.fail "expected branch");
  Alcotest.(check int) "length" 4 (Array.length body)

let test_asm_unplaced_label () =
  let b = A.create () in
  let l = A.new_label b in
  A.jmp b l;
  A.halt b;
  Alcotest.check_raises "unplaced" (Invalid_argument "Asm.assemble: label 0 never placed") (fun () ->
      ignore (A.assemble b))

let test_asm_double_place () =
  let b = A.create () in
  let l = A.new_label b in
  A.place b l;
  Alcotest.check_raises "double place" (Invalid_argument "Asm.place: label already placed") (fun () ->
      A.place b l)

let test_asm_length () =
  let b = A.create () in
  Alcotest.(check int) "empty" 0 (A.length b);
  A.nop b;
  A.nop b;
  Alcotest.(check int) "two" 2 (A.length b)

let test_program_counts () =
  let ar =
    P.build_ar ~id:3 ~name:"demo" (fun b ->
        A.ld b ~dst:8 ~base:(I.Reg 0) ~region:"a" ();
        A.st b ~base:(I.Reg 0) ~src:(I.Reg 8) ~region:"b" ();
        A.st b ~base:(I.Reg 1) ~src:(I.Imm 0) ~region:"b" ();
        A.halt b)
  in
  Alcotest.(check int) "instructions" 4 (P.instruction_count ar);
  Alcotest.(check int) "stores" 2 (P.store_count ar);
  Alcotest.(check (list string)) "written regions" [ "b" ] (P.regions_written ar);
  Alcotest.(check (list string)) "read regions" [ "a" ] (P.regions_read ar);
  Alcotest.(check int) "id" 3 ar.P.id

let test_program_invalid () =
  Alcotest.check_raises "invalid body rejected"
    (Invalid_argument "Program.make_ar bad: body contains no halt") (fun () ->
      ignore (P.make_ar ~id:0 ~name:"bad" [| I.Nop |]))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let ar =
    P.build_ar ~id:0 ~name:"pp" (fun b ->
        A.ld b ~dst:2 ~base:(I.Reg 1) ~off:3 ~region:"zone" ();
        A.halt b)
  in
  let s = Format.asprintf "%a" P.pp ar in
  Alcotest.(check bool) "mentions halt" true (contains s "halt");
  Alcotest.(check bool) "mentions region" true (contains s "zone");
  let i = Format.asprintf "%a" I.pp (I.Binop { op = I.Xor; dst = 1; a = I.Reg 2; b = I.Imm 7 }) in
  Alcotest.(check string) "binop rendering" "xor r1, r2, #7" i

let prop_eval_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200 QCheck.(pair int int) (fun (a, b) ->
      I.eval_binop I.Add a b = I.eval_binop I.Add b a)

let prop_min_max_bracket =
  QCheck.Test.make ~name:"min <= max" ~count:200 QCheck.(pair int int) (fun (a, b) ->
      I.eval_binop I.Min a b <= I.eval_binop I.Max a b)

let prop_cond_total =
  QCheck.Test.make ~name:"lt/ge partition" ~count:200 QCheck.(pair int int) (fun (a, b) ->
      I.eval_cond I.Lt a b <> I.eval_cond I.Ge a b)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "isa"
    [
      ( "instr",
        [
          Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
          Alcotest.test_case "cond semantics" `Quick test_cond_semantics;
          Alcotest.test_case "base cost" `Quick test_base_cost;
          Alcotest.test_case "is_mem" `Quick test_is_mem;
          Alcotest.test_case "validate" `Quick test_validate;
        ]
        @ qsuite [ prop_eval_add_commutes; prop_min_max_bracket; prop_cond_total ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "unplaced label" `Quick test_asm_unplaced_label;
          Alcotest.test_case "double place" `Quick test_asm_double_place;
          Alcotest.test_case "length" `Quick test_asm_length;
        ] );
      ( "program",
        [
          Alcotest.test_case "counts and regions" `Quick test_program_counts;
          Alcotest.test_case "invalid body" `Quick test_program_invalid;
          Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
        ] );
    ]
