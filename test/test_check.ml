(* The execution oracle: unit tests of the three checkers on hand-built
   histories, plus end-to-end runs — including one with an injected
   conflict-detection bug the oracle must catch. *)

module Engine = Machine.Engine
module Config = Machine.Config
module Stats = Machine.Stats
module Workload = Machine.Workload
module Trace = Machine.Trace
module Store = Mem.Store
module I = Isa.Instr
module P = Isa.Program
module Run = Clear_repro.Run

let halt_ar = P.make_ar ~id:0 ~name:"noop" [| I.Halt |]

let witness ?(seq = 0) ?(time = 0) ?(core = 0) ?(mode = Check.Witness.Speculative) ?(reads = [])
    ?(writes = []) ?(stores = []) ?(ar = halt_ar) () =
  { Check.Witness.seq; time; core; ar; init_regs = []; mode; retries = 0; reads; writes; stores }

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Serializability checker *)

let check_serial ws = Check.Serial.check ws

let test_serial_accepts_serial_history () =
  (* A commits a buffered write at t=10; B reads the line afterwards. *)
  let a = witness ~seq:0 ~time:10 ~core:0 ~writes:[ (1, 5) ] ~stores:[ (8, 1) ] () in
  let b = witness ~seq:1 ~time:30 ~core:1 ~reads:[ (1, 20) ] () in
  Alcotest.(check bool) "serial history accepted" true (Result.is_ok (check_serial [ a; b ]))

let test_serial_rejects_read_stale () =
  (* B read the line before A's write became visible, yet commits after A:
     the classic lost-update shape. *)
  let a = witness ~seq:0 ~time:10 ~core:0 ~writes:[ (1, 5) ] () in
  let b = witness ~seq:1 ~time:30 ~core:1 ~reads:[ (1, 5) ] ~writes:[ (1, 6) ] () in
  match check_serial [ a; b ] with
  | Ok () -> Alcotest.fail "stale read not detected"
  | Error v ->
      Alcotest.(check bool) "kind is Rw" true (v.Check.Serial.kind = Check.Serial.Rw);
      Alcotest.(check int) "on line 1" 1 v.Check.Serial.line

let test_serial_rejects_write_order_inversion () =
  (* Two direct-mode writers whose visibility order contradicts commit
     order: the earlier commit's value survives in memory. *)
  let a = witness ~seq:0 ~time:30 ~core:0 ~mode:Check.Witness.Nscl ~writes:[ (2, 20) ] () in
  let b = witness ~seq:1 ~time:40 ~core:1 ~mode:Check.Witness.Fallback ~writes:[ (2, 10) ] () in
  match check_serial [ a; b ] with
  | Ok () -> Alcotest.fail "write-order inversion not detected"
  | Error v -> Alcotest.(check bool) "kind is Ww" true (v.Check.Serial.kind = Check.Serial.Ww)

let test_serial_rejects_future_read () =
  (* A committed first but read the line after B's direct write became
     visible: A observed data from a transaction serialized after it. *)
  let a = witness ~seq:0 ~time:60 ~core:0 ~reads:[ (3, 50) ] () in
  let b = witness ~seq:1 ~time:70 ~core:1 ~mode:Check.Witness.Nscl ~writes:[ (3, 30) ] () in
  match check_serial [ a; b ] with
  | Ok () -> Alcotest.fail "future read not detected"
  | Error v -> Alcotest.(check bool) "kind is Wr" true (v.Check.Serial.kind = Check.Serial.Wr)

let test_serial_wr_fields () =
  (* The Wr arm must report the reader as the earlier node, the writer as
     the later one, and quote both times. *)
  let a = witness ~seq:0 ~time:60 ~core:0 ~reads:[ (3, 50) ] () in
  let b = witness ~seq:1 ~time:70 ~core:1 ~mode:Check.Witness.Nscl ~writes:[ (3, 30) ] () in
  match check_serial [ a; b ] with
  | Ok () -> Alcotest.fail "future read not detected"
  | Error v ->
      Alcotest.(check bool) "kind is Wr" true (v.Check.Serial.kind = Check.Serial.Wr);
      Alcotest.(check int) "line" 3 v.Check.Serial.line;
      Alcotest.(check int) "earlier is the reader" 0 v.Check.Serial.earlier.Check.Witness.seq;
      Alcotest.(check int) "later is the writer" 1 v.Check.Serial.later.Check.Witness.seq;
      Alcotest.(check bool) "detail quotes the read time" true
        (contains_sub v.Check.Serial.detail "t=50");
      Alcotest.(check bool) "detail quotes the visibility" true
        (contains_sub v.Check.Serial.detail "t=30")

let test_serial_wr_self_read_excluded () =
  (* A direct-mode witness that reads its own line after its first write has
     tr > vis against itself — same commit, no cycle; the seq guard must
     exclude it. *)
  let w =
    witness ~seq:0 ~time:60 ~core:0 ~mode:Check.Witness.Nscl ~reads:[ (3, 50) ]
      ~writes:[ (3, 30) ] ()
  in
  Alcotest.(check bool) "own later read not a Wr" true (Result.is_ok (check_serial [ w ]));
  (* ...and the state it leaves behind still works for later commits. *)
  let c = witness ~seq:1 ~time:80 ~core:1 ~reads:[ (3, 70) ] () in
  Alcotest.(check bool) "subsequent read of the written line clean" true
    (Result.is_ok (check_serial [ w; c ]))

let test_serial_wr_boundaries () =
  (* Reads strictly before — or exactly at — the later writer's visibility
     do not close a Wr cycle (ties are benign, DESIGN.md §9). *)
  let before = witness ~seq:0 ~time:60 ~core:0 ~reads:[ (3, 20) ] () in
  let tie = witness ~seq:0 ~time:60 ~core:0 ~reads:[ (3, 30) ] () in
  let wr = witness ~seq:1 ~time:70 ~core:1 ~mode:Check.Witness.Nscl ~writes:[ (3, 30) ] () in
  Alcotest.(check bool) "read before visibility ok" true (Result.is_ok (check_serial [ before; wr ]));
  Alcotest.(check bool) "read at visibility (tie) ok" true (Result.is_ok (check_serial [ tie; wr ]))

let test_serial_buffered_concurrent_ok () =
  (* Buffered writers that both read before either commit are fine as long
     as neither read the other's line. *)
  let a = witness ~seq:0 ~time:10 ~core:0 ~reads:[ (1, 2) ] ~writes:[ (1, 3) ] () in
  let b = witness ~seq:1 ~time:11 ~core:1 ~reads:[ (2, 2) ] ~writes:[ (2, 3) ] () in
  Alcotest.(check bool) "disjoint lines accepted" true (Result.is_ok (check_serial [ a; b ]))

(* ------------------------------------------------------------------ *)
(* Lock safety *)

let ls = Check.Lock_safety.check ~cores:4

let test_locks_clean_sequence () =
  let events =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 0 };
      Check.Lock_safety.Lock { time = 1; core = 0; line = 10; key = 1 };
      Check.Lock_safety.Lock { time = 2; core = 0; line = 20; key = 5 };
      Check.Lock_safety.Unlock { time = 9; core = 0; line = 10 };
      Check.Lock_safety.Unlock { time = 9; core = 0; line = 20 };
      Check.Lock_safety.Attempt_end { time = 9; core = 0 };
    ]
  in
  Alcotest.(check bool) "clean sequence passes" true (Result.is_ok (ls events))

let test_locks_mutual_exclusion () =
  let events =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 0 };
      Check.Lock_safety.Attempt_begin { time = 0; core = 1 };
      Check.Lock_safety.Lock { time = 1; core = 0; line = 10; key = 1 };
      Check.Lock_safety.Lock { time = 2; core = 1; line = 10; key = 1 };
    ]
  in
  Alcotest.(check bool) "double lock rejected" true (Result.is_error (ls events))

let test_locks_lexicographic_order () =
  let events =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 0 };
      Check.Lock_safety.Lock { time = 1; core = 0; line = 10; key = 5 };
      Check.Lock_safety.Lock { time = 2; core = 0; line = 20; key = 1 };
    ]
  in
  Alcotest.(check bool) "key order violation rejected" true (Result.is_error (ls events));
  (* ...but the order resets between attempts. *)
  let events =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 0 };
      Check.Lock_safety.Lock { time = 1; core = 0; line = 10; key = 5 };
      Check.Lock_safety.Unlock { time = 2; core = 0; line = 10 };
      Check.Lock_safety.Attempt_end { time = 2; core = 0 };
      Check.Lock_safety.Attempt_begin { time = 3; core = 0 };
      Check.Lock_safety.Lock { time = 4; core = 0; line = 20; key = 1 };
      Check.Lock_safety.Unlock { time = 5; core = 0; line = 20 };
      Check.Lock_safety.Attempt_end { time = 5; core = 0 };
    ]
  in
  Alcotest.(check bool) "key order resets per attempt" true (Result.is_ok (ls events))

let test_locks_leak_detected () =
  let leak_past_attempt =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 2 };
      Check.Lock_safety.Lock { time = 1; core = 2; line = 10; key = 1 };
      Check.Lock_safety.Attempt_end { time = 5; core = 2 };
    ]
  in
  Alcotest.(check bool) "leak past attempt end rejected" true (Result.is_error (ls leak_past_attempt));
  let leak_past_run =
    [
      Check.Lock_safety.Attempt_begin { time = 0; core = 2 };
      Check.Lock_safety.Lock { time = 1; core = 2; line = 10; key = 1 };
    ]
  in
  Alcotest.(check bool) "leak past end of run rejected" true (Result.is_error (ls leak_past_run));
  let stray_unlock = [ Check.Lock_safety.Unlock { time = 1; core = 0; line = 7 } ] in
  Alcotest.(check bool) "stray unlock rejected" true (Result.is_error (ls stray_unlock))

(* ------------------------------------------------------------------ *)
(* Replay oracle *)

let store_ar =
  (* M[0] <- 5 *)
  P.make_ar ~id:1 ~name:"store5"
    [|
      I.Mov { dst = 1; src = I.Imm 5 };
      I.St { base = I.Imm 0; off = 0; src = I.Reg 1; region = "t" };
      I.Halt;
    |]

let image_of words = Mem.Store.image_of_array words

let test_replay_accepts_faithful_history () =
  let w = witness ~ar:store_ar ~writes:[ (0, 1) ] ~stores:[ (0, 5) ] () in
  let initial = image_of (Array.make 16 0) in
  let final = Array.make 16 0 in
  final.(0) <- 5;
  let final = image_of final in
  Alcotest.(check bool) "faithful history accepted" true
    (Result.is_ok (Check.Replay.run ~initial ~entries:[ Check.Collector.Commit w ] ~final))

let test_replay_detects_store_mismatch () =
  (* The witness claims the simulation drained M[0] <- 6; the body stores 5. *)
  let w = witness ~ar:store_ar ~writes:[ (0, 1) ] ~stores:[ (0, 6) ] () in
  let initial = image_of (Array.make 16 0) in
  let final = Array.make 16 0 in
  final.(0) <- 6;
  let final = image_of final in
  match Check.Replay.run ~initial ~entries:[ Check.Collector.Commit w ] ~final with
  | Error (Check.Replay.Store_mismatch _) -> ()
  | Error d ->
      Alcotest.failf "wrong divergence: %s" (Format.asprintf "%a" Check.Replay.pp_divergence d)
  | Ok () -> Alcotest.fail "store mismatch not detected"

let test_replay_detects_memory_mismatch () =
  (* Store logs agree but the final image contains a word nobody wrote. *)
  let w = witness ~ar:store_ar ~writes:[ (0, 1) ] ~stores:[ (0, 5) ] () in
  let initial = image_of (Array.make 16 0) in
  let final = Array.make 16 0 in
  final.(0) <- 5;
  final.(9) <- 123;
  let final = image_of final in
  match Check.Replay.run ~initial ~entries:[ Check.Collector.Commit w ] ~final with
  | Error (Check.Replay.Memory_mismatch { addr; differing; _ }) ->
      Alcotest.(check int) "first differing word" 9 addr;
      Alcotest.(check int) "one differing word" 1 differing
  | Error _ -> Alcotest.fail "wrong divergence kind"
  | Ok () -> Alcotest.fail "memory mismatch not detected"

let test_replay_applies_driver_writes () =
  let w = witness ~ar:store_ar ~writes:[ (0, 1) ] ~stores:[ (0, 5) ] () in
  let initial = image_of (Array.make 16 0) in
  let final = Array.make 16 0 in
  final.(0) <- 5;
  final.(12) <- 7;
  let final = image_of final in
  let entries =
    [
      Check.Collector.Driver_writes { time = 0; core = 1; stores = [ (12, 7) ] };
      Check.Collector.Commit w;
    ]
  in
  Alcotest.(check bool) "driver writes reach the replay image" true
    (Result.is_ok (Check.Replay.run ~initial ~entries ~final))

(* ------------------------------------------------------------------ *)
(* End-to-end: checked real runs *)

let small cfg = { cfg with Config.cores = 4; ops_per_thread = 40; memory_words = 1 lsl 16 }

let test_checked_run_clean () =
  List.iter
    (fun (label, cfg) ->
      let sim = { Run.cfg = small cfg; workload = Workloads.Mwobject.workload; seed = 7 } in
      let _stats, verdict = Run.run_sim_checked sim in
      if not (Check.Verdict.ok verdict) then
        Alcotest.failf "%s: %s" label (Check.Verdict.to_string verdict))
    [
      ("B", Config.baseline);
      ("P", Config.power_tm);
      ("C", Config.clear_rw);
      ("W", Config.clear_power);
    ]

let test_check_does_not_perturb () =
  (* Witness capture must not change the simulation: stats are identical
     with and without the collector. *)
  let sim = { Run.cfg = small Config.clear_power; workload = Workloads.Bst.workload; seed = 11 } in
  let plain = Run.run_sim sim in
  let checked, verdict = Run.run_sim_checked sim in
  Alcotest.(check bool) "verdict clean" true (Check.Verdict.ok verdict);
  Alcotest.(check int) "same cycles" (Stats.total_cycles plain) (Stats.total_cycles checked);
  Alcotest.(check int) "same commits" (Stats.commits plain) (Stats.commits checked);
  Alcotest.(check int) "same aborts" (Stats.aborts plain) (Stats.aborts checked)

(* A shared-counter workload: every AR increments M[0] once. Serializable
   executions end with M[0] = total commits. *)
let counter_workload =
  let ar =
    P.make_ar ~id:0 ~name:"incr"
      [|
        I.Ld { dst = 1; base = I.Imm 0; off = 0; region = "ctr" };
        I.Binop { op = I.Add; dst = 1; a = I.Reg 1; b = I.Imm 1 };
        I.St { base = I.Imm 0; off = 0; src = I.Reg 1; region = "ctr" };
        I.Halt;
      |]
  in
  {
    Workload.name = "counter";
    description = "shared counter increment";
    ars = [ ar ];
    memory_words = 256;
    setup = (fun _ _ -> ());
    make_driver = (fun ~tid:_ ~threads:_ _ _ () -> Workload.op ar []);
    pure_driver = true;
  }

let test_injected_bug_caught () =
  (* Disable conflict detection on the counter's line: concurrent increments
     race undetected and updates are lost. The oracle must notice what the
     engine no longer can. A correct HTM never loses an update, so first
     confirm the unfaulted run is clean and conserves the count. *)
  let cfg = { (small Config.baseline) with Config.ops_per_thread = 80 } in
  let clean_sim = { Run.cfg; workload = counter_workload; seed = 5 } in
  let _stats, verdict = Run.run_sim_checked clean_sim in
  Alcotest.(check bool) "control run clean" true (Check.Verdict.ok verdict);
  (let engine = Engine.create (Config.with_seed cfg 5) counter_workload in
   let stats = Engine.run engine in
   Alcotest.(check int) "control conserves count" (Stats.commits stats)
     (Store.read (Engine.store engine) 0));
  let faulty = { cfg with Config.fault_blind_line = Some 0 } in
  let _stats, verdict = Run.run_sim_checked { clean_sim with Run.cfg = faulty } in
  Alcotest.(check bool) "injected bug caught" true (not (Check.Verdict.ok verdict));
  (* Lost updates manifest as a stale read (serializability) and as a replay
     divergence; the lock oracle has nothing to complain about. *)
  Alcotest.(check bool) "serializability flagged" true
    (Result.is_error verdict.Check.Verdict.serial);
  Alcotest.(check bool) "replay flagged" true (Result.is_error verdict.Check.Verdict.replay)

let test_run_sim_enforce_raises () =
  let cfg =
    { (small Config.baseline) with Config.ops_per_thread = 80; fault_blind_line = Some 0 }
  in
  let sim = { Run.cfg; workload = counter_workload; seed = 5 } in
  match Run.run_sim_enforce sim with
  | _ -> Alcotest.fail "expected Check_failed"
  | exception Run.Check_failed msg ->
      Alcotest.(check bool) "message names the workload" true (contains_sub msg "counter")

let test_suite_checked_smoke () =
  let opts =
    {
      Clear_repro.Experiments.cores = 4;
      ops_per_thread = 30;
      seeds = [ 3 ];
      trim = 0;
      retry_choices = [ 2 ];
    sched = Sched.Profile.symmetric;
    }
  in
  let suite =
    Clear_repro.Experiments.run_suite ~jobs:2 ~check:true
      ~workloads:[ Workloads.Stack.workload; Workloads.Mwobject.workload ]
      opts
  in
  Alcotest.(check int) "two rows" 2 (List.length suite.Clear_repro.Experiments.rows)

(* ------------------------------------------------------------------ *)
(* Streaming checker: Check.Stream fed the same emissions must agree with
   the post hoc oracles — on hand-built histories and on full engine runs —
   while retiring state behind the committed frontier. *)

(* Replay a hand-built history through a Stream in engine order: each
   witness's attempt events and commit merged into one non-decreasing time
   stream, commits before same-cycle attempt ends (the engine's order). *)
let stream_over ?(sweep_every = 1) ws =
  let begin_of (w : Check.Witness.t) =
    List.fold_left
      (fun acc (_, t) -> min acc t)
      w.Check.Witness.time
      (w.Check.Witness.reads @ w.Check.Witness.writes)
  in
  let events =
    List.concat_map
      (fun (w : Check.Witness.t) ->
        [ (begin_of w, `Begin w); (w.Check.Witness.time, `Commit w); (w.Check.Witness.time, `End w) ])
      ws
  in
  let events = List.stable_sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) events in
  let str = Check.Stream.create ~sweep_every ~cores:8 () in
  Check.Stream.set_initial str (image_of (Array.make 16 0));
  List.iter
    (fun (t, e) ->
      match e with
      | `Begin (w : Check.Witness.t) ->
          Check.Stream.add_lock_event str
            (Check.Lock_safety.Attempt_begin { time = t; core = w.Check.Witness.core })
      | `Commit w -> Check.Stream.add_commit str w
      | `End (w : Check.Witness.t) ->
          Check.Stream.add_lock_event str
            (Check.Lock_safety.Attempt_end { time = t; core = w.Check.Witness.core }))
    events;
  (Check.Stream.finish str ~final:(image_of (Array.make 16 0)), Check.Stream.stats str)

let serial_fingerprint = function
  | Ok () -> None
  | Error v ->
      Some
        ( v.Check.Serial.kind,
          v.Check.Serial.line,
          v.Check.Serial.earlier.Check.Witness.seq,
          v.Check.Serial.later.Check.Witness.seq )

let test_stream_matches_serial_on_unit_histories () =
  let histories =
    [
      ( "serial",
        [
          witness ~seq:0 ~time:10 ~core:0 ~writes:[ (1, 5) ] ~stores:[] ();
          witness ~seq:1 ~time:30 ~core:1 ~reads:[ (1, 20) ] ();
        ] );
      ( "rw",
        [
          witness ~seq:0 ~time:10 ~core:0 ~writes:[ (1, 5) ] ();
          witness ~seq:1 ~time:30 ~core:1 ~reads:[ (1, 5) ] ~writes:[ (1, 6) ] ();
        ] );
      ( "ww",
        [
          witness ~seq:0 ~time:30 ~core:0 ~mode:Check.Witness.Nscl ~writes:[ (2, 20) ] ();
          witness ~seq:1 ~time:40 ~core:1 ~mode:Check.Witness.Fallback ~writes:[ (2, 10) ] ();
        ] );
      ( "wr",
        [
          witness ~seq:0 ~time:60 ~core:0 ~reads:[ (3, 50) ] ();
          witness ~seq:1 ~time:70 ~core:1 ~mode:Check.Witness.Nscl ~writes:[ (3, 30) ] ();
        ] );
      ( "disjoint",
        [
          witness ~seq:0 ~time:10 ~core:0 ~reads:[ (1, 2) ] ~writes:[ (1, 3) ] ();
          witness ~seq:1 ~time:11 ~core:1 ~reads:[ (2, 2) ] ~writes:[ (2, 3) ] ();
        ] );
    ]
  in
  List.iter
    (fun (label, ws) ->
      let posthoc = serial_fingerprint (Check.Serial.check ws) in
      List.iter
        (fun sweep_every ->
          let results, _stats = stream_over ~sweep_every ws in
          Alcotest.(check bool)
            (Printf.sprintf "%s sweep_every=%d agrees" label sweep_every)
            true
            (serial_fingerprint results.Check.Stream.serial = posthoc);
          Alcotest.(check bool)
            (Printf.sprintf "%s replay clean" label)
            true
            (Result.is_ok results.Check.Stream.replay);
          Alcotest.(check bool)
            (Printf.sprintf "%s locks clean" label)
            true
            (Result.is_ok results.Check.Stream.locks))
        [ 1; 2; 512 ])
    histories

let test_stream_retires_behind_frontier () =
  (* 1000 back-to-back attempts, each touching its own pair of lines (one
     read-only, one written): nothing ever overwrites that state, so a post
     hoc checker would hold 2000 entries — the frontier passes each commit
     as soon as the next attempt begins, so the stream retires nearly
     everything and peak live state is bounded by the sweep window, not the
     history. *)
  let n = 1000 in
  let ws =
    List.init n (fun i ->
        witness ~seq:i
          ~time:((i * 10) + 9)
          ~core:(i mod 4)
          ~reads:[ (2 * i, (i * 10) + 1); ((2 * i) + 1, (i * 10) + 2) ]
          ~writes:[ ((2 * i) + 1, (i * 10) + 5) ]
          ())
  in
  Alcotest.(check bool) "history is serializable" true (Result.is_ok (Check.Serial.check ws));
  let results, stats = stream_over ~sweep_every:8 ws in
  Alcotest.(check bool) "stream agrees" true (Result.is_ok results.Check.Stream.serial);
  Alcotest.(check int) "all commits seen" n stats.Check.Stream.commits;
  Alcotest.(check bool) "live lines bounded by the sweep window" true
    (stats.Check.Stream.peak_live_lines <= (2 * 8) + 2);
  Alcotest.(check bool) "live entries bounded by the sweep window" true
    (stats.Check.Stream.peak_live_entries <= (2 * 8) + 2);
  Alcotest.(check bool) "nearly all entries retired" true
    (stats.Check.Stream.retired >= (2 * n) - 20)

let test_stream_sweep_every_validated () =
  Alcotest.check_raises "sweep_every < 1 rejected"
    (Invalid_argument "Stream.create: sweep_every must be >= 1") (fun () ->
      ignore (Check.Stream.create ~sweep_every:0 ~cores:4 ()))

let test_stream_requires_initial () =
  let str = Check.Stream.create ~cores:4 () in
  Check.Stream.add_commit str (witness ~seq:0 ~time:10 ~core:0 ());
  Alcotest.check_raises "finish without initial snapshot"
    (Invalid_argument "Stream.finish: no initial snapshot was fed") (fun () ->
      ignore (Check.Stream.finish str ~final:(image_of (Array.make 16 0))))

let test_streaming_collector_rejects_posthoc_evaluate () =
  (* A streaming collector keeps no history; asking it for a post hoc
     verdict must fail loudly instead of reporting a hollow pass. *)
  let str = Check.Stream.create ~cores:4 () in
  let col = Check.Collector.create_streaming ~cores:4 (Check.Stream.sink str) in
  Alcotest.(check bool) "collector marked streaming" true (Check.Collector.is_streaming col);
  Alcotest.check_raises "evaluate refused"
    (Invalid_argument "Verdict.evaluate: streaming collector retains no history; use of_stream")
    (fun () -> ignore (Check.Verdict.evaluate col ~final:(image_of (Array.make 16 0))))

let test_stream_end_to_end_agreement () =
  (* Whole-engine runs: the streaming verdict must equal the post hoc one —
     same report, byte for byte — on clean runs of all four presets. *)
  List.iter
    (fun (label, cfg) ->
      let sim = { Run.cfg = small cfg; workload = Workloads.Mwobject.workload; seed = 7 } in
      let _stats, posthoc = Run.run_sim_checked sim in
      let _stats, streamed = Run.run_sim_checked ~stream:true sim in
      Alcotest.(check bool) (label ^ " both clean") true
        (Check.Verdict.ok posthoc && Check.Verdict.ok streamed);
      Alcotest.(check string) (label ^ " same report") (Check.Verdict.to_string posthoc)
        (Check.Verdict.to_string streamed))
    [
      ("B", Config.baseline);
      ("P", Config.power_tm);
      ("C", Config.clear_rw);
      ("W", Config.clear_power);
    ]

let test_stream_catches_injected_bug () =
  (* The fault_blind_line bug from test_injected_bug_caught must fail the
     streaming path identically: same oracles flagged, same report. *)
  let cfg =
    { (small Config.baseline) with Config.ops_per_thread = 80; fault_blind_line = Some 0 }
  in
  let sim = { Run.cfg; workload = counter_workload; seed = 5 } in
  let _stats, posthoc = Run.run_sim_checked sim in
  let _stats, streamed = Run.run_sim_checked ~stream:true sim in
  Alcotest.(check bool) "posthoc flags the bug" true (not (Check.Verdict.ok posthoc));
  Alcotest.(check bool) "stream flags the bug" true (not (Check.Verdict.ok streamed));
  Alcotest.(check string) "identical failure report" (Check.Verdict.to_string posthoc)
    (Check.Verdict.to_string streamed)

let test_stream_does_not_perturb () =
  (* The observation-only contract extends to streaming: stats are
     bit-identical to the unchecked run. *)
  let sim = { Run.cfg = small Config.clear_power; workload = Workloads.Bst.workload; seed = 11 } in
  let plain = Run.run_sim sim in
  let streamed, verdict = Run.run_sim_checked ~stream:true sim in
  Alcotest.(check bool) "verdict clean" true (Check.Verdict.ok verdict);
  Alcotest.(check int) "same cycles" (Stats.total_cycles plain) (Stats.total_cycles streamed);
  Alcotest.(check int) "same commits" (Stats.commits plain) (Stats.commits streamed);
  Alcotest.(check int) "same aborts" (Stats.aborts plain) (Stats.aborts streamed)

let test_stream_suite_smoke () =
  let opts =
    {
      Clear_repro.Experiments.cores = 4;
      ops_per_thread = 30;
      seeds = [ 3 ];
      trim = 0;
      retry_choices = [ 2 ];
      sched = Sched.Profile.symmetric;
    }
  in
  let run stream =
    Clear_repro.Experiments.run_suite ~jobs:2 ~check:true ~stream
      ~workloads:[ Workloads.Stack.workload; Workloads.Mwobject.workload ]
      opts
  in
  (* Streaming validation accepts the same suite and measures identically. *)
  let a = run false and b = run true in
  Alcotest.(check bool) "same rows" true
    (a.Clear_repro.Experiments.rows = b.Clear_repro.Experiments.rows)

(* ------------------------------------------------------------------ *)
(* Trace: Unlocked events, dump clamp, Chrome export *)

let traced_run cfg workload =
  let trace = Trace.create ~capacity:(1 lsl 18) () in
  let engine = Engine.create ~trace (small cfg) workload in
  let _ = Engine.run engine in
  trace

let test_trace_unlock_balance () =
  (* Every line lock the trace records as taken must also be recorded as
     released (the ring is large enough to retain the whole run). *)
  let trace = traced_run Config.clear_power Workloads.Mwobject.workload in
  let locked, unlocked =
    List.fold_left
      (fun (l, u) (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Locked _ -> (l + 1, u)
        | Trace.Unlocked _ -> (l, u + 1)
        | _ -> (l, u))
      (0, 0) (Trace.events trace)
  in
  Alcotest.(check int) "locks balance unlocks" locked unlocked

let test_trace_dump_clamps_limit () =
  let trace = traced_run Config.baseline Workloads.Stack.workload in
  let n = Trace.retained trace in
  Alcotest.(check bool) "retained positive" true (n > 0);
  Alcotest.(check bool) "retained bounded" true (n <= Trace.recorded trace);
  (* A limit far beyond the retained count must print exactly the retained
     events, not crash or over-report. *)
  let lines s = List.length (String.split_on_char '\n' (String.trim s)) in
  let with_huge_limit =
    let b = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer b in
    Trace.dump ~limit:max_int trace ppf;
    Format.pp_print_flush ppf ();
    Buffer.contents b
  in
  Alcotest.(check int) "dump prints retained events" n (lines with_huge_limit)

let test_trace_chrome_json () =
  let trace = traced_run Config.clear_power Workloads.Bitcoin.workload in
  let json = Trace.to_chrome_json trace in
  let contains needle = contains_sub json needle in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "has process metadata" true (contains "process_name");
  Alcotest.(check bool) "has instant events" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "commits exported" true (contains "commit")

let () =
  Alcotest.run "check"
    [
      ( "serializability",
        [
          Alcotest.test_case "accepts serial history" `Quick test_serial_accepts_serial_history;
          Alcotest.test_case "rejects stale read (RW)" `Quick test_serial_rejects_read_stale;
          Alcotest.test_case "rejects write inversion (WW)" `Quick
            test_serial_rejects_write_order_inversion;
          Alcotest.test_case "rejects future read (WR)" `Quick test_serial_rejects_future_read;
          Alcotest.test_case "WR reports reader/writer/times" `Quick test_serial_wr_fields;
          Alcotest.test_case "WR excludes self reads" `Quick test_serial_wr_self_read_excluded;
          Alcotest.test_case "WR boundary times benign" `Quick test_serial_wr_boundaries;
          Alcotest.test_case "accepts disjoint concurrency" `Quick test_serial_buffered_concurrent_ok;
        ] );
      ( "lock safety",
        [
          Alcotest.test_case "clean sequence" `Quick test_locks_clean_sequence;
          Alcotest.test_case "mutual exclusion" `Quick test_locks_mutual_exclusion;
          Alcotest.test_case "lexicographic order" `Quick test_locks_lexicographic_order;
          Alcotest.test_case "leaks detected" `Quick test_locks_leak_detected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "accepts faithful history" `Quick test_replay_accepts_faithful_history;
          Alcotest.test_case "detects store mismatch" `Quick test_replay_detects_store_mismatch;
          Alcotest.test_case "detects memory mismatch" `Quick test_replay_detects_memory_mismatch;
          Alcotest.test_case "applies driver writes" `Quick test_replay_applies_driver_writes;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "clean runs pass all oracles" `Quick test_checked_run_clean;
          Alcotest.test_case "capture does not perturb" `Quick test_check_does_not_perturb;
          Alcotest.test_case "injected bug caught" `Quick test_injected_bug_caught;
          Alcotest.test_case "enforce raises" `Quick test_run_sim_enforce_raises;
          Alcotest.test_case "checked suite smoke" `Quick test_suite_checked_smoke;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "agrees on unit histories" `Quick
            test_stream_matches_serial_on_unit_histories;
          Alcotest.test_case "retires behind the frontier" `Quick test_stream_retires_behind_frontier;
          Alcotest.test_case "sweep_every validated" `Quick test_stream_sweep_every_validated;
          Alcotest.test_case "finish requires initial" `Quick test_stream_requires_initial;
          Alcotest.test_case "post hoc evaluate refused" `Quick
            test_streaming_collector_rejects_posthoc_evaluate;
          Alcotest.test_case "end-to-end agreement (all presets)" `Quick
            test_stream_end_to_end_agreement;
          Alcotest.test_case "injected bug caught identically" `Quick
            test_stream_catches_injected_bug;
          Alcotest.test_case "streaming does not perturb" `Quick test_stream_does_not_perturb;
          Alcotest.test_case "streamed suite identical" `Quick test_stream_suite_smoke;
        ] );
      ( "trace",
        [
          Alcotest.test_case "unlock balance" `Quick test_trace_unlock_balance;
          Alcotest.test_case "dump clamps limit" `Quick test_trace_dump_clamps_limit;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
        ] );
    ]
