(* clear_sim: command-line front end for the CLEAR simulator.

   `clear_sim list`                         enumerate benchmarks
   `clear_sim run -w bst -c W ...`          run one benchmark/config
   `clear_sim suite --jobs 8`               full 4-config sweep on 8 domains
   `clear_sim suite --sched numa2x`         same sweep under a schedule scenario
   `clear_sim sched [--json] [--check]`     scheduler-scenario sweep vs the symmetric baseline
   `clear_sim check -w bst -c W`            validate runs with the execution oracle
   `clear_sim analyze [-w bst] [--json]`    static AR verifier (footprints, fits, envelope)
   `clear_sim lint [--json]`                lint all AR bodies (exit 1 on errors)
   `clear_sim openloop --loads 30,60,120`   open-system sweep: tail latency vs offered load
   `clear_sim config -c B`                  print the machine configuration *)

open Cmdliner

let letter_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "B" | "P" | "C" | "W" -> Ok (String.uppercase_ascii s)
    | _ -> Error (`Msg "expected one of B, P, C, W")
  in
  Arg.conv (parse, Format.pp_print_string)

let workload_arg =
  let doc = "Benchmark name (see `clear_sim list`)." in
  Arg.(value & opt string "arrayswap" & info [ "w"; "workload" ] ~doc)

let preset_arg =
  let doc = "Configuration: B (requester-wins), P (PowerTM), C (CLEAR/rw), W (CLEAR/PowerTM)." in
  Arg.(value & opt letter_conv "B" & info [ "c"; "config" ] ~doc)

let cores_arg = Arg.(value & opt int 16 & info [ "cores" ] ~doc:"Simulated cores.")

let ops_arg = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Operations per thread.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Run seed.")

let retries_arg = Arg.(value & opt int 4 & info [ "retries" ] ~doc:"Retry limit before fallback.")

let frontend_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "htm" -> Ok Machine.Config.Htm
    | "sle" -> Ok Machine.Config.Sle
    | _ -> Error (`Msg "expected htm or sle")
  in
  let print ppf f =
    Format.pp_print_string ppf (match f with Machine.Config.Htm -> "htm" | Machine.Config.Sle -> "sle")
  in
  Arg.conv (parse, print)

let trace_arg =
  Arg.(value & opt int 0
       & info [ "trace" ] ~doc:"Print the last N lifecycle events of the run (0 = off).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the run's lifecycle events to FILE in Chrome trace_event JSON \
                 (open in chrome://tracing or Perfetto).")

let frontend_arg =
  Arg.(value & opt frontend_conv Machine.Config.Htm
       & info [ "frontend" ] ~doc:"Speculation front-end: htm (transactions) or sle (lock elision).")

(* --pdes / --pdes-window: select the windowed conservative PDES engine
   driver (DESIGN.md §12). Output is bit-identical to the default driver at
   every window size; the flags exist for timing comparisons and for
   exercising the driver from the CLI. *)
let pdes_term =
  let flag_arg =
    Arg.(value & flag
         & info [ "pdes" ]
             ~doc:"Use the windowed conservative PDES engine driver (unbounded lookahead \
                   windows). Results are bit-identical to the default event loop.")
  in
  let window_arg =
    Arg.(value & opt int 0
         & info [ "pdes-window" ] ~docv:"CYCLES"
             ~doc:"Cap PDES lookahead windows at $(docv) simulated cycles (0 = unbounded). \
                   Implies --pdes.")
  in
  let mk flag window =
    if window > 0 then Some (Machine.Pdes.windowed window)
    else if flag then Some Machine.Pdes.unbounded
    else None
  in
  Term.(const mk $ flag_arg $ window_arg)

let find_workload name =
  match Workloads.Registry.find name with
  | w -> w
  | exception Not_found ->
      Printf.eprintf "unknown workload %s; try `clear_sim list`\n" name;
      exit 2

let config_of ?(frontend = Machine.Config.Htm) letter ~cores ~ops ~seed ~retries =
  let base =
    match letter with
    | "B" -> Machine.Config.baseline
    | "P" -> Machine.Config.power_tm
    | "C" -> Machine.Config.clear_rw
    | "W" -> Machine.Config.clear_power
    | _ -> assert false
  in
  { base with Machine.Config.cores; ops_per_thread = ops; seed; max_retries = retries; frontend }

let run_cmd =
  let run workload letter cores ops seed retries frontend trace_n trace_out pdes =
    let w = find_workload workload in
    let cfg = config_of ~frontend letter ~cores ~ops ~seed ~retries in
    let trace =
      if trace_out <> None then
        (* A file export wants the whole run, not the default ring. *)
        Some (Machine.Trace.create ~capacity:(1 lsl 20) ())
      else if trace_n > 0 then Some (Machine.Trace.create ())
      else None
    in
    let t0 = Unix.gettimeofday () in
    let engine = Machine.Engine.create ?trace cfg w in
    let stats = Machine.Engine.run ?pdes engine in
    let elapsed = Unix.gettimeofday () -. t0 in
    let module S = Machine.Stats in
    Printf.printf "workload        %s (%s, %d cores, %d ops/thread, seed %d)\n" w.name letter cores
      ops seed;
    Printf.printf "total cycles    %d\n" (S.total_cycles stats);
    Printf.printf "commits         %d\n" (S.commits stats);
    List.iter
      (fun mode ->
        Printf.printf "  %-12s  %d\n" (S.commit_mode_name mode) (S.commits_in_mode stats mode))
      S.all_commit_modes;
    Printf.printf "aborts          %d (%.2f per commit)\n" (S.aborts stats) (S.aborts_per_commit stats);
    List.iter
      (fun cat ->
        Printf.printf "  %-17s %d\n" (Machine.Abort.category_name cat) (S.aborts_in_category stats cat))
      Machine.Abort.all_categories;
    List.iter
      (fun cause ->
        let n = S.aborts_with_cause stats cause in
        if n > 0 then Printf.printf "    %-16s %d\n" (Machine.Abort.cause_name cause) n)
      [
        Machine.Abort.Memory_conflict;
        Machine.Abort.Nacked;
        Machine.Abort.Explicit_fallback;
        Machine.Abort.Other_fallback;
        Machine.Abort.Capacity;
        Machine.Abort.Scl_deviation;
        Machine.Abort.Other;
      ];
    let one, many, fb = S.retry_breakdown stats in
    Printf.printf "retried commits  1-retry %.1f%%  n-retry %.1f%%  fallback %.1f%%\n" (100. *. one)
      (100. *. many) (100. *. fb);
    Printf.printf "first-try ratio %.1f%%\n" (100. *. S.first_try_ratio stats);
    Printf.printf "fig1 ratio      %.2f\n" (S.fig1_ratio stats);
    Printf.printf "instructions    %d (+%d wasted)\n" (S.instrs stats) (S.wasted_instrs stats);
    Printf.printf "energy          %.3f uJ\n"
      (Energy.Model.total Energy.Model.default ~cores ~cycles:(S.total_cycles stats)
         (S.counters stats)
      /. 1e6);
    let counter name = Simrt.Counter.get (S.counters stats) name in
    Printf.printf "stall cycles    %d  lock-phase cycles %d\n" (counter "stall_cycles")
      (counter "lock_phase_cycles");
    Printf.printf "host time       %.2f s\n" elapsed;
    (match pdes with
    | None -> ()
    | Some p ->
        let perf = Machine.Engine.perfctr engine in
        Printf.printf
          "pdes            %s: %d windows, %d ext events, %d merge ties, %d stalls, mean \
           lookahead %.1f (max %d)\n"
          (Machine.Pdes.describe p) perf.Simrt.Perfctr.pdes_windows
          perf.Simrt.Perfctr.pdes_ext_events perf.Simrt.Perfctr.pdes_merge_events
          perf.Simrt.Perfctr.pdes_window_stalls
          (Simrt.Perfctr.mean_lookahead perf)
          perf.Simrt.Perfctr.pdes_lookahead_max);
    (match trace with
    | Some tr when trace_n > 0 ->
        let shown = min trace_n (Machine.Trace.retained tr) in
        Printf.printf "--- last %d events (of %d recorded) ---\n" shown (Machine.Trace.recorded tr);
        Machine.Trace.dump ~limit:trace_n tr Format.std_formatter
    | Some _ | None -> ());
    match (trace, trace_out) with
    | Some tr, Some file ->
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc (Machine.Trace.to_chrome_json tr));
        Printf.printf "trace written   %s (%d events)\n" file (Machine.Trace.retained tr)
    | _ -> ()
  in
  let term =
    Term.(
      const run $ workload_arg $ preset_arg $ cores_arg $ ops_arg $ seed_arg $ retries_arg
      $ frontend_arg $ trace_arg $ trace_out_arg $ pdes_term)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark under one configuration.") term

let jobs_arg =
  let doc =
    "Worker domains for the sweep (default: host cores minus one). Results are \
     bit-identical at any job count. Values above the host's recommended \
     domain count are clamped (extra domains only add scheduling overhead)."
  in
  let arg = Arg.(value & opt int (Simrt.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~doc) in
  Cmdliner.Term.(const (Simrt.Pool.clamp_jobs ~context:"suite") $ arg)

let sched_profile_conv =
  let parse s =
    match Sched.Scenarios.find (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %s (expected one of %s)" s
                (String.concat ", " Sched.Scenarios.names)))
  in
  let print ppf (p : Sched.Profile.t) = Format.pp_print_string ppf p.Sched.Profile.name in
  Arg.conv (parse, print)

let sched_arg =
  let doc =
    Printf.sprintf
      "Schedule scenario applied to every simulation: %s. The default (symmetric) is the \
       paper's machine."
      (String.concat ", " Sched.Scenarios.names)
  in
  Arg.(value & opt sched_profile_conv Sched.Profile.symmetric & info [ "sched" ] ~doc)

let suite_cmd =
  let module Experiments = Clear_repro.Experiments in
  let module Suite_cache = Clear_repro.Suite_cache in
  let suite jobs paper workload check stream no_cache cache_clear sched pdes =
    if cache_clear then begin
      let n = Suite_cache.clear () in
      Printf.eprintf "[suite] cleared %d cache shard(s) from %s\n%!" n Suite_cache.dir
    end;
    let opts = if paper then Experiments.default_options else Experiments.quick_options in
    let opts = { opts with Experiments.sched } in
    if not (Sched.Profile.is_symmetric sched) then
      Printf.eprintf "[suite] schedule scenario: %s (%s)\n%!" sched.Sched.Profile.name
        sched.Sched.Profile.description;
    let workloads =
      match workload with
      | None -> Workloads.Registry.all
      | Some name -> [ find_workload name ]
    in
    let progress label = Printf.eprintf "[suite] %s\n%!" label in
    (* A checked sweep must actually simulate — a cache hit would skip the
       oracle entirely — so --check bypasses the cache in both directions.
       Likewise --pdes: run_suite drops the cache so the driver actually
       runs (shards are keyed by config and could not tell the two apart). *)
    let use_cache = (not no_cache) && not check in
    (match pdes with
    | None -> ()
    | Some p -> Printf.eprintf "[suite] engine driver: %s (cache bypassed)\n%!" (Machine.Pdes.describe p));
    let t0 = Unix.gettimeofday () in
    let s =
      Experiments.run_suite ~jobs ~check ~stream ~cache:use_cache ?pdes ~workloads ~progress opts
    in
    Printf.eprintf "[suite] done in %.1f s on %d domain(s)%s\n%!"
      (Unix.gettimeofday () -. t0) jobs
      (if check then " (all runs validated by the execution oracle)" else "");
    Report.Table.print (Experiments.fig8 s);
    print_newline ();
    Report.Table.print (Experiments.headline s)
  in
  let paper_arg =
    Arg.(value & flag & info [ "paper" ] ~doc:"Paper-sized sweep (10 seeds, retries 1..10); slow.")
  in
  let workload_filter =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~doc:"Restrict the sweep to one benchmark.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate every simulation with the execution oracle (serializability, \
                   sequential replay, lock safety, static soundness gate). Implies bypassing \
                   the suite cache.")
  in
  let stream_arg =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Run the --check oracles online (incremental checker with bounded memory, \
                   DESIGN.md §14); identical verdicts, O(live lines) peak checker state.")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Neither read nor write the on-disk per-simulation shards.")
  in
  let cache_clear_arg =
    Arg.(value & flag & info [ "cache-clear" ] ~doc:"Delete all cache shards first.")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the 4-configuration sweep on a pool of domains; print Figure 8 and the headline.")
    Term.(const suite $ jobs_arg $ paper_arg $ workload_filter $ check_arg $ stream_arg
          $ no_cache_arg $ cache_clear_arg $ sched_arg $ pdes_term)

(* ------------------------------------------------------------------ *)
(* sched: scenario sweep against the symmetric baseline                *)

(* One scenario materially shifts the retry economics when its one-retry or
   fallback share moves by at least this much (absolute) versus the symmetric
   baseline under the same configuration. *)
let material_delta = 0.05

let sched_cmd =
  let module S = Machine.Stats in
  let module J = Report.Json in
  let mean = Simrt.Summary.mean in
  let run json check fingerprint jobs workload cores ops retries =
    let w = find_workload workload in
    let seeds = [ 3; 5; 7 ] in
    let tasks =
      List.concat_map
        (fun (sname, prof) ->
          List.concat_map
            (fun letter ->
              let cfg = config_of letter ~cores ~ops ~seed:0 ~retries in
              let cfg = Machine.Config.with_sched cfg prof in
              List.map
                (fun seed -> ((sname, letter, seed), { Clear_repro.Run.cfg; workload = w; seed }))
                seeds)
            Clear_repro.Experiments.letters)
        Sched.Scenarios.all
    in
    let stats_list =
      try Simrt.Pool.parallel_map ~jobs (Clear_repro.Run.runner ~check) (List.map snd tasks)
      with Clear_repro.Run.Check_failed msg ->
        Printf.eprintf "[sched] oracle violation:\n%s\n%!" msg;
        exit 1
    in
    let results = List.map2 (fun (key, _) st -> (key, st)) tasks stats_list in
    if fingerprint then
      (* OCaml-syntax golden rows for test/test_sched.ml regeneration. *)
      List.iter
        (fun ((sname, letter, seed), st) ->
          Printf.printf "    (%S, %S, %d, (%d, %d, %d, %d, %d));\n" sname letter seed
            (S.total_cycles st) (S.commits st) (S.aborts st) (S.instrs st) (S.wasted_instrs st))
        results
    else begin
      (* Aggregate seeds per (scenario, config). *)
      let agg (sname, letter) =
        let runs =
          List.filter_map
            (fun ((s, l, _), st) -> if s = sname && l = letter then Some st else None)
            results
        in
        let over f = mean (List.map f runs) in
        let one = over (fun st -> let a, _, _ = S.retry_breakdown st in a) in
        let many = over (fun st -> let _, b, _ = S.retry_breakdown st in b) in
        let fb = over (fun st -> let _, _, c = S.retry_breakdown st in c) in
        ( over (fun st -> float_of_int (S.total_cycles st)),
          over S.aborts_per_commit,
          (one, many, fb),
          over (fun st -> float_of_int (Simrt.Counter.get (S.counters st) "numa_adder_cycles")) )
      in
      let letters = Clear_repro.Experiments.letters in
      let baseline = List.map (fun l -> (l, agg ("symmetric", l))) letters in
      let scenario_rows =
        List.map
          (fun (sname, _) ->
            let per_letter =
              List.map
                (fun l ->
                  let ((_, _, (one, _, fb), _) as a) = agg (sname, l) in
                  let _, _, (bone, _, bfb), _ = List.assoc l baseline in
                  let material =
                    sname <> "symmetric"
                    && (Float.abs (one -. bone) >= material_delta
                        || Float.abs (fb -. bfb) >= material_delta)
                  in
                  (l, a, material))
                letters
            in
            (sname, per_letter))
          Sched.Scenarios.all
      in
      let materially_different =
        List.length
          (List.filter
             (fun (sname, per) -> sname <> "symmetric" && List.exists (fun (_, _, m) -> m) per)
             scenario_rows)
      in
      if json then
        print_endline
          (J.to_string_pretty
             (J.Obj
                [
                  ("workload", J.Str w.Machine.Workload.name);
                  ("cores", J.Int cores);
                  ("ops_per_thread", J.Int ops);
                  ("seeds", J.List (List.map (fun s -> J.Int s) seeds));
                  ("checked", J.Bool check);
                  ("material_delta", J.Float material_delta);
                  ("materially_different", J.Int materially_different);
                  ( "scenarios",
                    J.List
                      (List.map
                         (fun (sname, per) ->
                           J.Obj
                             [
                               ("name", J.Str sname);
                               ( "configs",
                                 J.List
                                   (List.map
                                      (fun (l, (cycles, apc, (one, many, fb), numa), material) ->
                                        J.Obj
                                          [
                                            ("config", J.Str l);
                                            ("cycles", J.Float cycles);
                                            ("aborts_per_commit", J.Float apc);
                                            ("one_retry", J.Float one);
                                            ("n_retry", J.Float many);
                                            ("fallback", J.Float fb);
                                            ("numa_adder_cycles", J.Float numa);
                                            ("materially_different", J.Bool material);
                                          ])
                                      per) );
                             ])
                         scenario_rows) );
                ]))
      else begin
        let t =
          Report.Table.create
            ~title:
              (Printf.sprintf "Scheduler scenarios: %s, %d cores, %d ops/thread (mean of %d seeds)"
                 w.Machine.Workload.name cores ops (List.length seeds))
            ~columns:
              [ "Scenario"; "Cfg"; "cycles"; "ab/commit"; "1-retry"; "n-retry"; "fallback";
                "numa-cyc"; "shift" ]
        in
        List.iter
          (fun (sname, per) ->
            List.iter
              (fun (l, (cycles, apc, (one, many, fb), numa), material) ->
                Report.Table.add_row t
                  [
                    sname;
                    l;
                    Printf.sprintf "%.0f" cycles;
                    Report.Table.f2 apc;
                    Report.Table.pct one;
                    Report.Table.pct many;
                    Report.Table.pct fb;
                    Printf.sprintf "%.0f" numa;
                    (if material then "*" else "");
                  ])
              per;
            Report.Table.add_separator t)
          scenario_rows;
        Report.Table.print t;
        Printf.printf
          "%d of %d scenarios materially shift the retry mix vs symmetric (|delta| >= %.0f%% on \
           1-retry or fallback share)\n"
          materially_different
          (List.length Sched.Scenarios.all - 1)
          (100. *. material_delta)
      end
    end
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ] ~doc:"Validate every scenario run with the execution oracle.")
  in
  let fingerprint_arg =
    Arg.(value & flag
         & info [ "fingerprint" ]
             ~doc:"Print OCaml-syntax golden rows (scenario, config, seed, counters) for the \
                   test tables instead of the report.")
  in
  let sched_workload_arg =
    let doc = "Benchmark driving the scenario sweep (see `clear_sim list`)." in
    Arg.(value & opt string "stack" & info [ "w"; "workload" ] ~doc)
  in
  let sched_cores_arg = Arg.(value & opt int 8 & info [ "cores" ] ~doc:"Simulated cores.") in
  let sched_ops_arg = Arg.(value & opt int 80 & info [ "ops" ] ~doc:"Operations per thread.") in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Run every schedule scenario (hot core, think skew, NUMA asymmetry, phased start) \
             against the symmetric baseline across all four configurations and report how the \
             retry/fallback mix shifts. Deterministic per (workload, cores, ops, seed).")
    Term.(const run $ json_arg $ check_arg $ fingerprint_arg $ jobs_arg $ sched_workload_arg
          $ sched_cores_arg $ sched_ops_arg $ retries_arg)

let check_cmd =
  let check workload all letter cores ops seed retries frontend stream fault_blind_line =
    let ws = if all then Workloads.Registry.all else [ find_workload workload ] in
    let cfg = config_of ~frontend letter ~cores ~ops ~seed ~retries in
    let cfg = { cfg with Machine.Config.fault_blind_line } in
    let failures = ref 0 in
    List.iter
      (fun (w : Machine.Workload.t) ->
        let _stats, verdict =
          Clear_repro.Run.run_sim_checked ~stream { Clear_repro.Run.cfg; workload = w; seed }
        in
        if Check.Verdict.ok verdict then
          Printf.printf "%-12s %s  OK (%d commits)\n%!" w.name letter
            verdict.Check.Verdict.commits
        else begin
          incr failures;
          Printf.printf "%-12s %s  FAILED\n%s\n%!" w.name letter (Check.Verdict.to_string verdict)
        end)
      ws;
    if !failures > 0 then exit 1
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Check every benchmark instead of one.")
  in
  let stream_arg =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Run the oracles online (incremental checker with bounded memory, DESIGN.md \
                   §14) instead of post hoc; the verdict is identical either way.")
  in
  let fault_blind_arg =
    Arg.(value & opt (some int) None
         & info [ "fault-blind-line" ] ~docv:"LINE"
             ~doc:"Inject the conflict-blindness engine bug on $(docv) (the engine stops \
                   detecting conflicts there). The oracles must catch it — used by the smoke \
                   gates to prove both checking paths fail loudly.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run benchmarks with the execution oracle: commit-order serializability over the \
             captured witnesses, bit-exact sequential replay of all committed ARs, and \
             lock-safety invariants. Exits non-zero on any violation.")
    Term.(const check $ workload_arg $ all_arg $ preset_arg $ cores_arg $ ops_arg $ seed_arg
          $ retries_arg $ frontend_arg $ stream_arg $ fault_blind_arg)

let list_cmd =
  let list () =
    List.iter
      (fun (w : Machine.Workload.t) ->
        Printf.printf "%-12s %2d ARs  %s\n" w.name (List.length w.ars) w.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks.") Term.(const list $ const ())

(* --conflicts: the static pairwise AR may-conflict matrix, validated
   dynamically — each workload is re-run under checked mode (B and W, so
   both the plain-HTM and CLEAR gates see traffic) and the soundness gate
   asserts every observed conflict event's line lies inside the static
   cover for its AR pair. Exit 1 on any gate failure. *)
let analyze_conflicts ws json =
  let module C = Staticcheck.Conflict in
  let module J = Report.Json in
  let failures = ref 0 in
  let validate (w : Machine.Workload.t) =
    List.map
      (fun letter ->
        let cfg = config_of letter ~cores:8 ~ops:40 ~seed:11 ~retries:4 in
        let _stats, verdict =
          Clear_repro.Run.run_sim_checked { Clear_repro.Run.cfg; workload = w; seed = 11 }
        in
        if not (Check.Verdict.ok verdict) then begin
          incr failures;
          Printf.eprintf "[analyze --conflicts] %s under %s FAILED\n%s\n%!" w.name letter
            (Check.Verdict.to_string verdict)
        end;
        (letter, verdict))
      [ "B"; "W" ]
  in
  let per_workload =
    List.map
      (fun (w : Machine.Workload.t) ->
        let m = C.of_ars w.Machine.Workload.ars in
        (w, m, validate w))
      ws
  in
  let cover_json c =
    match (c : C.cover) with
    | C.Top -> J.Str "top"
    | C.Spans spans ->
        J.List (Array.to_list (Array.map (fun (lo, hi) -> J.List [ J.Int lo; J.Int hi ]) spans))
  in
  if json then
    print_endline
      (J.to_string_pretty
         (J.List
            (List.map
               (fun ((w : Machine.Workload.t), m, verdicts) ->
                 let infos = C.ars m in
                 J.Obj
                   [
                     ("workload", J.Str w.name);
                     ( "ars",
                       J.List
                         (Array.to_list
                            (Array.map
                               (fun (i : C.ar_info) ->
                                 J.Obj
                                   [
                                     ("name", J.Str i.C.name);
                                     ("cl_capable", J.Bool i.C.cl_capable);
                                     ("rw", cover_json i.C.rw);
                                     ("w", cover_json i.C.w);
                                     ("x", cover_json i.C.x);
                                   ])
                               infos)) );
                     ( "matrix",
                       J.List
                         (List.concat
                            (Array.to_list
                               (Array.mapi
                                  (fun ia (a : C.ar_info) ->
                                    Array.to_list
                                      (Array.mapi
                                         (fun ib (b : C.ar_info) ->
                                           let c = C.may_conflict m ia ib in
                                           J.Obj
                                             [
                                               ("a", J.Str a.C.name);
                                               ("b", J.Str b.C.name);
                                               ("cover", cover_json c);
                                               ( "lines",
                                                 match C.cover_lines c with
                                                 | None -> J.Null
                                                 | Some n -> J.Int n );
                                             ])
                                         infos))
                                  infos))) );
                     ( "validated",
                       J.List
                         (List.map
                            (fun (letter, (v : Check.Verdict.t)) ->
                              J.Obj
                                [
                                  ("config", J.Str letter);
                                  ("ok", J.Bool (Check.Verdict.ok v));
                                  ("commits", J.Int v.Check.Verdict.commits);
                                ])
                            verdicts) );
                   ])
               per_workload)))
  else
    List.iter
      (fun ((w : Machine.Workload.t), m, verdicts) ->
        let infos = C.ars m in
        let t =
          Report.Table.create ~title:(Printf.sprintf "%s: AR may-conflict matrix" w.name)
            ~columns:
              ("AR" :: "CL?" :: "X-set"
              :: Array.to_list (Array.map (fun (i : C.ar_info) -> i.C.name) infos))
        in
        Array.iteri
          (fun ia (a : C.ar_info) ->
            Report.Table.add_row t
              (a.C.name
              :: (if a.C.cl_capable then "yes" else "no")
              :: C.cover_to_string a.C.x
              :: Array.to_list
                   (Array.mapi
                      (fun ib _ ->
                        let c = C.may_conflict m ia ib in
                        match C.cover_lines c with
                        | None -> "top"
                        | Some 0 -> "-"
                        | Some n -> string_of_int n)
                      infos)))
          infos;
        Report.Table.print t;
        List.iter
          (fun (letter, (v : Check.Verdict.t)) ->
            Printf.printf "  dynamic gate %s: %s (%d commits)\n" letter
              (if Check.Verdict.ok v then "OK" else "FAILED")
              v.Check.Verdict.commits)
          verdicts;
        print_newline ())
      per_workload;
  if !failures > 0 then begin
    Printf.eprintf "[analyze --conflicts] %d gate failure(s)\n%!" !failures;
    exit 1
  end

let analyze_cmd =
  let module A = Staticcheck.Absint in
  let module P = Staticcheck.Predict in
  let json_of_prediction (p : P.t) =
    let module J = Report.Json in
    let bound b = J.Str (A.bound_to_string b) in
    let fit f = J.Str (P.fit_name f) in
    J.Obj
      [
        ("ar", J.Str p.P.summary.A.name);
        ("may_read_lines", bound p.P.summary.A.read_lines);
        ("may_write_lines", bound p.P.summary.A.write_lines);
        ("footprint_lines", bound p.P.summary.A.footprint_lines);
        ("store_execs", bound p.P.summary.A.store_execs);
        ("alt_fit", fit p.P.alt_fit);
        ("sq_fit", fit p.P.sq_fit);
        ("crt_fit", fit p.P.crt_fit);
        ("lock_fit", fit p.P.lock_fit);
        ("window_fit", fit p.P.window_fit);
        ( "lock_groups",
          match p.P.lock_groups with None -> J.Null | Some n -> J.Int n );
        ("envelope", J.Str (P.envelope_name p.P.envelope));
        ("classification", J.Str (Clear.Analysis.classification_name p.P.classification));
        ("indirections", J.List (List.map (fun r -> J.Str r) p.P.summary.A.indirections));
        ("must_indirect", J.Bool p.P.summary.A.must_indirect);
      ]
  in
  let analyze workload json conflicts =
    let ws =
      match workload with
      | None -> Workloads.Registry.all
      | Some name -> [ find_workload name ]
    in
    if conflicts then analyze_conflicts ws json
    else begin
    let mismatches = ref 0 in
    let per_workload =
      List.map
        (fun (w : Machine.Workload.t) ->
          let written_regions = List.concat_map Isa.Program.regions_written w.ars in
          let dynamic = Clear.Analysis.classify_workload w.ars in
          let predictions =
            List.map (fun ar -> P.predict ~written_regions (A.analyze_ar ar)) w.ars
          in
          (* The static classification must agree with the reference
             analysis on every AR — they share the taint transfer, so any
             divergence is an analyzer bug worth failing loudly on. *)
          List.iter2
            (fun (ar, c) (p : P.t) ->
              if p.P.classification <> c then begin
                incr mismatches;
                Printf.eprintf
                  "[analyze] MISMATCH %s/%s: static %s vs Clear.Analysis %s\n%!" w.name
                  ar.Isa.Program.name
                  (Clear.Analysis.classification_name p.P.classification)
                  (Clear.Analysis.classification_name c)
              end)
            dynamic predictions;
          (w, predictions))
        ws
    in
    if json then
      print_endline
        (Report.Json.to_string_pretty
           (Report.Json.List
              (List.map
                 (fun ((w : Machine.Workload.t), ps) ->
                   Report.Json.Obj
                     [
                       ("workload", Report.Json.Str w.name);
                       ("ars", Report.Json.List (List.map json_of_prediction ps));
                     ])
                 per_workload)))
    else
      List.iter
        (fun ((w : Machine.Workload.t), ps) ->
          let t =
            Report.Table.create ~title:(Printf.sprintf "%s: static AR analysis" w.name)
              ~columns:
                [ "AR"; "reads"; "writes"; "lines"; "stores"; "ALT"; "SQ"; "CRT"; "lock";
                  "window"; "envelope"; "class" ]
          in
          List.iter
            (fun (p : P.t) ->
              let fit f = match f with P.Fits -> "fit" | P.May_overflow -> "may-ovf" in
              Report.Table.add_row t
                [
                  p.P.summary.A.name;
                  A.bound_to_string p.P.summary.A.read_lines;
                  A.bound_to_string p.P.summary.A.write_lines;
                  A.bound_to_string p.P.summary.A.footprint_lines;
                  A.bound_to_string p.P.summary.A.store_execs;
                  fit p.P.alt_fit;
                  fit p.P.sq_fit;
                  fit p.P.crt_fit;
                  fit p.P.lock_fit;
                  fit p.P.window_fit;
                  P.envelope_name p.P.envelope;
                  Clear.Analysis.classification_name p.P.classification;
                ])
            ps;
          Report.Table.print t;
          print_newline ())
        per_workload;
    if !mismatches > 0 then begin
      Printf.eprintf "[analyze] %d classification mismatch(es)\n%!" !mismatches;
      exit 1
    end
    end
  in
  let workload_filter =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~doc:"Restrict the analysis to one benchmark.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  let conflicts_arg =
    Arg.(value & flag
         & info [ "conflicts" ]
             ~doc:"Print the static pairwise AR may-conflict matrix instead, and validate it \
                   dynamically: checked runs (configs B and W) assert every observed conflict \
                   event's line lies in the static cover for its AR pair. Exits non-zero on \
                   any soundness mismatch.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static AR verification: abstract-interpretation footprint bounds, CLEAR table \
             fits, the sound decision envelope, and the Table-1 mutability classification \
             (checked against the reference analysis; exits non-zero on disagreement). With \
             $(b,--conflicts), the pairwise AR may-conflict matrix with dynamic validation.")
    Term.(const analyze $ workload_filter $ json_arg $ conflicts_arg)

let lint_cmd =
  let module L = Staticcheck.Lint in
  let lint json broken_demo =
    let diags =
      if broken_demo then L.check_body ~name:"broken-demo" L.broken_demo
      else
        List.concat_map
          (fun (w : Machine.Workload.t) ->
            List.concat_map
              (fun ar ->
                List.map
                  (fun (d : L.diag) -> { d with L.ar = w.name ^ "/" ^ d.L.ar })
                  (L.check_ar ar))
              w.ars)
          Workloads.Registry.all
    in
    if json then print_endline (Report.Json.to_string_pretty (L.to_json diags))
    else begin
      List.iter (fun d -> Format.printf "%a@." L.pp_diag d) diags;
      Printf.printf "%d finding(s), %d error(s)\n" (List.length diags) (L.errors diags)
    end;
    if L.errors diags > 0 then exit 1
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  let demo_arg =
    Arg.(value & flag
         & info [ "broken-demo" ]
             ~doc:"Lint a deliberately broken demo body instead of the registry (exits 1).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Lint every registered AR body (unreachable code, dead writes, untagged regions, \
             out-of-range targets, absurd offsets, possibly-zero divisors, missing Halt). \
             Exits non-zero only on error-severity findings.")
    Term.(const lint $ json_arg $ demo_arg)

(* ------------------------------------------------------------------ *)
(* openloop: open-system sweep — tail latency vs offered load          *)

let openloop_cmd =
  let module Sweep = Openloop.Sweep in
  let d = Sweep.default_options in
  let run json jobs workload keys theta loads requests process_name heat cap configs retries
      cores seed check stream pdes =
    let process =
      match String.lowercase_ascii process_name with
      | "poisson" -> Machine.Config.Open_poisson
      | "burst" -> Machine.Config.Open_burst { heat }
      | other ->
          Printf.eprintf "unknown arrival process %s (expected poisson or burst)\n" other;
          exit 2
    in
    let configs =
      (* ops_per_thread is dead in open mode (the queue, not an op count,
         decides when cores stop); keep the preset default. *)
      List.map
        (fun letter ->
          config_of letter ~cores ~ops:Machine.Config.default.Machine.Config.ops_per_thread ~seed
            ~retries)
        configs
    in
    let o =
      {
        Sweep.workload;
        keys;
        theta;
        loads;
        requests;
        process;
        queue_cap = cap;
        configs;
        seed;
        jobs;
        check;
        stream;
        pdes;
      }
    in
    let results =
      match Sweep.run o with
      | results -> results
      | exception Not_found ->
          Printf.eprintf "unknown workload %s; try `clear_sim list`\n" workload;
          exit 2
    in
    if json then print_endline (Report.Json.to_string_pretty (Sweep.to_json o results))
    else Report.Table.print (Sweep.table results);
    if List.exists (fun (r : Openloop.Driver.t) -> r.Openloop.Driver.checked && not r.oracle_ok) results
    then begin
      Printf.eprintf "[openloop] execution-oracle violation at a checked load point\n%!";
      exit 1
    end
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  let keys_arg =
    Arg.(value & opt int d.Sweep.keys
         & info [ "keys" ]
             ~doc:"Keyed-structure entries (sized well past the L3 so Zipf popularity, not \
                   cache residency, decides hotness).")
  in
  let theta_arg =
    Arg.(value & opt float d.Sweep.theta & info [ "theta" ] ~doc:"Zipf popularity skew.")
  in
  let loads_arg =
    Arg.(value & opt (list float) d.Sweep.loads
         & info [ "loads" ] ~docv:"R1,R2,..."
             ~doc:"Offered loads to sweep, in requests per 1000 simulated cycles.")
  in
  let requests_arg =
    Arg.(value & opt int d.Sweep.requests
         & info [ "requests" ] ~doc:"Requests generated per load point.")
  in
  let process_arg =
    Arg.(value & opt string "poisson"
         & info [ "process" ] ~doc:"Arrival process: poisson or burst.")
  in
  let heat_arg =
    Arg.(value & opt float 1.5
         & info [ "heat" ] ~doc:"Burstiness of the burst arrival process (ignored for poisson).")
  in
  let cap_arg =
    Arg.(value & opt int d.Sweep.queue_cap
         & info [ "cap" ]
             ~doc:"Waiting-request bound; arrivals beyond it are dropped at saturation \
                   (0 = unbounded).")
  in
  let configs_arg =
    Arg.(value & opt (list letter_conv) [ "B"; "C" ]
         & info [ "configs" ] ~docv:"L1,L2,..."
             ~doc:"Configurations to sweep (letters among B, P, C, W).")
  in
  let openloop_retries_arg =
    Arg.(value & opt int 1
         & info [ "retries" ]
             ~doc:"Retry limit before fallback. The default 1 makes the baseline \
                   fallback-heavy — the convoy CLEAR's single-retry bound avoids.")
  in
  let openloop_cores_arg =
    Arg.(value & opt int Machine.Config.default.Machine.Config.cores
         & info [ "cores" ] ~doc:"Simulated cores.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate each configuration's lowest load point with the execution oracle \
                   (exit 1 on violation).")
  in
  let stream_arg =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Run the --check oracles online (incremental checker with bounded memory, \
                   DESIGN.md §14); identical verdicts, O(live lines) peak checker state.")
  in
  Cmd.v
    (Cmd.info "openloop"
       ~doc:"Open-system sweep: requests arrive on their own schedule (Poisson or bursty), \
             queue while cores are busy, and record enqueue-to-commit sojourn latency. Emits \
             the latency-vs-offered-load curve with exact p50/p99/p999 percentiles. \
             Deterministic per seed at any --jobs.")
    Term.(const run $ json_arg $ jobs_arg $ workload_arg $ keys_arg $ theta_arg $ loads_arg
          $ requests_arg $ process_arg $ heat_arg $ cap_arg $ configs_arg $ openloop_retries_arg
          $ openloop_cores_arg $ seed_arg $ check_arg $ stream_arg $ pdes_term)

let config_cmd =
  let show letter cores ops seed retries =
    let cfg = config_of letter ~cores ~ops ~seed ~retries in
    Format.printf "%a@." Machine.Config.pp cfg
  in
  Cmd.v (Cmd.info "config" ~doc:"Print the machine configuration (Table 2).")
    Term.(const show $ preset_arg $ cores_arg $ ops_arg $ seed_arg $ retries_arg)

let () =
  let info = Cmd.info "clear_sim" ~doc:"CLEAR bounded-retry HTM simulator." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; suite_cmd; sched_cmd; check_cmd; list_cmd; analyze_cmd; lint_cmd;
            openloop_cmd; config_cmd ]))
