(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the design-choice ablations, and times the simulator's
   core structures with Bechamel.

     dune exec bench/main.exe                  -- everything (quick-sized)
     dune exec bench/main.exe fig8             -- one artefact
     dune exec bench/main.exe -- --paper all   -- paper-sized sweep (slow)
     dune exec bench/main.exe -- --jobs 8 fig8 -- sweep on 8 domains

   The suite runs on a pool of OCaml domains (--jobs N, default: host cores
   minus one) and is memoised on disk under _cache/ as one shard per
   (config, workload, seed) simulation keyed by the executable's digest, so
   later artefact invocations only re-simulate what is missing — and editing
   one workload after a rebuild re-simulates the whole sweep once but then
   shares shards across runs again. --no-cache bypasses the disk cache
   (it neither reads nor writes); --check validates every simulation with
   the execution oracle (and implies --no-cache, since a cache hit would
   skip validation); --smoke selects a tiny fixed suite used by
   bench/perf_smoke.sh and bench/check_smoke.sh; --only W1,W2 restricts the
   sweep to the named workloads (bench/paper_smoke.sh); --sched NAME runs
   the sweep under a schedule scenario (see `clear_sim sched`).

   --perf runs a small fixed sweep sequentially and dumps the engine's
   hot-path performance counters (Simrt.Perfctr), both as a table and as
   machine-readable "perfctr NAME VALUE" lines for bench/perf_smoke.sh.

   Artefacts: table1 table2 fig1 fig8 fig9 fig10 fig11 fig12 fig13 headline
   ablation micro all *)

module Experiments = Clear_repro.Experiments
module Run = Clear_repro.Run
module Table = Report.Table
module Config = Machine.Config
module Stats = Machine.Stats

(* Quick-sized defaults: the full 4-config x 19-benchmark sweep with a retry
   sweep per pair finishes in minutes, not hours. *)
let quick_suite_options =
  {
    Experiments.cores = 32;
    ops_per_thread = 150;
    seeds = [ 11; 23; 37 ];
    trim = 0;
    retry_choices = [ 1; 2; 4; 8 ];
    sched = Sched.Profile.symmetric;
  }

(* Tiny fixed suite for perf smoke-testing: seconds, not minutes, even on one
   core, yet still the full 4-config x 19-benchmark cross product. *)
let smoke_suite_options =
  {
    Experiments.cores = 4;
    ops_per_thread = 40;
    seeds = [ 3; 5 ];
    trim = 0;
    retry_choices = [ 2; 5 ];
    sched = Sched.Profile.symmetric;
  }

let progress label = Printf.eprintf "[bench] %s\n%!" label

let jobs = ref (Simrt.Pool.default_jobs ())

let use_disk_cache = ref true

let check = ref false

let perf = ref false

(* --sched NAME: run the whole artefact sweep under a schedule scenario.
   Scenario runs use distinct Suite_cache shard keys (the profile is part of
   the config digest), so they never collide with symmetric results. *)
let sched_profile = ref Sched.Profile.symmetric

(* --pdes / --pdes-window N: run every simulation under the windowed
   conservative PDES engine driver (bit-identical output; run_suite bypasses
   the shard cache so the driver actually executes). *)
let pdes : Machine.Pdes.t option ref = ref None

(* --only W1,W2: restrict the suite sweep to the named workloads. This is
   how bench/paper_smoke.sh keeps a paper-sized (--paper) timing run
   affordable on a small host; figures derived from a restricted suite only
   contain the selected rows. *)
let only_workloads : Machine.Workload.t list option ref = ref None

(* The suite is computed once per process and reused by every figure
   (in-memory cache), and additionally memoised on disk per (config,
   workload, seed) shard (Suite_cache) so that subsequent invocations of the
   executable only re-simulate what changed. A --check run bypasses the disk
   cache in both directions: a hit would skip the oracle, and a checked
   result is no more reusable than an unchecked one. *)
let suite_cache : Experiments.suite option ref = ref None

let get_suite opts =
  match !suite_cache with
  | Some s -> s
  | None ->
      let use_cache = !use_disk_cache && not !check in
      let n_workloads =
        List.length (match !only_workloads with Some l -> l | None -> Workloads.Registry.all)
      in
      progress
        (Printf.sprintf
           "running full suite (4 configs x %d benchmarks x retry sweep) on %d domain(s)%s%s..."
           n_workloads !jobs
           (if !check then " with the execution oracle" else "")
           (if use_cache then ", shard cache on" else ""));
      let t0 = Unix.gettimeofday () in
      let s =
        Experiments.run_suite ~jobs:!jobs ~check:!check ~cache:use_cache ?pdes:!pdes
          ?workloads:!only_workloads ~progress opts
      in
      progress (Printf.sprintf "suite done in %.1f s" (Unix.gettimeofday () -. t0));
      suite_cache := Some s;
      s

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5) *)

let ablation_workloads () =
  [ Workloads.Mwobject.workload; Workloads.Bitcoin.workload; Workloads.Bst.workload ]

let ablation opts =
  let base = Experiments.config_of_letter opts "C" in
  let variants =
    [
      ("CLEAR", base);
      ("no failed-mode discovery", { base with Config.failed_mode_discovery = false });
      ("no CRT read locking", { base with Config.use_crt = false });
      ("no CRT decay", { base with Config.crt_decay = false });
      ("baseline (no CLEAR)", { base with Config.clear_enabled = false });
    ]
  in
  let t =
    Table.create ~title:"Ablation: CLEAR design choices (cycles, conversions)"
      ~columns:[ "Benchmark"; "Variant"; "Cycles"; "Aborts/commit"; "NS-CL+S-CL share"; "Fallback share" ]
  in
  List.iter
    (fun (w : Machine.Workload.t) ->
      List.iter
        (fun (label, cfg) ->
          let m =
            Run.measure ~jobs:!jobs ~check:!check cfg w ~seeds:opts.Experiments.seeds
              ~trim:opts.Experiments.trim
          in
          let mode m' = List.assoc m' m.Run.commit_mode_fractions in
          Table.add_row t
            [
              w.name;
              label;
              Printf.sprintf "%.0f" m.Run.cycles;
              Table.f2 m.Run.aborts_per_commit;
              Table.pct (mode Stats.Scl +. mode Stats.Nscl);
              Table.pct (mode Stats.Fallback_mode);
            ])
        variants;
      Table.add_separator t)
    (ablation_workloads ());
  t

(* ------------------------------------------------------------------ *)
(* Extension: HTM vs SLE front-ends (paper §4.1/§4.3 describe CLEAR for
   both; the paper evaluates HTM only). *)

let sle_comparison opts =
  let t =
    Table.create
      ~title:"Extension: speculation front-ends (cycles; SLE fallback takes the region's own lock)"
      ~columns:[ "Benchmark"; "B/HTM"; "B/SLE"; "W/HTM"; "W/SLE" ]
  in
  let workloads = [ "hashmap"; "kmeans-h"; "vacation-h"; "ssca2"; "bitcoin"; "stack" ] in
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let cell letter frontend =
        let cfg = Config.with_frontend (Experiments.config_of_letter opts letter) frontend in
        let m =
          Run.measure ~jobs:!jobs ~check:!check cfg w ~seeds:opts.Experiments.seeds
            ~trim:opts.Experiments.trim
        in
        Printf.sprintf "%.0f" m.Run.cycles
      in
      Table.add_row t
        [
          name;
          cell "B" Config.Htm;
          cell "B" Config.Sle;
          cell "W" Config.Htm;
          cell "W" Config.Sle;
        ])
    workloads;
  t

(* ------------------------------------------------------------------ *)

let csv_dir : string option ref = ref None

(* Print the table; also export it as CSV when --csv DIR was given. *)
let emit name t =
  Table.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      Report.Csv.save ~path t;
      Printf.eprintf "[bench] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core structures and the simulator. *)

let bechamel_tests () =
  let open Bechamel in
  let alt_test =
    Test.make ~name:"alt:record+prepare (32 lines)"
      (Staged.stage (fun () ->
           let alt = Clear.Alt.create ~capacity:32 ~dir_set_of:(fun l -> l land 1023) () in
           for i = 0 to 31 do
             ignore (Clear.Alt.record alt (i * 17) ~written:(i land 1 = 0))
           done;
           Clear.Alt.prepare_locking alt ~lock_all:false ~extra:(fun _ -> false);
           Clear.Alt.lock_groups alt))
  in
  let ert_test =
    Test.make ~name:"ert:lookup_or_insert (64 pcs, 16 entries)"
      (Staged.stage (fun () ->
           let ert = Clear.Ert.create () in
           for pc = 0 to 63 do
             ignore (Clear.Ert.lookup_or_insert ert ~pc)
           done))
  in
  let cache_test =
    Test.make ~name:"cache:insert sweep (1024 lines)"
      (Staged.stage (fun () ->
           let c = Mem.Cache.create ~sets:64 ~ways:12 in
           for l = 0 to 1023 do
             ignore (Mem.Cache.insert c l)
           done))
  in
  let analysis_test =
    let ars = (Workloads.Registry.find "bayes").Machine.Workload.ars in
    Test.make ~name:"analysis:classify bayes (14 ARs)"
      (Staged.stage (fun () -> ignore (Clear.Analysis.classify_workload ars)))
  in
  let engine_test =
    let cfg =
      { Config.clear_power with Config.cores = 4; ops_per_thread = 20; memory_words = 1 lsl 20 }
    in
    Test.make ~name:"engine:4 cores x 20 ops of bitcoin"
      (Staged.stage (fun () -> ignore (Machine.Engine.run_workload cfg Workloads.Bitcoin.workload)))
  in
  [ alt_test; ert_test; cache_test; analysis_test; engine_test ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:(Some 500) () in
  let tests = bechamel_tests () in
  let t = Table.create ~title:"Bechamel micro-benchmarks" ~columns:[ "Test"; "ns/run" ] in
  List.iter
    (fun test ->
      List.iter
        (fun (name, result) ->
          let estimate =
            try
              let a =
                Analyze.one (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
                  Instance.monotonic_clock result
              in
              match Analyze.OLS.estimates a with Some [ e ] -> e | Some _ | None -> nan
            with _ -> nan
          in
          (* Report failed estimates explicitly rather than printing "nan". *)
          let cell =
            if Float.is_nan estimate then "n/a (no estimate)" else Printf.sprintf "%.0f" estimate
          in
          Table.add_row t [ name; cell ])
        (* Sort by the test-name key only: Bechamel result values contain
           abstract structures for which polymorphic compare is meaningless. *)
        (Benchmark.all cfg instances test |> Hashtbl.to_seq |> List.of_seq
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)))
    tests;
  emit "micro" t

(* Hot-path counter dump: a small fixed sweep, run sequentially in-process so
   the counters aggregate in one place (domains would each own a private
   engine and the numbers would need plumbing back). *)
let run_perf opts =
  let total = Simrt.Perfctr.create () in
  let ws = match !only_workloads with Some l -> l | None -> ablation_workloads () in
  List.iter
    (fun (w : Machine.Workload.t) ->
      List.iter
        (fun letter ->
          let cfg = Experiments.config_of_letter opts letter in
          List.iter
            (fun seed ->
              let eng = Machine.Engine.create (Config.with_seed cfg seed) w in
              ignore (Machine.Engine.run ?pdes:!pdes eng : Stats.t);
              Simrt.Perfctr.merge_into ~dst:total (Machine.Engine.perfctr eng))
            opts.Experiments.seeds)
        [ "B"; "P"; "C"; "W" ])
    ws;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Engine hot-path counters (%d workloads x 4 configs x seeds, %s)"
           (List.length ws)
           (match !pdes with None -> "sequential" | Some p -> Machine.Pdes.describe p))
      ~columns:[ "Counter"; "Total" ]
  in
  List.iter (fun (n, v) -> Table.add_row t [ n; string_of_int v ]) (Simrt.Perfctr.to_list total);
  emit "perf" t;
  List.iter (fun (n, v) -> Printf.printf "perfctr %s %d\n" n v) (Simrt.Perfctr.to_list total)

let artefacts opts =
  [
    ("table1", fun () -> emit "table1" (Experiments.table1 ()));
    ("table2", fun () -> emit "table2" (Experiments.table2 opts));
    ("fig1", fun () -> emit "fig1" (Experiments.fig1 (get_suite opts)));
    ("fig8", fun () ->
        emit "fig8" (Experiments.fig8 (get_suite opts));
        emit "fig8_discovery" (Experiments.fig8_discovery (get_suite opts)));
    ("fig9", fun () -> emit "fig9" (Experiments.fig9 (get_suite opts)));
    ("fig10", fun () -> emit "fig10" (Experiments.fig10 (get_suite opts)));
    ("fig11", fun () -> emit "fig11" (Experiments.fig11 (get_suite opts)));
    ("fig12", fun () -> emit "fig12" (Experiments.fig12 (get_suite opts)));
    ("fig13", fun () -> emit "fig13" (Experiments.fig13 (get_suite opts)));
    ("headline", fun () -> emit "headline" (Experiments.headline (get_suite opts)));
    ("ablation", fun () -> emit "ablation" (ablation opts));
    ("sle", fun () -> emit "sle" (sle_comparison opts));
    ("storage", fun () ->
        let t =
          Table.create ~title:"Storage overhead per core (paper S5: 988.5 bytes)"
            ~columns:[ "Structure"; "Paper"; "Computed" ]
        in
        let b = Clear.Storage.paper in
        Table.add_row t [ "indirection bits (180 pregs)"; "22.5 B"; Printf.sprintf "%.1f B" b.Clear.Storage.indirection_bytes ];
        Table.add_row t [ "ERT (16 entries)"; "146 B"; Printf.sprintf "%.1f B" b.Clear.Storage.ert_bytes ];
        Table.add_row t [ "ALT (32 entries)"; "276 B"; Printf.sprintf "%.1f B" b.Clear.Storage.alt_bytes ];
        Table.add_row t [ "CRT (64 entries)"; "544 B"; Printf.sprintf "%.1f B" b.Clear.Storage.crt_bytes ];
        Table.add_separator t;
        Table.add_row t [ "total"; "988.5 B"; Printf.sprintf "%.1f B" b.Clear.Storage.total_bytes ];
        emit "storage" t);
    ("micro", fun () -> run_bechamel ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let paper = List.mem "--paper" args in
  let smoke = List.mem "--smoke" args in
  let opts =
    if smoke then smoke_suite_options
    else if paper then Experiments.default_options
    else quick_suite_options
  in
  let rec strip_flags acc = function
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        strip_flags acc rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n -> jobs := Simrt.Pool.clamp_jobs ~context:"bench" n
        | None ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 2);
        strip_flags acc rest
    | "--pdes" :: rest ->
        if !pdes = None then pdes := Some Machine.Pdes.unbounded;
        strip_flags acc rest
    | "--pdes-window" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> pdes := Some (Machine.Pdes.windowed n)
        | Some _ | None ->
            Printf.eprintf "--pdes-window expects a positive integer, got %s\n" n;
            exit 2);
        strip_flags acc rest
    | "--perf" :: rest ->
        perf := true;
        strip_flags acc rest
    | "--no-cache" :: rest ->
        use_disk_cache := false;
        strip_flags acc rest
    | "--check" :: rest ->
        check := true;
        strip_flags acc rest
    | "--sched" :: name :: rest ->
        (match Sched.Scenarios.find (String.lowercase_ascii name) with
        | Some p -> sched_profile := p
        | None ->
            Printf.eprintf "--sched expects one of %s, got %s\n"
              (String.concat ", " Sched.Scenarios.names) name;
            exit 2);
        strip_flags acc rest
    | "--only" :: names :: rest ->
        let picked =
          String.split_on_char ',' names
          |> List.map (fun n ->
                 let n = String.trim n in
                 match Workloads.Registry.find n with
                 | w -> w
                 | exception Not_found ->
                     Printf.eprintf "--only: unknown workload %s; available: %s\n" n
                       (String.concat " " Workloads.Registry.names);
                     exit 2)
        in
        only_workloads := Some picked;
        strip_flags acc rest
    | a :: rest -> strip_flags (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_flags [] args in
  let opts = { opts with Experiments.sched = !sched_profile } in
  if not (Sched.Profile.is_symmetric !sched_profile) then
    progress
      (Printf.sprintf "schedule scenario: %s (%s)" !sched_profile.Sched.Profile.name
         !sched_profile.Sched.Profile.description);
  let wanted = List.filter (fun a -> a <> "--paper" && a <> "--smoke") args in
  let wanted =
    if wanted = [] && !perf then [] (* --perf alone: just the counter dump *)
    else if wanted = [] || List.mem "all" wanted then List.map fst (artefacts opts)
    else wanted
  in
  let available = artefacts opts in
  List.iter
    (fun name ->
      match List.assoc_opt name available with
      | Some f ->
          f ();
          print_newline ()
      | None ->
          Printf.eprintf "unknown artefact %s; available: %s\n" name
            (String.concat " " (List.map fst available));
          exit 2)
    wanted;
  if !perf then run_perf opts
