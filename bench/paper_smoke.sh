#!/usr/bin/env sh
# Paper-protocol timing smoke test (ROADMAP "paper-sized sweep as a routine
# artefact").
#
# Times the paper-sized protocol (bench/main.exe --paper: 32 cores, 300
# ops/thread, 10 seeds trimmed by 3, retries 1..10) twice on top of the
# sharded suite cache — once cache-cold (shards dropped first) and once
# cache-warm — verifies the two outputs are byte-identical (a cache hit must
# never change a figure), and records both wall times in BENCH_paper.json.
#
# The full 19-benchmark protocol is close to an hour of simulation on a
# single-core host, so by default the sweep is restricted to one benchmark
# (--only arrayswap, ~400 paper-sized simulations) and to the artefacts that
# are derived from the shared suite; that is enough to time the protocol's
# machinery (sweep, shard cache, figure generation) every CI run.
#   PAPER_SMOKE_ONLY=w1,w2   restrict to different benchmarks
#   PAPER_SMOKE_FULL=1       the real thing: every benchmark, every artefact
#
# The cold wall time is a soft gate: drifting more than 25% over the
# committed BENCH_paper.json produces a CI-annotation-style warning, never a
# failure (the protocol legitimately gets slower when the model grows).
# Output identity cold-vs-warm is a hard failure.
#
# Usage: sh bench/paper_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe 2>&1
BIN=_build/default/bench/main.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

PAR_JOBS=$HOST_CORES
[ "$PAR_JOBS" -gt 4 ] && PAR_JOBS=4
[ "$PAR_JOBS" -lt 1 ] && PAR_JOBS=1

ONLY="${PAPER_SMOKE_ONLY:-arrayswap}"
if [ "${PAPER_SMOKE_FULL:-0}" = "1" ]; then
  RESTRICT=""
  ARTEFACTS="all"
  SCOPE="full protocol: 19 benchmarks, all artefacts"
else
  RESTRICT="--only $ONLY"
  # The suite-driven artefacts share one sweep; ablation/sle/micro run their
  # own paper-sized side sweeps and stay out of the CI-sized timing.
  ARTEFACTS="table1 table2 fig1 fig8 fig9 fig10 fig11 fig12 fig13 headline storage"
  SCOPE="restricted to $ONLY, suite-driven artefacts"
fi

now_ms() {
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

run_timed() { # $1 = output file; prints elapsed ms
  start=$(now_ms)
  # shellcheck disable=SC2086
  "$BIN" --paper --jobs "$PAR_JOBS" $RESTRICT $ARTEFACTS >"$1" 2>/dev/null
  end=$(now_ms)
  echo "$((end - start))"
}

OUT_COLD=$(mktemp) OUT_WARM=$(mktemp)
trap 'rm -f "$OUT_COLD" "$OUT_WARM"' EXIT

# Cache-cold: drop every shard so the first run really simulates. The other
# smoke scripts bypass the cache (--no-cache), so nothing else depends on
# the shards being there.
rm -f _cache/shard-*.bin 2>/dev/null || true

echo "[paper_smoke] cache-cold paper run ($SCOPE, --jobs $PAR_JOBS)..."
MS_COLD=$(run_timed "$OUT_COLD")
echo "[paper_smoke] cache-warm paper run..."
MS_WARM=$(run_timed "$OUT_WARM")

if ! cmp -s "$OUT_COLD" "$OUT_WARM"; then
  echo "[paper_smoke] FAIL: cache-warm run changed the artefacts" >&2
  diff "$OUT_COLD" "$OUT_WARM" >&2 || true
  exit 1
fi
echo "[paper_smoke] artefacts identical cache-cold vs cache-warm"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $MS_COLD / ($MS_WARM == 0 ? 1 : $MS_WARM) }")

# Soft drift gate on the cold wall time, against the committed numbers.
if [ -f BENCH_paper.json ]; then
  OLD_COLD=$(sed -n 's/.*"cold_wall_ms": \([0-9][0-9]*\),.*/\1/p' BENCH_paper.json | head -n 1)
  if [ -n "$OLD_COLD" ] && [ "$OLD_COLD" -gt 0 ]; then
    awk "BEGIN {
      pct = 100.0 * ($MS_COLD - $OLD_COLD) / $OLD_COLD
      if (pct > 25 || pct < -25)
        printf \"::warning ::paper protocol cold wall time drifted %+.1f%% (%d ms -> %d ms)\n\", pct, $OLD_COLD, $MS_COLD
    }"
  fi
fi

cat >BENCH_paper.json <<EOF
{
  "protocol": "--paper (32 cores, 300 ops, 10 seeds trim 3, retries 1..10); $SCOPE",
  "host_cores": $HOST_CORES,
  "parallel_jobs": $PAR_JOBS,
  "cold_wall_ms": $MS_COLD,
  "warm_wall_ms": $MS_WARM,
  "warm_speedup": $SPEEDUP,
  "outputs_identical": true
}
EOF

echo "[paper_smoke] cold: ${MS_COLD} ms   warm: ${MS_WARM} ms   cache speedup: ${SPEEDUP}x (host has ${HOST_CORES} core(s))"
echo "[paper_smoke] wrote BENCH_paper.json"
