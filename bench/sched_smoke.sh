#!/usr/bin/env sh
# Schedule-scenario smoke test.
#
# Runs the scheduler scenario sweep (clear_sim sched: every registered
# scenario x the four presets x three seeds, with the four-oracle execution
# check on every simulation) and saves the machine-readable results as
# BENCH_sched.json so the contention axis is tracked across PRs.
#
# Two hard gates:
#   - every (scenario, config, seed) simulation must pass all oracles
#     (clear_sim sched --check exits non-zero on the first violation);
#   - at least 2 of the non-symmetric scenarios must shift the retry mix
#     materially (|one-retry| or |fallback| share moved >= 0.05) versus the
#     symmetric baseline — otherwise the scheduling axis has stopped doing
#     anything and the sweep is vacuous.
#
# Usage: sh bench/sched_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bin/clear_sim.exe 2>&1
BIN=_build/default/bin/clear_sim.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

# Same clamp as the other smoke scripts: domains beyond the host's cores
# only add scheduling overhead.
PAR_JOBS=$HOST_CORES
[ "$PAR_JOBS" -gt 4 ] && PAR_JOBS=4
[ "$PAR_JOBS" -lt 1 ] && PAR_JOBS=1

echo "[sched_smoke] scenario sweep with the execution oracle (--check, --jobs $PAR_JOBS)..."
"$BIN" sched --json --check --jobs "$PAR_JOBS" >BENCH_sched.json

# The sweep must be jobs-invariant: a sequential run has to produce the
# same JSON byte for byte.
if [ "$PAR_JOBS" -gt 1 ]; then
  SEQ=$(mktemp)
  trap 'rm -f "$SEQ"' EXIT
  "$BIN" sched --json --check --jobs 1 >"$SEQ"
  if ! cmp -s BENCH_sched.json "$SEQ"; then
    echo "[sched_smoke] FAIL: --jobs 1 and --jobs $PAR_JOBS sweeps differ" >&2
    diff BENCH_sched.json "$SEQ" >&2 || true
    exit 1
  fi
  echo "[sched_smoke] sweep identical across job counts"
fi

SHIFTED=$(sed -n 's/.*"materially_different": \([0-9][0-9]*\),.*/\1/p' BENCH_sched.json | head -n 1)
if [ -z "$SHIFTED" ]; then
  echo "[sched_smoke] FAIL: could not read materially_different from BENCH_sched.json" >&2
  exit 1
fi
if [ "$SHIFTED" -lt 2 ]; then
  echo "[sched_smoke] FAIL: only $SHIFTED scenario(s) shift the retry mix materially (need >= 2)" >&2
  exit 1
fi

echo "[sched_smoke] all scenarios oracle-clean; $SHIFTED scenarios shift the retry mix materially"
echo "[sched_smoke] wrote BENCH_sched.json"
