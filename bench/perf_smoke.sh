#!/usr/bin/env sh
# Perf smoke test for the parallel suite runner.
#
# Runs the tiny fixed suite (bench/main.exe --smoke fig8) once sequentially
# and once on 4 domains, verifies the two outputs are byte-identical (the
# determinism guarantee), and records both wall-clock times in
# BENCH_suite.json so the perf trajectory is tracked across PRs.
#
# The disk cache is bypassed (--no-cache) so both runs actually compute.
# On hosts with >= 4 real cores the jobs-4 run should be >= 2x faster; on
# smaller hosts the JSON still records the honest numbers together with the
# host core count.
#
# Usage: sh bench/perf_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe 2>&1
BIN=_build/default/bench/main.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

now_ms() {
  # POSIX date has no sub-second precision; prefer %N when GNU date is there.
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

run_timed() { # $1 = jobs, $2 = output file; prints elapsed ms
  start=$(now_ms)
  "$BIN" --smoke --no-cache --jobs "$1" fig8 >"$2" 2>/dev/null
  end=$(now_ms)
  echo "$((end - start))"
}

OUT1=$(mktemp) OUT4=$(mktemp)
trap 'rm -f "$OUT1" "$OUT4"' EXIT

echo "[perf_smoke] sequential run (--jobs 1)..."
MS1=$(run_timed 1 "$OUT1")
echo "[perf_smoke] parallel run (--jobs 4)..."
MS4=$(run_timed 4 "$OUT4")

if ! cmp -s "$OUT1" "$OUT4"; then
  echo "[perf_smoke] FAIL: --jobs 1 and --jobs 4 outputs differ" >&2
  diff "$OUT1" "$OUT4" >&2 || true
  exit 1
fi
echo "[perf_smoke] outputs identical across job counts"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $MS1 / ($MS4 == 0 ? 1 : $MS4) }")

cat >BENCH_suite.json <<EOF
{
  "suite": "smoke-fig8 (4 configs x 19 benchmarks, 4 cores, 40 ops, 2 seeds, retries [2,5])",
  "host_cores": $HOST_CORES,
  "jobs1_wall_ms": $MS1,
  "jobs4_wall_ms": $MS4,
  "speedup_jobs4_over_jobs1": $SPEEDUP,
  "outputs_identical": true
}
EOF

echo "[perf_smoke] jobs=1: ${MS1} ms   jobs=4: ${MS4} ms   speedup: ${SPEEDUP}x (host has ${HOST_CORES} core(s))"
echo "[perf_smoke] wrote BENCH_suite.json"
