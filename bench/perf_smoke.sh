#!/usr/bin/env sh
# Perf smoke test for the suite runner.
#
# Runs the tiny fixed suite (bench/main.exe --smoke fig8) once sequentially
# and once on min(4, host cores) domains, verifies the two outputs are
# byte-identical (the determinism guarantee), and records both wall-clock
# times plus the engine's hot-path counters (--perf) in BENCH_suite.json so
# the perf trajectory is tracked across PRs.
#
# On a host with fewer than 2 cores there is nothing parallel to measure:
# the "parallel" run is the sequential run again and the JSON says so
# (speedup null, parallel_meaningful false) instead of reporting a bogus
# slowdown from domain overhead.
#
# The disk cache is bypassed (--no-cache) so both runs actually compute.
#
# Usage: sh bench/perf_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe 2>&1
BIN=_build/default/bench/main.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

# Clamp the parallel run to what the host can actually parallelise.
PAR_JOBS=$HOST_CORES
[ "$PAR_JOBS" -gt 4 ] && PAR_JOBS=4
[ "$PAR_JOBS" -lt 1 ] && PAR_JOBS=1

now_ms() {
  # POSIX date has no sub-second precision; prefer %N when GNU date is there.
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

run_timed() { # $1 = jobs, $2 = output file; prints elapsed ms
  start=$(now_ms)
  "$BIN" --smoke --no-cache --jobs "$1" fig8 >"$2" 2>/dev/null
  end=$(now_ms)
  echo "$((end - start))"
}

OUT1=$(mktemp) OUTN=$(mktemp)
trap 'rm -f "$OUT1" "$OUTN"' EXIT

echo "[perf_smoke] sequential run (--jobs 1)..."
MS1=$(run_timed 1 "$OUT1")
echo "[perf_smoke] parallel run (--jobs $PAR_JOBS)..."
MSN=$(run_timed "$PAR_JOBS" "$OUTN")

if ! cmp -s "$OUT1" "$OUTN"; then
  echo "[perf_smoke] FAIL: --jobs 1 and --jobs $PAR_JOBS outputs differ" >&2
  diff "$OUT1" "$OUTN" >&2 || true
  exit 1
fi
echo "[perf_smoke] outputs identical across job counts"

echo "[perf_smoke] hot-path counters (--perf)..."
PERF_RAW=$("$BIN" --smoke --perf 2>/dev/null | awk '/^perfctr / { print $2, $3 }')
PERF_JSON=$(printf '%s\n' "$PERF_RAW" | awk '
  { printf "%s    \"%s\": %s", sep, $1, $2; sep = ",\n" }
  END { print "" }')

# Soft drift gate: compare the fresh counters against the committed
# BENCH_suite.json before overwriting it. A counter moving more than 10%
# in either direction gets a CI-annotation-style warning line; the script
# never fails on drift (counters legitimately move when the engine changes —
# the warning just makes the move visible in the PR).
if [ -f BENCH_suite.json ]; then
  OLD_PERF=$(awk -F'"' '/^    "/ { name = $2; val = $3; gsub(/[^0-9]/, "", val);
                                   if (val != "") print name, val }' BENCH_suite.json)
  printf '%s\n' "$PERF_RAW" | awk -v old_perf="$OLD_PERF" '
    BEGIN {
      n = split(old_perf, lines, "\n")
      for (i = 1; i <= n; i++) { split(lines[i], f, " "); old[f[1]] = f[2] }
    }
    {
      name = $1; new = $2 + 0
      if (name in old && old[name] + 0 > 0) {
        o = old[name] + 0
        pct = 100.0 * (new - o) / o
        if (pct > 10 || pct < -10)
          printf "::warning ::perfctr %s drifted %+.1f%% (%d -> %d)\n", name, pct, o, new
      }
    }'
fi

if [ "$HOST_CORES" -ge 2 ]; then
  SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $MS1 / ($MSN == 0 ? 1 : $MSN) }")
  MEANINGFUL=true
  SUMMARY="speedup: ${SPEEDUP}x"
else
  # One core: both runs are sequential, a "speedup" would be noise.
  SPEEDUP=null
  MEANINGFUL=false
  SUMMARY="speedup: n/a (single-core host)"
fi

cat >BENCH_suite.json <<EOF
{
  "suite": "smoke-fig8 (4 configs x 19 benchmarks, 4 cores, 40 ops, 2 seeds, retries [2,5])",
  "host_cores": $HOST_CORES,
  "parallel_jobs": $PAR_JOBS,
  "parallel_meaningful": $MEANINGFUL,
  "jobs1_wall_ms": $MS1,
  "jobsN_wall_ms": $MSN,
  "speedup_jobsN_over_jobs1": $SPEEDUP,
  "outputs_identical": true,
  "perfctr": {
$PERF_JSON  }
}
EOF

echo "[perf_smoke] jobs=1: ${MS1} ms   jobs=$PAR_JOBS: ${MSN} ms   $SUMMARY (host has ${HOST_CORES} core(s))"
echo "[perf_smoke] wrote BENCH_suite.json"
