#!/usr/bin/env sh
# Oracle-overhead smoke test.
#
# Runs the tiny fixed suite (bench/main.exe --smoke fig8) once plain and once
# with the execution oracle enabled (--check: witness capture + commit-order
# serializability + sequential replay + lock safety on every simulation),
# verifies the two tables are byte-identical (the oracle must not perturb the
# simulation), and records both wall-clock times in BENCH_check.json so the
# validation overhead is tracked across PRs.
#
# The disk cache is bypassed in both runs (--no-cache; --check bypasses it
# anyway) so both actually compute.
#
# Usage: sh bench/check_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe 2>&1
BIN=_build/default/bench/main.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

# Same clamp as perf_smoke.sh: domains beyond the host's cores only add
# scheduling overhead to both sides of the comparison.
PAR_JOBS=$HOST_CORES
[ "$PAR_JOBS" -gt 4 ] && PAR_JOBS=4
[ "$PAR_JOBS" -lt 1 ] && PAR_JOBS=1

now_ms() {
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

run_timed() { # $1 = extra flag or empty, $2 = output file; prints elapsed ms
  start=$(now_ms)
  # shellcheck disable=SC2086
  "$BIN" --smoke --no-cache --jobs "$PAR_JOBS" $1 fig8 >"$2" 2>/dev/null
  end=$(now_ms)
  echo "$((end - start))"
}

OUT_PLAIN=$(mktemp) OUT_CHECK=$(mktemp)
trap 'rm -f "$OUT_PLAIN" "$OUT_CHECK"' EXIT

echo "[check_smoke] plain run..."
MS_PLAIN=$(run_timed "" "$OUT_PLAIN")
echo "[check_smoke] checked run (--check)..."
MS_CHECK=$(run_timed "--check" "$OUT_CHECK")

if ! cmp -s "$OUT_PLAIN" "$OUT_CHECK"; then
  echo "[check_smoke] FAIL: --check changed the measured results" >&2
  diff "$OUT_PLAIN" "$OUT_CHECK" >&2 || true
  exit 1
fi
echo "[check_smoke] outputs identical with and without the oracle"

OVERHEAD=$(awk "BEGIN { printf \"%.2f\", $MS_CHECK / ($MS_PLAIN == 0 ? 1 : $MS_PLAIN) }")

cat >BENCH_check.json <<EOF
{
  "suite": "smoke-fig8 (4 configs x 19 benchmarks, 4 cores, 40 ops, 2 seeds, retries [2,5])",
  "host_cores": $HOST_CORES,
  "parallel_jobs": $PAR_JOBS,
  "plain_wall_ms": $MS_PLAIN,
  "checked_wall_ms": $MS_CHECK,
  "check_overhead_factor": $OVERHEAD,
  "outputs_identical": true,
  "oracles": ["serializability", "sequential replay", "lock safety"]
}
EOF

echo "[check_smoke] plain: ${MS_PLAIN} ms   checked: ${MS_CHECK} ms   overhead: ${OVERHEAD}x (host has ${HOST_CORES} core(s))"
echo "[check_smoke] wrote BENCH_check.json"
