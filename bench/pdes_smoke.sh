#!/usr/bin/env sh
# PDES smoke test: determinism hard gate + wall-clock tracking.
#
# Runs the tiny fixed suite (bench/main.exe --smoke fig8) under the default
# sequential event loop and under the windowed conservative PDES driver
# (--pdes, and --pdes-window 64), and:
#
#   1. HARD GATE: all outputs must be byte-identical. The PDES driver is
#      only allowed to change wall-clock time, never simulated results.
#   2. HARD GATE: the PDES runs must not be more than 5% (plus a small
#      absolute slack for timer noise on sub-second runs) slower than the
#      sequential run — lookahead bookkeeping must pay for itself.
#   3. HARD GATE: bst must take extended-burst events (pdes_ext_events > 0)
#      under --pdes — pointer-chasing footprints never enumerate exactly,
#      so this pins the cover and phase-window insulation arms as live.
#   4. Records min-of-3 wall times and the PDES perf counters in
#      BENCH_pdes.json so the trajectory is tracked across PRs.
#
# On this repo's usual 1-core CI host the PDES driver cannot show a
# parallel win (it is single-domain event batching; the win is fewer heap
# operations and is small). The JSON says so honestly: parallel_meaningful
# is false on single-core hosts, and the speedup field compares event-loop
# overhead only.
#
# Usage: sh bench/pdes_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe 2>&1
BIN=_build/default/bench/main.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

now_ms() {
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

run_once() { # $1 = extra flags, $2 = output file; prints elapsed ms
  start=$(now_ms)
  # shellcheck disable=SC2086  # $1 is deliberately word-split into flags
  "$BIN" --smoke --no-cache $1 fig8 >"$2" 2>/dev/null
  end=$(now_ms)
  echo "$((end - start))"
}

run_best_of_3() { # $1 = extra flags, $2 = output file; prints min elapsed ms
  best=$(run_once "$1" "$2")
  for _ in 1 2; do
    ms=$(run_once "$1" "$2")
    [ "$ms" -lt "$best" ] && best=$ms
  done
  echo "$best"
}

OUT_SEQ=$(mktemp) OUT_INF=$(mktemp) OUT_W64=$(mktemp)
trap 'rm -f "$OUT_SEQ" "$OUT_INF" "$OUT_W64"' EXIT

echo "[pdes_smoke] sequential event loop (best of 3)..."
MS_SEQ=$(run_best_of_3 "" "$OUT_SEQ")
echo "[pdes_smoke] pdes, unbounded windows (best of 3)..."
MS_INF=$(run_best_of_3 "--pdes" "$OUT_INF")
echo "[pdes_smoke] pdes, window 64 (best of 3)..."
MS_W64=$(run_best_of_3 "--pdes-window 64" "$OUT_W64")

# Gate 1: bit identity. Non-negotiable.
for f in "$OUT_INF" "$OUT_W64"; do
  if ! cmp -s "$OUT_SEQ" "$f"; then
    echo "[pdes_smoke] FAIL: PDES output differs from the sequential engine" >&2
    diff "$OUT_SEQ" "$f" >&2 || true
    exit 1
  fi
done
echo "[pdes_smoke] outputs identical: sequential == pdes(inf) == pdes(64)"

# Gate 2: no wall-clock regression beyond 5% + 150 ms timer-noise slack.
LIMIT=$((MS_SEQ + (MS_SEQ / 20) + 150))
for pair in "inf $MS_INF" "w64 $MS_W64"; do
  name=${pair%% *} ms=${pair##* }
  if [ "$ms" -gt "$LIMIT" ]; then
    echo "[pdes_smoke] FAIL: pdes($name) took ${ms} ms vs sequential ${MS_SEQ} ms (limit ${LIMIT} ms)" >&2
    exit 1
  fi
done
echo "[pdes_smoke] wall clock within bounds: seq ${MS_SEQ} ms, pdes(inf) ${MS_INF} ms, pdes(64) ${MS_W64} ms"

echo "[pdes_smoke] PDES perf counters (--perf --pdes)..."
PERF_JSON=$("$BIN" --smoke --perf --pdes 2>/dev/null \
  | awk '/^perfctr / { printf "%s    \"%s\": %s", sep, $2, $3; sep = ",\n" } END { print "" }')

# Gate 3: a pointer-chasing workload must take extended bursts. Exact line
# enumeration always fails on bst (every walk can reach the whole node
# pool), so any extended burst here is justified only by the cover or
# phase-window insulation arms — this gate pins them as load-bearing.
echo "[pdes_smoke] extended-burst hard gate (bst, pointer-chasing)..."
EXT_BST=$("$BIN" --smoke --perf --pdes --only bst 2>/dev/null \
  | awk '/^perfctr pdes_ext_events / { print $3 }')
if [ "${EXT_BST:-0}" -le 0 ]; then
  echo "[pdes_smoke] FAIL: pdes_ext_events = ${EXT_BST:-0} on bst; the insulation arms no longer fire on pointer-chasing workloads" >&2
  exit 1
fi
echo "[pdes_smoke] bst took ${EXT_BST} extended-burst events"

if [ "$HOST_CORES" -ge 2 ]; then
  MEANINGFUL=true
else
  MEANINGFUL=false
fi
SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $MS_SEQ / ($MS_INF == 0 ? 1 : $MS_INF) }")

cat >BENCH_pdes.json <<EOF
{
  "suite": "smoke-fig8 under the windowed conservative PDES driver",
  "host_cores": $HOST_CORES,
  "parallel_meaningful": $MEANINGFUL,
  "note": "single-domain event batching; on a 1-core host the speedup field measures event-loop overhead only",
  "sequential_wall_ms": $MS_SEQ,
  "pdes_inf_wall_ms": $MS_INF,
  "pdes_w64_wall_ms": $MS_W64,
  "speedup_pdes_inf_over_sequential": $SPEEDUP,
  "outputs_identical": true,
  "pdes_ext_events_bst": $EXT_BST,
  "perfctr": {
$PERF_JSON  }
}
EOF

echo "[pdes_smoke] wrote BENCH_pdes.json"
