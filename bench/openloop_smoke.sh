#!/usr/bin/env sh
# Open-system smoke test: latency-vs-offered-load curve gates.
#
# Runs the default open-loop sweep (clear_sim openloop: arrayswap over
# 2^17 keys at Zipf theta 6, Poisson arrivals, 3000 requests per point,
# presets B and C at retries 1, offered loads 30/60/120 requests/kcycle)
# and enforces:
#
#   1. HARD GATE: the sweep is byte-identical at --jobs 1 and --jobs N
#      (same seed, any job count — the determinism contract).
#   2. HARD GATE: the oracle-checked lowest-load point of every preset is
#      clean (the CLI exits non-zero otherwise), and no curve point
#      reports an oracle failure.
#   3. HARD GATE: the curve has >= 3 load points for each of >= 2 presets,
#      every point reporting exact p50/p99/p999 sojourn percentiles.
#   4. HARD GATE: at the highest offered load the fallback-heavy baseline's
#      p99 sojourn exceeds CLEAR's — the tail separation the overload
#      figure exists to show.
#   5. SOFT GATE: any per-point p99 shifting more than 10% against the
#      committed BENCH_openloop.json gets a CI-annotation-style warning;
#      the script never fails on drift (tails legitimately move when the
#      engine changes — the warning makes the move visible in the PR).
#
# On a single-core host the --jobs N run is clamped to one domain, so the
# byte-identity check degenerates to a repeat-run check; the JSON says so
# (parallel_meaningful false) instead of implying a parallel result. The
# jobs>1 library path is exercised by test/test_openloop.ml regardless.
#
# Usage: sh bench/openloop_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bin/clear_sim.exe 2>&1
BIN=_build/default/bin/clear_sim.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)
PAR_JOBS=$HOST_CORES
[ "$PAR_JOBS" -gt 4 ] && PAR_JOBS=4
[ "$PAR_JOBS" -lt 1 ] && PAR_JOBS=1

now_ms() {
  t=$(date +%s%N 2>/dev/null)
  case "$t" in
    *N) echo "$(date +%s)000" ;;
    *) echo "$((t / 1000000))" ;;
  esac
}

OUT1=$(mktemp) OUTN=$(mktemp)
trap 'rm -f "$OUT1" "$OUTN"' EXIT

echo "[openloop_smoke] sweep, --jobs 1, oracle-checked at the lowest load..."
START=$(now_ms)
"$BIN" openloop --json --check --jobs 1 >"$OUT1" 2>/dev/null
MS=$(($(now_ms) - START))
echo "[openloop_smoke] sweep, --jobs $PAR_JOBS..."
"$BIN" openloop --json --check --jobs "$PAR_JOBS" >"$OUTN" 2>/dev/null

# Gate 1: bit identity across job counts.
if ! cmp -s "$OUT1" "$OUTN"; then
  echo "[openloop_smoke] FAIL: --jobs 1 and --jobs $PAR_JOBS sweeps differ" >&2
  diff "$OUT1" "$OUTN" >&2 || true
  exit 1
fi
echo "[openloop_smoke] sweeps identical across job counts"

# Gate 2: the CLI already exited non-zero on a checked-oracle failure;
# belt-and-braces, no point may carry a false verdict.
if grep -q '"oracle_ok": false' "$OUT1"; then
  echo "[openloop_smoke] FAIL: a curve point reports oracle_ok false" >&2
  exit 1
fi

# Flatten the curve: one "preset rate p50 p99 p999" line per point.
CURVE=$(awk '
  /"preset":/ { p = $2; gsub(/[",]/, "", p) }
  /"rate":/   { r = $2 + 0 }
  /"sojourn":/ { in_s = 1 }
  in_s && /"p50":/  { p50 = $2 + 0 }
  in_s && /"p99":/  { p99 = $2 + 0 }
  in_s && /"p999":/ { p999 = $2 + 0; in_s = 0; print p, r, p50, p99, p999 }
' "$OUT1")

# Gate 3: >= 3 load points for each of >= 2 presets, percentiles present.
printf '%s\n' "$CURVE" | awk '
  { seen[$1]++ }
  END {
    presets = 0
    for (p in seen) {
      presets++
      if (seen[p] < 3) { printf "only %d load point(s) for preset %s\n", seen[p], p; exit 1 }
    }
    if (presets < 2) { printf "only %d preset(s) in the curve\n", presets; exit 1 }
  }
' || { echo "[openloop_smoke] FAIL: curve shape gate" >&2; exit 1; }

# Gate 4: baseline p99 > CLEAR p99 at the highest offered load.
printf '%s\n' "$CURVE" | awk '
  $2 > peak { peak = $2 }
  { rate[NR] = $2; preset[NR] = $1; p99[NR] = $4; n = NR }
  END {
    for (i = 1; i <= n; i++)
      if (rate[i] == peak) tail[preset[i]] = p99[i]
    if (!("B" in tail) || !("C" in tail)) { print "peak row missing B or C"; exit 1 }
    if (tail["B"] <= tail["C"]) {
      printf "baseline p99 %d is not above CLEAR p99 %d at load %g\n", tail["B"], tail["C"], peak
      exit 1
    }
    printf "[openloop_smoke] tail gate: at load %g, B p99 %d > C p99 %d\n", peak, tail["B"], tail["C"]
  }
' || { echo "[openloop_smoke] FAIL: overload tail-separation gate" >&2; exit 1; }

# Gate 5 (soft): per-point p99 drift against the committed benchmark.
if [ -f BENCH_openloop.json ]; then
  # The committed curve keeps one-line entries; pick the fields out of each.
  OLD_CURVE=$(awk '
    /"preset":/ && /"p99":/ {
      match($0, /"preset": "[^"]*"/); p = substr($0, RSTART + 11, RLENGTH - 12)
      match($0, /"rate": [0-9.]+/);   r = substr($0, RSTART + 8, RLENGTH - 8) + 0
      match($0, /"p99": [0-9]+/);     v = substr($0, RSTART + 7, RLENGTH - 7) + 0
      print p, r, v
    }
  ' BENCH_openloop.json)
  printf '%s\n' "$CURVE" | awk -v old_curve="$OLD_CURVE" '
    BEGIN {
      n = split(old_curve, lines, "\n")
      for (i = 1; i <= n; i++) { split(lines[i], f, " "); old[f[1] "@" f[2]] = f[3] }
    }
    {
      key = $1 "@" $2; new = $4 + 0
      if (key in old && old[key] + 0 > 0) {
        o = old[key] + 0
        pct = 100.0 * (new - o) / o
        if (pct > 10 || pct < -10)
          printf "::warning ::openloop %s p99 at load %s drifted %+.1f%% (%d -> %d)\n", $1, $2, pct, o, new
      }
    }'
fi

if [ "$HOST_CORES" -ge 2 ]; then MEANINGFUL=true; else MEANINGFUL=false; fi

CURVE_JSON=$(printf '%s\n' "$CURVE" | awk '
  { printf "%s    { \"preset\": \"%s\", \"rate\": %s, \"p50\": %s, \"p99\": %s, \"p999\": %s }",
           sep, $1, $2, $3, $4, $5
    sep = ",\n" }
  END { print "" }')

TAIL_JSON=$(printf '%s\n' "$CURVE" | awk '
  $2 > peak { peak = $2 }
  { rate[NR] = $2; preset[NR] = $1; p99[NR] = $4; n = NR }
  END {
    for (i = 1; i <= n; i++) if (rate[i] == peak) tail[preset[i]] = p99[i]
    printf "{ \"load\": %s, \"baseline_p99\": %d, \"clear_p99\": %d }", peak, tail["B"], tail["C"]
  }')

cat >BENCH_openloop.json <<EOF
{
  "suite": "openloop sweep (arrayswap, 2^17 keys, zipf theta 6.0, poisson, 3000 requests/point, presets B/C at retries 1, loads 30/60/120 req/kcycle)",
  "host_cores": $HOST_CORES,
  "parallel_jobs": $PAR_JOBS,
  "parallel_meaningful": $MEANINGFUL,
  "outputs_identical": true,
  "oracle_clean": true,
  "wall_ms": $MS,
  "curve": [
$CURVE_JSON  ],
  "tail_gate_at_peak": $TAIL_JSON
}
EOF

echo "[openloop_smoke] sweep wall time: ${MS} ms (host has ${HOST_CORES} core(s))"
echo "[openloop_smoke] wrote BENCH_openloop.json"
