#!/usr/bin/env sh
# Streaming-checker smoke test: Check.Stream verdict-identity and memory
# gates (DESIGN.md §14).
#
#   1. HARD GATE: over the @ci check grid, `clear_sim check` with --stream
#      prints byte-identical reports to the post hoc oracles and exits 0.
#   2. HARD GATE: an injected conflict-detection bug (--fault-blind-line on
#      a line every attempt contends) makes BOTH paths exit non-zero with
#      byte-identical failure reports — streaming loses no detection power.
#   3. HARD GATE: a ~14 M-event open-loop point (500 000 requests at load
#      120) runs streamed-checked within 1.4x of unchecked CPU time (CPU,
#      not wall — under `dune build @ci` other rules time-slice the same
#      host), with every non-checker field of the JSON bit-identical to
#      the unchecked sweep (observation-only contract at open-system
#      scale).
#   4. HARD GATE: that point's peak live checker state (check_live_lines)
#      stays bounded (<= 4096 lines) while >= 10^7 events stream through
#      and entries retire behind the frontier (check_retired > 0) — the
#      O(live lines) memory claim, measured, not asserted.
#   5. SOFT GATE: streamed overhead or peak live lines drifting >10%
#      against the committed BENCH_streamcheck.json emits a CI-style
#      ::warning, never a failure.
#
# Writes BENCH_streamcheck.json.
#
# Usage: sh bench/streamcheck_smoke.sh   (from the repository root or bench/)

set -eu

cd "$(dirname "$0")/.."

dune build bin/clear_sim.exe 2>&1
BIN=_build/default/bin/clear_sim.exe

HOST_CORES=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)

OUT_A=$(mktemp) OUT_B=$(mktemp) OUT_PLAIN=$(mktemp) OUT_STREAM=$(mktemp)
STRIP_A=$(mktemp) STRIP_B=$(mktemp) TIMES_F=$(mktemp)
trap 'rm -f "$OUT_A" "$OUT_B" "$OUT_PLAIN" "$OUT_STREAM" "$STRIP_A" "$STRIP_B" "$TIMES_F"' EXIT

# ---------------------------------------------------------------- gate 1
# Post hoc and streaming verdicts byte-identical over the check grid.
GRID_POINTS=0
for point in "mwobject W" "labyrinth C" "stack B"; do
  w=${point% *} c=${point#* }
  "$BIN" check -w "$w" -c "$c" --cores 4 --ops 30 >"$OUT_A"
  "$BIN" check -w "$w" -c "$c" --cores 4 --ops 30 --stream >"$OUT_B"
  if ! cmp -s "$OUT_A" "$OUT_B"; then
    echo "[streamcheck_smoke] FAIL: --stream changed the $w/$c verdict report" >&2
    diff "$OUT_A" "$OUT_B" >&2 || true
    exit 1
  fi
  GRID_POINTS=$((GRID_POINTS + 1))
done
echo "[streamcheck_smoke] verdicts identical on $GRID_POINTS grid points"

# ---------------------------------------------------------------- gate 2
# The injected fault must fail BOTH paths with the same report. Line 8 is
# inside every mwobject attempt's footprint at this geometry, so blinding
# the conflict probe there loses updates the oracles must see.
FAULT_ARGS="check -w mwobject -c B --cores 8 --ops 80 --fault-blind-line 8"
set +e
# shellcheck disable=SC2086
"$BIN" $FAULT_ARGS >"$OUT_A" 2>&1; RC_POSTHOC=$?
# shellcheck disable=SC2086
"$BIN" $FAULT_ARGS --stream >"$OUT_B" 2>&1; RC_STREAM=$?
set -e
if [ "$RC_POSTHOC" -eq 0 ] || [ "$RC_STREAM" -eq 0 ]; then
  echo "[streamcheck_smoke] FAIL: injected fault not caught (posthoc rc=$RC_POSTHOC, stream rc=$RC_STREAM)" >&2
  exit 1
fi
if ! cmp -s "$OUT_A" "$OUT_B"; then
  echo "[streamcheck_smoke] FAIL: fault reports differ between paths" >&2
  diff "$OUT_A" "$OUT_B" >&2 || true
  exit 1
fi
echo "[streamcheck_smoke] injected fault caught identically by both paths"

# ---------------------------------------------------------------- gate 3
# Open-loop scale: unchecked vs streamed-checked, stats bit-identical and
# overhead bounded.
OPEN_ARGS="openloop --json --loads 120 --requests 500000 --jobs 1"

# The overhead ratio is measured in child CPU time, not wall time: under
# `dune build @ci` this rule shares the host with the other smoke rules,
# and on a single-core CI box their time-slicing would dominate a
# wall-clock ratio. `times` accumulates the shell's child CPU; snapshots
# go through a file because a command substitution would fork the builtin
# into a subshell with its own (empty) accounting — so `times` itself must
# run in the main shell and only the file parse may be substituted.
parse_times() { # child user+sys of the snapshot in $TIMES_F, in ms
  awk 'NR == 2 {
    for (i = 1; i <= 2; i++) {
      split($i, a, "m"); sub(/s/, "", a[2])
      ms += (a[1] * 60 + a[2]) * 1000
    }
    printf "%d\n", ms
  }' "$TIMES_F"
}

# Measured in alternating plain/stream PAIRS, keeping the pair with the
# lowest ratio: concurrent @ci rules pollute the cache between time
# slices and inflate even CPU accounting, but both members of one pair
# see near-identical ambient load, so the pairwise ratio stays honest
# where a one-shot (or per-side best-of-N) measurement does not.
echo "[streamcheck_smoke] open-loop point, plain vs --check --stream (best of 3 pairs)..."
MS_PLAIN="" MS_STREAM=""
times >"$TIMES_F"; PREV=$(parse_times)
for _ in 1 2 3; do
  # shellcheck disable=SC2086
  "$BIN" $OPEN_ARGS >"$OUT_PLAIN" 2>/dev/null
  times >"$TIMES_F"; CUR=$(parse_times)
  P=$((CUR - PREV)); PREV=$CUR
  # shellcheck disable=SC2086
  "$BIN" $OPEN_ARGS --check --stream >"$OUT_STREAM" 2>/dev/null
  times >"$TIMES_F"; CUR=$(parse_times)
  S=$((CUR - PREV)); PREV=$CUR
  [ "$P" -gt 0 ] || P=1
  if [ -z "$MS_PLAIN" ] || [ $((S * 1000 / P)) -lt $((MS_STREAM * 1000 / MS_PLAIN)) ]; then
    MS_PLAIN=$P MS_STREAM=$S
  fi
done

if grep -q '"oracle_ok": false' "$OUT_STREAM"; then
  echo "[streamcheck_smoke] FAIL: streamed open-loop point reports oracle_ok false" >&2
  exit 1
fi

# Everything outside the checker-reporting fields must be bit-identical.
CHECK_FIELDS='"checked"\|"stream"\|"oracle_ok"\|"check_live_lines"\|"check_retired"'
grep -v "$CHECK_FIELDS" "$OUT_PLAIN" >"$STRIP_A"
grep -v "$CHECK_FIELDS" "$OUT_STREAM" >"$STRIP_B"
if ! cmp -s "$STRIP_A" "$STRIP_B"; then
  echo "[streamcheck_smoke] FAIL: streaming perturbed the open-loop stats" >&2
  diff "$STRIP_A" "$STRIP_B" >&2 || true
  exit 1
fi
echo "[streamcheck_smoke] open-loop stats bit-identical with the streaming checker"

OVERHEAD=$(awk "BEGIN { printf \"%.2f\", $MS_STREAM / ($MS_PLAIN == 0 ? 1 : $MS_PLAIN) }")
if awk "BEGIN { exit !($OVERHEAD > 1.4) }"; then
  echo "[streamcheck_smoke] FAIL: streamed overhead ${OVERHEAD}x exceeds the 1.4x budget" >&2
  exit 1
fi

# ---------------------------------------------------------------- gate 4
# >= 10^7 events through a checker holding only a bounded live set.
EVENTS=$(awk '/"events":/ { v = $2 + 0; if (v > max) max = v } END { print max + 0 }' "$OUT_STREAM")
LIVE=$(awk '/"check_live_lines":/ { v = $2 + 0; if (v > max) max = v } END { print max + 0 }' "$OUT_STREAM")
RETIRED=$(awk '/"check_retired":/ { v = $2 + 0; if (v > max) max = v } END { print max + 0 }' "$OUT_STREAM")
if [ "$EVENTS" -lt 10000000 ]; then
  echo "[streamcheck_smoke] FAIL: point saw only $EVENTS events (< 10^7)" >&2
  exit 1
fi
if [ "$LIVE" -lt 1 ] || [ "$LIVE" -gt 4096 ]; then
  echo "[streamcheck_smoke] FAIL: peak live lines $LIVE outside (0, 4096]" >&2
  exit 1
fi
if [ "$RETIRED" -lt 1 ]; then
  echo "[streamcheck_smoke] FAIL: nothing retired behind the frontier" >&2
  exit 1
fi
echo "[streamcheck_smoke] $EVENTS events checked with peak $LIVE live lines ($RETIRED entries retired)"

# ---------------------------------------------------------------- gate 5
# Soft drift warnings against the committed benchmark.
if [ -f BENCH_streamcheck.json ]; then
  OLD_OVERHEAD=$(awk '/"stream_overhead_factor":/ { gsub(/[",]/, "", $2); print $2 + 0 }' BENCH_streamcheck.json)
  OLD_LIVE=$(awk '/"peak_live_lines":/ { gsub(/[",]/, "", $2); print $2 + 0 }' BENCH_streamcheck.json)
  awk -v o="$OLD_OVERHEAD" -v n="$OVERHEAD" 'BEGIN {
    if (o > 0) { pct = 100.0 * (n - o) / o
      if (pct > 10 || pct < -10)
        printf "::warning ::streamcheck overhead drifted %+.1f%% (%.2fx -> %.2fx)\n", pct, o, n } }'
  awk -v o="$OLD_LIVE" -v n="$LIVE" 'BEGIN {
    if (o > 0) { pct = 100.0 * (n - o) / o
      if (pct > 10 || pct < -10)
        printf "::warning ::streamcheck peak live lines drifted %+.1f%% (%d -> %d)\n", pct, o, n } }'
fi

cat >BENCH_streamcheck.json <<EOF
{
  "suite": "streaming checker (check grid x 2 paths, fault injection, openloop 500000 requests at load 120)",
  "host_cores": $HOST_CORES,
  "grid_points_identical": $GRID_POINTS,
  "fault_caught_both_paths": true,
  "open_stats_identical": true,
  "open_plain_cpu_ms": $MS_PLAIN,
  "open_stream_cpu_ms": $MS_STREAM,
  "stream_overhead_factor": $OVERHEAD,
  "events": $EVENTS,
  "peak_live_lines": $LIVE,
  "retired_entries": $RETIRED,
  "oracles": ["serializability", "sequential replay", "lock safety", "static gate"]
}
EOF

echo "[streamcheck_smoke] plain: ${MS_PLAIN} CPU ms   streamed: ${MS_STREAM} CPU ms   overhead: ${OVERHEAD}x"
echo "[streamcheck_smoke] wrote BENCH_streamcheck.json"
